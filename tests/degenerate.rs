//! Degenerate-instance coverage: every solver adapter (and both
//! portfolio chains) is driven through the corner cases adversarial
//! callers produce — empty `ΔV`, `ΔV = V`, zero weights, equal-weight
//! ties, single-relation views, duplicate deletion requests — and must
//! return either a verified solution or a typed `CoreError`. A panic
//! anywhere fails the test.

use delprop::core::runtime::solver::{
    DpTreeSolver, ExactBalancedSolver, ExactSolver, GeneralBalancedSolver, GeneralSolver,
    GreedySolver, LocalSearchSolver, LowDegTreeSolver, LpRoundSolver, PrimalDualBalancedSolver,
    PrimalDualSolver, SingleQuerySolver, SourceGreedySolver,
};
use delprop::prelude::*;
use delprop::query::parse_query;
use delprop::relation::{Database, RelationSchema, Schema};

fn standard_members() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(SingleQuerySolver),
        Box::new(DpTreeSolver),
        Box::new(LowDegTreeSolver),
        Box::new(PrimalDualSolver),
        Box::new(LpRoundSolver),
        Box::new(GeneralSolver),
        Box::new(GreedySolver),
        Box::new(ExactSolver::default()),
        Box::new(LocalSearchSolver),
        Box::new(SourceGreedySolver),
    ]
}

fn balanced_members() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(ExactBalancedSolver::default()),
        Box::new(PrimalDualBalancedSolver),
        Box::new(GeneralBalancedSolver),
    ]
}

/// Drive every member that applies through `problem`; verified feasible
/// output or typed error, never a panic. Returns how many members ran.
fn exercise(problem: &Problem, label: &str) -> usize {
    let budget = Budget::unlimited();
    let mut ran = 0;
    for m in standard_members() {
        if !m.applies(problem) {
            continue;
        }
        ran += 1;
        match m.solve(problem, &budget) {
            Ok(sol) => {
                assert!(
                    sol.is_feasible(problem),
                    "{label}: {} returned infeasible output",
                    m.name()
                );
                sol.verify_by_reevaluation(problem);
            }
            Err(e) => {
                // Typed error — must display cleanly.
                assert!(!e.to_string().is_empty(), "{label}: {}", m.name());
            }
        }
    }
    for m in balanced_members() {
        if !m.applies(problem) {
            continue;
        }
        ran += 1;
        match m.solve(problem, &budget) {
            Ok(sol) => {
                sol.verify_by_reevaluation(problem);
                assert!(
                    sol.balanced_cost(problem).is_finite(),
                    "{label}: {} returned non-finite balanced cost",
                    m.name()
                );
            }
            Err(e) => assert!(!e.to_string().is_empty(), "{label}: {}", m.name()),
        }
    }
    // Both portfolio chains must succeed outright: greedy (standard) and
    // the Lemma 1 reduction (balanced) are always applicable.
    let std_out = solve_portfolio(problem)
        .unwrap_or_else(|e| panic!("{label}: standard portfolio failed: {e}"));
    assert!(std_out.solution.is_feasible(problem), "{label}");
    let bal_out = solve_portfolio_balanced(problem)
        .unwrap_or_else(|e| panic!("{label}: balanced portfolio failed: {e}"));
    assert!(bal_out.cost.is_finite(), "{label}");
    ran
}

/// Two-relation chain database with `n` join values.
fn two_rel_db(n: i64) -> Database {
    let schema = Schema::from_relations([
        RelationSchema::new("R", 2, vec![0, 1]).unwrap(),
        RelationSchema::new("S", 2, vec![0, 1]).unwrap(),
    ])
    .unwrap();
    let mut db = Database::new(schema);
    for i in 0..n {
        for (name, t) in [("R", tup![i, i % 3]), ("S", tup![i % 3, (i + 1) % 2])] {
            let rid = db.schema().relation_id(name).unwrap();
            if db.find_by_key(rid, t.values()).is_none() {
                db.insert(name, t).unwrap();
            }
        }
    }
    db
}

fn two_rel_problem(n: i64) -> Problem {
    let db = two_rel_db(n);
    let q = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        .unwrap()
        .bind(db.schema())
        .unwrap();
    Problem::new(db, vec![q]).unwrap()
}

#[test]
fn empty_delta_v_costs_zero_everywhere() {
    let p = two_rel_problem(6);
    assert_eq!(p.norm_delta(), 0);
    exercise(&p, "empty ΔV");
    let out = solve_portfolio(&p).unwrap();
    assert!(out.solution.is_empty());
    assert_eq!(out.cost, 0.0);
}

#[test]
fn delta_v_equals_v_leaves_nothing_to_damage() {
    let mut p = two_rel_problem(6);
    let all: Vec<_> = p.views().iter().map(|(id, _)| id).collect();
    for id in all {
        p.mark_deleted_id(id).unwrap();
    }
    assert_eq!(p.norm_delta(), p.norm_v());
    exercise(&p, "ΔV = V");
    // With no preserved tuples the side-effect of any feasible solution
    // is zero.
    let out = solve_portfolio(&p).unwrap();
    assert_eq!(out.cost, 0.0);
    assert!(out.solution.is_feasible(&p));
}

#[test]
fn zero_weights_make_every_feasible_solution_optimal() {
    let mut p = two_rel_problem(6);
    let ids: Vec<_> = p.views().iter().map(|(id, _)| id).collect();
    p.mark_deleted_id(ids[0]).unwrap();
    for id in ids {
        p.set_weight(id, 0.0).unwrap();
    }
    exercise(&p, "zero weights");
    let out = solve_portfolio(&p).unwrap();
    assert_eq!(out.cost, 0.0);
    // Balanced: missing the demand is also free, so the optimum is 0 and
    // the empty solution is among the optima.
    let bal = solve_portfolio_balanced(&p).unwrap();
    assert_eq!(bal.cost, 0.0);
}

#[test]
fn equal_weight_ties_are_broken_deterministically() {
    let build = || {
        let mut p = two_rel_problem(8);
        let ids: Vec<_> = p.views().iter().map(|(id, _)| id).collect();
        p.mark_deleted_id(ids[0]).unwrap();
        p.mark_deleted_id(ids[ids.len() / 2]).unwrap();
        for id in ids {
            p.set_weight(id, 2.5).unwrap();
        }
        p
    };
    let p = build();
    exercise(&p, "equal weights");
    // Ties must not introduce nondeterminism: two identical runs return
    // the identical solution.
    let a = solve_portfolio(&p).unwrap();
    let b = solve_portfolio(&build()).unwrap();
    assert_eq!(a.solution, b.solution);
    assert_eq!(a.winner, b.winner);
}

#[test]
fn single_relation_views_have_self_witnesses() {
    let schema =
        Schema::from_relations([RelationSchema::new("R", 2, vec![0, 1]).unwrap()]).unwrap();
    let mut db = Database::new(schema);
    for i in 0..5i64 {
        db.insert("R", tup![i, i + 1]).unwrap();
    }
    let q = parse_query("Q(x, y) :- R(x, y)")
        .unwrap()
        .bind(db.schema())
        .unwrap();
    let mut p = Problem::new(db, vec![q]).unwrap();
    p.mark_deleted(0, &tup![2i64, 3i64]).unwrap();
    exercise(&p, "single-relation view");
    // The only witness of a single-atom view tuple is its own base
    // tuple, so the optimal side-effect is 0: nothing else dies.
    let out = solve_portfolio(&p).unwrap();
    assert_eq!(out.cost, 0.0);
    assert_eq!(out.solution.len(), 1);
}

#[test]
fn duplicate_deletion_requests_are_idempotent() {
    let mut p = two_rel_problem(6);
    let id = p.views().iter().map(|(id, _)| id).next().unwrap();
    p.mark_deleted_id(id).unwrap();
    p.mark_deleted_id(id).unwrap();
    p.mark_deleted_id(id).unwrap();
    assert_eq!(p.norm_delta(), 1, "ΔV is a set: duplicates collapse");
    exercise(&p, "duplicate deletions");

    let mut q = two_rel_problem(6);
    q.mark_deleted_id(id).unwrap();
    let once = solve_portfolio(&q).unwrap();
    let thrice = solve_portfolio(&p).unwrap();
    assert_eq!(once.solution, thrice.solution);
}

#[test]
fn unknown_view_tuples_are_typed_errors() {
    let mut p = two_rel_problem(4);
    let err = p.mark_deleted(7, &tup![0i64, 0i64, 0i64]).unwrap_err();
    assert!(matches!(err, CoreError::UnknownViewTuple { .. }));
    let err = p.mark_deleted(0, &tup![99i64, 99i64, 99i64]).unwrap_err();
    assert!(matches!(err, CoreError::UnknownViewTuple { .. }));
    let err = p
        .set_weight(delprop::query::ViewTupleId::new(0, 10_000), 1.0)
        .unwrap_err();
    assert!(matches!(err, CoreError::UnknownViewTuple { .. }));
    let err = p
        .set_weight(delprop::query::ViewTupleId::new(0, 0), f64::NAN)
        .unwrap_err();
    assert!(matches!(err, CoreError::InvalidWeight { .. }));
}

#[test]
fn all_weights_zero_and_delta_v_equals_v_combined() {
    // Stack the degeneracies: every view tuple deleted AND zero-weighted.
    let mut p = two_rel_problem(5);
    let all: Vec<_> = p.views().iter().map(|(id, _)| id).collect();
    for id in all {
        p.mark_deleted_id(id).unwrap();
        p.set_weight(id, 0.0).unwrap();
    }
    exercise(&p, "ΔV = V, all zero-weight");
}

#[test]
fn larger_domain_value_types_survive() {
    // Strings and negative integers as join values, single demand.
    let schema = Schema::from_relations([
        RelationSchema::new("R", 2, vec![0, 1]).unwrap(),
        RelationSchema::new("S", 2, vec![0, 1]).unwrap(),
    ])
    .unwrap();
    let mut db = Database::new(schema);
    for (a, b) in [("alpha", -1i64), ("beta", -2), ("gamma", -1)] {
        db.insert("R", tup![a, b]).unwrap();
        db.insert("S", tup![b, a]).unwrap();
    }
    let q = parse_query("Q(x, y, z) :- R(x, y), S(y, z)")
        .unwrap()
        .bind(db.schema())
        .unwrap();
    let mut p = Problem::new(db, vec![q]).unwrap();
    let first = p.views().iter().map(|(id, _)| id).next().unwrap();
    p.mark_deleted_id(first).unwrap();
    exercise(&p, "mixed value types");
}

#[test]
fn degenerate_instances_under_tiny_budgets_stay_typed() {
    // Budget pressure on top of degeneracy: either a verified solution
    // (from a member that fit) or BudgetExhausted — never a panic.
    let mut p = two_rel_problem(8);
    let ids: Vec<_> = p.views().iter().map(|(id, _)| id).collect();
    p.mark_deleted_id(ids[0]).unwrap();
    for ticks in [0, 1, 5, 50, 5_000] {
        let budget = Budget::with_ticks(ticks);
        match Portfolio::standard().solve(&p, &budget) {
            Ok(out) => assert!(out.solution.is_feasible(&p)),
            Err(e) => assert!(
                matches!(e, CoreError::BudgetExhausted { .. }),
                "ticks={ticks}: unexpected {e:?}"
            ),
        }
    }
}
