//! Differential equivalence of the sharded solve path (DESIGN.md §15):
//! partitioning a multi-component instance and solving each component
//! through the work-stealing scheduler must reproduce — byte for byte
//! on the cost — what the same deterministic chain reports on the whole
//! instance, because connected components are fully independent
//! subproblems. Also pins the single-component fast path (the partition
//! returns the parent `Arc` itself, no re-assembly) and the degradation
//! contract (budget exhaustion mid-shard yields per-shard incumbents
//! with the merged guarantee weakened, never an error).

use delprop::core::ir::CompiledInstance;
use delprop::core::shard::{self, partition, solve_sharded_ir};
use delprop::core::solvers::local_search::Objective;
use delprop::prelude::*;
use delprop::workload::forest::{self, ForestParams};
use std::sync::Arc;

fn disjoint(copies: usize, seed: u64) -> Problem {
    forest::generate_disjoint(
        ForestParams {
            levels: 4,
            window: 2,
            chains: 12,
            delete_fraction: 0.3,
            weighted: seed % 2 == 1,
        },
        copies,
        seed,
    )
}

/// Standard objective, randomized sweep: the merged sharded cost is
/// byte-equal to the unsharded deterministic chain's cost on the full
/// instance, the merged solution survives ground-truth
/// re-materialization, and every per-shard outcome byte-matches a
/// standalone solve of that shard's own IR.
#[test]
fn sharded_standard_matches_unsharded_chain() {
    for (copies, seed) in [(2usize, 3u64), (3, 4), (5, 5), (4, 6)] {
        let p = disjoint(copies, seed);
        let ir = p.compiled_arc();
        let budget = Budget::unlimited();
        let sharded = solve_sharded_ir(&ir, Objective::Standard, &budget).unwrap();
        let reference = shard::solve_component(&ir, Objective::Standard, &budget).unwrap();

        assert!(!sharded.degraded, "unlimited budget must not degrade");
        assert!(sharded.shards >= copies, "copies stay value-disjoint");
        assert_eq!(
            sharded.cost.to_bits(),
            reference.cost.to_bits(),
            "copies={copies} seed={seed}: sharded {} vs unsharded {}",
            sharded.cost,
            reference.cost
        );
        assert!(sharded.solution.is_feasible(&p));
        // Ground-truth re-materialization reproduces the reported cost.
        assert_eq!(
            sharded.solution.verify_by_reevaluation(&p).to_bits(),
            sharded.cost.to_bits()
        );

        // Each shard's reported outcome reproduces a standalone solve of
        // that shard's IR (same chain, fresh budget): the scheduler's
        // interleaving and the shared budget pool must not leak into
        // results.
        let part = partition(&ir);
        assert_eq!(part.shards.len(), sharded.per_shard.len());
        for (s, got) in part.shards.iter().zip(&sharded.per_shard) {
            let alone =
                shard::solve_component(&s.ir, Objective::Standard, &Budget::unlimited()).unwrap();
            assert_eq!(got.cost.to_bits(), alone.cost.to_bits());
            assert_eq!(got.member, alone.member);
            assert_eq!(got.solution, alone.solution);
        }
    }
}

/// Balanced objective: the merged outcome re-evaluates to its own
/// reported cost on the full instance and each per-shard solve is
/// reproducible standalone. (No byte-comparison against the full-IR
/// balanced chain: balanced members are heuristics, and a heuristic's
/// whole-instance trajectory may legitimately differ from its
/// per-component one.)
#[test]
fn sharded_balanced_is_reproducible_and_consistent() {
    for (copies, seed) in [(2usize, 7u64), (4, 8)] {
        let p = disjoint(copies, seed);
        let ir = p.compiled_arc();
        let sharded = solve_sharded_ir(&ir, Objective::Balanced, &Budget::unlimited()).unwrap();
        assert!(!sharded.degraded);
        let bits = ir.base_bits(&sharded.solution);
        assert_eq!(
            sharded.cost.to_bits(),
            ir.balanced_cost_bits(&bits).to_bits(),
            "merged balanced cost must be the full-instance evaluation"
        );
        let part = partition(&ir);
        for (s, got) in part.shards.iter().zip(&sharded.per_shard) {
            let alone =
                shard::solve_component(&s.ir, Objective::Balanced, &Budget::unlimited()).unwrap();
            assert_eq!(got.cost.to_bits(), alone.cost.to_bits());
            assert_eq!(got.solution, alone.solution);
        }
    }
}

/// A connected instance takes the fast path: the partition hands back
/// the parent `Arc` itself (pointer equality, not just equal contents),
/// so single-component callers pay nothing for the sharding layer.
#[test]
fn single_component_fast_path_returns_identical_arc() {
    let schema = Schema::from_relations(vec![
        RelationSchema::new("R1", 2, vec![0, 1]).unwrap(),
        RelationSchema::new("R2", 2, vec![0, 1]).unwrap(),
    ])
    .unwrap();
    let mut db = Database::new(schema);
    // Two chains sharing the R2 tuple: one component by construction.
    db.insert("R1", tup![1, 0]).unwrap();
    db.insert("R1", tup![2, 0]).unwrap();
    db.insert("R2", tup![0, 0]).unwrap();
    let q = parse_query("Q(x, y, z) :- R1(x, y), R2(y, z)")
        .unwrap()
        .bind(db.schema())
        .unwrap();
    let mut p = Problem::new(db, vec![q]).unwrap();
    p.mark_deleted(0, &tup![1i64, 0, 0]).unwrap();

    let ir = p.compiled_arc();
    let part = partition(&ir);
    assert_eq!(part.shards.len(), 1);
    assert!(
        Arc::ptr_eq(&part.shards[0].ir, &ir),
        "single component must reuse the parent instance"
    );
    // And the sharded solve still certifies it end to end.
    let out = solve_sharded_ir(&ir, Objective::Standard, &Budget::unlimited()).unwrap();
    assert!(out.solution.is_feasible(&p));
    assert_eq!(out.shards, 1);
}

/// Budget exhaustion mid-sweep: the sharded solve never errors out —
/// shards that could not run their chain fall back to their per-shard
/// incumbent (delete-all-candidates, trivially feasible), the outcome
/// is flagged degraded, and the merged guarantee weakens to Heuristic.
#[test]
fn budget_exhaustion_degrades_to_per_shard_incumbents() {
    let p = disjoint(4, 9);
    let ir = p.compiled_arc();
    let tiny = Budget::with_ticks(1);
    let out = solve_sharded_ir(&ir, Objective::Standard, &tiny).unwrap();
    assert!(out.degraded, "a 1-tick budget cannot run any chain member");
    assert!(out.per_shard.iter().any(|s| s.degraded));
    assert!(matches!(out.guarantee, Guarantee::Heuristic));
    // Degraded or not, the merged solution still eliminates every demand.
    assert!(out.solution.is_feasible(&p));
    assert_eq!(
        out.solution.verify_by_reevaluation(&p).to_bits(),
        out.cost.to_bits(),
        "even a degraded merge reports its ground-truth side effect"
    );

    // With enough budget the same instance certifies un-degraded, and
    // never at a worse cost than the degraded incumbent union.
    let full = solve_sharded_ir(&ir, Objective::Standard, &Budget::unlimited()).unwrap();
    assert!(!full.degraded);
    assert!(full.cost <= out.cost + 1e-9);
}

/// The synthesized-IR path (out-of-core scale runs) agrees with the
/// compiled path on the chain it feeds: a synthesized copy of a shard's
/// incidence rows solves to the same cost as the shard itself.
#[test]
fn synthesized_shard_rows_solve_identically() {
    let p = disjoint(3, 10);
    let ir = p.compiled_arc();
    let part = partition(&ir);
    assert!(part.shards.len() >= 3);
    for s in &part.shards {
        let sir = &s.ir;
        let demands: Vec<(f64, Vec<TupleId>)> = (0..sir.num_demands() as u32)
            .map(|d| {
                let ids = sir.demand_row(d).iter().map(|&b| sir.base(b)).collect();
                (1.0, ids)
            })
            .collect();
        let vulnerable: Vec<(f64, Vec<TupleId>)> = (0..sir.num_vulnerable() as u32)
            .map(|r| {
                let ids = sir.vulnerable_row(r).iter().map(|&b| sir.base(b)).collect();
                (sir.vulnerable_weight(r), ids)
            })
            .collect();
        let synth = CompiledInstance::synthesize(&demands, &vulnerable);
        let a = shard::solve_component(sir, Objective::Standard, &Budget::unlimited()).unwrap();
        let b = shard::solve_component(&synth, Objective::Standard, &Budget::unlimited()).unwrap();
        assert_eq!(
            a.cost.to_bits(),
            b.cost.to_bits(),
            "synthesized rows must preserve the chain's cost"
        );
    }
}
