//! Differential test of the incremental deletion-propagation engine:
//! after any randomized stream of ΔV batches — deletes, restores, and
//! compactions interleaved — the engine's installed projection must be
//! **byte-identical** (same `shape_digest`) to a cold
//! `CompiledInstance::compile` of a problem carrying the same ΔV, and
//! the auto-selected solver must return the same cost, the same ΔD,
//! and the same feasibility on both. Also covers the per-request
//! `with_delta` fork and the generation-stamp machinery that rejects
//! IR snapshots held across mutations.

use std::collections::BTreeSet;

use delprop::core::{
    solve_auto, CompactionPolicy, CompiledInstance, CoreError, DeltaBatch, Engine, Problem,
};
use delprop::query::ViewTupleId;
use delprop::workload::rng::SplitMix64;
use delprop::workload::{forest, random_db};

fn forest_case(chains: usize, delete_fraction: f64, seed: u64) -> Problem {
    forest::generate(
        forest::ForestParams {
            levels: 4,
            window: 2,
            chains,
            delete_fraction,
            weighted: false,
        },
        seed,
    )
}

fn weighted_random_case(seed: u64) -> Problem {
    random_db::generate(
        random_db::RandomDbParams {
            weighted: true,
            ..Default::default()
        },
        seed,
    )
}

fn all_ids(p: &Problem) -> Vec<ViewTupleId> {
    p.views().iter().map(|(id, _)| id).collect()
}

/// Cold-compile a pristine clone of `base` with exactly `delta` marked.
fn cold_compiled(base: &Problem, delta: &BTreeSet<ViewTupleId>) -> (Problem, CompiledInstance) {
    let mut cold = base.clone();
    // The engine's own stream started from base's deletions; rebuild
    // from a deletion-free clone by restoring anything not in `delta`.
    for id in all_ids(base) {
        if delta.contains(&id) {
            if !cold.is_deleted(id) {
                cold.mark_deleted_id(id).unwrap();
            }
        } else if cold.is_deleted(id) {
            cold.unmark_deleted_id(id).unwrap();
        }
    }
    let ir = CompiledInstance::compile(&cold);
    (cold, ir)
}

/// Drive one randomized ΔV stream and check digest + solver
/// equivalence against cold compiles at every step.
fn check_stream(base: Problem, seed: u64, policy: CompactionPolicy, steps: usize) {
    let ids = all_ids(&base);
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut engine = Engine::with_policy(base.clone(), policy).unwrap();
    let mut mirror: BTreeSet<ViewTupleId> = base.deletions().iter().copied().collect();

    for step in 0..steps {
        // Draw disjoint delete/restore sets from the current state.
        let preserved: Vec<ViewTupleId> = ids
            .iter()
            .filter(|id| !mirror.contains(id))
            .copied()
            .collect();
        let deleted: Vec<ViewTupleId> = mirror.iter().copied().collect();
        let mut batch = DeltaBatch::default();
        if !preserved.is_empty() {
            for _ in 0..=rng.below(3) {
                batch.delete.push(preserved[rng.below(preserved.len())]);
            }
        }
        if !deleted.is_empty() && rng.chance(0.6) {
            for _ in 0..=rng.below(2) {
                batch.restore.push(deleted[rng.below(deleted.len())]);
            }
        }
        let report = engine.apply(&batch).unwrap();
        assert_eq!(report.generation, engine.generation(), "step {step}");
        for id in &batch.delete {
            mirror.insert(*id);
        }
        for id in &batch.restore {
            mirror.remove(id);
        }

        // Forced mid-stream compaction on some steps, on top of
        // whatever the policy already triggered.
        if step % 7 == 3 {
            engine.compact();
        }

        let (cold, cold_ir) = cold_compiled(&base, &mirror);
        let warm = engine.compiled();
        assert_eq!(
            warm.shape_digest(),
            cold_ir.shape_digest(),
            "seed {seed} step {step}: projection diverged from cold compile"
        );
        assert!(engine.problem().verify_compiled(&warm).is_ok());

        // Solver equivalence on a sample of steps (cost, ΔD, and
        // feasibility must match bit-for-bit on identical IRs).
        if step % 5 == 0 && !mirror.is_empty() {
            let warm_sol = solve_auto(engine.problem()).unwrap();
            let cold_sol = solve_auto(&cold).unwrap();
            assert_eq!(
                warm_sol.side_effect(engine.problem()).to_bits(),
                cold_sol.side_effect(&cold).to_bits(),
                "seed {seed} step {step}: cost diverged"
            );
            assert_eq!(
                warm_sol.deleted, cold_sol.deleted,
                "seed {seed} step {step}: ΔD diverged"
            );
            assert!(warm_sol.is_feasible(engine.problem()));
            assert!(cold_sol.is_feasible(&cold));
        }
    }
}

#[test]
fn forest_streams_match_cold_compiles() {
    // Pristine start and pre-seeded ΔV, default and never-compact
    // policies, so both overlay regimes (frequent folds, unbounded
    // fragmentation) are exercised.
    check_stream(
        forest_case(32, 0.0, 11),
        101,
        CompactionPolicy::default(),
        30,
    );
    check_stream(
        forest_case(32, 0.25, 12),
        102,
        CompactionPolicy {
            max_fragmentation: f64::INFINITY,
        },
        30,
    );
    // Compact after every batch.
    check_stream(
        forest_case(24, 0.1, 13),
        103,
        CompactionPolicy {
            max_fragmentation: 0.0,
        },
        20,
    );
}

#[test]
fn weighted_random_streams_match_cold_compiles() {
    check_stream(
        weighted_random_case(21),
        201,
        CompactionPolicy::default(),
        25,
    );
    check_stream(
        weighted_random_case(22),
        202,
        CompactionPolicy {
            max_fragmentation: 0.05,
        },
        25,
    );
}

#[test]
fn with_delta_forks_match_cold_compiles_mid_stream() {
    let base = forest_case(32, 0.15, 31);
    let mut engine = Engine::new(base.clone()).unwrap();
    let ids = all_ids(&base);
    let mut rng = SplitMix64::seed_from_u64(301);
    for round in 0..10 {
        // Advance the engine a step, then fork with extra deletions.
        let preserved: Vec<ViewTupleId> = ids
            .iter()
            .filter(|&&id| !engine.problem().is_deleted(id))
            .copied()
            .collect();
        if preserved.len() < 4 {
            break;
        }
        engine
            .apply(&DeltaBatch::deletes(
                [preserved[rng.below(preserved.len())]],
            ))
            .unwrap();

        let extra: Vec<ViewTupleId> = (0..2 + rng.below(3))
            .map(|_| preserved[rng.below(preserved.len())])
            .filter(|&id| !engine.problem().is_deleted(id))
            .collect();
        let forked = engine.with_delta(&extra).unwrap();
        let mut delta: BTreeSet<ViewTupleId> =
            engine.problem().deletions().iter().copied().collect();
        delta.extend(extra.iter().copied());
        let (_, cold_ir) = cold_compiled(&base, &delta);
        assert_eq!(
            forked.compiled().shape_digest(),
            cold_ir.shape_digest(),
            "round {round}: with_delta fork diverged"
        );
        assert!(forked.verify_compiled(forked.compiled()).is_ok());
    }
}

#[test]
fn restoring_everything_reaches_the_pristine_projection() {
    let base = forest_case(24, 0.3, 41);
    let mut engine = Engine::new(base.clone()).unwrap();
    let initial: Vec<ViewTupleId> = base.deletions().iter().copied().collect();
    assert!(!initial.is_empty(), "workload must seed deletions");
    engine
        .apply(&DeltaBatch::restores(initial.iter().copied()))
        .unwrap();
    let mut pristine = base.clone();
    for id in initial {
        pristine.unmark_deleted_id(id).unwrap();
    }
    assert_eq!(
        engine.compiled().shape_digest(),
        CompiledInstance::compile(&pristine).shape_digest()
    );
    assert_eq!(engine.problem().norm_delta(), 0);
}

// -------------------------------------------------------------------
// Generation stamps: stale snapshots must be rejected, not solved.
// -------------------------------------------------------------------

#[test]
fn verification_rejects_an_ir_held_across_a_mutation() {
    // The mutate-while-racing regression: a reader (the portfolio, a
    // verification pass) grabs the compiled Arc, then ΔV changes
    // underneath it. The old snapshot stays readable — epoch readers
    // depend on that — but verifying it against the mutated problem
    // must fail typed instead of certifying against the wrong ΔV.
    let mut p = forest_case(16, 0.2, 51);
    let snapshot = p.compiled_arc();
    assert!(p.verify_compiled(&snapshot).is_ok());
    let gen_before = p.generation();

    let victim = p
        .preserved()
        .map(|(id, _)| id)
        .next()
        .expect("some preserved tuple");
    p.mark_deleted_id(victim).unwrap();
    assert!(p.generation() > gen_before, "mutation must bump generation");
    match p.verify_compiled(&snapshot) {
        Err(CoreError::StaleCompiled { compiled, current }) => {
            assert!(current > compiled, "{compiled} vs {current}");
        }
        other => panic!("expected StaleCompiled, got {other:?}"),
    }
    // The snapshot itself is still coherent for its own generation —
    // and a fresh compile verifies against the new one.
    assert_eq!(snapshot.generation(), gen_before);
    assert!(p.verify_compiled(p.compiled()).is_ok());
}

#[test]
fn racing_reader_thread_gets_a_typed_stale_error() {
    let mut p = forest_case(16, 0.2, 52);
    let snapshot = p.compiled_arc();
    let victim = p.preserved().map(|(id, _)| id).next().unwrap();
    p.mark_deleted_id(victim).unwrap();
    // The reader finishes its (now obsolete) work on another thread;
    // its snapshot must still be usable as data...
    let handle = std::thread::spawn(move || (snapshot.num_demands(), snapshot));
    let (demands, snapshot) = handle.join().unwrap();
    assert!(demands > 0);
    // ...but the generation check rejects it for this problem.
    assert!(matches!(
        p.verify_compiled(&snapshot),
        Err(CoreError::StaleCompiled { .. })
    ));
}

#[test]
fn noop_mutations_do_not_invalidate_the_ir() {
    let mut p = forest_case(16, 0.2, 53);
    let already: ViewTupleId = *p.deletions().iter().next().unwrap();
    let snapshot = p.compiled_arc();
    let gen = p.generation();
    // Re-marking a deleted tuple and restoring a non-deleted one are
    // no-ops: the cached IR must survive both.
    p.mark_deleted_id(already).unwrap();
    let preserved = p.preserved().map(|(id, _)| id).next().unwrap();
    assert!(!p.unmark_deleted_id(preserved).unwrap());
    assert_eq!(p.generation(), gen);
    assert!(p.verify_compiled(&snapshot).is_ok());
}

#[test]
fn engine_batches_keep_the_projection_generation_current() {
    let base = forest_case(16, 0.2, 54);
    let mut engine = Engine::new(base).unwrap();
    let preserved: Vec<ViewTupleId> = engine.problem().preserved().map(|(id, _)| id).collect();
    for chunk in preserved.chunks(3).take(4) {
        let stale = engine.compiled();
        engine
            .apply(&DeltaBatch::deletes(chunk.iter().copied()))
            .unwrap();
        // The pre-batch snapshot is stale, the installed one is not.
        assert!(matches!(
            engine.problem().verify_compiled(&stale),
            Err(CoreError::StaleCompiled { .. })
        ));
        assert!(engine.problem().verify_compiled(&engine.compiled()).is_ok());
    }
}
