//! Racing-portfolio tests: the thread-parallel `solve_racing` path must
//! (1) return the same verified cost as the sequential `solve_best` on
//! every seeded workload, (2) contain per-member panics per thread, and
//! (3) cancel losers cooperatively once a stronger-or-equal member
//! verifies — a stalling member that would spin forever sequentially is
//! released by the winner's cancellation token.
//!
//! The differential tests repeat each comparison several times: thread
//! scheduling varies run to run, and the invariant must hold under every
//! interleaving, not just a lucky one.

use delprop::core::runtime::solver::GreedySolver;
use delprop::core::solvers::local_search::Objective;
use delprop::prelude::*;
use delprop::query::parse_query;

/// How often each race-sensitive scenario is repeated in-process. Raised
/// further by the CI repeat loop that re-runs the whole binary.
const REPS: usize = 3;

// -------------------------------------------------------------------
// Seeded workloads, replicated from the crate-private test_support
// builders (integration tests cannot reach pub(crate) items).
// -------------------------------------------------------------------

/// The paper's Fig. 1 database under `Q4` with one deletion.
fn fig1_problem() -> Problem {
    let schema = Schema::from_relations([
        RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
        RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
    ])
    .unwrap();
    let mut db = Database::new(schema);
    for t in [
        tup!["Joe", "TKDE"],
        tup!["John", "TKDE"],
        tup!["Tom", "TKDE"],
        tup!["John", "TODS"],
    ] {
        db.insert("T1", t).unwrap();
    }
    for t in [
        tup!["TKDE", "XML", 30],
        tup!["TKDE", "CUBE", 30],
        tup!["TODS", "XML", 30],
    ] {
        db.insert("T2", t).unwrap();
    }
    let q = parse_query("Q4(x, y, z) :- T1(x, y), T2(y, z, w)")
        .unwrap()
        .bind(db.schema())
        .unwrap();
    let mut p = Problem::new(db, vec![q]).unwrap();
    p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
    p
}

/// The binary-merging chain workload (see test_support::chain_problem).
fn chain_problem(n: usize, atoms: usize, blue: &[usize]) -> Problem {
    let schema = Schema::from_relations(
        (1..=atoms).map(|j| RelationSchema::new(format!("R{j}"), 2, vec![0, 1]).unwrap()),
    )
    .unwrap();
    let mut db = Database::new(schema);
    for i in 0..n {
        for j in 1..=atoms {
            let a = (i >> (j - 1)) as i64;
            let b = (i >> j) as i64;
            let name = format!("R{j}");
            let rid = db.schema().relation_id(&name).unwrap();
            if db
                .find_by_key(rid, &[Value::int(a), Value::int(b)])
                .is_none()
            {
                db.insert(&name, tup![a, b]).unwrap();
            }
        }
    }
    let head: Vec<String> = (0..=atoms).map(|j| format!("x{j}")).collect();
    let body: Vec<String> = (1..=atoms)
        .map(|j| format!("R{j}(x{}, x{j})", j - 1))
        .collect();
    let src = format!("Q({}) :- {}", head.join(", "), body.join(", "));
    let q = parse_query(&src).unwrap().bind(db.schema()).unwrap();
    let mut p = Problem::new(db, vec![q]).unwrap();
    for &i in blue {
        let h: Tuple = (0..=atoms).map(|j| (i >> j) as i64).collect();
        p.mark_deleted(0, &h).unwrap();
    }
    p
}

/// The "broom" pivot workload (see test_support::star_problem).
fn star_problem(branches: usize, blue: &[usize]) -> Problem {
    let schema = Schema::from_relations([
        RelationSchema::new("R0", 1, vec![0]).unwrap(),
        RelationSchema::new("R1", 2, vec![0, 1]).unwrap(),
        RelationSchema::new("R2", 2, vec![0, 1]).unwrap(),
    ])
    .unwrap();
    let mut db = Database::new(schema);
    db.insert("R0", tup![0]).unwrap();
    for j in 0..branches {
        db.insert("R1", tup![0, j as i64 + 1]).unwrap();
        db.insert("R2", tup![j as i64 + 1, j as i64 + 1]).unwrap();
    }
    let sources = [
        "Q1(x0) :- R0(x0)",
        "Q2(x0, x1) :- R0(x0), R1(x0, x1)",
        "Q3(x0, x1, x2) :- R0(x0), R1(x0, x1), R2(x1, x2)",
        "Q3b(x0, x1, x2) :- R0(x0), R1(x0, x1), R2(x1, x2)",
    ];
    let bound = sources
        .iter()
        .map(|src| parse_query(src).unwrap().bind(db.schema()).unwrap())
        .collect();
    let mut p = Problem::new(db, bound).unwrap();
    for &j in blue {
        let b = j as i64 + 1;
        p.mark_deleted(2, &tup![0, b, b]).unwrap();
    }
    p
}

fn seeded_workloads() -> Vec<(&'static str, Problem)> {
    vec![
        ("fig1", fig1_problem()),
        ("chain", chain_problem(8, 3, &[1, 4, 6])),
        ("star", star_problem(4, &[0, 2])),
    ]
}

// -------------------------------------------------------------------
// Differential: racing == sequential verified cost on every workload.
// -------------------------------------------------------------------

#[test]
fn racing_matches_sequential_cost_on_every_seeded_workload() {
    for (name, p) in seeded_workloads() {
        let seq = Portfolio::standard()
            .solve_best(&p, &Budget::unlimited())
            .unwrap();
        for rep in 0..REPS {
            let raced = Portfolio::standard()
                .solve_racing(&p, &Budget::unlimited())
                .unwrap();
            assert!(
                raced.solution.is_feasible(&p),
                "{name} rep {rep}: racing returned an infeasible solution"
            );
            assert!(
                (raced.cost - seq.cost).abs() < 1e-9,
                "{name} rep {rep}: racing cost {} != sequential cost {}",
                raced.cost,
                seq.cost
            );
            // The reported cost is the verified cost, recomputed here.
            assert!((raced.cost - raced.solution.side_effect(&p)).abs() < 1e-12);
        }
    }
}

#[test]
fn racing_report_covers_every_member_in_chain_order() {
    let p = chain_problem(8, 3, &[1, 4]);
    let out = Portfolio::standard()
        .solve_racing(&p, &Budget::unlimited())
        .unwrap();
    assert_eq!(
        out.report.iter().map(|r| r.name).collect::<Vec<_>>(),
        Portfolio::standard().member_names()
    );
    // single_query does not apply to a multi-deletion instance.
    assert_eq!(out.report[0].status, MemberStatus::Skipped);
}

// -------------------------------------------------------------------
// Fault injection under racing: each member misbehaves on its own
// thread; the invariants must hold under every interleaving.
// -------------------------------------------------------------------

fn faulty_racing_chain(mode: FaultMode) -> Portfolio {
    Portfolio::new(Objective::Standard)
        .with(FaultySolver::new(GreedySolver, mode))
        .with(GreedySolver)
}

#[test]
fn racing_contains_panics_per_thread() {
    let p = chain_problem(8, 3, &[1, 4, 6]);
    for rep in 0..REPS {
        let out = faulty_racing_chain(FaultMode::Panic)
            .solve_racing(&p, &Budget::unlimited())
            .expect("the healthy member must win");
        assert_eq!(out.winner, "greedy", "rep {rep}");
        assert!(out.solution.is_feasible(&p));
        match &out.report[0].status {
            MemberStatus::Panicked { message } => {
                assert!(message.contains("injected panic"), "got: {message}")
            }
            other => panic!("rep {rep}: expected Panicked, got {other:?}"),
        }
    }
}

#[test]
fn racing_rejects_corrupt_output_and_recovers() {
    let p = chain_problem(8, 3, &[1, 4, 6]);
    for rep in 0..REPS {
        let out = faulty_racing_chain(FaultMode::Corrupt)
            .solve_racing(&p, &Budget::unlimited())
            .unwrap();
        assert_eq!(
            out.report[0].status,
            MemberStatus::RejectedInfeasible,
            "rep {rep}"
        );
        assert_eq!(out.winner, "greedy");
        assert!(out.solution.is_feasible(&p));
    }
}

#[test]
fn racing_winner_cancels_a_stalling_member() {
    let p = chain_problem(8, 3, &[1, 4, 6]);
    for rep in 0..REPS {
        // A huge finite pool bounds the test if cancellation ever broke
        // (the stall would drain it in seconds); in a working run the
        // greedy winner verifies in microseconds and cancels the stall
        // long before the pool empties.
        let budget = Budget::with_ticks(1_000_000_000);
        let out = faulty_racing_chain(FaultMode::Stall)
            .solve_racing(&p, &budget)
            .expect("the winner must release the stalled member");
        assert_eq!(out.winner, "greedy", "rep {rep}");
        assert_eq!(
            out.report[0].status,
            MemberStatus::Cancelled,
            "rep {rep}: the stall must end via cancellation, got {:?}",
            out.report[0].status
        );
        assert!(
            !budget.is_exhausted(),
            "rep {rep}: cancellation, not exhaustion, must stop the stall"
        );
    }
}

#[test]
fn racing_survives_a_budget_hog() {
    let p = chain_problem(8, 3, &[1, 4, 6]);
    for rep in 0..REPS {
        // The hog may drain the pool before or after the greedy member
        // charges — both interleavings are legal. The invariant: either
        // a verified feasible solution or the typed exhaustion error.
        let budget = Budget::with_ticks(100_000);
        match faulty_racing_chain(FaultMode::ExhaustBudget).solve_racing(&p, &budget) {
            Ok(out) => {
                assert!(out.solution.is_feasible(&p), "rep {rep}");
                assert!((out.cost - out.solution.side_effect(&p)).abs() < 1e-12);
            }
            Err(e) => assert!(
                matches!(e, CoreError::BudgetExhausted { .. }),
                "rep {rep}: unexpected error {e:?}"
            ),
        }
    }
}

#[test]
fn every_fault_mode_is_survivable_under_racing() {
    let p = chain_problem(8, 3, &[1, 4, 6]);
    for mode in [
        FaultMode::None,
        FaultMode::Panic,
        FaultMode::Stall,
        FaultMode::ExhaustBudget,
        FaultMode::Infeasible,
        FaultMode::Corrupt,
        FaultMode::TypedError,
    ] {
        let budget = Budget::with_ticks(100_000_000);
        match faulty_racing_chain(mode).solve_racing(&p, &budget) {
            Ok(out) => {
                assert!(out.solution.is_feasible(&p), "{mode:?}");
                assert!((out.cost - out.solution.side_effect(&p)).abs() < 1e-12);
            }
            Err(e) => assert!(
                matches!(e, CoreError::BudgetExhausted { .. }),
                "{mode:?} gave unexpected error {e:?}"
            ),
        }
    }
}

// -------------------------------------------------------------------
// Accounting under contention.
// -------------------------------------------------------------------

#[test]
fn racing_pool_ticks_account_for_the_whole_field() {
    let p = chain_problem(8, 3, &[1, 4, 6]);
    let budget = Budget::unlimited();
    let out = Portfolio::standard().solve_racing(&p, &budget).unwrap();
    let member_total: u64 = out.report.iter().map(|r| r.ticks).sum();
    // Every pool tick is either the compile charge or some member's own
    // metered work: nothing is double-counted or lost.
    assert_eq!(out.compile_ticks + member_total, budget.used());
    for r in &out.report {
        assert!(
            r.pool_ticks >= r.ticks || r.ticks == 0,
            "{}: pool window {} cannot be smaller than own meter {}",
            r.name,
            r.pool_ticks,
            r.ticks
        );
    }
}

#[test]
fn racing_on_a_drained_budget_is_a_typed_error() {
    let p = chain_problem(6, 3, &[1, 3]);
    let budget = Budget::with_ticks(0);
    let err = Portfolio::standard().solve_racing(&p, &budget).unwrap_err();
    assert!(matches!(err, CoreError::BudgetExhausted { .. }));
}
