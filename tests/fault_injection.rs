//! Fault-injection tests for the portfolio runtime (the acceptance suite
//! of the robustness layer): a panicking member is contained and
//! reported, a budget-exhausted exact solve degrades to a verified
//! feasible approximation, and infeasible/corrupt member output is
//! rejected by verification. In every scenario the portfolio returns
//! either a verified `Solution` or a typed `CoreError` — never a raw
//! panic, never an unverified answer.

use delprop::core::runtime::solver::{ExactSolver, GreedySolver, LocalSearchSolver};
use delprop::core::solvers::local_search::Objective;
use delprop::prelude::*;
use delprop::query::parse_query;
use delprop::relation::{Database, RelationSchema, Schema, Tuple};
use delprop::workload::random_db::{self, RandomDbParams};

/// The binary-counter chain workload: `n` counter values joined through
/// `atoms` binary relations, with the view tuples at `blue` marked for
/// deletion. Small but combinatorially busy — the exact search explores
/// hundreds of nodes.
fn chain_problem(n: usize, atoms: usize, blue: &[usize]) -> Problem {
    let schema = Schema::from_relations(
        (1..=atoms).map(|j| RelationSchema::new(format!("R{j}"), 2, vec![0, 1]).unwrap()),
    )
    .unwrap();
    let mut db = Database::new(schema);
    for i in 0..n {
        for j in 1..=atoms {
            let a = (i >> (j - 1)) as i64;
            let b = (i >> j) as i64;
            let name = format!("R{j}");
            let rid = db.schema().relation_id(&name).unwrap();
            use delprop::relation::Value;
            if db
                .find_by_key(rid, &[Value::int(a), Value::int(b)])
                .is_none()
            {
                db.insert(&name, tup![a, b]).unwrap();
            }
        }
    }
    let head: Vec<String> = (0..=atoms).map(|j| format!("x{j}")).collect();
    let body: Vec<String> = (1..=atoms)
        .map(|j| format!("R{j}(x{}, x{j})", j - 1))
        .collect();
    let src = format!("Q({}) :- {}", head.join(", "), body.join(", "));
    let q = parse_query(&src).unwrap().bind(db.schema()).unwrap();
    let mut p = Problem::new(db, vec![q]).unwrap();
    for &i in blue {
        let h: Tuple = (0..=atoms).map(|j| (i >> j) as i64).collect();
        p.mark_deleted(0, &h).unwrap();
    }
    p
}

fn faulty_chain(mode: FaultMode) -> Portfolio {
    Portfolio::new(Objective::Standard)
        .with(FaultySolver::new(GreedySolver, mode))
        .with(GreedySolver)
}

// -------------------------------------------------------------------
// Scenario 1: a panicking member is contained and reported.
// -------------------------------------------------------------------

#[test]
fn panicking_member_is_contained_and_chain_recovers() {
    let p = chain_problem(8, 3, &[1, 4, 6]);
    let out = faulty_chain(FaultMode::Panic)
        .solve(&p, &Budget::unlimited())
        .expect("healthy fallback must win");
    assert_eq!(out.winner, "greedy");
    assert!(out.solution.is_feasible(&p));
    match &out.report[0].status {
        MemberStatus::Panicked { message } => {
            assert!(message.contains("injected panic"), "got: {message}")
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
}

#[test]
fn all_members_panicking_yields_typed_error_not_a_panic() {
    let p = chain_problem(6, 3, &[1, 3]);
    let chain = Portfolio::new(Objective::Standard)
        .with(FaultySolver::new(GreedySolver, FaultMode::Panic))
        .with(FaultySolver::new(LocalSearchSolver, FaultMode::Panic));
    let err = chain.solve(&p, &Budget::unlimited()).unwrap_err();
    // No verified solution and no budget/typed failure: a clean
    // infeasibility report, not an escaping panic.
    assert!(matches!(err, CoreError::Infeasible { .. }), "got {err:?}");
}

// -------------------------------------------------------------------
// Scenario 2: budget exhaustion degrades to a verified feasible answer.
// -------------------------------------------------------------------

#[test]
fn budget_exhausted_exact_degrades_to_verified_incumbent() {
    // A dense multi-query workload whose full branch-and-bound search
    // runs far past 200k nodes: any small budget is guaranteed to drain
    // mid-search, while the DFS holds a feasible incumbent within the
    // first ~‖ΔV‖ nodes.
    let p = random_db::generate(
        RandomDbParams {
            num_relations: 5,
            num_queries: 4,
            atoms_per_query: 2,
            domain: 5,
            tuples_per_relation: 18,
            delete_fraction: 0.4,
            weighted: true,
        },
        1,
    );
    let chain = Portfolio::new(Objective::Standard)
        .with(ExactSolver::default())
        .with(GreedySolver);
    let budget = Budget::with_ticks(50_000);
    let out = chain
        .solve(&p, &budget)
        .expect("the truncated incumbent must verify");
    assert!(budget.is_exhausted(), "the budget must actually drain");
    assert_eq!(out.winner, "exact", "best-so-far incumbent, unproven");
    assert!(out.report[0].status.is_verified());
    assert!(out.solution.is_feasible(&p));
    // The incumbent is a genuine (verified) approximation: its cost is
    // the re-checked side-effect.
    assert!((out.cost - out.solution.side_effect(&p)).abs() < 1e-12);
}

#[test]
fn stalling_member_is_bounded_by_the_budget() {
    let p = chain_problem(8, 3, &[1, 4]);
    let budget = Budget::with_ticks(1_000);
    let err = faulty_chain(FaultMode::Stall)
        .solve(&p, &budget)
        .unwrap_err();
    assert!(
        matches!(err, CoreError::BudgetExhausted { .. }),
        "got {err:?}"
    );
    assert!(budget.is_exhausted());
}

#[test]
fn budget_hog_fails_typed_and_starves_the_tail() {
    let p = chain_problem(8, 3, &[1, 4]);
    let budget = Budget::with_ticks(10_000);
    let err = faulty_chain(FaultMode::ExhaustBudget)
        .solve(&p, &budget)
        .unwrap_err();
    assert!(matches!(err, CoreError::BudgetExhausted { .. }));
    assert_eq!(budget.remaining(), 0);
}

// -------------------------------------------------------------------
// Scenario 3: infeasible / corrupt output is rejected by verification.
// -------------------------------------------------------------------

#[test]
fn infeasible_member_output_is_rejected() {
    let p = chain_problem(8, 3, &[1, 4, 6]);
    let out = faulty_chain(FaultMode::Infeasible)
        .solve(&p, &Budget::unlimited())
        .unwrap();
    assert_eq!(out.report[0].status, MemberStatus::RejectedInfeasible);
    assert_eq!(out.winner, "greedy");
    assert!(out.solution.is_feasible(&p));
}

#[test]
fn corrupt_member_output_is_rejected() {
    let p = chain_problem(8, 3, &[1, 4, 6]);
    let out = faulty_chain(FaultMode::Corrupt)
        .solve(&p, &Budget::unlimited())
        .unwrap();
    // Fabricated tuple ids cut nothing, so verification refuses the
    // solution outright.
    assert_eq!(out.report[0].status, MemberStatus::RejectedInfeasible);
    assert_eq!(out.winner, "greedy");
    assert!(out.solution.is_feasible(&p));
}

#[test]
fn typed_error_member_is_reported_and_skipped_over() {
    let p = chain_problem(8, 3, &[1, 4]);
    let out = faulty_chain(FaultMode::TypedError)
        .solve(&p, &Budget::unlimited())
        .unwrap();
    assert!(matches!(
        out.report[0].status,
        MemberStatus::Failed {
            error: CoreError::StructureMismatch { .. }
        }
    ));
    assert_eq!(out.winner, "greedy");
}

// -------------------------------------------------------------------
// Scenario 4: transient outages and slow starts — the failure shapes
// the serving daemon's retry/backoff ladder rides out. The wrapper's
// attempt counter persists across solve calls, so one chain reused
// across attempts recovers deterministically.
// -------------------------------------------------------------------

#[test]
fn transient_member_fails_typed_then_recovers_across_attempts() {
    let p = chain_problem(8, 3, &[1, 4]);
    let chain = faulty_chain(FaultMode::Transient { fail_count: 2 });
    // Attempts 1 and 2: the transient member fails with a typed error
    // and the healthy fallback wins the chain.
    for attempt in 1..=2 {
        let out = chain.solve(&p, &Budget::unlimited()).unwrap();
        assert_eq!(out.winner, "greedy", "attempt {attempt}");
        assert!(
            matches!(
                out.report[0].status,
                MemberStatus::Failed {
                    error: CoreError::StructureMismatch { .. }
                }
            ),
            "attempt {attempt}: {:?}",
            out.report[0].status
        );
    }
    // Attempt 3: the outage is over and the recovered member wins.
    let out = chain
        .solve(&p, &Budget::unlimited())
        .expect("recovered member must solve");
    assert_eq!(out.winner, "faulty_transient");
    assert!(out.solution.is_feasible(&p));
}

#[test]
fn slow_start_member_succeeds_once_its_warmup_fits_the_budget() {
    let p = chain_problem(6, 3, &[1, 3]);
    // No healthy fallback here: the retry loop itself must ride the
    // cold start down. 40k warm-up against a 15k budget: attempts 1
    // and 2 exhaust on the warm-up charge (40k, then 20k), attempt 3
    // charges 10k and has budget left to actually solve.
    let chain = Portfolio::new(Objective::Standard).with(FaultySolver::new(
        GreedySolver,
        FaultMode::SlowStart {
            warmup_ticks: 40_000,
        },
    ));
    let mut succeeded_on = None;
    for attempt in 0..4 {
        let budget = Budget::with_ticks(15_000);
        match chain.solve(&p, &budget) {
            Ok(out) => {
                assert!(out.solution.is_feasible(&p));
                succeeded_on = Some(attempt);
                break;
            }
            Err(e) => {
                assert!(
                    matches!(e, CoreError::BudgetExhausted { .. }),
                    "attempt {attempt}: {e:?}"
                );
                assert!(budget.is_exhausted(), "attempt {attempt}");
            }
        }
    }
    assert_eq!(
        succeeded_on,
        Some(2),
        "the 40k warm-up halves to 10k by the third attempt"
    );
}

// -------------------------------------------------------------------
// Scenario 5 (regression): a stalled member on an *unlimited* budget —
// no tick limit, no deadline to drain against — must still be reapable
// from outside via pool-wide cancellation, because the stall loop polls
// its cancel token without charging.
// -------------------------------------------------------------------

#[test]
fn stalled_chain_on_an_unlimited_budget_is_reaped_by_pool_cancellation() {
    let p = chain_problem(6, 3, &[1, 3]);
    let chain = faulty_chain(FaultMode::Stall);
    let budget = Budget::unlimited();
    let result = std::thread::scope(|s| {
        let solver = s.spawn(|| chain.solve(&p, &budget));
        // Wait until the stall is demonstrably spinning (its checkpoint
        // charges tick the pool meter), then pull the kill switch.
        while budget.used() < 100 {
            std::thread::yield_now();
        }
        budget.cancel_all_with_cause("request cancelled");
        solver.join().expect("stalled chain must terminate")
    });
    let err = result.expect_err("a fully cancelled chain cannot produce a solution");
    // The chain lost to cancellation, not to the budget, and every
    // member that ran was cancelled — none panicked, none hung.
    assert!(!budget.is_exhausted());
    assert!(budget.is_cancelled());
    assert_eq!(budget.cancel_cause(), Some("request cancelled"));
    assert!(
        matches!(
            err,
            CoreError::Cancelled { .. } | CoreError::Infeasible { .. }
        ),
        "got {err:?}"
    );
}

// -------------------------------------------------------------------
// The invariant, stated as a sweep: under every fault mode the portfolio
// returns a verified solution or a typed error — never panics.
// -------------------------------------------------------------------

#[test]
fn every_fault_mode_is_survivable() {
    let p = chain_problem(8, 3, &[1, 4, 6]);
    for mode in [
        FaultMode::None,
        FaultMode::Panic,
        FaultMode::Stall,
        FaultMode::ExhaustBudget,
        FaultMode::Transient { fail_count: 1 },
        FaultMode::SlowStart {
            warmup_ticks: 1_000,
        },
        FaultMode::Infeasible,
        FaultMode::Corrupt,
        FaultMode::TypedError,
    ] {
        let budget = Budget::with_ticks(100_000);
        match faulty_chain(mode).solve(&p, &budget) {
            Ok(out) => {
                assert!(out.solution.is_feasible(&p), "{mode:?}");
                // The cost reported is the verified cost, recomputed here.
                assert!((out.cost - out.solution.side_effect(&p)).abs() < 1e-12);
            }
            Err(e) => assert!(
                matches!(e, CoreError::BudgetExhausted { .. }),
                "{mode:?} gave unexpected error {e:?}"
            ),
        }
    }
}
