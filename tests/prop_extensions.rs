//! Randomized-but-deterministic tests for the extension modules:
//! functional dependencies, incremental maintenance, the Yannakakis
//! engine, the source-side-effect solver, and local search. Originally
//! proptest properties; now driven by the in-tree seeded PRNG so the
//! workspace builds offline. Every case reproduces from its seed.

use delprop::core::solvers::{exact, general, local_search, source};
use delprop::core::{Problem, Solution};
use delprop::query::eval::{hashjoin, naive, sort_matches, yannakakis, CompiledQuery};
use delprop::query::{parse_query, DeletionDelta, MaintainedViews, ViewSet};
use delprop::relation::{
    tup, Database, FunctionalDependency, RelationFds, RelationSchema, Schema, TupleId,
};
use delprop::setcover::exact::ExactConfig;
use delprop::workload::rng::SplitMix64;

// ---------------------------------------------------------------------
// Functional dependencies.
// ---------------------------------------------------------------------

fn random_fds(rng: &mut SplitMix64) -> (usize, RelationFds) {
    let arity = 3 + rng.below(3); // 3..6
    let mut rf = RelationFds::new(arity);
    for _ in 0..rng.below(5) {
        let lhs: Vec<usize> = (0..1 + rng.below(2)).map(|_| rng.below(arity)).collect();
        let rhs: Vec<usize> = (0..1 + rng.below(2)).map(|_| rng.below(arity)).collect();
        rf.add(FunctionalDependency::new(lhs, rhs)).unwrap();
    }
    (arity, rf)
}

/// Closure is extensive, monotone, and idempotent.
#[test]
fn fd_closure_is_a_closure_operator() {
    let mut rng = SplitMix64::seed_from_u64(0xfd1);
    for case in 0..64 {
        let (arity, fds) = random_fds(&mut rng);
        let mut seed: std::collections::BTreeSet<usize> = Default::default();
        for _ in 0..rng.below(4) {
            seed.insert(rng.below(6));
        }
        let attrs: Vec<usize> = seed.into_iter().filter(|&a| a < arity).collect();
        let closed = fds.closure(&attrs);
        // extensive
        for &a in &attrs {
            assert!(closed.contains(&a), "case {case}");
        }
        // idempotent
        let closed_vec: Vec<usize> = closed.iter().copied().collect();
        assert_eq!(&fds.closure(&closed_vec), &closed, "case {case}");
        // monotone: closure of a subset is a subset of the closure
        if !attrs.is_empty() {
            let sub = &attrs[..attrs.len() - 1];
            let sub_closed = fds.closure(sub);
            assert!(sub_closed.is_subset(&closed), "case {case}");
        }
    }
}

/// Candidate keys are superkeys, minimal, and mutually incomparable.
#[test]
fn candidate_keys_are_minimal_superkeys() {
    let mut rng = SplitMix64::seed_from_u64(0xfd2);
    for case in 0..64 {
        let (arity, fds) = random_fds(&mut rng);
        let all: Vec<usize> = (0..arity).collect();
        let keys = fds.candidate_keys(std::slice::from_ref(&all));
        assert!(!keys.is_empty(), "case {case}: the full set seeds one key");
        for k in &keys {
            assert!(fds.is_superkey(k), "case {case}");
            for i in 0..k.len() {
                let mut smaller = k.clone();
                smaller.remove(i);
                assert!(!fds.is_superkey(&smaller), "case {case}: {k:?} not minimal");
            }
        }
        for a in &keys {
            for b in &keys {
                if a != b {
                    assert!(
                        !a.iter().all(|p| b.contains(p)),
                        "case {case}: {a:?} ⊆ {b:?}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Incremental maintenance & Yannakakis, on random databases.
// ---------------------------------------------------------------------

fn random_two_rel_db(rng: &mut SplitMix64) -> Database {
    let schema = Schema::from_relations([
        RelationSchema::new("A", 2, vec![0, 1]).unwrap(),
        RelationSchema::new("B", 2, vec![0, 1]).unwrap(),
    ])
    .unwrap();
    let mut db = Database::new(schema);
    for name in ["A", "B"] {
        let rid = db.schema().relation_id(name).unwrap();
        for _ in 0..1 + rng.below(9) {
            let x = rng.below(5) as i64;
            let y = rng.below(5) as i64;
            use delprop::relation::Value;
            if db
                .find_by_key(rid, &[Value::int(x), Value::int(y)])
                .is_none()
            {
                db.insert(name, tup![x, y]).unwrap();
            }
        }
    }
    db
}

/// The incremental delta equals full re-materialization for any
/// deletion batch.
#[test]
fn maintenance_matches_rematerialization() {
    let mut rng = SplitMix64::seed_from_u64(0x11a11);
    for case in 0..48 {
        let db = random_two_rel_db(&mut rng);
        let kill_mask = rng.below(64) as u32;
        let q = parse_query("Q(x, y, z) :- A(x, y), B(y, z)")
            .unwrap()
            .bind(db.schema())
            .unwrap();
        let vs = ViewSet::materialize(&db, std::slice::from_ref(&q)).unwrap();
        let victims: Vec<TupleId> = db
            .live_ids()
            .enumerate()
            .filter(|(i, _)| kill_mask & (1 << (i % 6)) != 0 && i % 3 == 0)
            .map(|(_, t)| t)
            .collect();
        let delta = DeletionDelta::compute(&vs, &victims);

        let mut db2 = db.clone();
        db2.delete_all(&victims);
        let reeval = ViewSet::materialize(&db2, std::slice::from_ref(&q)).unwrap();
        let mut expected = Vec::new();
        for (ti, vt) in vs.views[0].tuples.iter().enumerate() {
            if reeval.views[0].position_of(&vt.head).is_none() {
                expected.push(delprop::query::ViewTupleId::new(0, ti));
            }
        }
        assert_eq!(delta.eliminated, expected, "case {case}");
    }
}

/// Incremental batches agree with one-shot deltas.
#[test]
fn maintained_views_batch_split_agrees() {
    let mut rng = SplitMix64::seed_from_u64(0x11a12);
    for case in 0..48 {
        let db = random_two_rel_db(&mut rng);
        let split = 1 + rng.below(3);
        let q = parse_query("Q(x, y, z) :- A(x, y), B(y, z)")
            .unwrap()
            .bind(db.schema())
            .unwrap();
        let vs = ViewSet::materialize(&db, std::slice::from_ref(&q)).unwrap();
        let victims: Vec<TupleId> = db.live_ids().step_by(2).collect();
        let once = DeletionDelta::compute(&vs, &victims);
        let mut m = MaintainedViews::new(&vs);
        let mut dead = Vec::new();
        for chunk in victims.chunks(split) {
            dead.extend(m.delete(chunk));
        }
        dead.sort_unstable();
        assert_eq!(dead, once.eliminated, "case {case}");
    }
}

/// All three engines agree on random data, acyclic shapes.
#[test]
fn three_engines_agree() {
    let mut rng = SplitMix64::seed_from_u64(0x11a13);
    for case in 0..48 {
        let db = random_two_rel_db(&mut rng);
        let src = match rng.below(3) {
            0 => "Q(x, y, z) :- A(x, y), B(y, z)",
            1 => "Q(x, y, z) :- A(x, y), B(x, z)",
            _ => "Q(x, y) :- A(x, y), B(x, 1)",
        };
        let q = parse_query(src).unwrap().bind(db.schema()).unwrap();
        let c = CompiledQuery::compile(&q);
        let mut a = naive::evaluate(&db, &c);
        let mut b = hashjoin::evaluate(&db, &c);
        let mut y = yannakakis::evaluate(&db, &c).expect("acyclic shapes");
        sort_matches(&mut a);
        sort_matches(&mut b);
        sort_matches(&mut y);
        assert_eq!(&a, &b, "case {case}: {src}");
        assert_eq!(&a, &y, "case {case}: {src}");
    }
}

// ---------------------------------------------------------------------
// Source solver & local search on random chain problems.
// ---------------------------------------------------------------------

fn chain_problem(n: usize, atoms: usize, blue: &[usize]) -> Problem {
    use delprop::relation::{Tuple, Value};
    let schema = Schema::from_relations(
        (1..=atoms).map(|j| RelationSchema::new(format!("R{j}"), 2, vec![0, 1]).unwrap()),
    )
    .unwrap();
    let mut db = Database::new(schema);
    for i in 0..n {
        for j in 1..=atoms {
            let a = (i >> (j - 1)) as i64;
            let b = (i >> j) as i64;
            let name = format!("R{j}");
            let rid = db.schema().relation_id(&name).unwrap();
            if db
                .find_by_key(rid, &[Value::int(a), Value::int(b)])
                .is_none()
            {
                db.insert(&name, tup![a, b]).unwrap();
            }
        }
    }
    let head: Vec<String> = (0..=atoms).map(|j| format!("x{j}")).collect();
    let body: Vec<String> = (1..=atoms)
        .map(|j| format!("R{j}(x{}, x{j})", j - 1))
        .collect();
    let src = format!("Q({}) :- {}", head.join(", "), body.join(", "));
    let q = parse_query(&src).unwrap().bind(db.schema()).unwrap();
    let mut p = Problem::new(db, vec![q]).unwrap();
    for &i in blue {
        let h: Tuple = (0..=atoms).map(|j| (i >> j) as i64).collect();
        p.mark_deleted(0, &h).unwrap();
    }
    p
}

fn random_chain(rng: &mut SplitMix64) -> Problem {
    let n = 3 + rng.below(6); // 3..9
    let atoms = 2 + rng.below(2); // 2..4
    let mut blues: std::collections::BTreeSet<usize> = Default::default();
    let want = 1 + rng.below(n.min(4) - 1).min(n - 1);
    while blues.len() < want {
        blues.insert(rng.below(n));
    }
    chain_problem(n, atoms, &blues.into_iter().collect::<Vec<_>>())
}

/// The exact source solver is feasible, minimal in cardinality among
/// a brute-force sweep over candidate subsets, and never larger than
/// greedy's answer.
#[test]
fn source_solver_is_exact() {
    let mut rng = SplitMix64::seed_from_u64(0x501);
    for case in 0..32 {
        let p = random_chain(&mut rng);
        let s = source::solve(p.compiled());
        assert!(s.is_feasible(&p), "case {case}");
        let g = source::solve_greedy(p.compiled());
        assert!(g.is_feasible(&p), "case {case}");
        assert!(s.len() <= g.len(), "case {case}");
        // Brute force over candidate subsets (candidates are few here).
        let candidates = p.candidates();
        if candidates.len() <= 12 {
            let mut best = usize::MAX;
            for mask in 0u32..(1 << candidates.len()) {
                let sol = Solution::from_tuples(
                    candidates
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, &t)| t),
                );
                if sol.is_feasible(&p) {
                    best = best.min(sol.len());
                }
            }
            assert_eq!(s.len(), best, "case {case}");
        }
    }
}

/// Local search never worsens anything and preserves feasibility,
/// from both good and terrible starting points.
#[test]
fn local_search_is_safe() {
    let mut rng = SplitMix64::seed_from_u64(0x502);
    for case in 0..32 {
        let p = random_chain(&mut rng);
        let starts = vec![
            general::solve(p.compiled()).unwrap(),
            Solution::from_tuples(p.candidates()),
        ];
        let opt = exact::solve(p.compiled(), ExactConfig::default()).cost;
        for start in starts {
            let polished = local_search::improve(p.compiled(), &start, Default::default());
            assert!(polished.is_feasible(&p), "case {case}");
            assert!(
                polished.side_effect(&p) <= start.side_effect(&p) + 1e-9,
                "case {case}"
            );
            assert!(polished.side_effect(&p) >= opt - 1e-9, "case {case}");
        }
    }
}

// ---------------------------------------------------------------------
// Parser round-trip.
// ---------------------------------------------------------------------

fn random_query(rng: &mut SplitMix64) -> delprop::query::ConjunctiveQuery {
    use delprop::query::{Atom, ConjunctiveQuery, Term};
    let random_term = |rng: &mut SplitMix64| match rng.below(3) {
        0 => Term::var(format!("x{}", rng.below(4))),
        1 => Term::constant(rng.range_inclusive(-3, 9)),
        _ => {
            let len = 1 + rng.below(6);
            let s: String = (0..len)
                .map(|_| (b'a' + rng.below(26) as u8) as char)
                .collect();
            Term::Const(delprop::relation::Value::str(s))
        }
    };
    let body_len = 1 + rng.below(3);
    let mut body: Vec<Atom> = (0..body_len)
        .map(|_| {
            let rel = format!("T{}", rng.below(3));
            let terms: Vec<Term> = (0..1 + rng.below(3)).map(|_| random_term(rng)).collect();
            Atom::new(rel, terms)
        })
        .collect();
    // Head: the body's variables in first-occurrence order; if the body is
    // variable-free, append one fresh variable atom.
    let mut head: Vec<Term> = Vec::new();
    for a in &body {
        for v in a.variables() {
            if !head.iter().any(|t| t.as_var() == Some(v)) {
                head.push(Term::var(v));
            }
        }
    }
    if head.is_empty() {
        head.push(Term::var("x0"));
        body.push(Atom::new("T0", vec![Term::var("x0")]));
    }
    ConjunctiveQuery::new("Q", head, body)
}

/// Display → parse is the identity on well-formed queries.
#[test]
fn parser_roundtrips_display() {
    let mut rng = SplitMix64::seed_from_u64(0x9a25e1);
    for case in 0..128 {
        let q = random_query(&mut rng);
        let printed = q.to_string();
        let reparsed = delprop::query::parse_query(&printed)
            .unwrap_or_else(|e| panic!("case {case}: cannot reparse {printed:?}: {e}"));
        assert_eq!(q, reparsed, "case {case}");
    }
}

/// Containment is reflexive on randomly generated queries that bind
/// against a consistent-arity schema.
#[test]
fn containment_reflexive() {
    use delprop::relation::{RelationSchema, Schema};
    use std::collections::HashMap;
    let mut rng = SplitMix64::seed_from_u64(0x9a25e2);
    let mut checked = 0;
    for _ in 0..128 {
        let q = random_query(&mut rng);
        // Skip queries whose atoms use one relation at two different
        // arities (our Schema fixes one arity per relation).
        let mut arities: HashMap<&str, usize> = HashMap::new();
        let mut consistent = true;
        for a in &q.body {
            match arities.entry(a.relation.as_str()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != a.terms.len() {
                        consistent = false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(a.terms.len());
                }
            }
        }
        if !consistent {
            continue;
        }
        let schema = Schema::from_relations(
            arities
                .iter()
                .map(|(name, &ar)| RelationSchema::new(*name, ar, vec![0]).unwrap()),
        )
        .unwrap();
        let bound = q.bind(&schema).unwrap();
        assert!(delprop::query::containment::equivalent(&bound, &bound));
        checked += 1;
    }
    assert!(checked >= 32, "too many cases discarded: {checked}");
}
