//! Property-based tests for the extension modules: functional
//! dependencies, incremental maintenance, the Yannakakis engine, the
//! source-side-effect solver, and local search.

use delprop::core::solvers::{exact, general, local_search, source};
use delprop::core::{Problem, Solution};
use delprop::query::eval::{hashjoin, naive, sort_matches, yannakakis, CompiledQuery};
use delprop::query::{parse_query, DeletionDelta, MaintainedViews, ViewSet};
use delprop::relation::{
    tup, Database, FunctionalDependency, RelationFds, RelationSchema, Schema, TupleId,
};
use delprop::setcover::exact::ExactConfig;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Functional dependencies.
// ---------------------------------------------------------------------

fn fds_strategy() -> impl Strategy<Value = (usize, RelationFds)> {
    (3usize..6).prop_flat_map(|arity| {
        let fd = (
            proptest::collection::vec(0..arity, 1..3),
            proptest::collection::vec(0..arity, 1..3),
        );
        proptest::collection::vec(fd, 0..5).prop_map(move |fds| {
            let mut rf = RelationFds::new(arity);
            for (l, r) in fds {
                rf.add(FunctionalDependency::new(l, r)).unwrap();
            }
            (arity, rf)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Closure is extensive, monotone, and idempotent.
    #[test]
    fn fd_closure_is_a_closure_operator(
        (arity, fds) in fds_strategy(),
        seed in proptest::collection::btree_set(0usize..6, 0..4),
    ) {
        let attrs: Vec<usize> = seed.into_iter().filter(|&a| a < arity).collect();
        let closed = fds.closure(&attrs);
        // extensive
        for &a in &attrs {
            prop_assert!(closed.contains(&a));
        }
        // idempotent
        let closed_vec: Vec<usize> = closed.iter().copied().collect();
        prop_assert_eq!(&fds.closure(&closed_vec), &closed);
        // monotone: closure of a subset is a subset of the closure
        if !attrs.is_empty() {
            let sub = &attrs[..attrs.len() - 1];
            let sub_closed = fds.closure(sub);
            prop_assert!(sub_closed.is_subset(&closed));
        }
    }

    /// Candidate keys are superkeys, minimal, and mutually incomparable.
    #[test]
    fn candidate_keys_are_minimal_superkeys((arity, fds) in fds_strategy()) {
        let all: Vec<usize> = (0..arity).collect();
        let keys = fds.candidate_keys(std::slice::from_ref(&all));
        prop_assert!(!keys.is_empty(), "the full attribute set seeds one key");
        for k in &keys {
            prop_assert!(fds.is_superkey(k));
            for i in 0..k.len() {
                let mut smaller = k.clone();
                smaller.remove(i);
                prop_assert!(!fds.is_superkey(&smaller), "key {k:?} not minimal");
            }
        }
        for a in &keys {
            for b in &keys {
                if a != b {
                    prop_assert!(!a.iter().all(|p| b.contains(p)), "{a:?} ⊆ {b:?}");
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Incremental maintenance & Yannakakis, on random databases.
// ---------------------------------------------------------------------

fn db_strategy() -> impl Strategy<Value = Database> {
    let pair = || (0i64..5, 0i64..5);
    (
        proptest::collection::btree_set(pair(), 1..10),
        proptest::collection::btree_set(pair(), 1..10),
    )
        .prop_map(|(a, b)| {
            let schema = Schema::from_relations([
                RelationSchema::new("A", 2, vec![0, 1]).unwrap(),
                RelationSchema::new("B", 2, vec![0, 1]).unwrap(),
            ])
            .unwrap();
            let mut db = Database::new(schema);
            for (x, y) in a {
                db.insert("A", tup![x, y]).unwrap();
            }
            for (x, y) in b {
                db.insert("B", tup![x, y]).unwrap();
            }
            db
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The incremental delta equals full re-materialization for any
    /// deletion batch.
    #[test]
    fn maintenance_matches_rematerialization(
        db in db_strategy(),
        kill_mask in 0u32..64,
    ) {
        let q = parse_query("Q(x, y, z) :- A(x, y), B(y, z)")
            .unwrap()
            .bind(db.schema())
            .unwrap();
        let vs = ViewSet::materialize(&db, std::slice::from_ref(&q)).unwrap();
        let victims: Vec<TupleId> = db
            .live_ids()
            .enumerate()
            .filter(|(i, _)| kill_mask & (1 << (i % 6)) != 0 && i % 3 == 0)
            .map(|(_, t)| t)
            .collect();
        let delta = DeletionDelta::compute(&vs, &victims);

        let mut db2 = db.clone();
        db2.delete_all(&victims);
        let reeval = ViewSet::materialize(&db2, std::slice::from_ref(&q)).unwrap();
        let mut expected = Vec::new();
        for (ti, vt) in vs.views[0].tuples.iter().enumerate() {
            if reeval.views[0].position_of(&vt.head).is_none() {
                expected.push(delprop::query::ViewTupleId::new(0, ti));
            }
        }
        prop_assert_eq!(delta.eliminated, expected);
    }

    /// Incremental batches agree with one-shot deltas.
    #[test]
    fn maintained_views_batch_split_agrees(db in db_strategy(), split in 1usize..4) {
        let q = parse_query("Q(x, y, z) :- A(x, y), B(y, z)")
            .unwrap()
            .bind(db.schema())
            .unwrap();
        let vs = ViewSet::materialize(&db, std::slice::from_ref(&q)).unwrap();
        let victims: Vec<TupleId> = db.live_ids().step_by(2).collect();
        let once = DeletionDelta::compute(&vs, &victims);
        let mut m = MaintainedViews::new(&vs);
        let mut dead = Vec::new();
        for chunk in victims.chunks(split) {
            dead.extend(m.delete(chunk));
        }
        dead.sort_unstable();
        prop_assert_eq!(dead, once.eliminated);
    }

    /// All three engines agree on random data, acyclic shapes.
    #[test]
    fn three_engines_agree(db in db_strategy(), shape in 0usize..3) {
        let src = match shape {
            0 => "Q(x, y, z) :- A(x, y), B(y, z)",
            1 => "Q(x, y, z) :- A(x, y), B(x, z)",
            _ => "Q(x, y) :- A(x, y), B(x, 1)",
        };
        let q = parse_query(src).unwrap().bind(db.schema()).unwrap();
        let c = CompiledQuery::compile(&q);
        let mut a = naive::evaluate(&db, &c);
        let mut b = hashjoin::evaluate(&db, &c);
        let mut y = yannakakis::evaluate(&db, &c).expect("acyclic shapes");
        sort_matches(&mut a);
        sort_matches(&mut b);
        sort_matches(&mut y);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &y);
    }
}

// ---------------------------------------------------------------------
// Source solver & local search on random chain problems.
// ---------------------------------------------------------------------

fn chain_problem(n: usize, atoms: usize, blue: &[usize]) -> Problem {
    use delprop::relation::{Tuple, Value};
    let schema = Schema::from_relations(
        (1..=atoms).map(|j| RelationSchema::new(format!("R{j}"), 2, vec![0, 1]).unwrap()),
    )
    .unwrap();
    let mut db = Database::new(schema);
    for i in 0..n {
        for j in 1..=atoms {
            let a = (i >> (j - 1)) as i64;
            let b = (i >> j) as i64;
            let name = format!("R{j}");
            let rid = db.schema().relation_id(&name).unwrap();
            if db.find_by_key(rid, &[Value::int(a), Value::int(b)]).is_none() {
                db.insert(&name, tup![a, b]).unwrap();
            }
        }
    }
    let head: Vec<String> = (0..=atoms).map(|j| format!("x{j}")).collect();
    let body: Vec<String> = (1..=atoms)
        .map(|j| format!("R{j}(x{}, x{j})", j - 1))
        .collect();
    let src = format!("Q({}) :- {}", head.join(", "), body.join(", "));
    let q = parse_query(&src).unwrap().bind(db.schema()).unwrap();
    let mut p = Problem::new(db, vec![q]).unwrap();
    for &i in blue {
        let h: Tuple = (0..=atoms).map(|j| (i >> j) as i64).collect();
        p.mark_deleted(0, &h).unwrap();
    }
    p
}

fn chain_strategy() -> impl Strategy<Value = Problem> {
    (3usize..9, 2usize..4).prop_flat_map(|(n, atoms)| {
        proptest::collection::btree_set(0..n, 1..n.min(4))
            .prop_map(move |blues| chain_problem(n, atoms, &blues.into_iter().collect::<Vec<_>>()))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The exact source solver is feasible, minimal in cardinality among
    /// a brute-force sweep over candidate subsets, and never larger than
    /// greedy's answer.
    #[test]
    fn source_solver_is_exact(p in chain_strategy()) {
        let s = source::solve(&p);
        prop_assert!(s.is_feasible(&p));
        let g = source::solve_greedy(&p);
        prop_assert!(g.is_feasible(&p));
        prop_assert!(s.len() <= g.len());
        // Brute force over candidate subsets (candidates are few here).
        let candidates = p.candidates();
        if candidates.len() <= 12 {
            let mut best = usize::MAX;
            for mask in 0u32..(1 << candidates.len()) {
                let sol = Solution::from_tuples(
                    candidates
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, &t)| t),
                );
                if sol.is_feasible(&p) {
                    best = best.min(sol.len());
                }
            }
            prop_assert_eq!(s.len(), best);
        }
    }

    /// Local search never worsens anything and preserves feasibility,
    /// from both good and terrible starting points.
    #[test]
    fn local_search_is_safe(p in chain_strategy()) {
        let starts = vec![
            general::solve(&p).unwrap(),
            Solution::from_tuples(p.candidates()),
        ];
        let opt = exact::solve(&p, ExactConfig::default()).cost;
        for start in starts {
            let polished = local_search::improve(&p, &start, Default::default());
            prop_assert!(polished.is_feasible(&p));
            prop_assert!(polished.side_effect(&p) <= start.side_effect(&p) + 1e-9);
            prop_assert!(polished.side_effect(&p) >= opt - 1e-9);
        }
    }
}

// ---------------------------------------------------------------------
// Parser round-trip.
// ---------------------------------------------------------------------

fn query_strategy() -> impl Strategy<Value = delprop::query::ConjunctiveQuery> {
    use delprop::query::{Atom, ConjunctiveQuery, Term};
    let term = prop_oneof![
        (0usize..4).prop_map(|i| Term::var(format!("x{i}"))),
        (-3i64..10).prop_map(Term::constant),
        "[a-z]{1,6}".prop_map(|s| Term::Const(delprop::relation::Value::str(s))),
    ];
    let atom = (0usize..3, proptest::collection::vec(term, 1..4))
        .prop_map(|(r, terms)| Atom::new(format!("T{r}"), terms));
    proptest::collection::vec(atom, 1..4).prop_map(|body| {
        // Head: the body's variables in first-occurrence order (safe by
        // construction; may be empty, in which case add any body var or a
        // fresh atom won't help — fall back to the first variable-free
        // body by reusing term x0 in an extra atom).
        let mut head: Vec<Term> = Vec::new();
        for a in &body {
            for v in a.variables() {
                if !head.iter().any(|t| t.as_var() == Some(v)) {
                    head.push(Term::var(v));
                }
            }
        }
        let mut body = body;
        if head.is_empty() {
            head.push(Term::var("x0"));
            body.push(Atom::new("T0", vec![Term::var("x0")]));
        }
        ConjunctiveQuery::new("Q", head, body)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Display → parse is the identity on well-formed queries.
    #[test]
    fn parser_roundtrips_display(q in query_strategy()) {
        let printed = q.to_string();
        let reparsed = delprop::query::parse_query(&printed)
            .unwrap_or_else(|e| panic!("cannot reparse {printed:?}: {e}"));
        prop_assert_eq!(q, reparsed);
    }

    /// Containment is reflexive and respects the subset-of-atoms direction
    /// on randomly generated queries sharing a head.
    #[test]
    fn containment_reflexive(q in query_strategy()) {
        // Bind against a permissive schema covering T0..T2 at the used
        // arities; skip queries whose atoms use one relation at two
        // different arities (our Schema fixes one arity per relation).
        use delprop::relation::{RelationSchema, Schema};
        use std::collections::HashMap;
        let mut arities: HashMap<&str, usize> = HashMap::new();
        let mut consistent = true;
        for a in &q.body {
            match arities.entry(a.relation.as_str()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != a.terms.len() {
                        consistent = false;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(a.terms.len());
                }
            }
        }
        prop_assume!(consistent);
        let schema = Schema::from_relations(
            arities
                .iter()
                .map(|(name, &ar)| RelationSchema::new(*name, ar, vec![0]).unwrap()),
        )
        .unwrap();
        let bound = q.bind(&schema).unwrap();
        prop_assert!(delprop::query::containment::equivalent(&bound, &bound));
    }
}
