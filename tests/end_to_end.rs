//! End-to-end integration tests spanning every crate: build a database,
//! parse and bind queries, materialize views, solve with each algorithm,
//! and verify predictions against full re-evaluation.

use delprop::core::solvers::{dp_tree, exact, general, lowdeg_tree, lp_round, primal_dual};
use delprop::prelude::*;
use delprop::setcover::exact::ExactConfig;
use delprop::workload::{cleaning, figures, forest, random_db};

fn fig1_problem() -> Problem {
    figures::fig1_problem()
}

#[test]
fn every_solver_agrees_on_fig1() {
    let p = fig1_problem();
    let opt = exact::solve(p.compiled(), ExactConfig::default());
    assert_eq!(opt.cost, 1.0);

    let solutions = vec![
        ("auto", solve_auto(&p).unwrap()),
        ("general", general::solve(p.compiled()).unwrap()),
        ("greedy", general::solve_greedy(p.compiled()).unwrap()),
        (
            "primal_dual",
            primal_dual::solve_default(p.compiled()).unwrap(),
        ),
        ("lowdeg_tree", lowdeg_tree::solve(p.compiled()).unwrap()),
        ("lp_round", lp_round::solve(p.compiled()).unwrap()),
    ];
    for (name, s) in solutions {
        assert!(s.is_feasible(&p), "{name} infeasible");
        let predicted = s.side_effect(&p);
        let reevaluated = s.verify_by_reevaluation(&p);
        assert_eq!(predicted, reevaluated, "{name} prediction mismatch");
        assert!(predicted >= opt.cost - 1e-9, "{name} beat the optimum?!");
        // Fig. 1 is tiny: everything should actually hit the optimum.
        assert_eq!(predicted, opt.cost, "{name} missed the tiny optimum");
    }
}

#[test]
fn multi_view_narrowing_is_observable_end_to_end() {
    // §V data annotation: add the catalog view; the optimum is still 1
    // but the journal-side solution becomes strictly worse.
    let db = figures::fig1_db();
    let q4 = figures::fig1_q4(&db);
    let q5 = parse_query("Q5(y, z) :- T2(y, z, w)")
        .unwrap()
        .bind(db.schema())
        .unwrap();
    let mut p = Problem::new(db.clone(), vec![q4, q5]).unwrap();
    p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();

    let t2 = db.schema().relation_id("T2").unwrap();
    let journal_side = db
        .find_by_key(t2, &[Value::str("TKDE"), Value::str("XML")])
        .unwrap();
    let t1 = db.schema().relation_id("T1").unwrap();
    let author_side = db
        .find_by_key(t1, &[Value::str("John"), Value::str("TKDE")])
        .unwrap();

    let journal_sol = Solution::from_tuples([journal_side]);
    let author_sol = Solution::from_tuples([author_side]);
    assert!(journal_sol.is_feasible(&p) && author_sol.is_feasible(&p));
    assert_eq!(author_sol.side_effect(&p), 1.0);
    assert_eq!(
        journal_sol.side_effect(&p),
        3.0,
        "with the catalog view, the journal-side repair also kills Q5(TKDE, XML)"
    );
    let opt = exact::solve(p.compiled(), ExactConfig::default());
    assert_eq!(opt.cost, 1.0);
    assert_eq!(opt.solution.unwrap().deleted, author_sol.deleted);
}

#[test]
fn pivot_broom_full_stack() {
    let p = forest::pivot_broom(5, 3, &[0, 2, 4]);
    assert!(dp_tree::applies(p.compiled()));
    let dp = dp_tree::solve(p.compiled()).unwrap();
    let opt = exact::solve(p.compiled(), ExactConfig::default());
    assert_eq!(dp.side_effect(&p), opt.cost);
    assert_eq!(dp.verify_by_reevaluation(&p), opt.cost);
    // Balanced too.
    let dpb = dp_tree::solve_balanced(p.compiled()).unwrap();
    let optb = exact::solve_balanced(p.compiled(), ExactConfig::default());
    assert!((dpb.balanced_cost(&p) - optb.cost).abs() < 1e-9);
}

#[test]
fn classifier_routes_each_workload_family() {
    let fig1 = fig1_problem();
    assert_eq!(
        classify(&fig1).recommendation,
        SolverKind::SingleQuerySingleDeletion
    );

    let broom = forest::pivot_broom(4, 2, &[1]);
    assert_eq!(classify(&broom).recommendation, SolverKind::PivotForestDp);

    let windows = forest::generate(
        forest::ForestParams {
            levels: 4,
            window: 2,
            chains: 8,
            delete_fraction: 0.3,
            weighted: false,
        },
        11,
    );
    let r = classify(&windows);
    assert!(r.forest_case);

    let random = random_db::generate(random_db::RandomDbParams::default(), 5);
    let r = classify(&random);
    // Random chains over a shared pool are rarely forests, but whatever
    // the class, auto-solving must be feasible.
    let sol = solve_auto(&random).unwrap();
    assert!(sol.is_feasible(&random));
    let _ = r;
}

#[test]
fn cleaning_scenarios_solve_and_verify() {
    for seed in 0..5 {
        let s = cleaning::generate(cleaning::CleaningParams::default(), seed);
        let sol = solve_auto(&s.problem).unwrap();
        assert!(sol.is_feasible(&s.problem));
        let predicted = sol.side_effect(&s.problem);
        assert_eq!(predicted, sol.verify_by_reevaluation(&s.problem));
    }
}

#[test]
fn weighted_problems_round_trip_through_all_solvers() {
    let mut p = fig1_problem();
    let ids: Vec<ViewTupleId> = p.preserved().map(|(id, _)| id).collect();
    for (i, id) in ids.into_iter().enumerate() {
        p.set_weight(id, 1.0 + i as f64).unwrap();
    }
    let opt = exact::solve(p.compiled(), ExactConfig::default());
    for sol in [
        general::solve(p.compiled()).unwrap(),
        primal_dual::solve_default(p.compiled()).unwrap(),
        lowdeg_tree::solve(p.compiled()).unwrap(),
        lp_round::solve(p.compiled()).unwrap(),
    ] {
        assert!(sol.is_feasible(&p));
        assert!(sol.side_effect(&p) >= opt.cost - 1e-9);
    }
}

#[test]
fn deletion_then_restore_leaves_database_intact() {
    let p = fig1_problem();
    let mut db = p.db().clone();
    let before = db.len();
    let sol = solve_auto(&p).unwrap();
    let ids: Vec<TupleId> = sol.deleted.iter().copied().collect();
    let undone = db.delete_all(&ids);
    assert_eq!(db.len(), before - undone.len());
    db.restore_all(&undone);
    assert_eq!(db.len(), before);
    // Views re-materialize identically after restore.
    let again = delprop::query::ViewSet::materialize(&db, p.queries()).unwrap();
    assert_eq!(again.total_tuples(), p.norm_v());
}
