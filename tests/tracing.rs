//! Tracing-layer integration tests: attaching a sink must never change
//! solver behavior, and the racing span trees must tell a truthful
//! story — in particular, every cancelled member's event stream ends
//! with a `Cancel` event naming the member whose verification killed it.

use delprop::core::runtime::solver::GreedySolver;
use delprop::core::runtime::trace::{Kind, Phase};
use delprop::core::solvers::local_search::Objective;
use delprop::core::{NoopSink, RingBufferSink, TraceSink};
use delprop::prelude::*;
use delprop::workload::forest;
use std::sync::Arc;

fn forest_problem(chains: usize) -> Problem {
    forest::generate(
        forest::ForestParams {
            levels: 4,
            window: 2,
            chains,
            delete_fraction: 0.2,
            weighted: false,
        },
        7,
    )
}

// -------------------------------------------------------------------
// Determinism: the sink is an observer, not a participant.
// -------------------------------------------------------------------

#[test]
fn noop_sink_runs_are_identical_to_each_other_and_to_untraced() {
    let p = forest_problem(64);
    let solve = |budget: &Budget| {
        Portfolio::standard()
            .solve_best(&p, budget)
            .expect("forest instances are feasible")
    };
    let bare = solve(&Budget::unlimited());
    let a = solve(&Budget::unlimited().with_sink(Arc::new(NoopSink)));
    let b = solve(&Budget::unlimited().with_sink(Arc::new(NoopSink)));
    assert_eq!(a.cost, b.cost, "two no-op-sink runs disagree on cost");
    assert_eq!(
        a.solution.deleted, b.solution.deleted,
        "two no-op-sink runs disagree on the deletion set"
    );
    assert_eq!(bare.cost, a.cost, "attaching a no-op sink changed the cost");
    assert_eq!(
        bare.solution.deleted, a.solution.deleted,
        "attaching a no-op sink changed the deletion set"
    );
}

#[test]
fn ring_sink_observes_without_changing_results() {
    let p = forest_problem(64);
    let bare = Portfolio::standard()
        .solve_best(&p, &Budget::unlimited())
        .unwrap();
    let ring = Arc::new(RingBufferSink::with_capacity(1 << 14));
    let traced = Portfolio::standard()
        .solve_best(
            &p,
            &Budget::unlimited().with_sink(Arc::clone(&ring) as Arc<dyn TraceSink>),
        )
        .unwrap();
    assert_eq!(bare.cost, traced.cost);
    assert_eq!(bare.solution.deleted, traced.solution.deleted);

    // The trace must cover the pipeline: one compile span plus a span
    // pair per member that ran, all consistently bracketed.
    let events = ring.snapshot();
    assert!(
        events
            .iter()
            .any(|e| e.phase == Phase::Compile && e.kind == Kind::SpanStart),
        "missing compile span"
    );
    for member in traced
        .report
        .iter()
        .filter(|m| !matches!(m.status, MemberStatus::Skipped | MemberStatus::NotReached))
    {
        let starts = events
            .iter()
            .filter(|e| {
                e.member == member.name && e.phase == Phase::Member && e.kind == Kind::SpanStart
            })
            .count();
        let ends = events
            .iter()
            .filter(|e| {
                e.member == member.name && e.phase == Phase::Member && e.kind == Kind::SpanEnd
            })
            .count();
        assert_eq!(starts, 1, "{}: expected one member span start", member.name);
        assert_eq!(ends, 1, "{}: expected one member span end", member.name);
    }
}

// -------------------------------------------------------------------
// Racing: cancelled members must end their event stream with a Cancel
// event naming the member whose verification cancelled them.
// -------------------------------------------------------------------

#[test]
fn cancelled_racing_members_trace_who_cancelled_them() {
    let p = forest_problem(32);
    // A stalling member makes cancellation deterministic: it can only
    // ever stop because the healthy greedy member verified and pulled
    // the cooperative token.
    let chain = Portfolio::new(Objective::Standard)
        .with(FaultySolver::new(GreedySolver, FaultMode::Stall))
        .with(GreedySolver);
    for rep in 0..3 {
        let ring = Arc::new(RingBufferSink::with_capacity(1 << 14));
        let budget = Budget::unlimited().with_sink(Arc::clone(&ring) as Arc<dyn TraceSink>);
        let out = chain
            .solve_racing(&p, &budget)
            .expect("the healthy member must win");
        assert_eq!(out.winner, "greedy", "rep {rep}");
        let events = ring.snapshot();

        let cancelled: Vec<&str> = out
            .report
            .iter()
            .filter(|m| m.status == MemberStatus::Cancelled)
            .map(|m| m.name)
            .collect();
        assert!(
            cancelled.contains(&"faulty_stall"),
            "rep {rep}: the stalling member must be cancelled, report: {:?}",
            out.report
                .iter()
                .map(|m| (m.name, format!("{:?}", m.status)))
                .collect::<Vec<_>>()
        );
        for name in cancelled {
            let last = events
                .iter()
                .rfind(|e| e.member == name)
                .unwrap_or_else(|| panic!("rep {rep}: no events for cancelled member {name}"));
            assert_eq!(
                last.phase,
                Phase::Cancel,
                "rep {rep}: {name}'s stream must end with a Cancel event, got {last:?}"
            );
            assert_eq!(last.kind, Kind::Event, "rep {rep}");
            assert_eq!(
                last.detail, out.winner,
                "rep {rep}: the Cancel event must name the winning member"
            );
        }

        // The winner's own stream records the verification that started
        // the cancellations.
        assert!(
            events.iter().any(|e| e.member == out.winner
                && e.phase == Phase::Race
                && e.detail == "verified_first"),
            "rep {rep}: the winner must record verified_first"
        );
    }
}
