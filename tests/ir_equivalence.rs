//! Differential test of the compiled-instance IR: every cost and
//! feasibility answer the CSR evaluation helpers give must agree with the
//! ground-truth `Problem`-side evaluation (which re-walks the materialized
//! views and witness sets), and every IR-based solver's output must
//! survive ground-truth re-evaluation. Cases are drawn from the seeded
//! `delprop-workload` generators plus hand-picked degenerate instances, so
//! failures reproduce exactly from the seed.

use delprop::core::runtime::{solve_portfolio, solve_portfolio_balanced};
use delprop::core::solvers::local_search::{LocalSearchConfig, Objective};
use delprop::core::solvers::{
    dp_tree, exact, general, local_search, lowdeg_tree, lp_round, primal_dual,
    primal_dual_balanced, single_query, source,
};
use delprop::core::{Problem, Solution};
use delprop::query::parse_query;
use delprop::relation::{tup, Database, RelationSchema, Schema};
use delprop::setcover::exact::ExactConfig;
use delprop::setcover::BitSet;
use delprop::workload::rng::SplitMix64;
use delprop::workload::{forest, random_db};

// ---------------------------------------------------------------------
// Case pool: random workloads + degenerate corners.
// ---------------------------------------------------------------------

fn random_cases() -> Vec<Problem> {
    let mut cases = Vec::new();
    for seed in 0..8u64 {
        cases.push(random_db::generate(
            random_db::RandomDbParams {
                weighted: seed % 2 == 1,
                ..Default::default()
            },
            seed,
        ));
        cases.push(forest::generate(
            forest::ForestParams {
                chains: 8,
                weighted: seed % 2 == 0,
                ..Default::default()
            },
            seed,
        ));
    }
    cases
}

/// No deletions at all: the IR has demands = ∅ and every solver must
/// return an empty, zero-cost solution.
fn no_deletions() -> Problem {
    forest::generate(
        forest::ForestParams {
            delete_fraction: 0.0,
            ..Default::default()
        },
        3,
    )
}

/// Everything deleted: demands = all view tuples, vulnerable = ∅.
fn all_deleted() -> Problem {
    forest::generate(
        forest::ForestParams {
            delete_fraction: 1.0,
            chains: 4,
            ..Default::default()
        },
        5,
    )
}

/// A single-tuple database with its only view tuple deleted.
fn singleton() -> Problem {
    let schema = Schema::from_relations([RelationSchema::new("R", 1, vec![0]).unwrap()]).unwrap();
    let mut db = Database::new(schema);
    db.insert("R", tup![1]).unwrap();
    let q = parse_query("Q(x) :- R(x)")
        .unwrap()
        .bind(db.schema())
        .unwrap();
    let mut p = Problem::new(db, vec![q]).unwrap();
    p.mark_deleted(0, &tup![1]).unwrap();
    p
}

fn degenerate_cases() -> Vec<Problem> {
    vec![no_deletions(), all_deleted(), singleton()]
}

// ---------------------------------------------------------------------
// IR evaluation ≡ ground-truth evaluation.
// ---------------------------------------------------------------------

/// Check one solution's IR-side answers against the `Problem`-side ground
/// truth (which re-walks materialized views and witness sets).
fn check_evaluation(p: &Problem, sol: &Solution) {
    let ir = p.compiled();
    assert_eq!(
        ir.is_feasible_of(sol),
        sol.is_feasible(p),
        "IR feasibility disagrees with ground truth"
    );
    // Cost helpers are exact for candidate-restricted solutions; every
    // solver output below is candidate-restricted except dp_tree's, which
    // is excluded from this check (its paths may include non-candidates).
    let ground = sol.side_effect(p);
    assert!(
        (ir.side_effect_of(sol) - ground).abs() < 1e-9,
        "IR side-effect {} != ground truth {ground}",
        ir.side_effect_of(sol)
    );
    let ground_bal = sol.balanced_cost(p);
    assert!(
        (ir.balanced_cost_of(sol) - ground_bal).abs() < 1e-9,
        "IR balanced cost {} != ground truth {ground_bal}",
        ir.balanced_cost_of(sol)
    );
}

/// Randomized differential suite for the packed kernel layer: on
/// pseudo-random deletion subsets of the candidate pool, the bitset
/// evaluators, the `Vec<bool>` mask evaluators, and the `Problem`-side
/// oracle must all agree — the first two **bit-identically** (exact `f64`
/// equality; the word-parallel sweeps visit elements in the same ascending
/// order as the mask walks), the oracle within the usual 1e-9.
#[test]
fn packed_evaluators_agree_with_mask_and_oracle_on_random_subsets() {
    let mut rng = SplitMix64::seed_from_u64(0xb175e7);
    for (i, p) in random_cases()
        .iter()
        .chain(degenerate_cases().iter())
        .enumerate()
    {
        let ir = p.compiled();
        let nb = ir.num_bases();
        for trial in 0..16usize {
            // Subset density varies by trial: ~1/2, ~1/3, ~1/4, ~1/5.
            let denom = 2 + (trial % 4);
            let chosen: Vec<u32> = (0..nb as u32).filter(|_| rng.below(denom) == 0).collect();
            let sol = Solution::from_tuples(chosen.iter().map(|&b| ir.base(b)));
            let bits = ir.base_bits(&sol);
            let mut mask = vec![false; nb];
            for &b in &chosen {
                mask[b as usize] = true;
            }
            // Round-trip: the bitset is exactly the chosen subset.
            assert_eq!(
                bits.iter().collect::<Vec<_>>(),
                chosen.iter().map(|&b| b as usize).collect::<Vec<_>>(),
                "case {i} trial {trial}: base_bits round-trip"
            );

            // Packed vs mask: bit-identical.
            assert_eq!(
                ir.is_feasible_bits(&bits),
                ir.is_feasible_mask(&mask),
                "case {i} trial {trial}: feasibility bits vs mask"
            );
            let (se_bits, se_mask) = (ir.side_effect_bits(&bits), ir.side_effect_mask(&mask));
            assert!(
                se_bits == se_mask,
                "case {i} trial {trial}: side-effect bits {se_bits} != mask {se_mask}"
            );
            let (bc_bits, bc_mask) = (ir.balanced_cost_bits(&bits), ir.balanced_cost_mask(&mask));
            assert!(
                bc_bits == bc_mask,
                "case {i} trial {trial}: balanced bits {bc_bits} != mask {bc_mask}"
            );
            for d in 0..ir.num_demands() as u32 {
                assert_eq!(
                    ir.eliminates_bits(&bits, d),
                    ir.eliminates(&mask, d),
                    "case {i} trial {trial}: eliminates({d}) bits vs mask"
                );
                assert_eq!(
                    ir.eliminates_bits(&bits, d),
                    sol.eliminates(p, ir.demand(d)),
                    "case {i} trial {trial}: eliminates({d}) bits vs oracle"
                );
            }

            // Packed vs ground-truth oracle (subsets of bases are
            // candidate-restricted, so the cost helpers are exact).
            assert_eq!(
                ir.is_feasible_bits(&bits),
                sol.is_feasible(p),
                "case {i} trial {trial}: feasibility bits vs oracle"
            );
            assert!(
                (se_bits - sol.side_effect(p)).abs() < 1e-9,
                "case {i} trial {trial}: side-effect bits {se_bits} vs oracle {}",
                sol.side_effect(p)
            );
            assert!(
                (bc_bits - sol.balanced_cost(p)).abs() < 1e-9,
                "case {i} trial {trial}: balanced bits {bc_bits} vs oracle {}",
                sol.balanced_cost(p)
            );
        }
    }
}

/// `tuple_bits` must ignore non-candidate tuples and agree with
/// `base_bits ∘ restricted_to_candidates` on arbitrary tuple sets.
#[test]
fn tuple_bits_ignores_non_candidates() {
    let mut rng = SplitMix64::seed_from_u64(0x70f1e5);
    for (i, p) in random_cases().iter().enumerate() {
        let ir = p.compiled();
        let all: Vec<_> = p.db().live_ids().collect();
        for trial in 0..8usize {
            let picked: Vec<_> = all.iter().copied().filter(|_| rng.below(3) == 0).collect();
            let sol = Solution::from_tuples(picked.iter().copied());
            let restricted = sol.restricted_to_candidates(p);
            let via_tuples = ir.tuple_bits(picked.iter().copied());
            let via_restricted = ir.base_bits(&restricted);
            assert_eq!(
                via_tuples.iter().collect::<Vec<_>>(),
                via_restricted.iter().collect::<Vec<_>>(),
                "case {i} trial {trial}"
            );
        }
    }
}

/// Feeding a solver output through the dense path and the oracle path
/// must yield the same cost: `side_effect_of`/`balanced_cost_of` route
/// through `base_bits` + the packed evaluators, so this pins the dense
/// rewrite to the ground truth for every solver in the pool.
#[test]
fn dense_and_oracle_costs_agree_on_solver_outputs() {
    for (i, p) in random_cases()
        .iter()
        .chain(degenerate_cases().iter())
        .enumerate()
    {
        let ir = p.compiled();
        let mut outs: Vec<(&str, Solution)> = vec![
            ("general", general::solve(ir).unwrap()),
            ("greedy", general::solve_greedy(ir).unwrap()),
            ("lp_round", lp_round::solve(ir).unwrap()),
            (
                "pd_balanced",
                primal_dual_balanced::solve_balanced(ir, &Default::default())
                    .unwrap()
                    .solution,
            ),
        ];
        if ir.forest_case() {
            outs.push(("primal_dual", primal_dual::solve_default(ir).unwrap()));
            outs.push(("lowdeg_tree", lowdeg_tree::solve(ir).unwrap()));
        }
        for (name, sol) in outs {
            let bits = ir.base_bits(&sol);
            assert_eq!(bits.count(), sol.len(), "case {i}: {name} lost tuples");
            assert!(
                (ir.side_effect_bits(&bits) - sol.side_effect(p)).abs() < 1e-9,
                "case {i}: {name} dense side-effect diverges from oracle"
            );
            assert!(
                (ir.balanced_cost_bits(&bits) - sol.balanced_cost(p)).abs() < 1e-9,
                "case {i}: {name} dense balanced cost diverges from oracle"
            );
        }
    }
}

/// The default (zero-capacity) `BitSet` used as the "no restrictions"
/// config value never reports membership, at any probe index.
#[test]
fn default_bitset_is_no_restrictions() {
    let empty = BitSet::default();
    for probe in [0usize, 1, 63, 64, 65, 1 << 20] {
        assert!(!empty.contains(probe));
    }
    assert_eq!(empty.count(), 0);
}

#[test]
fn ir_costs_match_ground_truth_on_solver_outputs() {
    for (i, p) in random_cases()
        .iter()
        .chain(degenerate_cases().iter())
        .enumerate()
    {
        let ir = p.compiled();
        let mut sols: Vec<Solution> = Vec::new();
        sols.push(general::solve(ir).unwrap_or_else(|e| panic!("case {i}: general {e}")));
        sols.push(general::solve_greedy(ir).unwrap());
        sols.push(general::solve_balanced(ir));
        sols.push(exact::solve(ir, ExactConfig::default()).solution.unwrap());
        sols.push(
            exact::solve_balanced(ir, ExactConfig::default())
                .solution
                .unwrap(),
        );
        sols.push(lp_round::solve(ir).unwrap());
        sols.push(source::solve_greedy(ir));
        sols.push(
            primal_dual_balanced::solve_balanced(ir, &Default::default())
                .unwrap()
                .solution,
        );
        if ir.forest_case() {
            sols.push(primal_dual::solve_default(ir).unwrap());
            sols.push(lowdeg_tree::solve(ir).unwrap());
        }
        if ir.num_queries() == 1 && ir.norm_delta() == 1 {
            sols.push(single_query::solve_single_deletion(ir).unwrap());
        }
        let start = general::solve_greedy(ir).unwrap();
        sols.push(local_search::improve(
            ir,
            &start,
            LocalSearchConfig::default(),
        ));
        sols.push(local_search::improve(
            ir,
            &start,
            LocalSearchConfig {
                objective: Objective::Balanced,
                ..Default::default()
            },
        ));
        sols.push(Solution::empty());
        for sol in &sols {
            check_evaluation(p, sol);
        }
    }
}

#[test]
fn standard_solver_outputs_survive_ground_truth_reevaluation() {
    for (i, p) in random_cases()
        .iter()
        .chain(degenerate_cases().iter())
        .enumerate()
    {
        let ir = p.compiled();
        let opt = exact::solve(ir, ExactConfig::default());
        let optimum = opt.cost;
        let mut outputs: Vec<(&str, Solution)> = vec![
            ("general", general::solve(ir).unwrap()),
            ("greedy", general::solve_greedy(ir).unwrap()),
            ("exact", opt.solution.unwrap()),
            ("lp_round", lp_round::solve(ir).unwrap()),
        ];
        if ir.forest_case() {
            outputs.push(("primal_dual", primal_dual::solve_default(ir).unwrap()));
            outputs.push(("lowdeg_tree", lowdeg_tree::solve(ir).unwrap()));
        }
        if dp_tree::applies(ir) {
            outputs.push(("dp_tree", dp_tree::solve(ir).unwrap()));
        }
        for (name, sol) in outputs {
            assert!(
                sol.is_feasible(p),
                "case {i}: {name} output infeasible under ground truth"
            );
            // Re-materializes the views against D \ ΔD and recomputes
            // the damage from scratch; panics on any disagreement.
            let cost = sol.verify_by_reevaluation(p);
            assert!(
                cost >= optimum - 1e-9,
                "case {i}: {name} cost {cost} beats the optimum {optimum}"
            );
        }
    }
}

#[test]
fn balanced_solver_outputs_survive_ground_truth_reevaluation() {
    for (i, p) in random_cases()
        .iter()
        .chain(degenerate_cases().iter())
        .enumerate()
    {
        let ir = p.compiled();
        let optimum = exact::solve_balanced(ir, ExactConfig::default()).cost;
        let mut outputs: Vec<(&str, Solution)> = vec![
            ("general_balanced", general::solve_balanced(ir)),
            (
                "primal_dual_balanced",
                primal_dual_balanced::solve_balanced(ir, &Default::default())
                    .unwrap()
                    .solution,
            ),
        ];
        if dp_tree::applies(ir) {
            outputs.push(("dp_tree_balanced", dp_tree::solve_balanced(ir).unwrap()));
        }
        for (name, sol) in outputs {
            sol.verify_by_reevaluation(p);
            let cost = sol.balanced_cost(p);
            assert!(
                cost >= optimum - 1e-9,
                "case {i}: {name} balanced cost {cost} beats the optimum {optimum}"
            );
        }
    }
}

#[test]
fn lower_bounds_never_exceed_ground_truth_optimum() {
    for (i, p) in random_cases()
        .iter()
        .chain(degenerate_cases().iter())
        .enumerate()
    {
        let ir = p.compiled();
        let opt = exact::solve(ir, ExactConfig::default()).cost;
        let lb = lp_round::lower_bound(ir);
        assert!(lb <= opt + 1e-6, "case {i}: LP bound {lb} above OPT {opt}");
        let bal_opt = exact::solve_balanced(ir, ExactConfig::default()).cost;
        let bal_lb = lp_round::balanced_lower_bound(ir);
        assert!(
            bal_lb <= bal_opt + 1e-6,
            "case {i}: balanced LP bound {bal_lb} above OPT {bal_opt}"
        );
        let pd = primal_dual_balanced::solve_balanced(ir, &Default::default()).unwrap();
        assert!(
            pd.dual_objective <= bal_opt + 1e-6,
            "case {i}: balanced dual {} above OPT {bal_opt}",
            pd.dual_objective
        );
    }
}

#[test]
fn portfolio_agrees_with_ground_truth_on_every_case() {
    for (i, p) in random_cases()
        .iter()
        .chain(degenerate_cases().iter())
        .enumerate()
    {
        let out = solve_portfolio(p).unwrap_or_else(|e| panic!("case {i}: {e}"));
        assert!(out.solution.is_feasible(p), "case {i}");
        assert!(
            (out.cost - out.solution.side_effect(p)).abs() < 1e-9,
            "case {i}: reported cost {} != ground truth {}",
            out.cost,
            out.solution.side_effect(p)
        );
        let bal = solve_portfolio_balanced(p).unwrap_or_else(|e| panic!("case {i}: {e}"));
        assert!(
            (bal.cost - bal.solution.balanced_cost(p)).abs() < 1e-9,
            "case {i}: balanced reported cost {} != ground truth {}",
            bal.cost,
            bal.solution.balanced_cost(p)
        );
    }
}
