//! Randomized-but-deterministic tests of the core invariants. These were
//! originally proptest properties; they now draw their cases from the
//! in-tree seeded PRNG so the workspace builds with zero external
//! dependencies. Every case is a pure function of its seed, so failures
//! reproduce exactly.

use delprop::core::solvers::{exact, general, lp_round, primal_dual};
use delprop::core::{Problem, Solution};
use delprop::query::eval::{hashjoin, naive, sort_matches, CompiledQuery};
use delprop::query::parse_query;
use delprop::relation::{tup, Database, RelationSchema, Schema};
use delprop::setcover::exact::ExactConfig;
use delprop::setcover::{greedy, lowdeg, BitSet, BucketQueue, CoverSet, RedBlueInstance};
use delprop::workload::rng::SplitMix64;

// ---------------------------------------------------------------------
// Case generators (seeded equivalents of the old proptest strategies).
// ---------------------------------------------------------------------

/// A small Red-Blue instance where each blue is coverable.
fn random_redblue(rng: &mut SplitMix64) -> RedBlueInstance {
    let nr = 2 + rng.below(4); // 2..6 reds
    let nb = 2 + rng.below(3); // 2..5 blues
    let ns = 3 + rng.below(5); // 3..8 sets
    let mut sets: Vec<CoverSet> = (0..ns)
        .map(|_| {
            let reds = (0..rng.below(4)).map(|_| rng.below(nr)).collect();
            let blues = (0..rng.below(4)).map(|_| rng.below(nb)).collect();
            CoverSet::new(reds, blues)
        })
        .collect();
    // Patch coverability deterministically.
    for b in 0..nb {
        if !sets.iter().any(|s| s.blue.contains(&b)) {
            let si = b % sets.len();
            let mut blue = sets[si].blue.clone();
            blue.push(b);
            sets[si] = CoverSet::new(sets[si].red.clone(), blue);
        }
    }
    RedBlueInstance::new(nr, nb, sets)
}

/// A 3-relation database with small random binary relations.
fn random_db(rng: &mut SplitMix64) -> Database {
    let schema = Schema::from_relations([
        RelationSchema::new("A", 2, vec![0, 1]).unwrap(),
        RelationSchema::new("B", 2, vec![0, 1]).unwrap(),
        RelationSchema::new("C", 2, vec![0, 1]).unwrap(),
    ])
    .unwrap();
    let mut db = Database::new(schema);
    for name in ["A", "B", "C"] {
        let rid = db.schema().relation_id(name).unwrap();
        for _ in 0..rng.below(10) {
            let x = rng.below(5) as i64;
            let y = rng.below(5) as i64;
            use delprop::relation::Value;
            if db
                .find_by_key(rid, &[Value::int(x), Value::int(y)])
                .is_none()
            {
                db.insert(name, tup![x, y]).unwrap();
            }
        }
    }
    db
}

pub fn build_chain_problem(n: usize, atoms: usize, blue: &[usize]) -> Problem {
    use delprop::relation::{Tuple, Value};
    let schema = Schema::from_relations(
        (1..=atoms).map(|j| RelationSchema::new(format!("R{j}"), 2, vec![0, 1]).unwrap()),
    )
    .unwrap();
    let mut db = Database::new(schema);
    for i in 0..n {
        for j in 1..=atoms {
            let a = (i >> (j - 1)) as i64;
            let b = (i >> j) as i64;
            let name = format!("R{j}");
            let rid = db.schema().relation_id(&name).unwrap();
            if db
                .find_by_key(rid, &[Value::int(a), Value::int(b)])
                .is_none()
            {
                db.insert(&name, tup![a, b]).unwrap();
            }
        }
    }
    let head: Vec<String> = (0..=atoms).map(|j| format!("x{j}")).collect();
    let body: Vec<String> = (1..=atoms)
        .map(|j| format!("R{j}(x{}, x{j})", j - 1))
        .collect();
    let src = format!("Q({}) :- {}", head.join(", "), body.join(", "));
    let q = parse_query(&src).unwrap().bind(db.schema()).unwrap();
    let mut p = Problem::new(db, vec![q]).unwrap();
    for &i in blue {
        let h: Tuple = (0..=atoms).map(|j| (i >> j) as i64).collect();
        p.mark_deleted(0, &h).unwrap();
    }
    p
}

/// A chain problem with random size and random blue set.
fn random_chain_problem(rng: &mut SplitMix64) -> Problem {
    let n = 2 + rng.below(8); // 2..10
    let atoms = 2 + rng.below(2); // 2..4
    let mut blues: std::collections::BTreeSet<usize> = Default::default();
    let want = 1 + rng.below(n.min(4) - 1).min(n - 1);
    while blues.len() < want {
        blues.insert(rng.below(n));
    }
    build_chain_problem(n, atoms, &blues.into_iter().collect::<Vec<_>>())
}

// ---------------------------------------------------------------------
// Set cover invariants.
// ---------------------------------------------------------------------

/// Exact ≤ lowdeg ≤ its ratio bound; all feasible.
#[test]
fn setcover_solver_ordering() {
    let mut rng = SplitMix64::seed_from_u64(0x5e7c01);
    for case in 0..64 {
        let inst = random_redblue(&mut rng);
        let ex = delprop::setcover::exact::solve(&inst, ExactConfig::default());
        let opt = ex.selection.expect("patched instances are coverable");
        assert!(inst.is_feasible(&opt), "case {case}");
        let g = greedy::cover(&inst).expect("coverable");
        assert!(inst.is_feasible(&g), "case {case}");
        let ld = lowdeg::solve(&inst).expect("coverable");
        assert!(inst.is_feasible(&ld), "case {case}");
        assert!(inst.cost(&g) + 1e-9 >= ex.cost, "case {case}");
        assert!(inst.cost(&ld) + 1e-9 >= ex.cost, "case {case}");
        let bound = lowdeg::ratio_bound(inst.sets().len(), inst.num_blue());
        if ex.cost > 0.0 {
            assert!(inst.cost(&ld) <= bound * ex.cost + 1e-9, "case {case}");
        }
    }
}

/// The Theorem 1 gadget transfers feasibility and cost for EVERY
/// selection, not just optima.
#[test]
fn gadget_cost_transfer() {
    let mut rng = SplitMix64::seed_from_u64(0x5e7c02);
    for case in 0..64 {
        let inst = random_redblue(&mut rng);
        let mask = rng.below(256) as u32;
        let g = delprop::workload::gadget::redblue_to_vse(&inst);
        let n = inst.sets().len();
        let sel: Vec<usize> = (0..n.min(8)).filter(|&s| mask & (1 << s) != 0).collect();
        let sol = g.selection_to_solution(&sel);
        assert_eq!(
            inst.is_feasible(&sel),
            sol.is_feasible(&g.problem),
            "case {case}"
        );
        assert!(
            (inst.cost(&sel) - sol.side_effect(&g.problem)).abs() < 1e-9,
            "case {case}"
        );
    }
}

// ---------------------------------------------------------------------
// Query engine invariants.
// ---------------------------------------------------------------------

/// The hash-join engine agrees with the naive oracle on several query
/// shapes, including self-joins and constants.
#[test]
fn engines_agree() {
    let mut rng = SplitMix64::seed_from_u64(0x90e5);
    for case in 0..48 {
        let db = random_db(&mut rng);
        let src = match rng.below(5) {
            0 => "Q(x, y, z) :- A(x, y), B(y, z)",
            1 => "Q(x, y, z, w) :- A(x, y), B(y, z), C(z, w)",
            2 => "Q(x, y, u) :- A(x, y), A(y, u)",
            3 => "Q(x) :- A(x, 2)",
            _ => "Q(x, y, u, v) :- A(x, y), C(u, v)",
        };
        let q = parse_query(src).unwrap().bind(db.schema()).unwrap();
        let c = CompiledQuery::compile(&q);
        let mut a = naive::evaluate(&db, &c);
        let mut b = hashjoin::evaluate(&db, &c);
        sort_matches(&mut a);
        sort_matches(&mut b);
        assert_eq!(a, b, "case {case}: {src}");
    }
}

// ---------------------------------------------------------------------
// Deletion-propagation invariants on random chain workloads.
// ---------------------------------------------------------------------

/// All solvers feasible; optimum lower-bounds them; LP lower-bounds
/// the optimum; the witness shortcut matches re-evaluation; deleting
/// everything is feasible.
#[test]
fn solver_stack_invariants() {
    let mut rng = SplitMix64::seed_from_u64(0x50f71);
    for case in 0..32 {
        let p = random_chain_problem(&mut rng);
        let opt = exact::solve(p.compiled(), ExactConfig::default());
        let opt_cost = opt.cost;
        assert!(opt.proven_optimal, "case {case}");

        let lb = lp_round::lower_bound(p.compiled());
        assert!(lb <= opt_cost + 1e-6, "case {case}: {lb} > {opt_cost}");

        for sol in [
            general::solve(p.compiled()).unwrap(),
            primal_dual::solve_default(p.compiled()).unwrap(),
            lp_round::solve(p.compiled()).unwrap(),
        ] {
            assert!(sol.is_feasible(&p), "case {case}");
            assert!(sol.side_effect(&p) + 1e-9 >= opt_cost, "case {case}");
            let re = sol.verify_by_reevaluation(&p);
            assert!((re - sol.side_effect(&p)).abs() < 1e-9, "case {case}");
        }

        let everything = Solution::from_tuples(p.db().live_ids());
        assert!(everything.is_feasible(&p), "case {case}");

        // Balanced never exceeds the standard optimum (the standard
        // optimum is one feasible balanced solution).
        let bal = exact::solve_balanced(p.compiled(), ExactConfig::default());
        assert!(bal.cost <= opt_cost + 1e-9, "case {case}");
    }
}

// ---------------------------------------------------------------------
// Kernel-layer invariants: packed structures vs std-collection oracles.
// ---------------------------------------------------------------------

/// A `BitSet` driven by a random op sequence stays in lockstep with a
/// `BTreeSet<usize>` oracle — membership, count, iteration order, and the
/// word-parallel set operations all agree.
#[test]
fn bitset_matches_btreeset_oracle() {
    let mut rng = SplitMix64::seed_from_u64(0xb17b17);
    for case in 0..32 {
        let cap = 1 + rng.below(200); // crosses the 64/128/192 word seams
        let mut bits = BitSet::new(cap);
        let mut oracle: std::collections::BTreeSet<usize> = Default::default();
        for _ in 0..200 {
            let i = rng.below(cap);
            match rng.below(3) {
                0 => assert_eq!(bits.insert(i), oracle.insert(i), "case {case}"),
                1 => {
                    bits.remove(i);
                    oracle.remove(&i);
                }
                _ => assert_eq!(bits.contains(i), oracle.contains(&i), "case {case}"),
            }
        }
        assert_eq!(bits.count(), oracle.len(), "case {case}");
        assert_eq!(
            bits.iter().collect::<Vec<_>>(),
            oracle.iter().copied().collect::<Vec<_>>(),
            "case {case}: iteration order"
        );
        // Word-parallel binary ops against a second random set.
        let other: Vec<usize> = (0..cap).filter(|_| rng.below(3) == 0).collect();
        let other_bits = BitSet::from_indices(cap, other.iter().copied());
        let other_oracle: std::collections::BTreeSet<usize> = other.into_iter().collect();
        assert_eq!(
            bits.intersects(&other_bits),
            oracle.intersection(&other_oracle).next().is_some(),
            "case {case}: intersects"
        );
        assert_eq!(
            bits.intersection_count(&other_bits),
            oracle.intersection(&other_oracle).count(),
            "case {case}: intersection_count"
        );
        assert_eq!(
            bits.is_subset_of(&other_bits),
            oracle.is_subset(&other_oracle),
            "case {case}: is_subset_of"
        );
        let mut unioned = bits.clone();
        unioned.union_with(&other_bits);
        assert_eq!(
            unioned.iter().collect::<Vec<_>>(),
            oracle.union(&other_oracle).copied().collect::<Vec<_>>(),
            "case {case}: union_with"
        );
    }
}

/// `BucketQueue::pop_min` drains random loads in exactly the order a
/// sort by (key, newest-push-first) would: buckets ascend, and within a
/// bucket items come back LIFO (head insertion, head removal).
#[test]
fn bucket_queue_matches_sort_oracle() {
    let mut rng = SplitMix64::seed_from_u64(0xb0c4e7);
    for case in 0..32 {
        let n = 1 + rng.below(150);
        let max_key = rng.below(20);
        let keys: Vec<usize> = (0..n).map(|_| rng.below(max_key + 1)).collect();
        let mut q = BucketQueue::new(n, max_key);
        for (item, &k) in keys.iter().enumerate() {
            q.push(item, k);
        }
        assert_eq!(q.len(), n, "case {case}");
        let mut expected: Vec<(usize, usize)> = keys
            .iter()
            .enumerate()
            .map(|(item, &k)| (item, k))
            .collect();
        expected.sort_by_key(|&(item, k)| (k, std::cmp::Reverse(item)));
        let mut drained = Vec::new();
        while let Some(pop) = q.pop_min() {
            drained.push(pop);
        }
        assert_eq!(drained, expected, "case {case}");
        assert!(q.is_empty(), "case {case}: drained queue is empty");
    }
}

/// Dense forbidden sets are respected: with a random subset of candidates
/// forbidden, primal-dual either reports infeasibility or returns a
/// feasible solution disjoint from the forbidden set, with its dense dual
/// vector sized by the demand count.
#[test]
fn primal_dual_respects_random_forbidden_bitsets() {
    use delprop::core::solvers::primal_dual::PrimalDualConfig;
    let mut rng = SplitMix64::seed_from_u64(0x50f73);
    for case in 0..32 {
        let p = random_chain_problem(&mut rng);
        let ir = p.compiled();
        let nb = ir.num_bases();
        let forbidden_ix: Vec<usize> = (0..nb).filter(|_| rng.below(4) == 0).collect();
        let cfg = PrimalDualConfig {
            forbidden: BitSet::from_indices(nb, forbidden_ix.iter().copied()),
            ..Default::default()
        };
        match primal_dual::solve(ir, &cfg) {
            Ok(out) => {
                assert!(out.solution.is_feasible(&p), "case {case}");
                assert_eq!(out.duals.len(), ir.num_demands(), "case {case}");
                for &b in &forbidden_ix {
                    assert!(
                        !out.solution.deleted.contains(&ir.base(b as u32)),
                        "case {case}: deleted a forbidden tuple"
                    );
                }
            }
            Err(_) => {
                // Infeasibility must be real: some demand has every
                // witness forbidden.
                let all_blocked = (0..ir.num_demands() as u32).any(|d| {
                    ir.demand_row(d)
                        .iter()
                        .all(|&b| cfg.forbidden.contains(b as usize))
                });
                assert!(all_blocked, "case {case}: spurious infeasibility");
            }
        }
    }
}

/// Dual objective of the primal-dual run is a valid lower bound and
/// its solution contains no redundant deletions.
#[test]
fn primal_dual_certificates() {
    let mut rng = SplitMix64::seed_from_u64(0x50f72);
    for case in 0..32 {
        let p = random_chain_problem(&mut rng);
        let out = primal_dual::solve(p.compiled(), &Default::default()).unwrap();
        let opt = exact::solve(p.compiled(), ExactConfig::default());
        assert!(out.dual_objective <= opt.cost + 1e-6, "case {case}");
        for &t in &out.solution.deleted {
            let mut smaller = out.solution.clone();
            smaller.deleted.remove(&t);
            assert!(!smaller.is_feasible(&p), "case {case}: {t} redundant");
        }
    }
}
