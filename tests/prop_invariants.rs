//! Property-based tests (proptest) on the core invariants.

use delprop::core::solvers::{exact, general, lp_round, primal_dual};
use delprop::core::{Problem, Solution};
use delprop::query::eval::{hashjoin, naive, sort_matches, CompiledQuery};
use delprop::query::parse_query;
use delprop::relation::{tup, Database, RelationSchema, Schema};
use delprop::setcover::exact::ExactConfig;
use delprop::setcover::{greedy, lowdeg, CoverSet, RedBlueInstance};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Set cover invariants.
// ---------------------------------------------------------------------

/// Strategy: a small Red-Blue instance where each blue is coverable.
fn redblue_strategy() -> impl Strategy<Value = RedBlueInstance> {
    (2usize..6, 2usize..5, 3usize..8).prop_flat_map(|(nr, nb, ns)| {
        let set = (
            proptest::collection::vec(0..nr, 0..4),
            proptest::collection::vec(0..nb, 0..4),
        );
        proptest::collection::vec(set, ns).prop_map(move |sets| {
            let mut sets: Vec<CoverSet> = sets
                .into_iter()
                .map(|(r, b)| CoverSet::new(r, b))
                .collect();
            // Patch coverability deterministically.
            for b in 0..nb {
                if !sets.iter().any(|s| s.blue.contains(&b)) {
                    let si = b % sets.len();
                    let mut blue = sets[si].blue.clone();
                    blue.push(b);
                    sets[si] = CoverSet::new(sets[si].red.clone(), blue);
                }
            }
            RedBlueInstance::new(nr, nb, sets)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact ≤ lowdeg ≤ its ratio bound; all feasible.
    #[test]
    fn setcover_solver_ordering(inst in redblue_strategy()) {
        let ex = delprop::setcover::exact::solve(&inst, ExactConfig::default());
        let opt = ex.selection.expect("patched instances are coverable");
        prop_assert!(inst.is_feasible(&opt));
        let g = greedy::cover(&inst).expect("coverable");
        prop_assert!(inst.is_feasible(&g));
        let ld = lowdeg::solve(&inst).expect("coverable");
        prop_assert!(inst.is_feasible(&ld));
        prop_assert!(inst.cost(&g) + 1e-9 >= ex.cost);
        prop_assert!(inst.cost(&ld) + 1e-9 >= ex.cost);
        let bound = lowdeg::ratio_bound(inst.sets().len(), inst.num_blue());
        if ex.cost > 0.0 {
            prop_assert!(inst.cost(&ld) <= bound * ex.cost + 1e-9);
        }
    }

    /// The Theorem 1 gadget transfers feasibility and cost for EVERY
    /// selection, not just optima.
    #[test]
    fn gadget_cost_transfer(inst in redblue_strategy(), mask in 0u32..256) {
        let g = delprop::workload::gadget::redblue_to_vse(&inst);
        let n = inst.sets().len();
        let sel: Vec<usize> = (0..n).filter(|&s| mask & (1 << s) != 0).collect();
        let sol = g.selection_to_solution(&sel);
        prop_assert_eq!(inst.is_feasible(&sel), sol.is_feasible(&g.problem));
        prop_assert!((inst.cost(&sel) - sol.side_effect(&g.problem)).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------
// Query engine invariants.
// ---------------------------------------------------------------------

/// Strategy: a 3-relation database with small random binary relations.
fn db_strategy() -> impl Strategy<Value = Database> {
    let pair = || (0i64..5, 0i64..5);
    (
        proptest::collection::btree_set(pair(), 0..10),
        proptest::collection::btree_set(pair(), 0..10),
        proptest::collection::btree_set(pair(), 0..10),
    )
        .prop_map(|(a, b, c)| {
            let schema = Schema::from_relations([
                RelationSchema::new("A", 2, vec![0, 1]).unwrap(),
                RelationSchema::new("B", 2, vec![0, 1]).unwrap(),
                RelationSchema::new("C", 2, vec![0, 1]).unwrap(),
            ])
            .unwrap();
            let mut db = Database::new(schema);
            for (x, y) in a {
                db.insert("A", tup![x, y]).unwrap();
            }
            for (x, y) in b {
                db.insert("B", tup![x, y]).unwrap();
            }
            for (x, y) in c {
                db.insert("C", tup![x, y]).unwrap();
            }
            db
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The hash-join engine agrees with the naive oracle on several query
    /// shapes, including self-joins and constants.
    #[test]
    fn engines_agree(db in db_strategy(), shape in 0usize..5) {
        let src = match shape {
            0 => "Q(x, y, z) :- A(x, y), B(y, z)",
            1 => "Q(x, y, z, w) :- A(x, y), B(y, z), C(z, w)",
            2 => "Q(x, y, u) :- A(x, y), A(y, u)",
            3 => "Q(x) :- A(x, 2)",
            _ => "Q(x, y, u, v) :- A(x, y), C(u, v)",
        };
        let q = parse_query(src).unwrap().bind(db.schema()).unwrap();
        let c = CompiledQuery::compile(&q);
        let mut a = naive::evaluate(&db, &c);
        let mut b = hashjoin::evaluate(&db, &c);
        sort_matches(&mut a);
        sort_matches(&mut b);
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------
// Deletion-propagation invariants on random chain workloads.
// ---------------------------------------------------------------------

/// Strategy: a chain problem with random size and random blue set.
fn chain_problem_strategy() -> impl Strategy<Value = Problem> {
    (2usize..10, 2usize..4).prop_flat_map(|(n, atoms)| {
        proptest::collection::btree_set(0..n, 1..n.min(4)).prop_map(move |blues| {
            build_chain_problem(n, atoms, &blues.into_iter().collect::<Vec<_>>())
        })
    })
}

fn build_chain_problem(n: usize, atoms: usize, blue: &[usize]) -> Problem {
    use delprop::relation::{Tuple, Value};
    let schema = Schema::from_relations(
        (1..=atoms).map(|j| RelationSchema::new(format!("R{j}"), 2, vec![0, 1]).unwrap()),
    )
    .unwrap();
    let mut db = Database::new(schema);
    for i in 0..n {
        for j in 1..=atoms {
            let a = (i >> (j - 1)) as i64;
            let b = (i >> j) as i64;
            let name = format!("R{j}");
            let rid = db.schema().relation_id(&name).unwrap();
            if db.find_by_key(rid, &[Value::int(a), Value::int(b)]).is_none() {
                db.insert(&name, tup![a, b]).unwrap();
            }
        }
    }
    let head: Vec<String> = (0..=atoms).map(|j| format!("x{j}")).collect();
    let body: Vec<String> = (1..=atoms)
        .map(|j| format!("R{j}(x{}, x{j})", j - 1))
        .collect();
    let src = format!("Q({}) :- {}", head.join(", "), body.join(", "));
    let q = parse_query(&src).unwrap().bind(db.schema()).unwrap();
    let mut p = Problem::new(db, vec![q]).unwrap();
    for &i in blue {
        let h: Tuple = (0..=atoms).map(|j| (i >> j) as i64).collect();
        p.mark_deleted(0, &h).unwrap();
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All solvers feasible; optimum lower-bounds them; LP lower-bounds
    /// the optimum; the witness shortcut matches re-evaluation; deleting
    /// everything is feasible.
    #[test]
    fn solver_stack_invariants(p in chain_problem_strategy()) {
        let opt = exact::solve(&p, ExactConfig::default());
        let opt_cost = opt.cost;
        prop_assert!(opt.proven_optimal);

        let lb = lp_round::lower_bound(&p);
        prop_assert!(lb <= opt_cost + 1e-6);

        for sol in [
            general::solve(&p).unwrap(),
            primal_dual::solve_default(&p).unwrap(),
            lp_round::solve(&p).unwrap(),
        ] {
            prop_assert!(sol.is_feasible(&p));
            prop_assert!(sol.side_effect(&p) + 1e-9 >= opt_cost);
            let re = sol.verify_by_reevaluation(&p);
            prop_assert!((re - sol.side_effect(&p)).abs() < 1e-9);
        }

        let everything = Solution::from_tuples(p.db().live_ids());
        prop_assert!(everything.is_feasible(&p));

        // Balanced never exceeds the standard optimum (the standard
        // optimum is one feasible balanced solution).
        let bal = exact::solve_balanced(&p, ExactConfig::default());
        prop_assert!(bal.cost <= opt_cost + 1e-9);
    }

    /// Dual objective of the primal-dual run is a valid lower bound and
    /// its solution contains no redundant deletions.
    #[test]
    fn primal_dual_certificates(p in chain_problem_strategy()) {
        let out = primal_dual::solve(&p, &Default::default()).unwrap();
        let opt = exact::solve(&p, ExactConfig::default());
        prop_assert!(out.dual_objective <= opt.cost + 1e-6);
        for &t in &out.solution.deleted {
            let mut smaller = out.solution.clone();
            smaller.deleted.remove(&t);
            prop_assert!(!smaller.is_feasible(&p));
        }
    }
}
