//! One integration test per theorem/claim of the paper — small-scale
//! versions of the experiments in `EXPERIMENTS.md`.

use delprop::core::solvers::{dp_tree, exact, general, lowdeg_tree, lp_round, primal_dual};
use delprop::hypergraph::{gyo, Hypergraph};
use delprop::setcover::exact::ExactConfig;
use delprop::workload::{figures, forest, gadget, random_db, redblue_gen};

/// Theorem 1: the Red-Blue → VSE reduction preserves optima exactly.
#[test]
fn theorem1_reduction_preserves_optima() {
    for seed in 0..6 {
        let rb = redblue_gen::redblue(
            redblue_gen::RedBlueParams {
                num_red: 5,
                num_blue: 4,
                num_sets: 7,
                ..Default::default()
            },
            seed,
        );
        let g = gadget::redblue_to_vse(&rb);
        let a = delprop::setcover::exact::solve(&rb, ExactConfig::default());
        let b = exact::solve(g.problem.compiled(), ExactConfig::default());
        assert!(a.proven_optimal && b.proven_optimal);
        assert!(
            (a.cost - b.cost).abs() < 1e-9,
            "seed {seed}: {} vs {}",
            a.cost,
            b.cost
        );
    }
}

/// Theorem 2: the Pos-Neg → balanced reduction preserves optima exactly.
#[test]
fn theorem2_reduction_preserves_optima() {
    for seed in 0..6 {
        let pn = redblue_gen::posneg(
            redblue_gen::RedBlueParams {
                num_red: 4,
                num_blue: 4,
                num_sets: 6,
                weighted: true,
                ..Default::default()
            },
            seed,
        );
        let g = gadget::posneg_to_balanced(&pn);
        let (_, pn_opt, proven) =
            delprop::setcover::reduce::solve_posneg_exact(&pn, ExactConfig::default());
        let bal_opt = exact::solve_balanced(g.problem.compiled(), ExactConfig::default());
        assert!(proven && bal_opt.proven_optimal);
        assert!(
            (pn_opt - bal_opt.cost).abs() < 1e-9,
            "seed {seed}: {pn_opt} vs {}",
            bal_opt.cost
        );
    }
}

/// Claim 1: the general-case algorithm is feasible and within its bound.
#[test]
fn claim1_general_approximation_within_bound() {
    for seed in 0..8 {
        let p = random_db::generate(random_db::RandomDbParams::default(), seed);
        let sol = general::solve(p.compiled()).unwrap();
        assert!(sol.is_feasible(&p));
        let lb = lp_round::lower_bound(p.compiled());
        let bound = general::ratio_bound(p.compiled());
        if lb > 1e-9 {
            assert!(
                sol.side_effect(&p) <= bound * lb + 1e-6,
                "seed {seed}: {} > {} × {}",
                sol.side_effect(&p),
                bound,
                lb
            );
        }
    }
}

/// Lemma 1: the balanced approximation is within its bound of the
/// balanced optimum.
#[test]
fn lemma1_balanced_approximation_within_bound() {
    for seed in 0..6 {
        let p = random_db::generate(
            random_db::RandomDbParams {
                num_relations: 4,
                num_queries: 2,
                tuples_per_relation: 10,
                ..Default::default()
            },
            seed,
        );
        let sol = general::solve_balanced(p.compiled());
        let opt = exact::solve_balanced(
            p.compiled(),
            ExactConfig {
                node_limit: Some(2_000_000),
            },
        );
        if !opt.proven_optimal {
            continue;
        }
        let bound = general::balanced_ratio_bound(p.compiled());
        assert!(
            sol.balanced_cost(&p) <= bound * opt.cost.max(1e-9) + 1e-6,
            "seed {seed}: {} > {} × {}",
            sol.balanced_cost(&p),
            bound,
            opt.cost
        );
    }
}

/// Theorem 3: PrimeDualVSE is feasible and within factor `l` on forests,
/// with a valid dual lower bound.
#[test]
fn theorem3_primal_dual_l_approximation() {
    for seed in 0..8 {
        let p = forest::generate(
            forest::ForestParams {
                levels: 4,
                window: 2,
                chains: 8,
                delete_fraction: 0.3,
                weighted: false,
            },
            seed,
        );
        let out = primal_dual::solve(p.compiled(), &Default::default()).unwrap();
        assert!(out.solution.is_feasible(&p));
        let opt = exact::solve(p.compiled(), ExactConfig::default());
        assert!(
            out.dual_objective <= opt.cost + 1e-6,
            "weak duality violated"
        );
        let l = p.l() as f64;
        assert!(
            out.solution.side_effect(&p) <= l * opt.cost.max(1e-9) + 1e-6,
            "seed {seed}: ratio above l = {l}"
        );
    }
}

/// Theorem 4: LowDegTreeVSETwo within `2√‖V‖` on forests.
#[test]
fn theorem4_lowdeg_tree_bound() {
    for seed in 0..8 {
        let p = forest::generate(
            forest::ForestParams {
                levels: 5,
                window: 3,
                chains: 8,
                delete_fraction: 0.25,
                weighted: false,
            },
            seed,
        );
        let sol = lowdeg_tree::solve(p.compiled()).unwrap();
        assert!(sol.is_feasible(&p));
        let opt = exact::solve(p.compiled(), ExactConfig::default());
        let bound = lowdeg_tree::ratio_bound(p.compiled());
        assert!(
            sol.side_effect(&p) <= bound * opt.cost.max(1.0) + 1e-6,
            "seed {seed}: {} > {} × {}",
            sol.side_effect(&p),
            bound,
            opt.cost
        );
    }
}

/// §IV.E: the DP is exact (standard and balanced) on pivot brooms.
#[test]
fn section4e_dp_exactness() {
    for (branches, depth, blue) in [
        (4usize, 2usize, vec![0usize]),
        (5, 3, vec![0, 2]),
        (6, 2, vec![1, 3, 5]),
        (3, 4, vec![0, 1, 2]),
    ] {
        let p = forest::pivot_broom(branches, depth, &blue);
        assert!(dp_tree::applies(p.compiled()));
        let dp = dp_tree::solve(p.compiled()).unwrap();
        let opt = exact::solve(p.compiled(), ExactConfig::default());
        assert!((dp.side_effect(&p) - opt.cost).abs() < 1e-9);
        let dpb = dp_tree::solve_balanced(p.compiled()).unwrap();
        let optb = exact::solve_balanced(p.compiled(), ExactConfig::default());
        assert!((dpb.balanced_cost(&p) - optb.cost).abs() < 1e-9);
    }
}

/// Fig. 3: hypertree recognition matches the paper's classification.
#[test]
fn fig3_hypertree_recognition() {
    let (s1, s2, s3) = figures::fig3_query_sets();
    assert!(!gyo::is_hypertree(&Hypergraph::new(4, s1)));
    assert!(gyo::is_hypertree(&Hypergraph::new(4, s2)));
    assert!(gyo::is_hypertree(&Hypergraph::new(4, s3)));
}

/// The LP relaxation really lower-bounds, and LP rounding is a certified
/// l-approximation, across workload families.
#[test]
fn lp_bounds_and_rounding_hold_across_families() {
    let problems = [
        figures::fig1_problem(),
        forest::pivot_broom(4, 2, &[0, 1]),
        forest::generate(forest::ForestParams::default(), 3),
        random_db::generate(random_db::RandomDbParams::default(), 3),
    ];
    for (i, p) in problems.iter().enumerate() {
        let lb = lp_round::lower_bound(p.compiled());
        let opt = exact::solve(p.compiled(), ExactConfig::default());
        assert!(lb <= opt.cost + 1e-6, "family {i}: LP bound above OPT");
        let sol = lp_round::solve(p.compiled()).unwrap();
        assert!(sol.is_feasible(p), "family {i}: rounding infeasible");
        let l = p.l() as f64;
        assert!(
            sol.side_effect(p) <= l * lb.max(opt.cost) + 1e-6,
            "family {i}: rounding above l×LP"
        );
    }
}
