//! Tier-1 smoke coverage for the in-repo model checker.
//!
//! The full model suite over the production runtime lives in
//! `crates/core/tests/model.rs` and needs `--cfg delprop_model` (the
//! dedicated CI job). This file keeps the checker itself honest on
//! every plain `cargo test` run, with no special flags: it model-checks
//! small stand-alone protocols written directly against
//! `delprop_modelcheck`'s instrumented primitives — shaped after the
//! real budget admit loop and the real seqlock slot protocol — and
//! exercises the seed replay/round-trip machinery end to end.
//!
//! Iteration counts are smoke-sized; the CI model job raises them with
//! `DELPROP_MODEL_ITERS`.

use delprop_modelcheck::atomic::{AtomicBool, AtomicU64};
use delprop_modelcheck::{explore, replay, thread, Config, Seed};
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

fn iters(default: u64) -> u64 {
    std::env::var("DELPROP_MODEL_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The shape of `Budget::charge`'s admit step: a CAS loop that only
/// moves the counter when the result stays under the limit. The model
/// proves the clamp invariant over every bounded interleaving of two
/// chargers — the miniature of
/// `crates/core/tests/model.rs::model_pool_never_exceeds_limit_and_loses_no_tick`.
#[test]
fn cas_admit_loop_clamps_at_limit_in_all_schedules() {
    const LIMIT: u64 = 3;
    let report = explore(&Config::exhaustive(2, 100_000), || {
        let used = AtomicU64::new(0);
        let admitted = thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let used = &used;
                    s.spawn(move || {
                        let mut ok = 0u64;
                        for _ in 0..2 {
                            if used
                                .fetch_update(Relaxed, Relaxed, |u| (u < LIMIT).then_some(u + 1))
                                .is_ok()
                            {
                                ok += 1;
                            }
                        }
                        ok
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        });
        let total = used.load(Relaxed);
        assert!(total <= LIMIT, "clamp violated: {total}");
        assert_eq!(total, admitted, "admitted charges must all be counted");
        assert_eq!(total, LIMIT, "4 unit charges against 3 admit exactly 3");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete, "space must exhaust: {}", report.schedules);
}

/// The checker must still *find* bugs (a clean run proves nothing if
/// the search is vacuous): the check-then-act version of the same admit
/// loop loses updates, and the reported seed replays deterministically
/// and survives the text round-trip a developer would paste from CI.
#[test]
fn check_then_act_admit_is_caught_with_replayable_seed() {
    fn buggy_admit() {
        let used = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let u = used.load(Relaxed); // check …
                    used.store(u + 1, Relaxed); // … then act: lost update
                });
            }
        });
        assert_eq!(used.load(Relaxed), 2, "lost update");
    }
    let report = explore(&Config::exhaustive(1, 10_000), buggy_admit);
    let failure = report.failure.expect("the lost update must be found");
    assert!(failure.message.contains("lost update"));
    // Replay + text round-trip.
    assert!(replay(&failure.seed, buggy_admit).is_err());
    let reparsed: Seed = failure.seed.to_string().parse().expect("seed parses back");
    assert_eq!(reparsed, failure.seed);
    assert!(replay(&reparsed, buggy_admit).is_err());
    // Shrinking never grows the prescription.
    assert!(failure.seed.choices.len() <= failure.original_seed.choices.len());
}

/// A two-word miniature of the trace ring's per-slot seqlock: writer
/// bumps `state` to odd, writes both words, publishes even; reader
/// validates `state` around the word loads and discards torn snapshots.
/// The model asserts a validated snapshot is never a mix of two writes.
#[test]
fn seqlock_miniature_never_yields_torn_validated_reads() {
    let report = explore(&Config::random(0x5EED, iters(200), 2), || {
        let state = AtomicU64::new(0);
        let (w0, w1) = (AtomicU64::new(0), AtomicU64::new(0));
        thread::scope(|s| {
            s.spawn(|| {
                for v in 1..3u64 {
                    state.store(2 * v - 1, Release); // odd: mid-write
                    w0.store(v, Relaxed);
                    w1.store(100 + v, Relaxed);
                    state.store(2 * v, Release); // even: published
                }
            });
            s.spawn(|| {
                for _ in 0..3 {
                    let before = state.load(Acquire);
                    if before == 0 || before & 1 == 1 {
                        continue;
                    }
                    let a = w0.load(Relaxed);
                    let b = w1.load(Relaxed);
                    delprop_modelcheck::atomic::fence(Acquire);
                    let after = state.load(Relaxed);
                    if before == after {
                        // Validated: the two words must belong to one
                        // write (b = a + 100), never a torn mix.
                        assert_eq!(b, a + 100, "torn seqlock read");
                    }
                }
            });
        });
    });
    assert!(
        report.failure.is_none(),
        "replay seed: {}",
        report.failure.unwrap().seed
    );
}

/// Sticky-flag monotonicity miniature (the budget's `exhausted` /
/// `cancelled` protocol): once a reader observes the flag it never
/// un-observes it, in any schedule.
#[test]
fn sticky_flag_is_monotone_in_all_schedules() {
    let report = explore(&Config::exhaustive(2, 100_000), || {
        let flag = AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|| {
                flag.swap(true, Release);
            });
            s.spawn(|| {
                let first = flag.load(Acquire);
                let second = flag.load(Acquire);
                assert!(!first || second, "sticky flag went backwards");
            });
        });
        assert!(flag.load(Acquire));
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(report.complete);
}

/// Random-walk determinism: the same seed explores the same schedules
/// and reports the same failure — the property the CI job's printed
/// seeds depend on.
#[test]
fn random_walks_are_reproducible() {
    fn racy() {
        let x = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let v = x.load(Relaxed);
                    x.store(v + 1, Relaxed);
                });
            }
        });
        assert_eq!(x.load(Relaxed), 2, "lost update");
    }
    let n = iters(300);
    let a = explore(&Config::random(0xD00DAD, n, 2), racy);
    let b = explore(&Config::random(0xD00DAD, n, 2), racy);
    assert_eq!(a.schedules, b.schedules);
    let (fa, fb) = (a.failure.expect("found"), b.failure.expect("found"));
    assert_eq!(fa.seed, fb.seed, "same RNG seed, same failing schedule");
    assert_eq!(fa.schedule_index, fb.schedule_index);
}
