/root/repo/target/debug/examples/quickstart-1f197e337cea6b5e.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-1f197e337cea6b5e.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
