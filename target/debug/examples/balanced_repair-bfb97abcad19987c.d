/root/repo/target/debug/examples/balanced_repair-bfb97abcad19987c.d: examples/balanced_repair.rs

/root/repo/target/debug/examples/balanced_repair-bfb97abcad19987c: examples/balanced_repair.rs

examples/balanced_repair.rs:
