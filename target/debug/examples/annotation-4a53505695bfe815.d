/root/repo/target/debug/examples/annotation-4a53505695bfe815.d: examples/annotation.rs

/root/repo/target/debug/examples/annotation-4a53505695bfe815: examples/annotation.rs

examples/annotation.rs:
