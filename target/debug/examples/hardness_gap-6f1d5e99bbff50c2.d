/root/repo/target/debug/examples/hardness_gap-6f1d5e99bbff50c2.d: examples/hardness_gap.rs

/root/repo/target/debug/examples/hardness_gap-6f1d5e99bbff50c2: examples/hardness_gap.rs

examples/hardness_gap.rs:
