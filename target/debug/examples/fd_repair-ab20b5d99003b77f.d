/root/repo/target/debug/examples/fd_repair-ab20b5d99003b77f.d: examples/fd_repair.rs

/root/repo/target/debug/examples/fd_repair-ab20b5d99003b77f: examples/fd_repair.rs

examples/fd_repair.rs:
