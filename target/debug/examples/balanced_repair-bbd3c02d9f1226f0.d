/root/repo/target/debug/examples/balanced_repair-bbd3c02d9f1226f0.d: examples/balanced_repair.rs Cargo.toml

/root/repo/target/debug/examples/libbalanced_repair-bbd3c02d9f1226f0.rmeta: examples/balanced_repair.rs Cargo.toml

examples/balanced_repair.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
