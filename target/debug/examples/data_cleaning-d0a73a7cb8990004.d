/root/repo/target/debug/examples/data_cleaning-d0a73a7cb8990004.d: examples/data_cleaning.rs Cargo.toml

/root/repo/target/debug/examples/libdata_cleaning-d0a73a7cb8990004.rmeta: examples/data_cleaning.rs Cargo.toml

examples/data_cleaning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
