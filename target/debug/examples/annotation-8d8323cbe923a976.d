/root/repo/target/debug/examples/annotation-8d8323cbe923a976.d: examples/annotation.rs Cargo.toml

/root/repo/target/debug/examples/libannotation-8d8323cbe923a976.rmeta: examples/annotation.rs Cargo.toml

examples/annotation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
