/root/repo/target/debug/examples/portfolio-79f6dd7d3f69ff8b.d: examples/portfolio.rs Cargo.toml

/root/repo/target/debug/examples/libportfolio-79f6dd7d3f69ff8b.rmeta: examples/portfolio.rs Cargo.toml

examples/portfolio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
