/root/repo/target/debug/examples/portfolio-e3dd0dc8561dbc6f.d: examples/portfolio.rs

/root/repo/target/debug/examples/portfolio-e3dd0dc8561dbc6f: examples/portfolio.rs

examples/portfolio.rs:
