/root/repo/target/debug/examples/dedup_workload-d5631c41db963cb0.d: examples/dedup_workload.rs Cargo.toml

/root/repo/target/debug/examples/libdedup_workload-d5631c41db963cb0.rmeta: examples/dedup_workload.rs Cargo.toml

examples/dedup_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
