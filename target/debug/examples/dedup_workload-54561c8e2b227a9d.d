/root/repo/target/debug/examples/dedup_workload-54561c8e2b227a9d.d: examples/dedup_workload.rs

/root/repo/target/debug/examples/dedup_workload-54561c8e2b227a9d: examples/dedup_workload.rs

examples/dedup_workload.rs:
