/root/repo/target/debug/examples/quickstart-ad8041a6914dd10e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ad8041a6914dd10e: examples/quickstart.rs

examples/quickstart.rs:
