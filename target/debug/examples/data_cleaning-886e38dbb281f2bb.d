/root/repo/target/debug/examples/data_cleaning-886e38dbb281f2bb.d: examples/data_cleaning.rs

/root/repo/target/debug/examples/data_cleaning-886e38dbb281f2bb: examples/data_cleaning.rs

examples/data_cleaning.rs:
