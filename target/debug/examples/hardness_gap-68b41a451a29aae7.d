/root/repo/target/debug/examples/hardness_gap-68b41a451a29aae7.d: examples/hardness_gap.rs Cargo.toml

/root/repo/target/debug/examples/libhardness_gap-68b41a451a29aae7.rmeta: examples/hardness_gap.rs Cargo.toml

examples/hardness_gap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
