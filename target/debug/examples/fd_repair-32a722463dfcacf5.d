/root/repo/target/debug/examples/fd_repair-32a722463dfcacf5.d: examples/fd_repair.rs Cargo.toml

/root/repo/target/debug/examples/libfd_repair-32a722463dfcacf5.rmeta: examples/fd_repair.rs Cargo.toml

examples/fd_repair.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
