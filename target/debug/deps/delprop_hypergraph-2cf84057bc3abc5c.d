/root/repo/target/debug/deps/delprop_hypergraph-2cf84057bc3abc5c.d: crates/hypergraph/src/lib.rs crates/hypergraph/src/datagraph.rs crates/hypergraph/src/dual.rs crates/hypergraph/src/gyo.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/pivot.rs Cargo.toml

/root/repo/target/debug/deps/libdelprop_hypergraph-2cf84057bc3abc5c.rmeta: crates/hypergraph/src/lib.rs crates/hypergraph/src/datagraph.rs crates/hypergraph/src/dual.rs crates/hypergraph/src/gyo.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/pivot.rs Cargo.toml

crates/hypergraph/src/lib.rs:
crates/hypergraph/src/datagraph.rs:
crates/hypergraph/src/dual.rs:
crates/hypergraph/src/gyo.rs:
crates/hypergraph/src/hypergraph.rs:
crates/hypergraph/src/pivot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
