/root/repo/target/debug/deps/delprop-082c7e6624e5dd90.d: src/bin/delprop.rs

/root/repo/target/debug/deps/delprop-082c7e6624e5dd90: src/bin/delprop.rs

src/bin/delprop.rs:
