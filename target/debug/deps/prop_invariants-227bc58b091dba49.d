/root/repo/target/debug/deps/prop_invariants-227bc58b091dba49.d: tests/prop_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libprop_invariants-227bc58b091dba49.rmeta: tests/prop_invariants.rs Cargo.toml

tests/prop_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
