/root/repo/target/debug/deps/delprop_workload-0d135bd97222a118.d: crates/workload/src/lib.rs crates/workload/src/cleaning.rs crates/workload/src/figures.rs crates/workload/src/forest.rs crates/workload/src/gadget.rs crates/workload/src/random_db.rs crates/workload/src/redblue_gen.rs crates/workload/src/rng.rs

/root/repo/target/debug/deps/libdelprop_workload-0d135bd97222a118.rlib: crates/workload/src/lib.rs crates/workload/src/cleaning.rs crates/workload/src/figures.rs crates/workload/src/forest.rs crates/workload/src/gadget.rs crates/workload/src/random_db.rs crates/workload/src/redblue_gen.rs crates/workload/src/rng.rs

/root/repo/target/debug/deps/libdelprop_workload-0d135bd97222a118.rmeta: crates/workload/src/lib.rs crates/workload/src/cleaning.rs crates/workload/src/figures.rs crates/workload/src/forest.rs crates/workload/src/gadget.rs crates/workload/src/random_db.rs crates/workload/src/redblue_gen.rs crates/workload/src/rng.rs

crates/workload/src/lib.rs:
crates/workload/src/cleaning.rs:
crates/workload/src/figures.rs:
crates/workload/src/forest.rs:
crates/workload/src/gadget.rs:
crates/workload/src/random_db.rs:
crates/workload/src/redblue_gen.rs:
crates/workload/src/rng.rs:
