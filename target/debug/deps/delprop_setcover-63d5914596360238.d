/root/repo/target/debug/deps/delprop_setcover-63d5914596360238.d: crates/setcover/src/lib.rs crates/setcover/src/bitset.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/lowdeg.rs crates/setcover/src/posneg.rs crates/setcover/src/redblue.rs crates/setcover/src/reduce.rs

/root/repo/target/debug/deps/delprop_setcover-63d5914596360238: crates/setcover/src/lib.rs crates/setcover/src/bitset.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/lowdeg.rs crates/setcover/src/posneg.rs crates/setcover/src/redblue.rs crates/setcover/src/reduce.rs

crates/setcover/src/lib.rs:
crates/setcover/src/bitset.rs:
crates/setcover/src/exact.rs:
crates/setcover/src/greedy.rs:
crates/setcover/src/lowdeg.rs:
crates/setcover/src/posneg.rs:
crates/setcover/src/redblue.rs:
crates/setcover/src/reduce.rs:
