/root/repo/target/debug/deps/harness-33d2a3af1af7ae78.d: crates/bench/src/bin/harness.rs Cargo.toml

/root/repo/target/debug/deps/libharness-33d2a3af1af7ae78.rmeta: crates/bench/src/bin/harness.rs Cargo.toml

crates/bench/src/bin/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
