/root/repo/target/debug/deps/delprop_workload-c6ffa2676e794680.d: crates/workload/src/lib.rs crates/workload/src/cleaning.rs crates/workload/src/figures.rs crates/workload/src/forest.rs crates/workload/src/gadget.rs crates/workload/src/random_db.rs crates/workload/src/redblue_gen.rs crates/workload/src/rng.rs Cargo.toml

/root/repo/target/debug/deps/libdelprop_workload-c6ffa2676e794680.rmeta: crates/workload/src/lib.rs crates/workload/src/cleaning.rs crates/workload/src/figures.rs crates/workload/src/forest.rs crates/workload/src/gadget.rs crates/workload/src/random_db.rs crates/workload/src/redblue_gen.rs crates/workload/src/rng.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/cleaning.rs:
crates/workload/src/figures.rs:
crates/workload/src/forest.rs:
crates/workload/src/gadget.rs:
crates/workload/src/random_db.rs:
crates/workload/src/redblue_gen.rs:
crates/workload/src/rng.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
