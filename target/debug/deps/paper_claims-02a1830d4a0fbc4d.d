/root/repo/target/debug/deps/paper_claims-02a1830d4a0fbc4d.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-02a1830d4a0fbc4d.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
