/root/repo/target/debug/deps/delprop-cabf4b5bf36ba01d.d: src/bin/delprop.rs Cargo.toml

/root/repo/target/debug/deps/libdelprop-cabf4b5bf36ba01d.rmeta: src/bin/delprop.rs Cargo.toml

src/bin/delprop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
