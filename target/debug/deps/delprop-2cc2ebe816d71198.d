/root/repo/target/debug/deps/delprop-2cc2ebe816d71198.d: src/lib.rs src/script.rs

/root/repo/target/debug/deps/libdelprop-2cc2ebe816d71198.rlib: src/lib.rs src/script.rs

/root/repo/target/debug/deps/libdelprop-2cc2ebe816d71198.rmeta: src/lib.rs src/script.rs

src/lib.rs:
src/script.rs:
