/root/repo/target/debug/deps/delprop_setcover-45a9f71d64235f47.d: crates/setcover/src/lib.rs crates/setcover/src/bitset.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/lowdeg.rs crates/setcover/src/posneg.rs crates/setcover/src/redblue.rs crates/setcover/src/reduce.rs Cargo.toml

/root/repo/target/debug/deps/libdelprop_setcover-45a9f71d64235f47.rmeta: crates/setcover/src/lib.rs crates/setcover/src/bitset.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/lowdeg.rs crates/setcover/src/posneg.rs crates/setcover/src/redblue.rs crates/setcover/src/reduce.rs Cargo.toml

crates/setcover/src/lib.rs:
crates/setcover/src/bitset.rs:
crates/setcover/src/exact.rs:
crates/setcover/src/greedy.rs:
crates/setcover/src/lowdeg.rs:
crates/setcover/src/posneg.rs:
crates/setcover/src/redblue.rs:
crates/setcover/src/reduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
