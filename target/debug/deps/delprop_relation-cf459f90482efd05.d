/root/repo/target/debug/deps/delprop_relation-cf459f90482efd05.d: crates/relation/src/lib.rs crates/relation/src/database.rs crates/relation/src/error.rs crates/relation/src/fd.rs crates/relation/src/relation.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

/root/repo/target/debug/deps/delprop_relation-cf459f90482efd05: crates/relation/src/lib.rs crates/relation/src/database.rs crates/relation/src/error.rs crates/relation/src/fd.rs crates/relation/src/relation.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

crates/relation/src/lib.rs:
crates/relation/src/database.rs:
crates/relation/src/error.rs:
crates/relation/src/fd.rs:
crates/relation/src/relation.rs:
crates/relation/src/schema.rs:
crates/relation/src/tuple.rs:
crates/relation/src/value.rs:
