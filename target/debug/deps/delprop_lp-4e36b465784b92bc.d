/root/repo/target/debug/deps/delprop_lp-4e36b465784b92bc.d: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/libdelprop_lp-4e36b465784b92bc.rlib: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/libdelprop_lp-4e36b465784b92bc.rmeta: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/model.rs:
crates/lp/src/simplex.rs:
