/root/repo/target/debug/deps/delprop-c02b4d27ccfad1a3.d: src/bin/delprop.rs

/root/repo/target/debug/deps/delprop-c02b4d27ccfad1a3: src/bin/delprop.rs

src/bin/delprop.rs:
