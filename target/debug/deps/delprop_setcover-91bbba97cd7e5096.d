/root/repo/target/debug/deps/delprop_setcover-91bbba97cd7e5096.d: crates/setcover/src/lib.rs crates/setcover/src/bitset.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/lowdeg.rs crates/setcover/src/posneg.rs crates/setcover/src/redblue.rs crates/setcover/src/reduce.rs

/root/repo/target/debug/deps/libdelprop_setcover-91bbba97cd7e5096.rlib: crates/setcover/src/lib.rs crates/setcover/src/bitset.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/lowdeg.rs crates/setcover/src/posneg.rs crates/setcover/src/redblue.rs crates/setcover/src/reduce.rs

/root/repo/target/debug/deps/libdelprop_setcover-91bbba97cd7e5096.rmeta: crates/setcover/src/lib.rs crates/setcover/src/bitset.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/lowdeg.rs crates/setcover/src/posneg.rs crates/setcover/src/redblue.rs crates/setcover/src/reduce.rs

crates/setcover/src/lib.rs:
crates/setcover/src/bitset.rs:
crates/setcover/src/exact.rs:
crates/setcover/src/greedy.rs:
crates/setcover/src/lowdeg.rs:
crates/setcover/src/posneg.rs:
crates/setcover/src/redblue.rs:
crates/setcover/src/reduce.rs:
