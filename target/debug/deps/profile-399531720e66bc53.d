/root/repo/target/debug/deps/profile-399531720e66bc53.d: crates/bench/src/bin/profile.rs

/root/repo/target/debug/deps/profile-399531720e66bc53: crates/bench/src/bin/profile.rs

crates/bench/src/bin/profile.rs:
