/root/repo/target/debug/deps/profile-20ae12ccf78ed6d3.d: crates/bench/src/bin/profile.rs Cargo.toml

/root/repo/target/debug/deps/libprofile-20ae12ccf78ed6d3.rmeta: crates/bench/src/bin/profile.rs Cargo.toml

crates/bench/src/bin/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
