/root/repo/target/debug/deps/harness-556de79cb1b8bcce.d: crates/bench/src/bin/harness.rs

/root/repo/target/debug/deps/harness-556de79cb1b8bcce: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
