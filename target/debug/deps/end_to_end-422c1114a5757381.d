/root/repo/target/debug/deps/end_to_end-422c1114a5757381.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-422c1114a5757381: tests/end_to_end.rs

tests/end_to_end.rs:
