/root/repo/target/debug/deps/prop_extensions-3ab0b8b046e17db1.d: tests/prop_extensions.rs Cargo.toml

/root/repo/target/debug/deps/libprop_extensions-3ab0b8b046e17db1.rmeta: tests/prop_extensions.rs Cargo.toml

tests/prop_extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
