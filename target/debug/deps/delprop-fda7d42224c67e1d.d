/root/repo/target/debug/deps/delprop-fda7d42224c67e1d.d: src/bin/delprop.rs Cargo.toml

/root/repo/target/debug/deps/libdelprop-fda7d42224c67e1d.rmeta: src/bin/delprop.rs Cargo.toml

src/bin/delprop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
