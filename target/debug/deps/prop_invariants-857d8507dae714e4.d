/root/repo/target/debug/deps/prop_invariants-857d8507dae714e4.d: tests/prop_invariants.rs

/root/repo/target/debug/deps/prop_invariants-857d8507dae714e4: tests/prop_invariants.rs

tests/prop_invariants.rs:
