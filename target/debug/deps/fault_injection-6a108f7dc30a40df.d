/root/repo/target/debug/deps/fault_injection-6a108f7dc30a40df.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-6a108f7dc30a40df: tests/fault_injection.rs

tests/fault_injection.rs:
