/root/repo/target/debug/deps/delprop_hypergraph-e169ecb7984e032c.d: crates/hypergraph/src/lib.rs crates/hypergraph/src/datagraph.rs crates/hypergraph/src/dual.rs crates/hypergraph/src/gyo.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/pivot.rs

/root/repo/target/debug/deps/delprop_hypergraph-e169ecb7984e032c: crates/hypergraph/src/lib.rs crates/hypergraph/src/datagraph.rs crates/hypergraph/src/dual.rs crates/hypergraph/src/gyo.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/pivot.rs

crates/hypergraph/src/lib.rs:
crates/hypergraph/src/datagraph.rs:
crates/hypergraph/src/dual.rs:
crates/hypergraph/src/gyo.rs:
crates/hypergraph/src/hypergraph.rs:
crates/hypergraph/src/pivot.rs:
