/root/repo/target/debug/deps/delprop_lp-8c24d2e0e75f752a.d: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/delprop_lp-8c24d2e0e75f752a: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/model.rs:
crates/lp/src/simplex.rs:
