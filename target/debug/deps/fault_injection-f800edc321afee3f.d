/root/repo/target/debug/deps/fault_injection-f800edc321afee3f.d: tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-f800edc321afee3f.rmeta: tests/fault_injection.rs Cargo.toml

tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
