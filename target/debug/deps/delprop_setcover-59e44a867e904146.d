/root/repo/target/debug/deps/delprop_setcover-59e44a867e904146.d: crates/setcover/src/lib.rs crates/setcover/src/bitset.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/lowdeg.rs crates/setcover/src/posneg.rs crates/setcover/src/redblue.rs crates/setcover/src/reduce.rs Cargo.toml

/root/repo/target/debug/deps/libdelprop_setcover-59e44a867e904146.rmeta: crates/setcover/src/lib.rs crates/setcover/src/bitset.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/lowdeg.rs crates/setcover/src/posneg.rs crates/setcover/src/redblue.rs crates/setcover/src/reduce.rs Cargo.toml

crates/setcover/src/lib.rs:
crates/setcover/src/bitset.rs:
crates/setcover/src/exact.rs:
crates/setcover/src/greedy.rs:
crates/setcover/src/lowdeg.rs:
crates/setcover/src/posneg.rs:
crates/setcover/src/redblue.rs:
crates/setcover/src/reduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
