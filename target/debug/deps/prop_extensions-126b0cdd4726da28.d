/root/repo/target/debug/deps/prop_extensions-126b0cdd4726da28.d: tests/prop_extensions.rs

/root/repo/target/debug/deps/prop_extensions-126b0cdd4726da28: tests/prop_extensions.rs

tests/prop_extensions.rs:
