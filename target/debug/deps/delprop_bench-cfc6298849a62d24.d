/root/repo/target/debug/deps/delprop_bench-cfc6298849a62d24.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/delprop_bench-cfc6298849a62d24: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
