/root/repo/target/debug/deps/paper_claims-a34237105753ab4d.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-a34237105753ab4d: tests/paper_claims.rs

tests/paper_claims.rs:
