/root/repo/target/debug/deps/delprop-062da3b98611bf05.d: src/lib.rs src/script.rs Cargo.toml

/root/repo/target/debug/deps/libdelprop-062da3b98611bf05.rmeta: src/lib.rs src/script.rs Cargo.toml

src/lib.rs:
src/script.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
