/root/repo/target/debug/deps/delprop-d9c0b8eb533671fa.d: src/lib.rs src/script.rs Cargo.toml

/root/repo/target/debug/deps/libdelprop-d9c0b8eb533671fa.rmeta: src/lib.rs src/script.rs Cargo.toml

src/lib.rs:
src/script.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
