/root/repo/target/debug/deps/delprop_relation-b63c40e019f2a3ad.d: crates/relation/src/lib.rs crates/relation/src/database.rs crates/relation/src/error.rs crates/relation/src/fd.rs crates/relation/src/relation.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

/root/repo/target/debug/deps/libdelprop_relation-b63c40e019f2a3ad.rlib: crates/relation/src/lib.rs crates/relation/src/database.rs crates/relation/src/error.rs crates/relation/src/fd.rs crates/relation/src/relation.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

/root/repo/target/debug/deps/libdelprop_relation-b63c40e019f2a3ad.rmeta: crates/relation/src/lib.rs crates/relation/src/database.rs crates/relation/src/error.rs crates/relation/src/fd.rs crates/relation/src/relation.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

crates/relation/src/lib.rs:
crates/relation/src/database.rs:
crates/relation/src/error.rs:
crates/relation/src/fd.rs:
crates/relation/src/relation.rs:
crates/relation/src/schema.rs:
crates/relation/src/tuple.rs:
crates/relation/src/value.rs:
