/root/repo/target/debug/deps/delprop_core-f6733b9b000394f3.d: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/error.rs crates/core/src/landscape.rs crates/core/src/problem.rs crates/core/src/reduction.rs crates/core/src/runtime/mod.rs crates/core/src/runtime/budget.rs crates/core/src/runtime/fault.rs crates/core/src/runtime/portfolio.rs crates/core/src/runtime/solver.rs crates/core/src/solution.rs crates/core/src/solvers/mod.rs crates/core/src/solvers/dp_tree.rs crates/core/src/solvers/exact.rs crates/core/src/solvers/general.rs crates/core/src/solvers/local_search.rs crates/core/src/solvers/lowdeg_tree.rs crates/core/src/solvers/lp_round.rs crates/core/src/solvers/primal_dual.rs crates/core/src/solvers/primal_dual_balanced.rs crates/core/src/solvers/single_query.rs crates/core/src/solvers/source.rs

/root/repo/target/debug/deps/libdelprop_core-f6733b9b000394f3.rlib: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/error.rs crates/core/src/landscape.rs crates/core/src/problem.rs crates/core/src/reduction.rs crates/core/src/runtime/mod.rs crates/core/src/runtime/budget.rs crates/core/src/runtime/fault.rs crates/core/src/runtime/portfolio.rs crates/core/src/runtime/solver.rs crates/core/src/solution.rs crates/core/src/solvers/mod.rs crates/core/src/solvers/dp_tree.rs crates/core/src/solvers/exact.rs crates/core/src/solvers/general.rs crates/core/src/solvers/local_search.rs crates/core/src/solvers/lowdeg_tree.rs crates/core/src/solvers/lp_round.rs crates/core/src/solvers/primal_dual.rs crates/core/src/solvers/primal_dual_balanced.rs crates/core/src/solvers/single_query.rs crates/core/src/solvers/source.rs

/root/repo/target/debug/deps/libdelprop_core-f6733b9b000394f3.rmeta: crates/core/src/lib.rs crates/core/src/classify.rs crates/core/src/error.rs crates/core/src/landscape.rs crates/core/src/problem.rs crates/core/src/reduction.rs crates/core/src/runtime/mod.rs crates/core/src/runtime/budget.rs crates/core/src/runtime/fault.rs crates/core/src/runtime/portfolio.rs crates/core/src/runtime/solver.rs crates/core/src/solution.rs crates/core/src/solvers/mod.rs crates/core/src/solvers/dp_tree.rs crates/core/src/solvers/exact.rs crates/core/src/solvers/general.rs crates/core/src/solvers/local_search.rs crates/core/src/solvers/lowdeg_tree.rs crates/core/src/solvers/lp_round.rs crates/core/src/solvers/primal_dual.rs crates/core/src/solvers/primal_dual_balanced.rs crates/core/src/solvers/single_query.rs crates/core/src/solvers/source.rs

crates/core/src/lib.rs:
crates/core/src/classify.rs:
crates/core/src/error.rs:
crates/core/src/landscape.rs:
crates/core/src/problem.rs:
crates/core/src/reduction.rs:
crates/core/src/runtime/mod.rs:
crates/core/src/runtime/budget.rs:
crates/core/src/runtime/fault.rs:
crates/core/src/runtime/portfolio.rs:
crates/core/src/runtime/solver.rs:
crates/core/src/solution.rs:
crates/core/src/solvers/mod.rs:
crates/core/src/solvers/dp_tree.rs:
crates/core/src/solvers/exact.rs:
crates/core/src/solvers/general.rs:
crates/core/src/solvers/local_search.rs:
crates/core/src/solvers/lowdeg_tree.rs:
crates/core/src/solvers/lp_round.rs:
crates/core/src/solvers/primal_dual.rs:
crates/core/src/solvers/primal_dual_balanced.rs:
crates/core/src/solvers/single_query.rs:
crates/core/src/solvers/source.rs:
