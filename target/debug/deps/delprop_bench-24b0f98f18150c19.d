/root/repo/target/debug/deps/delprop_bench-24b0f98f18150c19.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libdelprop_bench-24b0f98f18150c19.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
