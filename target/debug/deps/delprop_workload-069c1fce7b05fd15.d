/root/repo/target/debug/deps/delprop_workload-069c1fce7b05fd15.d: crates/workload/src/lib.rs crates/workload/src/cleaning.rs crates/workload/src/figures.rs crates/workload/src/forest.rs crates/workload/src/gadget.rs crates/workload/src/random_db.rs crates/workload/src/redblue_gen.rs crates/workload/src/rng.rs

/root/repo/target/debug/deps/delprop_workload-069c1fce7b05fd15: crates/workload/src/lib.rs crates/workload/src/cleaning.rs crates/workload/src/figures.rs crates/workload/src/forest.rs crates/workload/src/gadget.rs crates/workload/src/random_db.rs crates/workload/src/redblue_gen.rs crates/workload/src/rng.rs

crates/workload/src/lib.rs:
crates/workload/src/cleaning.rs:
crates/workload/src/figures.rs:
crates/workload/src/forest.rs:
crates/workload/src/gadget.rs:
crates/workload/src/random_db.rs:
crates/workload/src/redblue_gen.rs:
crates/workload/src/rng.rs:
