/root/repo/target/debug/deps/degenerate-95ad855a97f31d79.d: tests/degenerate.rs

/root/repo/target/debug/deps/degenerate-95ad855a97f31d79: tests/degenerate.rs

tests/degenerate.rs:
