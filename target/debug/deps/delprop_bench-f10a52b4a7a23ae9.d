/root/repo/target/debug/deps/delprop_bench-f10a52b4a7a23ae9.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libdelprop_bench-f10a52b4a7a23ae9.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/debug/deps/libdelprop_bench-f10a52b4a7a23ae9.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
