/root/repo/target/debug/deps/delprop_relation-03fd657a904d9561.d: crates/relation/src/lib.rs crates/relation/src/database.rs crates/relation/src/error.rs crates/relation/src/fd.rs crates/relation/src/relation.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libdelprop_relation-03fd657a904d9561.rmeta: crates/relation/src/lib.rs crates/relation/src/database.rs crates/relation/src/error.rs crates/relation/src/fd.rs crates/relation/src/relation.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs Cargo.toml

crates/relation/src/lib.rs:
crates/relation/src/database.rs:
crates/relation/src/error.rs:
crates/relation/src/fd.rs:
crates/relation/src/relation.rs:
crates/relation/src/schema.rs:
crates/relation/src/tuple.rs:
crates/relation/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
