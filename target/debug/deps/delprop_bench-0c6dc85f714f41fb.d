/root/repo/target/debug/deps/delprop_bench-0c6dc85f714f41fb.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libdelprop_bench-0c6dc85f714f41fb.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
