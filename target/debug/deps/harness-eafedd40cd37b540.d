/root/repo/target/debug/deps/harness-eafedd40cd37b540.d: crates/bench/src/bin/harness.rs Cargo.toml

/root/repo/target/debug/deps/libharness-eafedd40cd37b540.rmeta: crates/bench/src/bin/harness.rs Cargo.toml

crates/bench/src/bin/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
