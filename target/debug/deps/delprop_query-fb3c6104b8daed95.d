/root/repo/target/debug/deps/delprop_query-fb3c6104b8daed95.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/containment.rs crates/query/src/error.rs crates/query/src/eval/mod.rs crates/query/src/eval/compile.rs crates/query/src/eval/hashjoin.rs crates/query/src/eval/jointree.rs crates/query/src/eval/naive.rs crates/query/src/eval/yannakakis.rs crates/query/src/maintain.rs crates/query/src/parse.rs crates/query/src/properties.rs crates/query/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libdelprop_query-fb3c6104b8daed95.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/containment.rs crates/query/src/error.rs crates/query/src/eval/mod.rs crates/query/src/eval/compile.rs crates/query/src/eval/hashjoin.rs crates/query/src/eval/jointree.rs crates/query/src/eval/naive.rs crates/query/src/eval/yannakakis.rs crates/query/src/maintain.rs crates/query/src/parse.rs crates/query/src/properties.rs crates/query/src/view.rs Cargo.toml

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/containment.rs:
crates/query/src/error.rs:
crates/query/src/eval/mod.rs:
crates/query/src/eval/compile.rs:
crates/query/src/eval/hashjoin.rs:
crates/query/src/eval/jointree.rs:
crates/query/src/eval/naive.rs:
crates/query/src/eval/yannakakis.rs:
crates/query/src/maintain.rs:
crates/query/src/parse.rs:
crates/query/src/properties.rs:
crates/query/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
