/root/repo/target/debug/deps/scratch_nodes-c6d8769c6a4f0605.d: tests/scratch_nodes.rs

/root/repo/target/debug/deps/scratch_nodes-c6d8769c6a4f0605: tests/scratch_nodes.rs

tests/scratch_nodes.rs:
