/root/repo/target/debug/deps/profile-f36e43fe80f64ccb.d: crates/bench/src/bin/profile.rs Cargo.toml

/root/repo/target/debug/deps/libprofile-f36e43fe80f64ccb.rmeta: crates/bench/src/bin/profile.rs Cargo.toml

crates/bench/src/bin/profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
