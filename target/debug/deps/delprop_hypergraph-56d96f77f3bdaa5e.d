/root/repo/target/debug/deps/delprop_hypergraph-56d96f77f3bdaa5e.d: crates/hypergraph/src/lib.rs crates/hypergraph/src/datagraph.rs crates/hypergraph/src/dual.rs crates/hypergraph/src/gyo.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/pivot.rs

/root/repo/target/debug/deps/libdelprop_hypergraph-56d96f77f3bdaa5e.rlib: crates/hypergraph/src/lib.rs crates/hypergraph/src/datagraph.rs crates/hypergraph/src/dual.rs crates/hypergraph/src/gyo.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/pivot.rs

/root/repo/target/debug/deps/libdelprop_hypergraph-56d96f77f3bdaa5e.rmeta: crates/hypergraph/src/lib.rs crates/hypergraph/src/datagraph.rs crates/hypergraph/src/dual.rs crates/hypergraph/src/gyo.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/pivot.rs

crates/hypergraph/src/lib.rs:
crates/hypergraph/src/datagraph.rs:
crates/hypergraph/src/dual.rs:
crates/hypergraph/src/gyo.rs:
crates/hypergraph/src/hypergraph.rs:
crates/hypergraph/src/pivot.rs:
