/root/repo/target/debug/deps/delprop_lp-cdf2d1fe155d8f39.d: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/simplex.rs Cargo.toml

/root/repo/target/debug/deps/libdelprop_lp-cdf2d1fe155d8f39.rmeta: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/simplex.rs Cargo.toml

crates/lp/src/lib.rs:
crates/lp/src/model.rs:
crates/lp/src/simplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
