/root/repo/target/debug/deps/delprop_relation-36e8fd594b2a18c8.d: crates/relation/src/lib.rs crates/relation/src/database.rs crates/relation/src/error.rs crates/relation/src/fd.rs crates/relation/src/relation.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libdelprop_relation-36e8fd594b2a18c8.rmeta: crates/relation/src/lib.rs crates/relation/src/database.rs crates/relation/src/error.rs crates/relation/src/fd.rs crates/relation/src/relation.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs Cargo.toml

crates/relation/src/lib.rs:
crates/relation/src/database.rs:
crates/relation/src/error.rs:
crates/relation/src/fd.rs:
crates/relation/src/relation.rs:
crates/relation/src/schema.rs:
crates/relation/src/tuple.rs:
crates/relation/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
