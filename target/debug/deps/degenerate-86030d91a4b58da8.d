/root/repo/target/debug/deps/degenerate-86030d91a4b58da8.d: tests/degenerate.rs Cargo.toml

/root/repo/target/debug/deps/libdegenerate-86030d91a4b58da8.rmeta: tests/degenerate.rs Cargo.toml

tests/degenerate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
