/root/repo/target/debug/deps/delprop-84dd5b545e3ce30a.d: src/lib.rs src/script.rs

/root/repo/target/debug/deps/delprop-84dd5b545e3ce30a: src/lib.rs src/script.rs

src/lib.rs:
src/script.rs:
