/root/repo/target/release/deps/delprop_hypergraph-cf0b155e679390c5.d: crates/hypergraph/src/lib.rs crates/hypergraph/src/datagraph.rs crates/hypergraph/src/dual.rs crates/hypergraph/src/gyo.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/pivot.rs

/root/repo/target/release/deps/libdelprop_hypergraph-cf0b155e679390c5.rlib: crates/hypergraph/src/lib.rs crates/hypergraph/src/datagraph.rs crates/hypergraph/src/dual.rs crates/hypergraph/src/gyo.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/pivot.rs

/root/repo/target/release/deps/libdelprop_hypergraph-cf0b155e679390c5.rmeta: crates/hypergraph/src/lib.rs crates/hypergraph/src/datagraph.rs crates/hypergraph/src/dual.rs crates/hypergraph/src/gyo.rs crates/hypergraph/src/hypergraph.rs crates/hypergraph/src/pivot.rs

crates/hypergraph/src/lib.rs:
crates/hypergraph/src/datagraph.rs:
crates/hypergraph/src/dual.rs:
crates/hypergraph/src/gyo.rs:
crates/hypergraph/src/hypergraph.rs:
crates/hypergraph/src/pivot.rs:
