/root/repo/target/release/deps/delprop_bench-9535c947386c06ad.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libdelprop_bench-9535c947386c06ad.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs

/root/repo/target/release/deps/libdelprop_bench-9535c947386c06ad.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
