/root/repo/target/release/deps/delprop_workload-7d69960a5fa660ff.d: crates/workload/src/lib.rs crates/workload/src/cleaning.rs crates/workload/src/figures.rs crates/workload/src/forest.rs crates/workload/src/gadget.rs crates/workload/src/random_db.rs crates/workload/src/redblue_gen.rs crates/workload/src/rng.rs

/root/repo/target/release/deps/libdelprop_workload-7d69960a5fa660ff.rlib: crates/workload/src/lib.rs crates/workload/src/cleaning.rs crates/workload/src/figures.rs crates/workload/src/forest.rs crates/workload/src/gadget.rs crates/workload/src/random_db.rs crates/workload/src/redblue_gen.rs crates/workload/src/rng.rs

/root/repo/target/release/deps/libdelprop_workload-7d69960a5fa660ff.rmeta: crates/workload/src/lib.rs crates/workload/src/cleaning.rs crates/workload/src/figures.rs crates/workload/src/forest.rs crates/workload/src/gadget.rs crates/workload/src/random_db.rs crates/workload/src/redblue_gen.rs crates/workload/src/rng.rs

crates/workload/src/lib.rs:
crates/workload/src/cleaning.rs:
crates/workload/src/figures.rs:
crates/workload/src/forest.rs:
crates/workload/src/gadget.rs:
crates/workload/src/random_db.rs:
crates/workload/src/redblue_gen.rs:
crates/workload/src/rng.rs:
