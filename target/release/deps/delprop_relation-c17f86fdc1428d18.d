/root/repo/target/release/deps/delprop_relation-c17f86fdc1428d18.d: crates/relation/src/lib.rs crates/relation/src/database.rs crates/relation/src/error.rs crates/relation/src/fd.rs crates/relation/src/relation.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

/root/repo/target/release/deps/libdelprop_relation-c17f86fdc1428d18.rlib: crates/relation/src/lib.rs crates/relation/src/database.rs crates/relation/src/error.rs crates/relation/src/fd.rs crates/relation/src/relation.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

/root/repo/target/release/deps/libdelprop_relation-c17f86fdc1428d18.rmeta: crates/relation/src/lib.rs crates/relation/src/database.rs crates/relation/src/error.rs crates/relation/src/fd.rs crates/relation/src/relation.rs crates/relation/src/schema.rs crates/relation/src/tuple.rs crates/relation/src/value.rs

crates/relation/src/lib.rs:
crates/relation/src/database.rs:
crates/relation/src/error.rs:
crates/relation/src/fd.rs:
crates/relation/src/relation.rs:
crates/relation/src/schema.rs:
crates/relation/src/tuple.rs:
crates/relation/src/value.rs:
