/root/repo/target/release/deps/delprop_query-055a5545e62dd17b.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/containment.rs crates/query/src/error.rs crates/query/src/eval/mod.rs crates/query/src/eval/compile.rs crates/query/src/eval/hashjoin.rs crates/query/src/eval/jointree.rs crates/query/src/eval/naive.rs crates/query/src/eval/yannakakis.rs crates/query/src/maintain.rs crates/query/src/parse.rs crates/query/src/properties.rs crates/query/src/view.rs

/root/repo/target/release/deps/libdelprop_query-055a5545e62dd17b.rlib: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/containment.rs crates/query/src/error.rs crates/query/src/eval/mod.rs crates/query/src/eval/compile.rs crates/query/src/eval/hashjoin.rs crates/query/src/eval/jointree.rs crates/query/src/eval/naive.rs crates/query/src/eval/yannakakis.rs crates/query/src/maintain.rs crates/query/src/parse.rs crates/query/src/properties.rs crates/query/src/view.rs

/root/repo/target/release/deps/libdelprop_query-055a5545e62dd17b.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/containment.rs crates/query/src/error.rs crates/query/src/eval/mod.rs crates/query/src/eval/compile.rs crates/query/src/eval/hashjoin.rs crates/query/src/eval/jointree.rs crates/query/src/eval/naive.rs crates/query/src/eval/yannakakis.rs crates/query/src/maintain.rs crates/query/src/parse.rs crates/query/src/properties.rs crates/query/src/view.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/containment.rs:
crates/query/src/error.rs:
crates/query/src/eval/mod.rs:
crates/query/src/eval/compile.rs:
crates/query/src/eval/hashjoin.rs:
crates/query/src/eval/jointree.rs:
crates/query/src/eval/naive.rs:
crates/query/src/eval/yannakakis.rs:
crates/query/src/maintain.rs:
crates/query/src/parse.rs:
crates/query/src/properties.rs:
crates/query/src/view.rs:
