/root/repo/target/release/deps/delprop_setcover-52f951fcc3ccb32c.d: crates/setcover/src/lib.rs crates/setcover/src/bitset.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/lowdeg.rs crates/setcover/src/posneg.rs crates/setcover/src/redblue.rs crates/setcover/src/reduce.rs

/root/repo/target/release/deps/libdelprop_setcover-52f951fcc3ccb32c.rlib: crates/setcover/src/lib.rs crates/setcover/src/bitset.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/lowdeg.rs crates/setcover/src/posneg.rs crates/setcover/src/redblue.rs crates/setcover/src/reduce.rs

/root/repo/target/release/deps/libdelprop_setcover-52f951fcc3ccb32c.rmeta: crates/setcover/src/lib.rs crates/setcover/src/bitset.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/lowdeg.rs crates/setcover/src/posneg.rs crates/setcover/src/redblue.rs crates/setcover/src/reduce.rs

crates/setcover/src/lib.rs:
crates/setcover/src/bitset.rs:
crates/setcover/src/exact.rs:
crates/setcover/src/greedy.rs:
crates/setcover/src/lowdeg.rs:
crates/setcover/src/posneg.rs:
crates/setcover/src/redblue.rs:
crates/setcover/src/reduce.rs:
