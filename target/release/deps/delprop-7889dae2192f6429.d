/root/repo/target/release/deps/delprop-7889dae2192f6429.d: src/lib.rs src/script.rs

/root/repo/target/release/deps/libdelprop-7889dae2192f6429.rlib: src/lib.rs src/script.rs

/root/repo/target/release/deps/libdelprop-7889dae2192f6429.rmeta: src/lib.rs src/script.rs

src/lib.rs:
src/script.rs:
