/root/repo/target/release/deps/harness-ae8ee514dcdc56da.d: crates/bench/src/bin/harness.rs

/root/repo/target/release/deps/harness-ae8ee514dcdc56da: crates/bench/src/bin/harness.rs

crates/bench/src/bin/harness.rs:
