/root/repo/target/release/deps/delprop_lp-d3212ca4fe326cfa.d: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

/root/repo/target/release/deps/libdelprop_lp-d3212ca4fe326cfa.rlib: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

/root/repo/target/release/deps/libdelprop_lp-d3212ca4fe326cfa.rmeta: crates/lp/src/lib.rs crates/lp/src/model.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/model.rs:
crates/lp/src/simplex.rs:
