/root/repo/target/release/deps/delprop-693274784b66c50b.d: src/bin/delprop.rs

/root/repo/target/release/deps/delprop-693274784b66c50b: src/bin/delprop.rs

src/bin/delprop.rs:
