/root/repo/target/release/examples/quickstart-653ebaa9817af1de.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-653ebaa9817af1de: examples/quickstart.rs

examples/quickstart.rs:
