/root/repo/target/release/examples/portfolio-a5698272e4252507.d: examples/portfolio.rs

/root/repo/target/release/examples/portfolio-a5698272e4252507: examples/portfolio.rs

examples/portfolio.rs:
