//! Replayable schedule seeds.
//!
//! A [`Seed`] is the full list of multi-candidate scheduling choices a
//! failing run took, each an index into that decision's
//! deterministically ordered candidate list (see
//! `crate::exec`). Replaying a seed re-runs the closure under exactly
//! that schedule, provided the closure itself is deterministic apart
//! from thread interleaving (no wall-clock branching, no hash-seed
//! dependent iteration in the modeled protocol).
//!
//! The text form is `mc1:` followed by dot-separated decimal choices
//! (`mc1:` alone is the default, choice-free schedule), so a failing
//! seed printed by [`crate::check`] can be pasted straight back into
//! [`crate::replay`] or an `DELPROP_MODEL_SEED`-style env var.

use std::fmt;
use std::str::FromStr;

/// Version prefix of the text form; bump if the decision-recording
/// contract (candidate ordering, which points record) ever changes.
const PREFIX: &str = "mc1:";

/// A replayable schedule: the recorded choice at every multi-candidate
/// scheduling decision of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Seed {
    /// Per recorded decision, the index into its candidate list.
    pub choices: Vec<u32>,
}

impl Seed {
    /// The schedule with no forced choices (default policy throughout).
    pub fn empty() -> Self {
        Seed {
            choices: Vec::new(),
        }
    }
}

impl fmt::Display for Seed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(PREFIX)?;
        for (i, c) in self.choices.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Why a seed string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSeedError(String);

impl fmt::Display for ParseSeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid modelcheck seed: {}", self.0)
    }
}

impl std::error::Error for ParseSeedError {}

impl FromStr for Seed {
    type Err = ParseSeedError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix(PREFIX)
            .ok_or_else(|| ParseSeedError(format!("missing `{PREFIX}` prefix in {s:?}")))?;
        if rest.is_empty() {
            return Ok(Seed::empty());
        }
        let choices = rest
            .split('.')
            .map(|part| {
                part.parse::<u32>()
                    .map_err(|e| ParseSeedError(format!("bad choice {part:?}: {e}")))
            })
            .collect::<Result<Vec<u32>, _>>()?;
        Ok(Seed { choices })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        for choices in [vec![], vec![0], vec![3, 0, 1, 2], vec![u32::MAX, 7]] {
            let seed = Seed {
                choices: choices.clone(),
            };
            let text = seed.to_string();
            let back: Seed = text.parse().expect("round trip");
            assert_eq!(back, seed, "via {text}");
        }
    }

    #[test]
    fn empty_seed_is_bare_prefix() {
        assert_eq!(Seed::empty().to_string(), "mc1:");
        assert_eq!("mc1:".parse::<Seed>(), Ok(Seed::empty()));
    }

    #[test]
    fn rejects_garbage() {
        assert!("".parse::<Seed>().is_err());
        assert!("mc2:1.2".parse::<Seed>().is_err());
        assert!("mc1:1..2".parse::<Seed>().is_err());
        assert!("mc1:x".parse::<Seed>().is_err());
        assert!("mc1:-1".parse::<Seed>().is_err());
    }
}
