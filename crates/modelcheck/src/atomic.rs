//! Instrumented drop-in replacements for `std::sync::atomic` types.
//!
//! Each operation is a scheduling point: under an active exploration
//! ([`crate::explore`]) the engine may hand the baton to another
//! registered thread *before* the operation executes, which is exactly
//! the granularity needed to interleave lock-free protocols. Outside an
//! exploration every call is a plain passthrough to the underlying std
//! atomic (one thread-local read of overhead).
//!
//! The memory-`Ordering` argument is accepted and forwarded to the real
//! atomic, but exploration itself is sequentially consistent: the
//! engine explores *orderings of operations*, not weak-memory
//! *reorderings*. `compare_exchange_weak` is modeled as the strong
//! variant (no spurious failures are injected). Weak-memory and
//! data-race coverage is delegated to Miri and ThreadSanitizer in CI.

use crate::exec::yield_op;
use std::fmt;
use std::sync::atomic::Ordering;

macro_rules! instrumented_atomic {
    ($name:ident, $inner:path, $ty:ty) => {
        /// Instrumented counterpart of the std atomic of the same name;
        /// see the module docs.
        pub struct $name {
            inner: $inner,
        }

        impl $name {
            /// Const-constructible, so `static` registries (metrics)
            /// work identically in model builds.
            pub const fn new(v: $ty) -> Self {
                Self {
                    inner: <$inner>::new(v),
                }
            }

            pub fn load(&self, order: Ordering) -> $ty {
                yield_op();
                self.inner.load(order)
            }

            pub fn store(&self, val: $ty, order: Ordering) {
                yield_op();
                self.inner.store(val, order)
            }

            pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                yield_op();
                self.inner.swap(val, order)
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                yield_op();
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Modeled as the strong variant: the scheduler does not
            /// inject spurious failures, it only interleaves.
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Decomposed into an instrumented load + CAS loop so the
            /// scheduler can preempt between the read and the update —
            /// the interleaving a `fetch_update`-based protocol must
            /// survive.
            pub fn fetch_update<F>(
                &self,
                set_order: Ordering,
                fetch_order: Ordering,
                mut f: F,
            ) -> Result<$ty, $ty>
            where
                F: FnMut($ty) -> Option<$ty>,
            {
                let mut prev = self.load(fetch_order);
                loop {
                    let next = match f(prev) {
                        Some(next) => next,
                        None => return Err(prev),
                    };
                    match self.compare_exchange_weak(prev, next, set_order, fetch_order) {
                        Ok(old) => return Ok(old),
                        Err(now) => prev = now,
                    }
                }
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                // No yield: Debug formatting is diagnostic, not protocol.
                fmt::Debug::fmt(&self.inner, f)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }
    };
}

instrumented_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
instrumented_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
instrumented_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

macro_rules! instrumented_arith {
    ($name:ident, $ty:ty) => {
        impl $name {
            pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                yield_op();
                self.inner.fetch_add(val, order)
            }

            pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                yield_op();
                self.inner.fetch_sub(val, order)
            }
        }
    };
}

instrumented_arith!(AtomicU64, u64);
instrumented_arith!(AtomicUsize, usize);

/// Instrumented `std::sync::atomic::fence`: a scheduling point followed
/// by the real fence (orderings matter to Miri/TSan runs of the same
/// code, not to the sequentially consistent model).
pub fn fence(order: Ordering) {
    yield_op();
    std::sync::atomic::fence(order)
}
