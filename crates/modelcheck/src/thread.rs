//! Scheduler-aware thread spawning: drop-in `scope`/`spawn`/`yield_now`
//! that register spawned threads with the active exploration (when one
//! is running on the calling thread) and pass straight through to
//! `std::thread` otherwise.
//!
//! Registered threads participate in the serialized baton protocol of
//! `crate::exec`: a spawned thread does not run until the scheduler
//! picks it, joins are scheduling points, and a scope's implicit joins
//! go through the scheduler before `std`'s own join (which then returns
//! immediately).

use crate::exec::{self, Execution};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

/// Registration ticket a spawning thread passes into the spawned one.
type Registration = Option<(Arc<Execution>, usize)>;

/// Register a child thread with the calling thread's active execution,
/// if any.
fn register_child() -> Registration {
    exec::active().map(|(e, _)| {
        let tid = e.register_child();
        (e, tid)
    })
}

/// Body wrapper for registered threads: install TLS, wait to be
/// scheduled, run, and hand the baton on — releasing it on unwind too,
/// so a panicking schedule cannot wedge its siblings.
fn run_registered<T>(reg: Registration, f: impl FnOnce() -> T) -> T {
    match reg {
        None => f(),
        Some((exec, tid)) => {
            exec::set_tls(Arc::clone(&exec), tid);
            exec.wait_first_schedule(tid);
            let outcome = panic::catch_unwind(AssertUnwindSafe(f));
            exec.finish_thread(tid, outcome.is_err());
            exec::clear_tls();
            match outcome {
                Ok(v) => v,
                Err(payload) => panic::resume_unwind(payload),
            }
        }
    }
}

/// Scheduler-aware counterpart of [`std::thread::Scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    children: Mutex<Vec<usize>>,
}

/// Scheduler-aware counterpart of [`std::thread::ScopedJoinHandle`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    tid: Option<usize>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Join through the scheduler (a blocking scheduling point), then
    /// through std.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(tid), Some((exec, me))) = (self.tid, exec::active()) {
            exec.join(me, tid);
        }
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread, registered with the active exploration
    /// when there is one.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let reg = register_child();
        let tid = reg.as_ref().map(|(_, t)| *t);
        if let Some(t) = tid {
            self.children
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(t);
        }
        let handle = self.inner.spawn(move || run_registered(reg, f));
        // Let the scheduler consider running the child right away:
        // child-first interleavings are schedules too.
        exec::yield_op();
        ScopedJoinHandle { inner: handle, tid }
    }
}

/// Scheduler-aware counterpart of [`std::thread::scope`].
///
/// On normal exit, every child spawned through the wrapper is joined
/// *through the scheduler* before std's implicit joins run. If the
/// closure unwinds, the execution switches to free-run so the scoped
/// children can drain natively and std's joins complete — the panic
/// then propagates as usual and the explorer records the schedule as
/// failing.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| {
        let wrapper = Scope {
            inner: s,
            children: Mutex::new(Vec::new()),
        };
        match panic::catch_unwind(AssertUnwindSafe(|| f(&wrapper))) {
            Ok(value) => {
                if let Some((exec, me)) = exec::active() {
                    let tids: Vec<usize> = std::mem::take(
                        &mut *wrapper.children.lock().unwrap_or_else(|e| e.into_inner()),
                    );
                    for tid in tids {
                        exec.join(me, tid);
                    }
                }
                value
            }
            Err(payload) => {
                exec::mark_free_run();
                panic::resume_unwind(payload)
            }
        }
    })
}

/// Scheduler-aware counterpart of [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    tid: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Join through the scheduler (a blocking scheduling point), then
    /// through std.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(tid), Some((exec, me))) = (self.tid, exec::active()) {
            exec.join(me, tid);
        }
        self.inner.join()
    }
}

/// Scheduler-aware counterpart of [`std::thread::spawn`]. Under an
/// exploration the spawned thread MUST be joined before the explored
/// closure returns (the explorer reports a leaked registered thread as
/// a failing schedule).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let reg = register_child();
    let tid = reg.as_ref().map(|(_, t)| *t);
    let handle = std::thread::spawn(move || run_registered(reg, f));
    exec::yield_op();
    JoinHandle { inner: handle, tid }
}

/// Voluntary deschedule: a scheduling point under an exploration,
/// [`std::thread::yield_now`] otherwise.
pub fn yield_now() {
    if exec::is_active() {
        exec::yield_voluntary();
    } else {
        std::thread::yield_now();
    }
}
