//! # delprop-modelcheck — an in-repo deterministic concurrency checker
//!
//! A loom-lite, zero-dependency model checker for the lock-free
//! protocols in `delprop-core::runtime` (atomic budget pool, seqlock
//! trace ring, racing portfolio cancellation). It runs a closure under
//! *many thread schedules* — bounded-exhaustive DFS over yield points
//! for small models, seeded random walks with a preemption bound for
//! larger ones — and reports any failing schedule as a **replayable,
//! shrunk seed**.
//!
//! ## How interposition works
//!
//! Code under test uses the instrumented primitives in [`atomic`] and
//! [`thread`] (in `delprop-core` these are reached through the
//! `runtime::sync` facade, which re-exports plain `std` in normal
//! builds and this crate under `cfg(delprop_model)`). Every atomic
//! operation, spawn, join, and voluntary yield is a *scheduling point*:
//! under an active [`explore`] run, exactly one registered thread
//! executes at a time and the scheduler decides who proceeds at each
//! point. Between two points a thread runs atomically with respect to
//! the model, so the explored space is precisely the interleavings of
//! instrumented operations under sequential consistency.
//!
//! Outside an exploration every primitive passes straight through to
//! `std` at the cost of one thread-local read, so the same test code
//! can run natively (as a stress test) and under the model.
//!
//! ## What this checker is *not*
//!
//! It is not a weak-memory simulator: `Ordering`s are forwarded but not
//! modeled (everything is sequentially consistent), and
//! `compare_exchange_weak` never fails spuriously. Memory-ordering and
//! data-race bugs are covered by the Miri and ThreadSanitizer CI jobs;
//! this crate covers *interleaving logic* — check-then-act races, lost
//! updates, torn protocol states, cancellation and exhaustion
//! monotonicity — with deterministic reproduction.
//!
//! ## Example
//!
//! ```
//! use delprop_modelcheck::{atomic::AtomicU64, explore, thread, Config};
//! use std::sync::atomic::Ordering::Relaxed;
//!
//! // A classic check-then-act lost update: the checker finds the
//! // interleaving and hands back a replayable seed.
//! let report = explore(&Config::exhaustive(2, 10_000), || {
//!     let x = AtomicU64::new(0);
//!     thread::scope(|s| {
//!         for _ in 0..2 {
//!             s.spawn(|| {
//!                 let v = x.load(Relaxed); // read …
//!                 x.store(v + 1, Relaxed); // … then write: not atomic!
//!             });
//!         }
//!     });
//!     assert_eq!(x.load(Relaxed), 2, "lost update");
//! });
//! let failure = report.failure.expect("the race must be found");
//! assert!(delprop_modelcheck::replay(&failure.seed, || {
//!     // … same closure …
//! # let x = AtomicU64::new(0);
//! # thread::scope(|s| { for _ in 0..2 { s.spawn(|| {
//! #     let v = x.load(Relaxed); x.store(v + 1, Relaxed); }); } });
//! # assert_eq!(x.load(Relaxed), 2, "lost update");
//! }).is_err());
//! ```

pub mod atomic;
mod exec;
mod explore;
mod rng;
mod seed;
pub mod thread;

pub use exec::is_active;
pub use explore::{check, explore, replay, Config, Failure, Report, Strategy};
pub use seed::{ParseSeedError, Seed};

/// Instrumented spin-loop hint: a *voluntary* scheduling point under an
/// exploration (the spinning thread is descheduled whenever any other
/// thread can run, which is what lets bounded-exhaustive DFS terminate
/// on spin-wait protocols), [`std::hint::spin_loop`] otherwise.
pub fn spin_loop() {
    if exec::is_active() {
        exec::yield_voluntary();
    } else {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicBool, AtomicU64};
    use super::*;
    use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};

    /// The canonical check-then-act bug: two threads read-modify-write
    /// without atomicity.
    fn lost_update_model() {
        let x = AtomicU64::new(0);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let v = x.load(Relaxed);
                    x.store(v + 1, Relaxed);
                });
            }
        });
        assert_eq!(x.load(Relaxed), 2, "lost update");
    }

    #[test]
    fn exhaustive_finds_lost_update_and_seed_replays() {
        let report = explore(&Config::exhaustive(2, 10_000), lost_update_model);
        let failure = report.failure.expect("lost update must be found");
        assert!(
            report.schedules < 1_000,
            "small model, small search: {} schedules",
            report.schedules
        );
        assert!(failure.message.contains("lost update"));
        // The reported seed replays to the same failure, and parses
        // back from its text form.
        let err = replay(&failure.seed, lost_update_model).expect_err("seed must reproduce");
        assert!(err.contains("lost update"));
        let reparsed: Seed = failure.seed.to_string().parse().expect("seed text parses");
        assert_eq!(reparsed, failure.seed);
        // Shrinking never grows the prescription.
        assert!(failure.seed.choices.len() <= failure.original_seed.choices.len());
        assert!(replay(&reparsed, lost_update_model).is_err());
    }

    #[test]
    fn preemption_bound_zero_cannot_see_the_race() {
        // With no preemptions each thread runs its two operations
        // back-to-back; only thread *order* varies, and the counter is
        // correct in every such schedule.
        let report = explore(&Config::exhaustive(0, 10_000), lost_update_model);
        assert!(report.failure.is_none(), "needs a mid-thread preemption");
        assert!(report.complete, "bounded space must be exhausted");
    }

    #[test]
    fn fetch_add_is_race_free_and_space_exhausts() {
        let report = explore(&Config::exhaustive(2, 10_000), || {
            let x = AtomicU64::new(0);
            thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        x.fetch_add(1, Relaxed);
                    });
                }
            });
            assert_eq!(x.load(Relaxed), 2);
        });
        assert!(report.failure.is_none());
        assert!(report.complete);
    }

    #[test]
    fn random_strategy_finds_lost_update_deterministically() {
        let a = explore(&Config::random(0xD15EA5E, 500, 2), lost_update_model);
        let b = explore(&Config::random(0xD15EA5E, 500, 2), lost_update_model);
        let fa = a.failure.expect("random walk must find the race");
        let fb = b.failure.expect("same seed, same result");
        assert_eq!(a.schedules, b.schedules, "same seed explores identically");
        assert_eq!(fa.seed, fb.seed);
        assert!(replay(&fa.seed, lost_update_model).is_err());
    }

    #[test]
    fn spin_wait_terminates_under_exhaustive_dfs() {
        // A spin loop is a voluntary yield: the spinner is descheduled
        // whenever the flag-setter can run, so the bounded space stays
        // finite and exploration completes.
        let report = explore(&Config::exhaustive(1, 10_000), || {
            let flag = AtomicBool::new(false);
            thread::scope(|s| {
                s.spawn(|| flag.store(true, Release));
                s.spawn(|| {
                    while !flag.load(Acquire) {
                        spin_loop();
                    }
                });
            });
            assert!(flag.load(Relaxed));
        });
        assert!(report.failure.is_none());
        assert!(report.complete);
    }

    #[test]
    fn explicit_join_handles_are_scheduling_points() {
        let report = explore(&Config::exhaustive(2, 10_000), || {
            let x = AtomicU64::new(0);
            thread::scope(|s| {
                let h = s.spawn(|| {
                    x.fetch_add(1, Relaxed);
                    7u64
                });
                let got = h.join().expect("child must not panic");
                assert_eq!(got, 7);
                // Join happened-before: the child's effect is visible.
                assert_eq!(x.load(Relaxed), 1);
            });
        });
        assert!(report.failure.is_none());
        assert!(report.complete);
    }

    #[test]
    fn detached_spawn_must_be_joined() {
        let report = explore(&Config::exhaustive(0, 16), || {
            let h = thread::spawn(|| {});
            h.join().expect("clean child");
        });
        assert!(report.failure.is_none());
    }

    #[test]
    fn passthrough_outside_exploration() {
        assert!(!is_active());
        let x = AtomicU64::new(5);
        assert_eq!(x.fetch_add(2, Relaxed), 5);
        assert_eq!(x.load(Relaxed), 7);
        assert_eq!(x.fetch_update(Relaxed, Relaxed, |v| Some(v + 1)), Ok(7));
        thread::yield_now();
        spin_loop();
        let h = thread::spawn(|| 3);
        assert_eq!(h.join().expect("plain std thread"), 3);
    }

    #[test]
    fn check_panics_with_replayable_seed_text() {
        let outcome = std::panic::catch_unwind(|| {
            check(&Config::exhaustive(2, 10_000), lost_update_model);
        });
        let payload = outcome.expect_err("check must panic on a found race");
        let msg = payload
            .downcast_ref::<String>()
            .expect("string panic payload")
            .clone();
        assert!(msg.contains("replay seed: mc1:"), "got: {msg}");
        // The seed embedded in the message replays.
        let seed_text = msg
            .split("replay seed: ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .expect("seed in message");
        let seed: Seed = seed_text.parse().expect("embedded seed parses");
        assert!(replay(&seed, lost_update_model).is_err());
    }
}
