//! Schedule exploration: bounded-exhaustive DFS and seeded random
//! walks over the scheduling decisions of `crate::exec`, failing
//! schedules reported as replayable, shrunk [`Seed`]s.

use crate::exec::{self, Decision, Driver, Execution};
use crate::rng;
use crate::seed::Seed;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// How schedules are enumerated.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Depth-first enumeration of every schedule reachable with at most
    /// [`Config::max_preemptions`] preemptions — sound and complete for
    /// small models (the classic delay-bounding result: most
    /// interleaving bugs need very few preemptions to trigger).
    Exhaustive,
    /// `iterations` independent seeded random walks, each preempting at
    /// most [`Config::max_preemptions`] times. The per-walk RNG stream
    /// is derived from `seed`, so a failing *walk* is re-found by the
    /// same config — but failures are reported as explicit choice-list
    /// seeds, which replay exactly regardless of strategy.
    Random { seed: u64, iterations: u64 },
}

/// Exploration bounds and strategy.
#[derive(Debug, Clone)]
pub struct Config {
    /// Stop (reporting `complete: false`) after this many schedules.
    pub max_schedules: u64,
    /// Preemption bound: forced context switches per schedule at
    /// instrumented-operation points (voluntary yields are free).
    pub max_preemptions: u32,
    /// Per-schedule step limit; exceeding it fails the schedule
    /// (livelock under that interleaving).
    pub max_steps: u64,
    /// Extra runs the shrinker may spend minimizing a failing seed.
    pub shrink_runs: u32,
    /// Enumeration strategy.
    pub strategy: Strategy,
}

impl Config {
    /// Bounded-exhaustive DFS with the given preemption bound.
    pub fn exhaustive(max_preemptions: u32, max_schedules: u64) -> Self {
        Config {
            max_schedules,
            max_preemptions,
            max_steps: 1_000_000,
            shrink_runs: 256,
            strategy: Strategy::Exhaustive,
        }
    }

    /// Seeded random walks with the given preemption bound.
    pub fn random(seed: u64, iterations: u64, max_preemptions: u32) -> Self {
        Config {
            max_schedules: iterations,
            max_preemptions,
            max_steps: 1_000_000,
            shrink_runs: 256,
            strategy: Strategy::Random { seed, iterations },
        }
    }
}

/// One failing schedule.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Replayable (and shrunk) schedule seed; feed to [`replay`].
    pub seed: Seed,
    /// The seed as originally recorded, before shrinking.
    pub original_seed: Seed,
    /// The panic message the failing schedule produced.
    pub message: String,
    /// 1-based index of the schedule that first failed.
    pub schedule_index: u64,
}

/// The outcome of an exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules executed (shrinking runs not included).
    pub schedules: u64,
    /// Whether the strategy ran to completion: every bounded schedule
    /// for `Exhaustive`, every iteration for `Random`. `false` when
    /// `max_schedules` cut enumeration short or a failure stopped it.
    pub complete: bool,
    /// The first failing schedule found, if any.
    pub failure: Option<Failure>,
}

struct RunResult {
    decisions: Vec<Decision>,
    panic_msg: Option<String>,
}

/// Run the closure once under the given driver, catching an assertion
/// failure as a schedule result rather than a test abort.
fn run_once<F: Fn()>(driver: Driver, max_steps: u64, f: &F) -> RunResult {
    let exec = Execution::new(driver, max_steps);
    exec::set_tls(Arc::clone(&exec), 0);
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    exec::clear_tls();
    let (decisions, leaked) = exec.take_trace();
    let panic_msg = match outcome {
        Ok(()) if leaked => Some(
            "modelcheck: closure returned with registered threads still running \
             (join every spawned thread before returning)"
                .to_string(),
        ),
        Ok(()) => None,
        Err(payload) => Some(panic_message(payload)),
    };
    RunResult {
        decisions,
        panic_msg,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Explore schedules of `f` under `config`. The closure runs once per
/// schedule and must be deterministic apart from thread interleaving;
/// it must join every thread it spawns (scopes do this implicitly).
pub fn explore<F: Fn()>(config: &Config, f: F) -> Report {
    match &config.strategy {
        Strategy::Exhaustive => explore_exhaustive(config, &f),
        Strategy::Random { seed, iterations } => explore_random(config, *seed, *iterations, &f),
    }
}

/// Replay one recorded schedule. `Ok` when the closure completes,
/// `Err(panic message)` when it fails again.
pub fn replay<F: Fn()>(seed: &Seed, f: F) -> Result<(), String> {
    let run = run_once(
        Driver::Prescribed {
            choices: seed.choices.clone(),
        },
        1_000_000,
        &f,
    );
    match run.panic_msg {
        None => Ok(()),
        Some(msg) => Err(msg),
    }
}

/// [`explore`], panicking with a replay-ready seed when a failing
/// schedule is found — the assert-style entry point for model tests.
pub fn check<F: Fn()>(config: &Config, f: F) {
    let report = explore(config, f);
    if let Some(failure) = report.failure {
        panic!(
            "model check failed on schedule {} of {}: {}\n  replay seed: {}\n  \
             (original seed before shrinking: {})",
            failure.schedule_index,
            report.schedules,
            failure.message,
            failure.seed,
            failure.original_seed,
        );
    }
}

fn failure_from(config: &Config, f: &impl Fn(), run: RunResult, schedule_index: u64) -> Failure {
    let message = run.panic_msg.expect("failure_from called on a passing run");
    let original = Seed {
        choices: run.decisions.iter().map(|d| d.chosen).collect(),
    };
    let seed = shrink(config, f, &original);
    Failure {
        seed,
        original_seed: original,
        message,
        schedule_index,
    }
}

fn explore_exhaustive(config: &Config, f: &impl Fn()) -> Report {
    let mut prefix: Vec<u32> = Vec::new();
    let mut schedules = 0u64;
    loop {
        schedules += 1;
        let run = run_once(
            Driver::Prescribed {
                choices: prefix.clone(),
            },
            config.max_steps,
            f,
        );
        if run.panic_msg.is_some() {
            let failure = failure_from(config, f, run, schedules);
            return Report {
                schedules,
                complete: false,
                failure: Some(failure),
            };
        }
        match next_prefix(&run.decisions, config.max_preemptions) {
            Some(p) => prefix = p,
            None => {
                return Report {
                    schedules,
                    complete: true,
                    failure: None,
                }
            }
        }
        if schedules >= config.max_schedules {
            return Report {
                schedules,
                complete: false,
                failure: None,
            };
        }
    }
}

/// DFS backtracking: given the full decision trace of the schedule just
/// run, produce the prescription prefix of the next unexplored schedule
/// within the preemption bound, or `None` when the bounded space is
/// exhausted.
///
/// Works backwards from the deepest decision, advancing its choice to
/// the next candidate; alternatives that would blow the preemption
/// budget accumulated by the (unchanged) prefix before them are
/// skipped. Because candidate lists put the running thread first,
/// choice 0 is never a preemption and deeper default execution is
/// always budget-neutral.
fn next_prefix(decisions: &[Decision], max_preemptions: u32) -> Option<Vec<u32>> {
    // Preemptions taken by decisions[..i] as recorded.
    let mut used_before = vec![0u32; decisions.len() + 1];
    for (i, d) in decisions.iter().enumerate() {
        used_before[i + 1] = used_before[i] + u32::from(d.is_preemption());
    }
    for i in (0..decisions.len()).rev() {
        let d = &decisions[i];
        let mut c = d.chosen + 1;
        while (c as usize) < d.candidates.len() {
            let would_preempt = d.preemptible && d.candidates[c as usize] != d.me;
            if !would_preempt || used_before[i] < max_preemptions {
                let mut prefix: Vec<u32> = decisions[..i].iter().map(|p| p.chosen).collect();
                prefix.push(c);
                return Some(prefix);
            }
            c += 1;
        }
    }
    None
}

fn explore_random(config: &Config, seed: u64, iterations: u64, f: &impl Fn()) -> Report {
    let budget = iterations.min(config.max_schedules);
    for i in 0..budget {
        let run = run_once(
            Driver::Random {
                rng: crate::rng::SplitMix64(rng::mix(seed, i)),
                preemption_bound: config.max_preemptions,
                preemptions: 0,
            },
            config.max_steps,
            f,
        );
        if run.panic_msg.is_some() {
            let failure = failure_from(config, f, run, i + 1);
            return Report {
                schedules: i + 1,
                complete: false,
                failure: Some(failure),
            };
        }
    }
    Report {
        schedules: budget,
        complete: budget == iterations,
        failure: None,
    }
}

/// Minimize a failing seed: find the shortest failing prescription
/// prefix, then zero out (un-force) individual choices that the
/// failure does not depend on. Every trial replays the closure, so the
/// whole pass is capped at `config.shrink_runs` runs. Returns the full
/// choice list of the smallest failing run found (replay-exact).
fn shrink(config: &Config, f: &impl Fn(), original: &Seed) -> Seed {
    let mut budget = config.shrink_runs;
    let fails = |choices: &[u32], budget: &mut u32| -> Option<Vec<u32>> {
        if *budget == 0 {
            return None;
        }
        *budget -= 1;
        let run = run_once(
            Driver::Prescribed {
                choices: choices.to_vec(),
            },
            config.max_steps,
            f,
        );
        run.panic_msg
            .is_some()
            .then(|| run.decisions.iter().map(|d| d.chosen).collect())
    };

    let mut best: Vec<u32> = original.choices.clone();
    // Phase 1: binary-search the shortest failing prefix. Failure is
    // not strictly monotone in prefix length, so this is a heuristic —
    // but every accepted candidate is re-verified to fail.
    let (mut lo, mut hi) = (0usize, best.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        match fails(&best[..mid], &mut budget) {
            Some(full) => {
                best = full;
                hi = mid.min(best.len());
            }
            None => lo = mid + 1,
        }
    }
    // Phase 2: un-force choices one at a time (0 = "continue current
    // thread", the default), keeping any change that still fails.
    for i in (0..best.len()).rev() {
        if best[i] == 0 {
            continue;
        }
        let mut trial = best.clone();
        trial[i] = 0;
        if let Some(full) = fails(&trial, &mut budget) {
            best = full;
        }
    }
    Seed { choices: best }
}
