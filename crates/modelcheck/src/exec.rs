//! The serialized execution engine behind one explored schedule.
//!
//! One [`Execution`] drives one run of the closure under test. Every
//! registered thread (the driver that called the closure, plus every
//! thread spawned through [`crate::thread`]) shares a single *baton*:
//! exactly one registered thread runs at a time, and the baton changes
//! hands only at **yield points** — before each instrumented atomic
//! operation ([`crate::atomic`]), at voluntary yields
//! ([`crate::spin_loop`], [`crate::thread::yield_now`]), at spawns, at
//! joins, and at thread exit. Between two yield points a thread runs
//! *atomically* with respect to the model, so the set of schedules the
//! engine can express is exactly the set of interleavings of
//! instrumented operations under sequential consistency.
//!
//! That is deliberately weaker than a C11 memory-model simulator (loom):
//! the engine explores *orderings*, not *reorderings*. Weak-memory and
//! data-race coverage comes from the Miri and ThreadSanitizer CI jobs
//! instead; the division of labor is documented in DESIGN.md §11.
//!
//! Scheduling decisions with more than one candidate are recorded as
//! indices into a deterministically ordered candidate list (current
//! thread first, then ascending thread id), which is what makes a
//! recorded schedule replayable as a [`crate::Seed`].

use crate::rng::SplitMix64;
use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Why a thread reached the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum YieldKind {
    /// An instrumented operation is about to run; the current thread is
    /// a candidate and switching away from it counts as a preemption.
    Op,
    /// A voluntary yield (spin loop, `yield_now`): the current thread
    /// *asks* to be descheduled, so it is excluded from the candidates
    /// whenever any other thread can run (this is what breaks
    /// spin-wait livelocks under exhaustive exploration) and switching
    /// is never counted as a preemption.
    Yield,
    /// The current thread blocked on a join; it is not a candidate.
    Block,
    /// The current thread finished; it is not a candidate.
    Finish,
}

/// Lifecycle of one registered thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TStatus {
    Runnable,
    /// Blocked joining the given thread; becomes schedulable again as
    /// soon as the target finishes (checked dynamically in `decide`).
    BlockedOnJoin(usize),
    Finished,
}

/// One recorded multi-candidate scheduling decision.
#[derive(Debug, Clone)]
pub(crate) struct Decision {
    /// Schedulable thread ids at this point: the current thread first
    /// (when it is a candidate), then the rest in ascending id order.
    pub candidates: Vec<usize>,
    /// Index into `candidates` that was taken.
    pub chosen: u32,
    /// The thread that reached the scheduler.
    pub me: usize,
    /// Whether choosing a thread other than `me` counts as a
    /// preemption (true only for [`YieldKind::Op`]).
    pub preemptible: bool,
}

impl Decision {
    /// Whether the taken choice preempted the running thread.
    pub fn is_preemption(&self) -> bool {
        self.preemptible && self.candidates[self.chosen as usize] != self.me
    }
}

/// How the engine picks among candidates.
#[derive(Debug, Clone)]
pub(crate) enum Driver {
    /// Follow `choices` for the first recorded decisions, then fall
    /// back to the default policy (continue the current thread when it
    /// is a candidate, else the lowest id). Used for DFS prefixes and
    /// for seed replay.
    Prescribed { choices: Vec<u32> },
    /// Seeded random walk: continue the current thread by default,
    /// preempting with probability 1/4 while under the preemption
    /// bound; at non-`Op` points pick uniformly.
    Random {
        rng: SplitMix64,
        preemption_bound: u32,
        preemptions: u32,
    },
}

#[derive(Debug)]
struct ExecState {
    threads: Vec<TStatus>,
    /// Which registered thread holds the baton.
    current: usize,
    /// Once set, serialization is off: every yield point returns
    /// immediately and every wait is released. Entered on panic (so
    /// sibling threads can drain and scoped joins complete), on step
    /// overflow, and at teardown.
    free_run: bool,
    steps: u64,
    max_steps: u64,
    driver: Driver,
    decisions: Vec<Decision>,
}

/// One schedule's worth of serialized execution. See the module docs.
#[derive(Debug)]
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    /// The execution this OS thread is registered with, if any. `None`
    /// outside `explore`/`replay`, which makes every instrumented
    /// operation a plain passthrough.
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The execution and thread id the calling OS thread is registered
/// under, if any.
pub(crate) fn active() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the calling thread is running under an active exploration.
pub fn is_active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

pub(crate) fn set_tls(exec: Arc<Execution>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

pub(crate) fn clear_tls() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Scheduling point before an instrumented operation. No-op when the
/// calling thread is not registered with an execution.
pub fn yield_op() {
    if let Some((exec, me)) = active() {
        exec.yield_point(me, YieldKind::Op);
    }
}

/// Voluntary deschedule (spin loops, `yield_now`).
pub fn yield_voluntary() {
    if let Some((exec, me)) = active() {
        exec.yield_point(me, YieldKind::Yield);
    }
}

/// Abandon serialization for the rest of this run (panic unwinding a
/// scope, teardown): all registered threads run natively to completion.
pub(crate) fn mark_free_run() {
    if let Some((exec, _)) = active() {
        exec.enter_free_run();
    }
}

impl Execution {
    /// A fresh execution whose driver thread (the one about to run the
    /// closure) is thread 0 and already holds the baton.
    pub fn new(driver: Driver, max_steps: u64) -> Arc<Self> {
        Arc::new(Execution {
            state: Mutex::new(ExecState {
                threads: vec![TStatus::Runnable],
                current: 0,
                free_run: false,
                steps: 0,
                max_steps,
                driver,
                decisions: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    /// Lock that shrugs off poisoning: a panicking schedule is a
    /// *result* here, not a corruption, and sibling threads must still
    /// be able to drain through the scheduler afterwards.
    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn enter_free_run(&self) {
        let mut st = self.lock();
        st.free_run = true;
        self.cv.notify_all();
    }

    /// Register a newly spawned thread as schedulable and return its id.
    pub fn register_child(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(TStatus::Runnable);
        st.threads.len() - 1
    }

    /// Block the calling (fresh) thread until the scheduler hands it
    /// the baton for the first time.
    pub fn wait_first_schedule(&self, me: usize) {
        let mut st = self.lock();
        while st.current != me && !st.free_run {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The generic scheduling point: consult the driver, hand the baton
    /// over if another thread was chosen, and wait for it back.
    pub fn yield_point(&self, me: usize, kind: YieldKind) {
        let mut st = self.lock();
        if st.free_run {
            return;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.free_run = true;
            self.cv.notify_all();
            drop(st);
            panic!(
                "modelcheck: step limit exceeded (livelock under this schedule, \
                 or raise Config::max_steps)"
            );
        }
        let next = st.decide(me, kind);
        if next != me {
            st.current = next;
            self.cv.notify_all();
            while st.current != me && !st.free_run {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Mark the calling thread finished and hand the baton on. Entered
    /// on both normal return and unwind; a panicking thread flips the
    /// execution into free-run so every sibling can drain and the
    /// enclosing scope's joins complete.
    pub fn finish_thread(&self, me: usize, panicked: bool) {
        let mut st = self.lock();
        st.threads[me] = TStatus::Finished;
        if panicked {
            st.free_run = true;
            self.cv.notify_all();
            return;
        }
        if st.current == me && !st.free_run {
            if let Some(next) = st.decide_opt(me, YieldKind::Finish) {
                st.current = next;
            }
        }
        self.cv.notify_all();
    }

    /// Scheduler-aware join: block until `target` finishes, letting the
    /// driver decide who runs in the meantime.
    pub fn join(&self, me: usize, target: usize) {
        loop {
            let mut st = self.lock();
            if st.threads[target] == TStatus::Finished {
                return;
            }
            if st.free_run {
                drop(st);
                std::thread::yield_now();
                continue;
            }
            st.threads[me] = TStatus::BlockedOnJoin(target);
            match st.decide_opt(me, YieldKind::Block) {
                Some(next) => {
                    st.current = next;
                    self.cv.notify_all();
                }
                None => {
                    // Nobody can run and the join target is unfinished:
                    // a genuine deadlock in the modeled program.
                    st.free_run = true;
                    self.cv.notify_all();
                    drop(st);
                    panic!("modelcheck: deadlock — all threads blocked under this schedule");
                }
            }
            while st.current != me && !st.free_run {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.threads[me] = TStatus::Runnable;
        }
    }

    /// Drain the recorded decision trace and release any straggling
    /// registered threads (teardown).
    pub fn take_trace(&self) -> (Vec<Decision>, bool) {
        let mut st = self.lock();
        st.free_run = true;
        self.cv.notify_all();
        let leaked = st.threads.iter().skip(1).any(|t| *t != TStatus::Finished);
        (std::mem::take(&mut st.decisions), leaked)
    }
}

impl ExecState {
    /// Threads schedulable right now: `Runnable`, or blocked on a join
    /// whose target has finished.
    fn enabled(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| match self.threads[t] {
                TStatus::Runnable => true,
                TStatus::BlockedOnJoin(target) => self.threads[target] == TStatus::Finished,
                TStatus::Finished => false,
            })
            .collect()
    }

    fn decide(&mut self, me: usize, kind: YieldKind) -> usize {
        self.decide_opt(me, kind)
            .expect("modelcheck: no schedulable thread at an Op/Yield point")
    }

    /// Pick the next thread to run, recording the decision when there
    /// was a real choice. Returns `None` when nothing is schedulable
    /// (only legal at `Finish`/`Block` points).
    fn decide_opt(&mut self, me: usize, kind: YieldKind) -> Option<usize> {
        let enabled = self.enabled();
        // Candidate order is the replay contract: current thread first
        // (when eligible), then ascending id. Choice index 0 therefore
        // always means "do not preempt" at an Op point.
        let mut candidates: Vec<usize> = Vec::with_capacity(enabled.len());
        let me_eligible = match kind {
            YieldKind::Op => enabled.contains(&me),
            // A voluntary yield keeps `me` only when nobody else can
            // run — otherwise a spin loop could be rescheduled forever
            // under DFS.
            YieldKind::Yield => enabled.contains(&me) && enabled.len() == 1,
            YieldKind::Block | YieldKind::Finish => false,
        };
        if me_eligible {
            candidates.push(me);
        }
        candidates.extend(enabled.iter().copied().filter(|&t| t != me));
        if candidates.is_empty() {
            return None;
        }
        if candidates.len() == 1 {
            return Some(candidates[0]);
        }
        let preemptible = kind == YieldKind::Op;
        let k = self.decisions.len();
        let chosen: u32 = match &mut self.driver {
            Driver::Prescribed { choices } => {
                if k < choices.len() {
                    choices[k].min(candidates.len() as u32 - 1)
                } else {
                    0
                }
            }
            Driver::Random {
                rng,
                preemption_bound,
                preemptions,
            } => {
                if preemptible {
                    // candidates[0] is `me`: continue by default,
                    // preempt with probability 1/4 under the bound.
                    if *preemptions < *preemption_bound && rng.next_u64() % 4 == 0 {
                        *preemptions += 1;
                        1 + (rng.next_u64() % (candidates.len() as u64 - 1)) as u32
                    } else {
                        0
                    }
                } else {
                    (rng.next_u64() % candidates.len() as u64) as u32
                }
            }
        };
        let next = candidates[chosen as usize];
        self.decisions.push(Decision {
            candidates,
            chosen,
            me,
            preemptible,
        });
        Some(next)
    }
}
