//! SplitMix64: the tiny, seedable, statistically decent PRNG the random
//! scheduling strategy uses. Zero dependencies, fully deterministic,
//! and trivially forkable (`mix` derives independent per-iteration
//! streams from one base seed).

/// SplitMix64 state (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derive the per-iteration seed for random walk `i` from a base seed:
/// one SplitMix64 step keeps nearby iterations statistically unrelated.
pub(crate) fn mix(base: u64, i: u64) -> u64 {
    SplitMix64(base ^ i.wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_nondegenerate() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "no immediate cycles");
    }

    #[test]
    fn mix_separates_iterations() {
        assert_ne!(mix(7, 0), mix(7, 1));
        assert_ne!(mix(7, 0), mix(8, 0));
        assert_eq!(mix(7, 3), mix(7, 3));
    }
}
