//! The rule catalog: eight legacy invariants ported from the xtask
//! line scanner plus the three span-aware audits the token stream
//! makes expressible (ordering justification, budget coverage of
//! solver loops, panic-free serving paths).
//!
//! Every rule runs over one shared [`FileCtx`] per file — lexing and
//! the derived masks are computed once, rules only pattern-match.

use crate::ctx::{FileCtx, FnSpan};
use crate::diag::Diagnostic;

/// Stable ids of every rule the engine runs, for reports and docs.
pub const RULE_IDS: [&str; 11] = [
    "no-unwrap",
    "no-raw-atomics",
    "no-raw-clock",
    "safety-comments",
    "no-sleep",
    "no-hash-in-hot-paths",
    "no-direct-compile-in-server",
    "no-std-thread-in-shard",
    "ordering-justified",
    "budget-coverage",
    "panic-path",
];

/// Run every rule over one file. `rel` decides scoping; findings come
/// back sorted by line and deduplicated per `(rule, line)`.
pub fn check_file(rel: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = FileCtx::new(rel, src);
    let mut out = Vec::new();
    no_unwrap(&ctx, &mut out);
    no_raw_atomics(&ctx, &mut out);
    no_raw_clock(&ctx, &mut out);
    safety_comments(&ctx, &mut out);
    no_sleep(&ctx, &mut out);
    no_hash_in_hot_paths(&ctx, &mut out);
    no_direct_compile_in_server(&ctx, &mut out);
    no_std_thread_in_shard(&ctx, &mut out);
    ordering_justified(&ctx, &mut out);
    budget_coverage(&ctx, &mut out);
    panic_path(&ctx, &mut out);
    out.sort_by(|a, b| (a.line, a.rule, a.col).cmp(&(b.line, b.rule, b.col)));
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    out
}

/// Whether `rel` is an integration-test file (`tests/` at the repo
/// root or inside any crate).
fn is_test_file(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/")
}

fn push(
    ctx: &FileCtx<'_>,
    out: &mut Vec<Diagnostic>,
    line: u32,
    col: u32,
    rule: &'static str,
    message: &str,
) {
    out.push(Diagnostic {
        file: ctx.rel.to_string(),
        line: line as usize,
        col: col as usize,
        rule,
        message: message.to_string(),
        snippet: ctx.snippet(line as usize - 1).to_string(),
    });
}

// -------------------------------------------------------------------
// Legacy rules (ported from the xtask line scanner, semantics intact)
// -------------------------------------------------------------------

/// `.unwrap()` / `.expect(` are forbidden in solver code outside
/// `#[cfg(test)]` items: a panic costs the portfolio member its run.
fn no_unwrap(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.rel.starts_with("crates/core/src/solvers/") {
        return;
    }
    for ci in 0..ctx.code.len() {
        let hit =
            ctx.code_seq(ci, &[".", "unwrap", "(", ")"]) || ctx.code_seq(ci, &[".", "expect", "("]);
        if !hit {
            continue;
        }
        let t = *ctx.code_tok(ci);
        let li = t.line as usize - 1;
        if ctx.in_test(li) || ctx.allowed(li, "unwrap") {
            continue;
        }
        push(
            ctx,
            out,
            t.line,
            t.col,
            "no-unwrap",
            "`.unwrap()`/`.expect(` in solver code: return a typed error, or \
             justify with `// lint:allow(unwrap): <reason>`",
        );
    }
}

/// `std::sync::atomic` types must not be named outside the
/// `runtime::sync` facade (`Ordering` itself is allowed — pure data).
fn no_raw_atomics(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.rel.starts_with("crates/modelcheck/") || ctx.rel == "crates/core/src/runtime/sync.rs" {
        return;
    }
    for ci in 0..ctx.code.len() {
        if !ctx.code_seq(ci, &["std", "::", "sync", "::", "atomic"]) {
            continue;
        }
        if ctx.code_is(ci + 5, "::") && ctx.code_is(ci + 6, "Ordering") {
            continue; // the one allowed path
        }
        let t = *ctx.code_tok(ci);
        if ctx.allowed(t.line as usize - 1, "atomics") {
            continue;
        }
        push(
            ctx,
            out,
            t.line,
            t.col,
            "no-raw-atomics",
            "raw `std::sync::atomic` outside the `runtime::sync` facade: the \
             `delprop_model` scheduler cannot see this operation",
        );
    }
}

/// `Instant::now` is forbidden outside the budget clock choke point
/// and the bench crate.
fn no_raw_clock(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.rel.starts_with("crates/bench/") || ctx.rel == "crates/core/src/runtime/budget.rs" {
        return;
    }
    for ci in 0..ctx.code.len() {
        if !ctx.code_seq(ci, &["Instant", "::", "now"]) {
            continue;
        }
        let t = *ctx.code_tok(ci);
        if ctx.allowed(t.line as usize - 1, "clock") {
            continue;
        }
        push(
            ctx,
            out,
            t.line,
            t.col,
            "no-raw-clock",
            "`Instant::now` outside `runtime/budget.rs`: go through the \
             `budget::now()` choke point",
        );
    }
}

/// Every `unsafe` keyword must carry a `SAFETY:` comment on the same
/// line or in the contiguous comment block directly above.
fn safety_comments(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for ci in 0..ctx.code.len() {
        if !ctx.code_is(ci, "unsafe") {
            continue;
        }
        let t = *ctx.code_tok(ci);
        if ctx.tagged_above(t.line as usize - 1, "safety") {
            continue;
        }
        push(
            ctx,
            out,
            t.line,
            t.col,
            "safety-comments",
            "`unsafe` without a `// SAFETY:` comment on the line or in the \
             comment block directly above",
        );
    }
}

/// `thread::sleep` is forbidden in product code outside the sanctioned
/// backoff and fault-injection modules.
fn no_sleep(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.rel == "crates/server/src/backoff.rs"
        || ctx.rel == "crates/core/src/runtime/fault.rs"
        || is_test_file(ctx.rel)
    {
        return;
    }
    for ci in 0..ctx.code.len() {
        if !ctx.code_seq(ci, &["thread", "::", "sleep"]) {
            continue;
        }
        let t = *ctx.code_tok(ci);
        let li = t.line as usize - 1;
        if ctx.in_test(li) || ctx.allowed(li, "sleep") {
            continue;
        }
        push(
            ctx,
            out,
            t.line,
            t.col,
            "no-sleep",
            "`thread::sleep` outside `crates/server/src/backoff.rs`: blocking \
             sleeps belong to the jittered-backoff choke point (deadline-clamped, \
             seeded) — poll a budget/cancel token instead, or justify with \
             `// lint:allow(sleep): <reason>`",
        );
    }
}

/// `HashSet`/`HashMap` are forbidden in the dense solver hot paths.
fn no_hash_in_hot_paths(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let hot = ctx.rel.starts_with("crates/core/src/solvers/")
        || ctx.rel.starts_with("crates/core/src/ir/")
        || ctx.rel == "crates/core/src/classify.rs"
        || ctx.rel == "crates/core/src/solution.rs"
        || ctx.rel.starts_with("crates/setcover/src/")
        || ctx.rel.starts_with("crates/lp/src/");
    if !hot {
        return;
    }
    for ci in 0..ctx.code.len() {
        if !(ctx.code_is(ci, "HashSet") || ctx.code_is(ci, "HashMap")) {
            continue;
        }
        let t = *ctx.code_tok(ci);
        let li = t.line as usize - 1;
        if ctx.in_test(li) || ctx.allowed(li, "hash") {
            continue;
        }
        push(
            ctx,
            out,
            t.line,
            t.col,
            "no-hash-in-hot-paths",
            "`HashSet`/`HashMap` in a dense solver hot path: use a packed \
             `BitSet`/`BitMatrix` row or flat counters over the compiled ids, \
             or justify with `// lint:allow(hash): <reason>`",
        );
    }
}

/// The serving daemon must read compiled IRs through the epoch engine,
/// never trigger its own `Problem::compiled()` per request.
fn no_direct_compile_in_server(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.rel.starts_with("crates/server/src/") {
        return;
    }
    for ci in 0..ctx.code.len() {
        let hit = ctx.code_seq(ci, &[".", "compiled", "(", ")"])
            || ctx.code_seq(ci, &[".", "compiled_arc", "("]);
        if !hit {
            continue;
        }
        let t = *ctx.code_tok(ci);
        let li = t.line as usize - 1;
        if ctx.in_test(li) || ctx.allowed(li, "compiled") {
            continue;
        }
        push(
            ctx,
            out,
            t.line,
            t.col,
            "no-direct-compile-in-server",
            "direct `Problem::compiled()` in the serving daemon: read the IR \
             through the epoch engine (`Engine::problem()` / `with_delta`) so \
             requests share incremental projections, or justify with \
             `// lint:allow(compiled): <reason>`",
        );
    }
}

/// `std::thread` must not be named anywhere in the shard module
/// (tests included): its concurrency must stay model-checkable.
fn no_std_thread_in_shard(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.rel.starts_with("crates/core/src/shard/") {
        return;
    }
    for ci in 0..ctx.code.len() {
        if !ctx.code_seq(ci, &["std", "::", "thread"]) {
            continue;
        }
        let t = *ctx.code_tok(ci);
        if ctx.allowed(t.line as usize - 1, "thread") {
            continue;
        }
        push(
            ctx,
            out,
            t.line,
            t.col,
            "no-std-thread-in-shard",
            "raw `std::thread` in the shard module: spawn through the \
             `runtime::sync` facade (`sync::thread::scope`) so the \
             `delprop_model` scheduler can interleave it, or justify with \
             `// lint:allow(thread): <reason>`",
        );
    }
}

// -------------------------------------------------------------------
// Span-aware audits (new in the analyzer; inexpressible line-by-line)
// -------------------------------------------------------------------

const ORDERING_VARIANTS: [&str; 5] = ["Acquire", "Release", "AcqRel", "SeqCst", "Relaxed"];

/// Every atomic `Ordering::{Acquire,Release,AcqRel,SeqCst,Relaxed}`
/// argument in product code outside the facade and the model checker
/// must carry an adjacent `// ordering:` justification — on the same
/// line or in the comment block directly above the call. DESIGN.md §11
/// promises "every ordering justified at the call site"; this audit
/// makes the promise checkable.
fn ordering_justified(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.rel == "crates/core/src/runtime/sync.rs"
        || ctx.rel.starts_with("crates/modelcheck/")
        || is_test_file(ctx.rel)
    {
        return;
    }
    for ci in 0..ctx.code.len() {
        if !ctx.code_is(ci, "Ordering") || !ctx.code_is(ci + 1, "::") {
            continue;
        }
        if !ORDERING_VARIANTS.iter().any(|v| ctx.code_is(ci + 2, v)) {
            continue;
        }
        // A `use` declaration names an ordering without performing an
        // atomic operation — nothing to justify there.
        if in_use_decl(ctx, ci) {
            continue;
        }
        let t = *ctx.code_tok(ci + 2);
        let li = t.line as usize - 1;
        if ctx.in_test(li) || ctx.tagged_above(li, "ordering") {
            continue;
        }
        push(
            ctx,
            out,
            t.line,
            t.col,
            "ordering-justified",
            "atomic ordering without an adjacent `// ordering:` justification: \
             say why this ordering is sufficient at the call site (same line or \
             the comment block directly above)",
        );
    }
}

/// Whether the code token at code index `ci` sits inside a `use`
/// declaration: the statement opened by the previous `;`/`{`/`}`
/// starts with `use` (or `pub use`).
fn in_use_decl(ctx: &FileCtx<'_>, ci: usize) -> bool {
    let mut k = ci;
    while k > 0 {
        k -= 1;
        match ctx.code_tok(k).text(ctx.src) {
            // A `{` preceded by `::` opens a use-group
            // (`use a::{B, C::D}`), not an item body — keep walking.
            "{" if k > 0 && ctx.code_is(k - 1, "::") => {}
            ";" | "{" | "}" => {
                k += 1;
                break;
            }
            _ => {}
        }
    }
    ctx.code_is(k, "use") || (ctx.code_is(k, "pub") && ctx.code_is(k + 1, "use"))
}

/// Whether the `for` at code index `ci` belongs to an `impl Trait for
/// Type` header: walk back to the nearest statement boundary looking
/// for the `impl` keyword.
fn in_impl_header(ctx: &FileCtx<'_>, ci: usize) -> bool {
    let mut k = ci;
    while k > 0 {
        k -= 1;
        match ctx.code_tok(k).text(ctx.src) {
            ";" | "{" | "}" => return false,
            "impl" => return true,
            _ => {}
        }
    }
    false
}

/// Identifiers whose presence inside a loop body proves the loop
/// charges (or consults, or forwards) the cooperative budget.
const BUDGET_IDENTS: [&str; 5] = ["charge", "tick", "ticker", "is_exhausted", "budget"];

/// Every `loop`/`while`/`for` body in the solver substrate must
/// syntactically reach the cooperative budget — a `charge`/`tick`/
/// `is_exhausted` call, a forwarded `tick`/`budget` handle, or a
/// budgeted inner loop — or carry a `lint:allow(budget)` marker on the
/// loop or its enclosing `fn`. This is the static form of the
/// unbudgeted-spin class of bug PR 3 fixed dynamically.
fn budget_coverage(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let scoped = ctx.rel.starts_with("crates/setcover/src/")
        || ctx.rel.starts_with("crates/lp/src/")
        || ctx.rel.starts_with("crates/core/src/solvers/");
    if !scoped {
        return;
    }
    let fns = ctx.fn_spans();
    for ci in 0..ctx.code.len() {
        let kw = ["loop", "while", "for"]
            .into_iter()
            .find(|k| ctx.code_is(ci, k));
        let Some(kw) = kw else { continue };
        let t = *ctx.code_tok(ci);
        let li = t.line as usize - 1;
        if ctx.in_test(li) {
            continue;
        }
        // `for` also opens generic binders (`for<'a> Fn(...)`) and
        // trait-impl headers (`impl Display for Foo`); skip both.
        if kw == "for" && (ctx.code_is(ci + 1, "<") || in_impl_header(ctx, ci)) {
            continue;
        }
        let Some(open) = loop_body_open(ctx, ci, kw) else {
            continue;
        };
        let Some(close) = ctx.matching_brace(open) else {
            continue;
        };
        let covered = (open + 1..close).any(|k| {
            let tok = ctx.code_tok(k);
            tok.kind == crate::lexer::TokenKind::Ident && BUDGET_IDENTS.contains(&tok.text(ctx.src))
        });
        if covered || ctx.allowed(li, "budget") {
            continue;
        }
        // A function-level marker covers all loops in the fn: bounded
        // polynomial passes are a property of the whole pass.
        if enclosing_fn(&fns, ci).is_some_and(|f| ctx.allowed(f.sig_line, "budget")) {
            continue;
        }
        push(
            ctx,
            out,
            t.line,
            t.col,
            "budget-coverage",
            "loop body never reaches the cooperative budget (`charge`/`tick`/\
             `is_exhausted`): an unbudgeted spin cannot be cancelled or \
             deadlined — thread the budget through, or justify the bound with \
             `// lint:allow(budget): <reason>` on the loop or its fn",
        );
    }
}

/// The code index of the `{` opening the body of the loop whose
/// keyword sits at code index `ci`.
fn loop_body_open(ctx: &FileCtx<'_>, ci: usize, kw: &str) -> Option<usize> {
    if kw == "loop" {
        return ctx.code_is(ci + 1, "{").then_some(ci + 1);
    }
    // `while`/`for`: the first `{` at paren/bracket depth 0 after the
    // header expression (struct literals are not legal there, and
    // closure bodies inside the header sit behind parens).
    let mut depth = 0i64;
    for k in ci + 1..ctx.code.len() {
        match ctx.code_tok(k).text(ctx.src) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(k),
            ";" if depth == 0 => return None, // not a loop after all
            _ => {}
        }
    }
    None
}

/// The innermost `fn` whose body contains code index `ci`.
fn enclosing_fn(fns: &[FnSpan], ci: usize) -> Option<FnSpan> {
    fns.iter()
        .filter(|f| f.body.0 < ci && ci < f.body.1)
        .min_by_key(|f| f.body.1 - f.body.0)
        .copied()
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Panic paths are hard errors in the serving daemon and the wire
/// JSON layer: `unwrap`/`expect`, the panicking macros, and slice/array
/// indexing in non-test code. A conn thread that panics tears down a
/// client's stream with no typed error frame; everything reachable
/// from a request must surface `Result`s. Subsumes and tightens the
/// unwrap rule for these crates.
fn panic_path(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let scoped =
        ctx.rel.starts_with("crates/server/src/") || ctx.rel.starts_with("crates/json/src/");
    if !scoped {
        return;
    }
    for ci in 0..ctx.code.len() {
        let what = panic_trigger(ctx, ci);
        let Some((what, t)) = what else { continue };
        let li = t.line as usize - 1;
        if ctx.in_test(li) || ctx.allowed(li, "panic") {
            continue;
        }
        let message = match what {
            PanicKind::Call => {
                "`.unwrap()`/`.expect(` on a serving path: return a typed wire \
                 error (`Response::Error`) instead, or justify the invariant \
                 with `// lint:allow(panic): <reason>`"
            }
            PanicKind::Macro => {
                "panicking macro on a serving path: a conn-thread panic drops \
                 the client with no typed error frame — return a typed wire \
                 error, or justify with `// lint:allow(panic): <reason>`"
            }
            PanicKind::Index => {
                "slice/array index can panic on a serving path: use `.get(…)`/\
                 `.split_at_checked(…)` and surface a typed error, or justify \
                 the bound with `// lint:allow(panic): <reason>`"
            }
        };
        push(ctx, out, t.line, t.col, "panic-path", message);
    }
}

enum PanicKind {
    Call,
    Macro,
    Index,
}

fn panic_trigger(ctx: &FileCtx<'_>, ci: usize) -> Option<(PanicKind, crate::lexer::Token)> {
    if ctx.code_seq(ci, &[".", "unwrap", "(", ")"]) || ctx.code_seq(ci, &[".", "expect", "("]) {
        return Some((PanicKind::Call, *ctx.code_tok(ci)));
    }
    if PANIC_MACROS.iter().any(|m| ctx.code_is(ci, m)) && ctx.code_is(ci + 1, "!") {
        return Some((PanicKind::Macro, *ctx.code_tok(ci)));
    }
    // Index expression: `[` directly preceded by an expression tail
    // (identifier, `)`, or `]`). Attributes (`#[…]`), macro brackets
    // (`vec![…]`), types (`: [u8; 4]`), and slice patterns all have a
    // different preceding token.
    if ctx.code_is(ci, "[") && ci > 0 {
        let prev = ctx.code_tok(ci - 1);
        let prev_text = prev.text(ctx.src);
        let tail = matches!(prev.kind, crate::lexer::TokenKind::Ident)
            && !is_keyword_before_bracket(prev_text)
            || prev_text == ")"
            || prev_text == "]";
        if tail {
            return Some((PanicKind::Index, *ctx.code_tok(ci)));
        }
    }
    None
}

/// Keywords after which `[` opens a type or pattern, not an index.
fn is_keyword_before_bracket(text: &str) -> bool {
    matches!(
        text,
        "return"
            | "break"
            | "in"
            | "if"
            | "else"
            | "match"
            | "mut"
            | "ref"
            | "dyn"
            | "impl"
            | "as"
            | "let"
            | "const"
            | "static"
            | "where"
    )
}
