//! Structured diagnostics: every finding carries a file, a 1-based
//! line/column, a stable rule id, a message, and the offending source
//! snippet — rendered as `file:line:col: [rule] message` for humans and
//! serialized into `artifacts/ANALYZE.json` for machines.

use std::fmt;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// Stable rule id (e.g. `no-unwrap`, `ordering-justified`).
    pub rule: &'static str,
    /// Human-readable explanation, including the sanctioned fix.
    pub message: String,
    /// The trimmed source line the finding points at.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}
