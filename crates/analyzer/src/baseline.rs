//! The `analyzer.baseline` suppression file: pre-existing findings can
//! be burned down over time without blocking CI on day one.
//!
//! Format: one `<rule> <file>` pair per line, `#` comments and blanks
//! ignored. An entry suppresses every finding of that rule in that
//! file — coarse on purpose: line numbers drift with every edit, and a
//! baseline that needs constant re-generation stops being a burn-down
//! list and becomes a second lint. Staleness is checked instead: an
//! entry whose `(rule, file)` no longer produces any finding MUST be
//! deleted (`xtask lint` fails on it), so the baseline only ever
//! shrinks.

use crate::diag::Diagnostic;

/// One suppression: every finding of `rule` in `file`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule id, e.g. `ordering-justified`.
    pub rule: String,
    /// Repo-relative file path with `/` separators.
    pub file: String,
}

/// A parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    /// The suppression entries, in file order.
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Parse the baseline text. Returns `Err` with a message naming the
    /// first malformed line.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let (Some(rule), Some(file), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!(
                    "analyzer.baseline:{}: expected `<rule> <file>`, got {line:?}",
                    i + 1
                ));
            };
            if !crate::rules::RULE_IDS.contains(&rule) {
                return Err(format!(
                    "analyzer.baseline:{}: unknown rule {rule:?}",
                    i + 1
                ));
            }
            entries.push(Entry {
                rule: rule.to_string(),
                file: file.to_string(),
            });
        }
        Ok(Baseline { entries })
    }

    /// Whether `d` is suppressed by some entry.
    pub fn suppresses(&self, d: &Diagnostic) -> bool {
        self.entries
            .iter()
            .any(|e| e.rule == d.rule && e.file == d.file)
    }

    /// Entries that no longer suppress anything in `findings` (the
    /// complete, pre-suppression finding list): stale suppressions that
    /// must be deleted.
    pub fn stale<'a>(&'a self, findings: &[Diagnostic]) -> Vec<&'a Entry> {
        self.entries
            .iter()
            .filter(|e| {
                !findings
                    .iter()
                    .any(|d| d.rule == e.rule && d.file == e.file)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line: 1,
            col: 1,
            rule,
            message: String::new(),
            snippet: String::new(),
        }
    }

    #[test]
    fn parses_entries_skipping_comments_and_blanks() {
        let text = "# burn-down list\n\nordering-justified crates/core/src/runtime/budget.rs\n\
                    panic-path crates/json/src/lib.rs\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.entries.len(), 2);
        assert!(b.suppresses(&diag(
            "ordering-justified",
            "crates/core/src/runtime/budget.rs"
        )));
        assert!(!b.suppresses(&diag("ordering-justified", "crates/json/src/lib.rs")));
    }

    #[test]
    fn rejects_unknown_rules_and_malformed_lines() {
        assert!(Baseline::parse("no-such-rule crates/x.rs").is_err());
        assert!(Baseline::parse("ordering-justified").is_err());
        assert!(Baseline::parse("ordering-justified a b").is_err());
    }

    #[test]
    fn stale_entries_are_those_with_no_matching_finding() {
        let b =
            Baseline::parse("ordering-justified crates/a.rs\npanic-path crates/b.rs\n").unwrap();
        let findings = vec![diag("ordering-justified", "crates/a.rs")];
        let stale = b.stale(&findings);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "panic-path");
        assert_eq!(stale[0].file, "crates/b.rs");
    }
}
