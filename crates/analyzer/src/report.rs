//! The machine-readable analysis report (`artifacts/ANALYZE.json`),
//! rendered byte-stably through `delprop_json` (sorted keys, one
//! finding object per line) so CI artifacts diff cleanly run-to-run.

use delprop_json::Json;

use crate::baseline::Baseline;
use crate::diag::Diagnostic;
use crate::rules::RULE_IDS;

/// The complete result of a repo scan.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every finding, suppressed or not, sorted by (file, line).
    pub findings: Vec<Diagnostic>,
    /// Which of `findings` the baseline suppresses (parallel bitmask).
    pub suppressed: Vec<bool>,
    /// Stale baseline entries: `(rule, file)` pairs with no finding.
    pub stale: Vec<(String, String)>,
    /// Number of baseline entries.
    pub baseline_entries: usize,
}

impl Report {
    /// Build from a finished scan plus the parsed baseline.
    pub fn new(files_scanned: usize, findings: Vec<Diagnostic>, baseline: &Baseline) -> Report {
        let suppressed = findings.iter().map(|d| baseline.suppresses(d)).collect();
        let stale = baseline
            .stale(&findings)
            .into_iter()
            .map(|e| (e.rule.clone(), e.file.clone()))
            .collect();
        Report {
            files_scanned,
            findings,
            suppressed,
            stale,
            baseline_entries: baseline.entries.len(),
        }
    }

    /// Findings the baseline does not cover — the ones that fail the
    /// lint.
    pub fn active(&self) -> impl Iterator<Item = &Diagnostic> {
        self.findings
            .iter()
            .zip(&self.suppressed)
            .filter(|(_, &s)| !s)
            .map(|(d, _)| d)
    }

    /// Number of suppressed findings.
    pub fn suppressed_count(&self) -> usize {
        self.suppressed.iter().filter(|&&s| s).count()
    }

    /// The JSON document written to `artifacts/ANALYZE.json`.
    pub fn to_json(&self) -> Json {
        let findings: Vec<Json> = self
            .findings
            .iter()
            .zip(&self.suppressed)
            .map(|(d, &s)| {
                Json::obj(vec![
                    ("file", Json::str(d.file.as_str())),
                    ("line", Json::int(d.line as i64)),
                    ("col", Json::int(d.col as i64)),
                    ("rule", Json::str(d.rule)),
                    ("message", Json::str(d.message.as_str())),
                    ("snippet", Json::str(d.snippet.as_str())),
                    ("suppressed", Json::Bool(s)),
                ])
            })
            .collect();
        let stale: Vec<Json> = self
            .stale
            .iter()
            .map(|(rule, file)| {
                Json::obj(vec![
                    ("rule", Json::str(rule.as_str())),
                    ("file", Json::str(file.as_str())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("files_scanned", Json::int(self.files_scanned as i64)),
            (
                "rules",
                Json::Arr(RULE_IDS.iter().map(|r| Json::str(*r)).collect()),
            ),
            ("findings", Json::Arr(findings)),
            (
                "counts",
                Json::obj(vec![
                    ("total", Json::int(self.findings.len() as i64)),
                    ("suppressed", Json::int(self.suppressed_count() as i64)),
                    (
                        "active",
                        Json::int((self.findings.len() - self.suppressed_count()) as i64),
                    ),
                ]),
            ),
            (
                "baseline",
                Json::obj(vec![
                    ("entries", Json::int(self.baseline_entries as i64)),
                    ("stale", Json::Arr(stale)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_counts_and_suppression() {
        let findings = vec![
            Diagnostic {
                file: "crates/a.rs".into(),
                line: 3,
                col: 5,
                rule: "panic-path",
                message: "m".into(),
                snippet: "x.unwrap();".into(),
            },
            Diagnostic {
                file: "crates/b.rs".into(),
                line: 1,
                col: 1,
                rule: "no-sleep",
                message: "m".into(),
                snippet: "thread::sleep(d);".into(),
            },
        ];
        let baseline = Baseline::parse("panic-path crates/a.rs\n").unwrap();
        let report = Report::new(2, findings, &baseline);
        assert_eq!(report.suppressed_count(), 1);
        assert_eq!(report.active().count(), 1);
        assert!(report.stale.is_empty());
        let json = report.to_json();
        assert_eq!(
            json.get("counts")
                .and_then(|c| c.get("active"))
                .and_then(Json::as_num),
            Some(1.0)
        );
        // Byte-stable: rendering twice is identical.
        assert_eq!(json.render(), report.to_json().render());
    }
}
