//! `delprop-analyzer`: the repo's span-aware static analyzer.
//!
//! A zero-dependency, hand-rolled Rust [`lexer`] produces one full
//! token stream per file (byte/line/col spans; raw strings, char vs
//! lifetime disambiguation, nested block comments, doc comments —
//! handled once, centrally). A [`rules`] engine runs every analysis
//! over that shared stream and emits structured [`diag::Diagnostic`]s;
//! [`report`] serializes them to `artifacts/ANALYZE.json` and
//! [`baseline`] implements the committed `analyzer.baseline` burn-down
//! file with stale-suppression checking.
//!
//! The rule catalog (see DESIGN.md §16): the eight invariants ported
//! from the old `crates/xtask` line scanner, plus three audits only a
//! token stream can express —
//!
//! - **ordering-justified** — every `Ordering::{Acquire,Release,AcqRel,
//!   SeqCst,Relaxed}` argument outside `runtime/sync` and `modelcheck`
//!   carries an adjacent `// ordering:` justification comment;
//! - **budget-coverage** — every `loop`/`while`/`for` body in
//!   `crates/setcover`, `crates/lp`, and `crates/core/src/solvers`
//!   syntactically reaches a `charge`/`tick`/`is_exhausted` call or a
//!   `lint:allow(budget)` marker;
//! - **panic-path** — `unwrap`/`expect`/`panic!`/`unreachable!`/slice
//!   indexing in non-test code of `crates/server` and `crates/json` is
//!   a hard error (typed wire errors only).
//!
//! `cargo run -p xtask -- lint` is the CLI over [`run`].

pub mod baseline;
pub mod ctx;
pub mod diag;
pub mod lexer;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

use baseline::Baseline;
use diag::Diagnostic;
use report::Report;

/// Analyze one file's source as if it lived at repo-relative path
/// `rel`. This is the whole analyzer behind a pure-function seam: the
/// fixture corpus and the migrated xtask tests drive it directly.
pub fn analyze_file(rel: &str, src: &str) -> Vec<Diagnostic> {
    rules::check_file(rel, src)
}

/// How a [`run`] ended, in CLI terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// No active findings, no stale baseline entries.
    Clean,
    /// Active findings and/or stale baseline entries were printed.
    Dirty,
    /// The scan itself failed (unreadable file, malformed baseline).
    Error,
}

/// Options for a repo scan.
#[derive(Debug, Default)]
pub struct Options {
    /// Baseline path; `None` uses `<root>/analyzer.baseline` (a missing
    /// file is an empty baseline).
    pub baseline: Option<PathBuf>,
    /// Where to write the JSON report; `None` writes
    /// `<root>/artifacts/ANALYZE.json`, `Some("")` skips writing.
    pub json_out: Option<PathBuf>,
    /// Only report baseline staleness (the CI stale-suppression step):
    /// active findings are not printed and do not fail the run.
    pub stale_only: bool,
}

/// Scan the repository at `root`, print diagnostics to stdout, write
/// the JSON report, and say whether the tree is clean. This is the
/// body of `cargo run -p xtask -- lint`.
pub fn run(root: &Path, opts: &Options) -> Outcome {
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("analyzer.baseline"));
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!("analyzer: cannot read {}: {e}", baseline_path.display());
            return Outcome::Error;
        }
    };
    let baseline = match Baseline::parse(&baseline_text) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("analyzer: {msg}");
            return Outcome::Error;
        }
    };

    let (files, mut findings) = match scan_repo(root) {
        Ok(pair) => pair,
        Err(msg) => {
            eprintln!("analyzer: {msg}");
            return Outcome::Error;
        }
    };
    findings.extend(check_core_denies_unsafe_ops(root));
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.col).cmp(&(b.file.as_str(), b.line, b.rule, b.col))
    });

    let report = Report::new(files, findings, &baseline);

    let json_path = match &opts.json_out {
        None => Some(root.join("artifacts/ANALYZE.json")),
        Some(p) if p.as_os_str().is_empty() => None,
        Some(p) => Some(p.clone()),
    };
    if let Some(path) = json_path {
        if let Err(e) = delprop_json::write_artifact(&path, &report.to_json()) {
            eprintln!("analyzer: cannot write {}: {e}", path.display());
            return Outcome::Error;
        }
    }

    let mut dirty = false;
    if !opts.stale_only {
        for d in report.active() {
            println!("{d}");
            dirty = true;
        }
    }
    for (rule, file) in &report.stale {
        println!(
            "analyzer.baseline: stale suppression `{rule} {file}`: the file no \
             longer triggers this rule — delete the entry"
        );
        dirty = true;
    }

    let active = report.active().count();
    let suppressed = report.suppressed_count();
    if dirty {
        println!(
            "analyzer: {active} active finding(s), {suppressed} baselined, {} stale \
             baseline entr(y/ies) over {files} files",
            report.stale.len()
        );
        Outcome::Dirty
    } else {
        println!(
            "analyzer: OK ({files} files, {} findings all baselined, {} baseline entries)",
            suppressed, report.baseline_entries
        );
        Outcome::Clean
    }
}

/// Walk the repo's Rust sources and run every rule. Returns the file
/// count and the raw findings.
pub fn scan_repo(root: &Path) -> Result<(usize, Vec<Diagnostic>), String> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "benches"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {rel}: {e}"))?;
        findings.extend(analyze_file(&rel, &text));
    }
    Ok((files.len(), findings))
}

/// Recursively collect `.rs` files, skipping build output, dot
/// directories, and fixture corpora (fixtures deliberately violate
/// rules).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return; // missing top-level dirs (e.g. no benches/) are fine
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// `crates/core/src/lib.rs` must keep its crate-level unsafe hygiene
/// attribute — the rule every `SAFETY:` comment in that crate leans on.
fn check_core_denies_unsafe_ops(root: &Path) -> Vec<Diagnostic> {
    let path = root.join("crates/core/src/lib.rs");
    let text = std::fs::read_to_string(&path).unwrap_or_default();
    if text.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
        Vec::new()
    } else {
        vec![Diagnostic {
            file: "crates/core/src/lib.rs".to_string(),
            line: 1,
            col: 1,
            rule: "safety-comments",
            message: "missing `#![deny(unsafe_op_in_unsafe_fn)]` at the crate root".to_string(),
            snippet: String::new(),
        }]
    }
}
