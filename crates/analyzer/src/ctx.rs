//! Per-file analysis context: the shared token stream plus the derived
//! facts every rule needs (test masks, comment adjacency, allow
//! markers, function spans). Built once per file; the N rules all read
//! from it — this is what replaces the old scanner's per-rule
//! re-stripping.

use crate::lexer::{lex, Token, TokenKind};

/// Everything a rule may ask about one file.
pub struct FileCtx<'a> {
    /// Repo-relative path with `/` separators.
    pub rel: &'a str,
    /// The file contents.
    pub src: &'a str,
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Raw lines (no trailing `\n`), for snippet extraction.
    pub lines: Vec<&'a str>,
    /// Per-line: comment text appearing on that line (concatenated), so
    /// adjacency checks look at comments only — `Ordering::Acquire` in
    /// *code* can never satisfy an `ordering:` tag.
    comment_on_line: Vec<String>,
    /// Per-line: whether the line holds any non-comment token.
    code_on_line: Vec<bool>,
    /// Per-line: whether the line belongs to a `#[cfg(test)]` item
    /// (attribute line and body included).
    test_mask: Vec<bool>,
}

/// How many lines above a violation a `lint:allow(...)` marker may sit.
pub const MARKER_LOOKBACK: usize = 4;

impl<'a> FileCtx<'a> {
    /// Lex `src` and derive the per-line facts.
    pub fn new(rel: &'a str, src: &'a str) -> FileCtx<'a> {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let lines: Vec<&str> = src.lines().collect();
        let nlines = lines.len();
        let mut comment_on_line = vec![String::new(); nlines];
        let mut code_on_line = vec![false; nlines];
        for t in &tokens {
            let first = t.line as usize - 1;
            if t.is_comment() {
                // A block comment may span lines; credit its text to
                // every line it covers so "comment directly above"
                // checks see multi-line blocks.
                for (off, part) in t.text(src).split('\n').enumerate() {
                    if let Some(slot) = comment_on_line.get_mut(first + off) {
                        slot.push_str(part);
                        slot.push(' ');
                    }
                }
            } else {
                let last = first + t.text(src).matches('\n').count();
                for line in code_on_line
                    .iter_mut()
                    .take(nlines.min(last + 1))
                    .skip(first)
                {
                    *line = true;
                }
            }
        }
        let test_mask = test_mask(&tokens, src, nlines);
        FileCtx {
            rel,
            src,
            tokens,
            code,
            lines,
            comment_on_line,
            code_on_line,
            test_mask,
        }
    }

    /// The code token at code-index `ci` (panics on out of range; rules
    /// index via iteration so the bound holds).
    pub fn code_tok(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    /// Whether the code token at code-index `ci` matches `pat`: an
    /// exact text match against identifiers and punctuation.
    pub fn code_is(&self, ci: usize, pat: &str) -> bool {
        self.code.get(ci).is_some_and(|&ti| {
            let t = &self.tokens[ti];
            matches!(t.kind, TokenKind::Ident | TokenKind::Punct) && t.text(self.src) == pat
        })
    }

    /// Whether the code tokens starting at `ci` match `pats` exactly.
    pub fn code_seq(&self, ci: usize, pats: &[&str]) -> bool {
        pats.iter()
            .enumerate()
            .all(|(k, pat)| self.code_is(ci + k, pat))
    }

    /// Whether 0-based line `i` sits inside a `#[cfg(test)]` item.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// The trimmed source line for a 0-based line index.
    pub fn snippet(&self, i: usize) -> &str {
        self.lines.get(i).map_or("", |l| l.trim())
    }

    /// Whether 0-based line `i` carries — on itself or within
    /// [`MARKER_LOOKBACK`] comment-bearing lines above — a
    /// `lint:allow(<rule>): <reason>` marker with a non-empty reason.
    /// Markers live in comments only: a string literal spelling one
    /// does not count.
    pub fn allowed(&self, i: usize, rule: &str) -> bool {
        let marker = format!("lint:allow({rule})");
        let lo = i.saturating_sub(MARKER_LOOKBACK);
        (lo..=i).any(|li| {
            let text = self.comment_on_line.get(li).map_or("", String::as_str);
            text.find(&marker).is_some_and(|at| {
                let rest = &text[at + marker.len()..];
                rest.strip_prefix(':').is_some_and(|reason| {
                    // A block comment's closing `*/` is not a reason.
                    let r = reason.trim();
                    let r = r.strip_suffix("*/").map_or(r, str::trim_end);
                    !r.is_empty()
                })
            })
        })
    }

    /// Whether 0-based line `i` carries `tag` in a comment on the line
    /// itself, or in the contiguous run of comment/attribute/blank
    /// lines directly above it (a code line breaks the run). Matching
    /// is ASCII-case-insensitive on the tag's first letter, so both
    /// `// ordering: …` and `// Ordering: …` justify; the character
    /// after the tag must not be `:`, so the *code* path separator in
    /// a prose mention (`Ordering::Acquire`) never satisfies it.
    pub fn tagged_above(&self, i: usize, tag: &str) -> bool {
        if self.comment_has_tag(i, tag) {
            return true;
        }
        for li in (0..i).rev() {
            let has_code = self.code_on_line.get(li).copied().unwrap_or(false);
            if has_code && !self.is_attr_line(li) {
                return false;
            }
            if self.comment_has_tag(li, tag) {
                return true;
            }
        }
        false
    }

    fn comment_has_tag(&self, i: usize, tag: &str) -> bool {
        let text = self.comment_on_line.get(i).map_or("", String::as_str);
        let lower = text.to_ascii_lowercase();
        let needle = format!("{tag}:");
        let mut from = 0;
        while let Some(at) = lower[from..].find(&needle) {
            let end = from + at + needle.len();
            // `ordering:` yes, `ordering::` (a path in prose) no.
            if lower.as_bytes().get(end) != Some(&b':') {
                return true;
            }
            from = end;
        }
        false
    }

    /// Whether the code on 0-based line `i` is (part of) an attribute —
    /// attributes may sit between a comment block and the item it
    /// annotates without breaking adjacency.
    fn is_attr_line(&self, i: usize) -> bool {
        let t = self.lines.get(i).map_or("", |l| l.trim_start());
        t.starts_with("#[") || t.starts_with("#![")
    }

    /// Code-index spans `(signature_line, body_range)` of every `fn`
    /// with a body, innermost-last. `body_range` is a code-index range
    /// covering the body's braces.
    pub fn fn_spans(&self) -> Vec<FnSpan> {
        let mut spans = Vec::new();
        let n = self.code.len();
        for ci in 0..n {
            if !self.code_is(ci, "fn") {
                continue;
            }
            // Scan the signature for the body `{` (or `;`: no body) at
            // bracket depth 0.
            let mut depth = 0i64;
            let mut k = ci + 1;
            while k < n {
                let t = self.code_tok(k);
                match t.text(self.src) {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth == 0 => break,
                    "{" if depth == 0 => {
                        if let Some(close) = self.matching_brace(k) {
                            spans.push(FnSpan {
                                sig_line: self.code_tok(ci).line as usize - 1,
                                body: (k, close),
                            });
                        }
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        spans
    }

    /// The code index of the `}` matching the `{` at code index `open`.
    pub fn matching_brace(&self, open: usize) -> Option<usize> {
        let mut depth = 0i64;
        for k in open..self.code.len() {
            match self.code_tok(k).text(self.src) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
        None
    }
}

/// A function's signature line and body span (code-index range of the
/// braces, inclusive).
#[derive(Debug, Clone, Copy)]
pub struct FnSpan {
    /// 0-based line of the `fn` keyword.
    pub sig_line: usize,
    /// `(open_brace, close_brace)` code indices, inclusive.
    pub body: (usize, usize),
}

/// Per-line mask of `#[cfg(test)]` items: the attribute line, any
/// attribute/doc lines down to the opening brace, and the braced body.
fn test_mask(tokens: &[Token], src: &str, nlines: usize) -> Vec<bool> {
    let mut mask = vec![false; nlines];
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let text = |k: usize| code.get(k).map_or("", |t| t.text(src));
    let mut k = 0usize;
    while k < code.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = text(k) == "#"
            && text(k + 1) == "["
            && text(k + 2) == "cfg"
            && text(k + 3) == "("
            && text(k + 4) == "test"
            && text(k + 5) == ")"
            && text(k + 6) == "]";
        if !is_cfg_test {
            k += 1;
            continue;
        }
        let attr_line = code[k].line as usize - 1;
        // Find the item's opening brace (skipping further attributes
        // and the signature), then its matching close.
        let mut j = k + 7;
        let mut depth = 0i64;
        let mut end_line = attr_line;
        while let Some(t) = code.get(j) {
            match t.text(src) {
                "{" => {
                    depth += 1;
                }
                "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        end_line = t.line as usize - 1;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    // Item without a body (e.g. `#[cfg(test)] use …;`).
                    end_line = t.line as usize - 1;
                    break;
                }
                _ => {}
            }
            end_line = t.line as usize - 1;
            j += 1;
        }
        for line in mask
            .iter_mut()
            .take(nlines.min(end_line + 1))
            .skip(attr_line)
        {
            *line = true;
        }
        k = j + 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mask_covers_nested_braces_and_returns_to_code() {
        let src = "fn a() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn b() { if x { y() } }\n\
                   }\n\
                   fn c() { z.unwrap(); }\n";
        let ctx = FileCtx::new("crates/core/src/x.rs", src);
        let mask: Vec<bool> = (0..6).map(|i| ctx.in_test(i)).collect();
        assert_eq!(mask, [false, true, true, true, true, false]);
    }

    #[test]
    fn allow_markers_live_in_comments_not_strings() {
        let src = "let s = \"lint:allow(sleep): nope\";\nwork();\n\
                   // lint:allow(sleep): staged timing scenario\nmore();\n";
        let ctx = FileCtx::new("crates/x.rs", src);
        assert!(!ctx.allowed(1, "sleep"), "string literal is not a marker");
        assert!(ctx.allowed(3, "sleep"));
    }

    #[test]
    fn ordering_tag_rejects_code_and_path_mentions() {
        let src = "x.load(Ordering::Acquire);\n\
                   // see Ordering::Release for the pair\n\
                   y.load(Ordering::Acquire);\n\
                   // ordering: Acquire pairs with the Release in push\n\
                   z.load(Ordering::Acquire);\n";
        let ctx = FileCtx::new("crates/x.rs", src);
        assert!(!ctx.tagged_above(0, "ordering"), "code is not a tag");
        assert!(
            !ctx.tagged_above(2, "ordering"),
            "`Ordering::` in prose is a path, not a tag"
        );
        assert!(ctx.tagged_above(4, "ordering"));
    }

    #[test]
    fn tag_block_above_is_broken_by_code_lines() {
        let src = "// ordering: stale\nh();\nx.load(Ordering::Acquire);\n";
        let ctx = FileCtx::new("crates/x.rs", src);
        assert!(!ctx.tagged_above(2, "ordering"));
    }

    #[test]
    fn fn_spans_find_bodies() {
        let src = "fn a(x: [u8; 4]) -> usize { x.len() }\nfn no_body();\nfn b() { loop {} }\n";
        let ctx = FileCtx::new("crates/x.rs", src);
        let spans = ctx.fn_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].sig_line, 0);
        assert_eq!(spans[1].sig_line, 2);
    }
}
