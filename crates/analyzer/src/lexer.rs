//! A hand-rolled Rust lexer producing a full token stream with
//! byte/line/column spans.
//!
//! This is the single place where the repo's lint rules learn what is
//! *code* and what is not: raw strings (`r#"…"#`), byte strings,
//! `'a'`-char vs `'a`-lifetime disambiguation, nested block comments
//! (`/* /* */ */`), doc comments, and CRLF line endings are all handled
//! here, once — rules downstream pattern-match over [`Token`]s and can
//! never be fooled by prose in a comment or a pattern inside a string
//! literal (the false-positive classes the old per-rule string-stripping
//! scanner in `crates/xtask` had to re-defend against in every rule).
//!
//! The lexer is total: any byte sequence lexes to a token stream (an
//! unterminated string or block comment swallows the rest of the file
//! as that token). It does not validate Rust — `rustc` does that — it
//! only needs to agree with `rustc` on token *boundaries* for code that
//! compiles, which everything it scans does (CI lints run after the
//! build).

/// What a token is. Rules mostly care about `Ident`, `Punct`, and
/// whether a token is a comment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unsafe`, `HashMap`, …). Raw
    /// identifiers (`r#type`) lex as `Ident` with the `r#` included in
    /// the span.
    Ident,
    /// A lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// A char or byte-char literal (`'x'`, `'\n'`, `b'\0'`).
    CharLit,
    /// A string literal of any flavor: `"…"`, `r"…"`, `r#"…"#`,
    /// `b"…"`, `br#"…"#`.
    StrLit,
    /// A numeric literal (including suffixes: `1_000u64`, `0xfe`,
    /// `1e-9`).
    NumLit,
    /// A `//` comment (plain, `///` doc, or `//!` inner doc).
    LineComment,
    /// A `/* … */` comment, nesting handled; doc variants included.
    BlockComment,
    /// Punctuation. One byte per token, except `::` which lexes as a
    /// single token (rules match paths constantly).
    Punct,
}

/// One token with its span.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based byte column of `start` within its line.
    pub col: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this token is a line or block comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lex `src` into a full token stream, comments included.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            out: Vec::new(),
        }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match b {
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    self.line_start = self.pos;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.quote(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        // `col` is computed from the *current* line bookkeeping; tokens
        // never start mid-newline, so `start >= line_start` holds.
        self.out.push(Token {
            kind,
            start,
            end: self.pos,
            line: self.line,
            col: (start - self.line_start) as u32 + 1,
        });
    }

    /// Advance over `n` bytes that are known to contain no newline.
    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    /// Advance one byte, maintaining line bookkeeping — used inside
    /// multi-line tokens (strings, block comments). The token's span
    /// keeps the line/col of its first byte, recorded by the caller.
    fn bump_multiline(&mut self) -> (u32, usize) {
        let saved = (self.line, self.line_start);
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
            self.line_start = self.pos + 1;
        }
        self.pos += 1;
        saved
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokenKind::LineComment, start);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let (line, col) = (self.line, (start - self.line_start) as u32 + 1);
        self.bump(2);
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump(2);
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump(2);
            } else {
                self.bump_multiline();
            }
        }
        self.out.push(Token {
            kind: TokenKind::BlockComment,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    /// A plain or byte string starting at the `"` currently under the
    /// cursor; `start` is where the token began (before any `b` prefix).
    fn string(&mut self, start: usize) {
        let (line, col) = (self.line, (start - self.line_start) as u32 + 1);
        self.bump(1); // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.bump(1);
                    if self.pos < self.bytes.len() {
                        self.bump_multiline(); // escaped char may be a newline
                    }
                }
                b'"' => {
                    self.bump(1);
                    break;
                }
                _ => {
                    self.bump_multiline();
                }
            }
        }
        self.out.push(Token {
            kind: TokenKind::StrLit,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    /// A raw string: cursor on the first `#` or `"` after the `r`/`br`
    /// prefix; `start` is the prefix start. Closes at `"` followed by
    /// `hashes` `#`s.
    fn raw_string(&mut self, start: usize) {
        let (line, col) = (self.line, (start - self.line_start) as u32 + 1);
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump(1);
        }
        self.bump(1); // opening quote
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"'
                && self.bytes[self.pos + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&b| b == b'#')
                    .count()
                    == hashes
            {
                self.bump(1 + hashes);
                break;
            }
            self.bump_multiline();
        }
        self.out.push(Token {
            kind: TokenKind::StrLit,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    /// Handle `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'c'`, `br"…"`,
    /// `br#"…"#` when the cursor sits on `r`/`b`. Returns `true` when a
    /// token was consumed; `false` leaves the cursor untouched so the
    /// generic identifier path runs.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let start = self.pos;
        let b0 = self.bytes[self.pos];
        let b1 = self.peek(1);
        match (b0, b1) {
            (b'r', Some(b'"')) => {
                self.bump(1);
                self.raw_string(start);
                true
            }
            (b'r', Some(b'#')) => {
                // Raw string `r#"` (any number of #s) or raw identifier
                // `r#type`. Look past the run of #s: a quote means a
                // string.
                let mut ahead = 1;
                while self.bytes.get(self.pos + ahead) == Some(&b'#') {
                    ahead += 1;
                }
                if self.bytes.get(self.pos + ahead) == Some(&b'"') {
                    self.bump(1);
                    self.raw_string(start);
                } else {
                    // Raw identifier: `r#` + ident chars.
                    self.bump(2);
                    while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                        self.bump(1);
                    }
                    self.push(TokenKind::Ident, start);
                }
                true
            }
            (b'b', Some(b'"')) => {
                self.bump(1);
                self.string(start);
                true
            }
            (b'b', Some(b'\'')) => {
                self.bump(1);
                self.char_lit(start);
                true
            }
            (b'b', Some(b'r')) if matches!(self.peek(2), Some(b'"') | Some(b'#')) => {
                self.bump(2);
                self.raw_string(start);
                true
            }
            _ => false,
        }
    }

    /// Cursor on a `'`: a lifetime (`'a`, `'static`) or a char literal
    /// (`'x'`, `'\n'`, `'"'`, `'\''`). Rust's rule: `'` + ident with no
    /// closing quote is a lifetime; everything else is a char.
    fn quote(&mut self) {
        let start = self.pos;
        match self.peek(1) {
            Some(b'\\') => self.char_lit(start),
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char, `'a` / `'abc` a lifetime: scan the
                // ident run and check for a closing quote.
                let mut ahead = 2;
                while self
                    .bytes
                    .get(self.pos + ahead)
                    .is_some_and(|&b| is_ident_continue(b))
                {
                    ahead += 1;
                }
                if self.bytes.get(self.pos + ahead) == Some(&b'\'') && ahead == 2 {
                    self.char_lit(start);
                } else {
                    self.bump(ahead);
                    self.push(TokenKind::Lifetime, start);
                }
            }
            // Multi-byte UTF-8 scalar, punctuation (`'('`), or a stray
            // quote at EOF: treat as a char literal (total lexing).
            _ => self.char_lit(start),
        }
    }

    /// Char literal with the cursor on its opening `'` (or on `b` for
    /// `b'…'` — `start` marks the true beginning either way).
    fn char_lit(&mut self, start: usize) {
        self.bump(1); // opening quote
        if self.peek(0) == Some(b'\\') {
            self.bump(2); // backslash + escaped byte (enough for \', \n, \x.., \u{..})
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.bump(1);
            }
            self.bump(1);
        } else {
            // One scalar value, then the closing quote.
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.bump(1);
            }
            self.bump(1);
        }
        self.pos = self.pos.min(self.bytes.len());
        self.push(TokenKind::CharLit, start);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.bump(1);
        }
        self.push(TokenKind::Ident, start);
    }

    fn number(&mut self) {
        let start = self.pos;
        self.bump(1);
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                // Covers hex/oct/bin digits, `e` exponents, and type
                // suffixes (`u64`).
                let at_exp = (b == b'e' || b == b'E')
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && !self.src[start..self.pos].starts_with("0x");
                self.bump(1);
                if at_exp {
                    self.bump(1); // the sign
                }
            } else if b == b'.' && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                // `1.5` continues the number; `1..n` does not.
                self.bump(1);
            } else {
                break;
            }
        }
        self.push(TokenKind::NumLit, start);
    }

    fn punct(&mut self) {
        let start = self.pos;
        if self.bytes[self.pos] == b':' && self.peek(1) == Some(b':') {
            self.bump(2); // `::` as one token: rules match paths constantly
        } else {
            // One byte — multi-byte UTF-8 punctuation does not occur in
            // this codebase's code (only in comments/strings), but stay
            // on a char boundary anyway.
            let ch_len = self.src[self.pos..]
                .chars()
                .next()
                .map_or(1, |c| c.len_utf8());
            self.bump(ch_len);
        }
        self.push(TokenKind::Punct, start);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_and_texts(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_puncts_and_path_sep() {
        let toks = kinds_and_texts("std::sync::atomic::Ordering");
        assert_eq!(
            toks,
            [
                (TokenKind::Ident, "std".into()),
                (TokenKind::Punct, "::".into()),
                (TokenKind::Ident, "sync".into()),
                (TokenKind::Punct, "::".into()),
                (TokenKind::Ident, "atomic".into()),
                (TokenKind::Punct, "::".into()),
                (TokenKind::Ident, "Ordering".into()),
            ]
        );
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds_and_texts("fn f<'a>(x: &'a str, c: char) { let y = 'b'; let z = '\\''; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 2, "{toks:?}");
        assert_eq!(chars[0].1, "'b'");
        assert_eq!(chars[1].1, "'\\''");
    }

    #[test]
    fn static_lifetime_and_quote_punct_char() {
        let toks = kinds_and_texts("&'static str; let q = '\"';");
        assert!(toks.contains(&(TokenKind::Lifetime, "'static".into())));
        assert!(toks.contains(&(TokenKind::CharLit, "'\"'".into())));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let src = "let a = r#\"has \"quotes\" and .unwrap()\"#; let r#type = 1; r\"plain\";";
        let toks = kinds_and_texts(src);
        assert!(toks.contains(&(
            TokenKind::StrLit,
            "r#\"has \"quotes\" and .unwrap()\"#".into()
        )));
        assert!(toks.contains(&(TokenKind::Ident, "r#type".into())));
        assert!(toks.contains(&(TokenKind::StrLit, "r\"plain\"".into())));
        // The `.unwrap()` inside the raw string must NOT appear as code.
        assert!(!toks.contains(&(TokenKind::Ident, "unwrap".into())));
    }

    #[test]
    fn multi_hash_raw_string_ignores_single_hash_close() {
        let src = "r##\"inner \"# still open\"##end";
        let toks = kinds_and_texts(src);
        assert_eq!(
            toks[0],
            (TokenKind::StrLit, "r##\"inner \"# still open\"##".into())
        );
        assert_eq!(toks[1], (TokenKind::Ident, "end".into()));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds_and_texts("b\"bytes\" b'x' br#\"raw\"#");
        assert_eq!(
            toks,
            [
                (TokenKind::StrLit, "b\"bytes\"".into()),
                (TokenKind::CharLit, "b'x'".into()),
                (TokenKind::StrLit, "br#\"raw\"#".into()),
            ]
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds_and_texts("a /* outer /* inner */ still outer */ b");
        assert_eq!(
            toks,
            [
                (TokenKind::Ident, "a".into()),
                (
                    TokenKind::BlockComment,
                    "/* outer /* inner */ still outer */".into()
                ),
                (TokenKind::Ident, "b".into()),
            ]
        );
    }

    #[test]
    fn line_comments_stop_at_newline_and_crlf() {
        let src = "x // trailing .unwrap()\r\ny";
        let toks = lex(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].text(src), "x");
        assert_eq!(toks[1].text(src), "// trailing .unwrap()\r");
        assert_eq!(toks[1].kind, TokenKind::LineComment);
        assert_eq!(toks[2].text(src), "y");
        assert_eq!(toks[2].line, 2);
        assert_eq!(toks[2].col, 1);
    }

    #[test]
    fn spans_lines_and_cols_are_exact() {
        let src = "let a = 1;\n  foo.unwrap();\n";
        let toks = lex(src);
        let unwrap = toks.iter().find(|t| t.text(src) == "unwrap").unwrap();
        assert_eq!(unwrap.line, 2);
        assert_eq!(unwrap.col, 7);
        assert_eq!(&src[unwrap.start..unwrap.end], "unwrap");
    }

    #[test]
    fn strings_with_escapes_hide_their_contents() {
        let src = r#"let s = "esc \" quote .expect("; rest"#;
        let toks = kinds_and_texts(src);
        assert!(toks.contains(&(TokenKind::StrLit, r#""esc \" quote .expect(""#.into())));
        assert!(toks.contains(&(TokenKind::Ident, "rest".into())));
        assert!(!toks.contains(&(TokenKind::Ident, "expect".into())));
    }

    #[test]
    fn multiline_string_keeps_line_count_right() {
        let src = "let s = \"line one\nline two\";\nafter";
        let toks = lex(src);
        let after = toks.iter().find(|t| t.text(src) == "after").unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn numbers_including_ranges_floats_exponents() {
        let toks = kinds_and_texts("0..10 1.5 1e-9 0xfe_u32 9.007e15");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::NumLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5", "1e-9", "0xfe_u32", "9.007e15"]);
    }

    #[test]
    fn doc_comments_are_comments() {
        let toks = kinds_and_texts("/// outer doc .unwrap()\n//! inner doc\nfn f() {}");
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert!(toks.contains(&(TokenKind::Ident, "fn".into())));
        assert!(!toks.contains(&(TokenKind::Ident, "unwrap".into())));
    }

    #[test]
    fn unterminated_tokens_swallow_to_eof_without_panicking() {
        for src in ["\"open", "/* open", "r#\"open", "'", "b'"] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?}");
            assert_eq!(toks.last().unwrap().end, src.len(), "{src:?}");
        }
    }
}
