//! Behavioral tests for the three audits that exist only on the
//! token-stream engine: ordering-justified, budget-coverage, and
//! panic-path. Each case documents one edge the rule must hold.

use delprop_analyzer::analyze_file;

fn scan(rel: &str, text: &str) -> Vec<String> {
    analyze_file(rel, text)
        .into_iter()
        .map(|v| format!("{}:{}", v.line, v.rule))
        .collect()
}

// -------------------------------------------------------------------
// ordering-justified
// -------------------------------------------------------------------

#[test]
fn ordering_without_justification_is_flagged() {
    let src = "fn f(x: &AtomicU64) { x.load(Ordering::Acquire); }\n";
    assert_eq!(
        scan("crates/core/src/shard/deque.rs", src),
        ["1:ordering-justified"]
    );
}

#[test]
fn ordering_same_line_comment_satisfies() {
    let src = "fn f(x: &AtomicU64) { x.load(Ordering::Acquire); // ordering: pairs with push Release\n}\n";
    assert!(scan("crates/core/src/shard/deque.rs", src).is_empty());
}

#[test]
fn ordering_comment_block_above_satisfies() {
    let src = "fn f(x: &AtomicU64) {\n\
                   // ordering: Acquire pairs with the Release store in push();\n\
                   // a thief must observe the slot write before the index.\n\
                   x.load(Ordering::Acquire);\n\
               }\n";
    assert!(scan("crates/core/src/shard/deque.rs", src).is_empty());
}

#[test]
fn ordering_comment_separated_by_code_does_not_satisfy() {
    let src = "fn f(x: &AtomicU64) {\n\
                   // ordering: stale justification\n\
                   let y = 1;\n\
                   x.load(Ordering::Relaxed);\n\
               }\n";
    assert_eq!(
        scan("crates/core/src/shard/deque.rs", src),
        ["4:ordering-justified"]
    );
}

#[test]
fn ordering_path_mention_in_prose_is_not_a_justification() {
    // `Ordering::Acquire` inside a comment is a path, not an
    // `ordering:` tag — the double colon must not satisfy the audit.
    let src = "fn f(x: &AtomicU64) {\n\
                   // Ordering::Acquire would also work here.\n\
                   x.load(Ordering::Relaxed);\n\
               }\n";
    assert_eq!(
        scan("crates/core/src/shard/deque.rs", src),
        ["3:ordering-justified"]
    );
}

#[test]
fn ordering_capitalized_tag_satisfies() {
    let src = "// Ordering: Relaxed — a monotonic counter, no other data published.\n\
               fn f(x: &AtomicU64) { x.fetch_add(1, Ordering::Relaxed); }\n";
    assert!(scan("crates/core/src/runtime/fault.rs", src).is_empty());
}

#[test]
fn ordering_exempt_in_sync_facade_modelcheck_and_tests() {
    let src = "fn f(x: &AtomicU64) { x.load(Ordering::SeqCst); }\n";
    assert!(scan("crates/core/src/runtime/sync.rs", src).is_empty());
    assert!(scan("crates/modelcheck/src/atomic.rs", src).is_empty());
    assert!(scan("crates/core/tests/shard_scale.rs", src).is_empty());
    let in_test = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn g(x: &AtomicU64) { x.load(Ordering::SeqCst); }\n\
                   }\n";
    assert!(scan("crates/core/src/shard/deque.rs", in_test).is_empty());
}

#[test]
fn ordering_use_declaration_is_not_an_argument() {
    let src = "use std::sync::atomic::Ordering::{Acquire, Release};\n";
    assert!(scan("crates/core/src/shard/deque.rs", src).is_empty());
    let nested = "use std::sync::atomic::{AtomicU64, Ordering::SeqCst};\n";
    // no-raw-atomics fires on the AtomicU64 import path, but
    // ordering-justified must not.
    assert!(!scan("crates/core/src/ir/mod.rs", nested)
        .iter()
        .any(|v| v.ends_with("ordering-justified")));
}

#[test]
fn ordering_every_variant_is_audited() {
    for variant in ["Acquire", "Release", "AcqRel", "SeqCst", "Relaxed"] {
        let src = format!("fn f(x: &AtomicU64) {{ x.op(Ordering::{variant}); }}\n");
        assert_eq!(
            scan("crates/server/src/metrics.rs", &src),
            ["1:ordering-justified"],
            "{variant}"
        );
    }
}

// -------------------------------------------------------------------
// budget-coverage
// -------------------------------------------------------------------

#[test]
fn unbudgeted_loop_in_solver_scope_is_flagged() {
    let src = "fn f(xs: &[u32]) -> u32 {\n\
                   let mut s = 0;\n\
                   for x in xs {\n\
                   s += x;\n\
                   }\n\
                   s\n\
               }\n";
    assert_eq!(
        scan("crates/setcover/src/greedy.rs", src),
        ["3:budget-coverage"]
    );
    assert_eq!(scan("crates/lp/src/simplex.rs", src), ["3:budget-coverage"]);
    assert_eq!(
        scan("crates/core/src/solvers/primal_dual.rs", src),
        ["3:budget-coverage"]
    );
    // Out of scope: the same loop elsewhere is fine.
    assert!(scan("crates/core/src/ir/mod.rs", src).is_empty());
    assert!(scan("crates/server/src/daemon.rs", src).is_empty());
}

#[test]
fn loop_body_reaching_budget_call_is_covered() {
    for call in [
        "budget.charge(1)?",
        "tick(1)",
        "ticker(n)",
        "if b.is_exhausted() { break; }",
    ] {
        let src = format!(
            "fn f(xs: &[u32]) {{\n    for x in xs {{\n        {call};\n        work(x);\n    }}\n}}\n"
        );
        assert!(
            scan("crates/setcover/src/greedy.rs", &src).is_empty(),
            "{call}"
        );
    }
}

#[test]
fn outer_loop_containing_budgeted_inner_loop_is_covered() {
    let src = "fn f() {\n\
                   while improved {\n\
                   for e in edges {\n\
                   tick(1);\n\
                   }\n\
                   }\n\
               }\n";
    assert!(scan("crates/core/src/solvers/local_search.rs", src).is_empty());
}

#[test]
fn budget_marker_on_loop_or_fn_signature_is_honored() {
    let on_loop = "fn f(xs: &[u32]) {\n\
                   // lint:allow(budget): bounded by arity, a compile-time constant\n\
                   for x in xs {\n\
                   push(x);\n\
                   }\n\
               }\n";
    assert!(scan("crates/lp/src/simplex.rs", on_loop).is_empty());
    let on_fn = "// lint:allow(budget): O(k) setup pass, charged once by the caller\n\
                 fn f(xs: &[u32]) {\n\
                 for x in xs {\n\
                 push(x);\n\
                 }\n\
                 for x in xs {\n\
                 pop(x);\n\
                 }\n\
                 }\n";
    assert!(scan("crates/lp/src/simplex.rs", on_fn).is_empty());
}

#[test]
fn budget_audit_skips_tests_and_hrtb_for_binder() {
    let in_test = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn g() { for i in 0..3 { check(i); } }\n\
                   }\n";
    assert!(scan("crates/setcover/src/greedy.rs", in_test).is_empty());
    // `for<'a>` is a higher-ranked binder, not a loop.
    let hrtb = "fn f(g: impl for<'a> Fn(&'a u32)) { g(&1); }\n";
    assert!(scan("crates/setcover/src/greedy.rs", hrtb).is_empty());
    // `impl Trait for Type` headers are not loops either — but loops
    // inside the impl body still are.
    let imp = "impl fmt::Display for Foo {\n\
               fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {\n\
               for x in &self.xs {\n\
               write!(f, \"{x}\")?;\n\
               }\n\
               Ok(())\n\
               }\n\
               }\n";
    assert_eq!(
        scan("crates/setcover/src/greedy.rs", imp),
        ["3:budget-coverage"]
    );
}

#[test]
fn bare_loop_and_while_are_audited_too() {
    let src = "fn f() {\n    loop {\n        step();\n    }\n}\n";
    assert_eq!(
        scan("crates/core/src/solvers/exact.rs", src),
        ["2:budget-coverage"]
    );
    let w = "fn f() {\n    while !done() {\n        step();\n    }\n}\n";
    assert_eq!(
        scan("crates/core/src/solvers/exact.rs", w),
        ["2:budget-coverage"]
    );
}

// -------------------------------------------------------------------
// panic-path
// -------------------------------------------------------------------

#[test]
fn panic_paths_are_hard_errors_in_server_and_json() {
    assert_eq!(
        scan("crates/server/src/wire.rs", "fn f() { x.unwrap(); }\n"),
        ["1:panic-path"]
    );
    assert_eq!(
        scan("crates/json/src/lib.rs", "fn f() { x.expect(\"msg\"); }\n"),
        ["1:panic-path"]
    );
    assert_eq!(
        scan(
            "crates/server/src/daemon.rs",
            "fn f() { panic!(\"boom\"); }\n"
        ),
        ["1:panic-path"]
    );
    assert_eq!(
        scan("crates/json/src/lib.rs", "fn f() { unreachable!(); }\n"),
        ["1:panic-path"]
    );
    // Out of scope crates are untouched by this rule.
    assert!(scan("crates/core/src/runtime/foo.rs", "fn f() { x.unwrap(); }\n").is_empty());
}

#[test]
fn slice_indexing_is_a_panic_path() {
    assert_eq!(
        scan(
            "crates/server/src/wire.rs",
            "fn f(b: &[u8]) -> u8 { b[0] }\n"
        ),
        ["1:panic-path"]
    );
    assert_eq!(
        scan(
            "crates/json/src/lib.rs",
            "fn f(v: &Vec<u8>, i: usize) -> u8 { v[i] }\n"
        ),
        ["1:panic-path"]
    );
    // Slicing a call result too.
    assert_eq!(
        scan("crates/server/src/wire.rs", "fn f() { g(&buf()[..n]); }\n"),
        ["1:panic-path"]
    );
}

#[test]
fn non_index_brackets_are_not_flagged() {
    for src in [
        "fn f(b: [u8; 4]) {}\n",                                // type position
        "fn f() -> Vec<u8> { vec![1, 2] }\n",                   // macro bang-bracket
        "fn f() { for x in [1, 2] { g(x); } }\n",               // array literal after `in`
        "fn f() { let a = [0u8; 16]; g(&a); }\n",               // array literal after `=`
        "fn f() { match x { [a, b] => g(a, b), _ => h() } }\n", // pattern
        "#[derive(Debug)]\nstruct S;\n",                        // attribute
    ] {
        assert!(scan("crates/server/src/wire.rs", src).is_empty(), "{src}");
    }
}

#[test]
fn panic_path_allows_tests_and_justified_markers() {
    let in_test = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn g() { x.unwrap(); assert_eq!(v[0], 1); }\n\
                   }\n";
    assert!(scan("crates/server/src/wire.rs", in_test).is_empty());
    assert!(scan("crates/server/tests/serve.rs", "fn f() { x.unwrap(); }\n").is_empty());
    let justified = "// lint:allow(panic): index bounded by the length check above\n\
                     let b = frame[4];\n";
    assert!(scan("crates/server/src/wire.rs", justified).is_empty());
    let bare_marker = "// lint:allow(panic):\nlet b = frame[4];\n";
    assert_eq!(
        scan("crates/server/src/wire.rs", bare_marker),
        ["2:panic-path"]
    );
}

#[test]
fn panic_words_in_strings_and_comments_stay_silent() {
    let src = "// never unwrap() here; panic! would tear down the worker\n\
               fn f() { log(\"do not unwrap or panic!\"); }\n";
    assert!(scan("crates/server/src/wire.rs", src).is_empty());
}
