//! Golden-file corpus: every `fixtures/*.rs` file declares the
//! repo-relative path it pretends to live at (`//@path:` on line 1)
//! and carries a sibling `.expected` file listing the diagnostics the
//! analyzer must produce, one `line:col rule` per line.
//!
//! Regenerate goldens after an intentional rule change with
//! `ANALYZER_BLESS=1 cargo test -p delprop-analyzer --test fixtures`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use delprop_analyzer::analyze_file;
use delprop_analyzer::rules::RULE_IDS;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn corpus() -> Vec<(PathBuf, String)> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures dir exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "fixture corpus must not be empty");
    files
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p).expect("fixture readable");
            (p, text)
        })
        .collect()
}

/// The `//@path: <rel>` directive on line 1.
fn declared_path(fixture: &Path, text: &str) -> String {
    let first = text.lines().next().unwrap_or("");
    first
        .strip_prefix("//@path:")
        .unwrap_or_else(|| {
            panic!(
                "{}: missing //@path: directive on line 1",
                fixture.display()
            )
        })
        .trim()
        .to_string()
}

fn render_findings(rel: &str, text: &str) -> String {
    let mut out = String::new();
    for d in analyze_file(rel, text) {
        writeln!(out, "{}:{} {}", d.line, d.col, d.rule).unwrap();
    }
    out
}

#[test]
fn fixtures_match_goldens() {
    let bless = std::env::var_os("ANALYZER_BLESS").is_some();
    let mut failures = Vec::new();
    for (path, text) in corpus() {
        let rel = declared_path(&path, &text);
        let actual = render_findings(&rel, &text);
        let golden_path = path.with_extension("expected");
        if bless {
            std::fs::write(&golden_path, &actual).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!(
                "{}: missing golden — run with ANALYZER_BLESS=1 to create it",
                golden_path.display()
            )
        });
        if actual != golden {
            failures.push(format!(
                "{}:\n--- expected ---\n{golden}--- actual ---\n{actual}",
                path.display()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatches:\n{}",
        failures.join("\n")
    );
}

/// Live-fire proof: every rule in the catalog is exercised by at least
/// one fixture that triggers it. A rule nothing can fire is dead code.
#[test]
fn every_rule_fires_on_some_fixture() {
    let mut fired: Vec<&str> = Vec::new();
    for (path, text) in corpus() {
        let rel = declared_path(&path, &text);
        for d in analyze_file(&rel, &text) {
            fired.push(d.rule);
        }
    }
    for rule in RULE_IDS {
        assert!(fired.contains(&rule), "no fixture fires rule `{rule}`");
    }
}

/// The lexer stress fixture must stay silent: raw strings, nested
/// block comments, and char-vs-lifetime noise never leak into rules.
#[test]
fn clean_edges_fixture_is_clean() {
    let path = fixtures_dir().join("clean_edges.rs");
    let text = std::fs::read_to_string(&path).expect("clean_edges.rs exists");
    let rel = declared_path(&path, &text);
    assert_eq!(render_findings(&rel, &text), "");
}
