//@path: crates/server/src/fixture_compile.rs
// Seeded violation for no-direct-compile-in-server: product code must
// go through the epoch-snapshot cache, never compile directly.

fn violating(problem: &Problem) -> CompiledIr {
    problem.compiled()
}
