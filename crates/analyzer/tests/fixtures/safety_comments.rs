//@path: crates/core/src/shard/fixture_unsafe.rs
// Seeded violation for safety-comments: bare `unsafe` without an
// adjacent SAFETY: comment.

fn violating(p: *const u32) -> u32 {
    unsafe { *p }
}

fn fine(p: *const u32) -> u32 {
    // SAFETY: caller guarantees p is valid and aligned for reads.
    unsafe { *p }
}
