//@path: crates/core/src/shard/fixture_ordering.rs
// Seeded violations for the ordering-justified audit.

use std::sync::atomic::Ordering;

fn violating(top: &AtomicU64) -> u64 {
    top.load(Ordering::Acquire)
}

fn stale_comment(top: &AtomicU64) -> u64 {
    // ordering: this comment is detached from the load below.
    let noise = 1;
    top.load(Ordering::Relaxed) + noise
}

fn justified_same_line(top: &AtomicU64) -> u64 {
    top.load(Ordering::Acquire) // ordering: pairs with the Release in push
}

fn justified_block_above(top: &AtomicU64, val: u64) {
    // ordering: Release publishes the slot write; a thief that
    // acquires top afterwards must observe the full slot contents.
    top.store(val, Ordering::Release);
}
