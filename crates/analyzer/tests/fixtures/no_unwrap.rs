//@path: crates/core/src/solvers/fixture.rs
// Seeded violations for the no-unwrap rule in solver scope.

fn violating(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn justified(x: Option<u32>) -> u32 {
    // lint:allow(unwrap): x was inserted unconditionally above
    x.unwrap()
}

#[cfg(test)]
mod tests {
    fn fine(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
