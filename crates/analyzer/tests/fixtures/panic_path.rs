//@path: crates/json/src/fixture_panic.rs
// Seeded violations for the panic-path audit: every way to panic in
// wire-facing code, plus the shapes that must stay silent.

fn unwrap_violation(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn expect_violation(x: Option<u32>) -> u32 {
    x.expect("present")
}

fn macro_violation(kind: u8) {
    match kind {
        0 => {}
        _ => unreachable!("validated above"),
    }
}

fn index_violation(frame: &[u8]) -> u8 {
    frame[4]
}

fn fine(frame: &[u8]) -> Option<u8> {
    // .get() is the non-panicking spelling; array literals and vec!
    // brackets are not index expressions.
    let _lit = [0u8; 4];
    let _v = vec![1, 2];
    frame.get(4).copied()
}

fn justified(frame: &[u8]) -> u8 {
    // lint:allow(panic): length validated by the frame header check
    frame[4]
}
