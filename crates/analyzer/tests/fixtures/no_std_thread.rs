//@path: crates/core/src/shard/fixture_thread.rs
// Seeded violation for no-std-thread-in-shard. Note even the
// #[cfg(test)] item fires: shard code must run under the model
// scheduler everywhere.

fn violating() {
    std::thread::scope(|_s| {});
}

#[cfg(test)]
mod tests {
    fn also_violating() {
        std::thread::spawn(|| {});
    }
}
