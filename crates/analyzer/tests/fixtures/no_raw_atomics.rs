//@path: crates/core/src/ir/fixture.rs
// Seeded violation for no-raw-atomics outside the sync facade.

use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::Relaxed;

// The Ordering import above is allowed; the AtomicU64 one is not.
fn touch(_x: &AtomicU64) {}
