//@path: crates/core/src/runtime/portfolio_fixture.rs
// Seeded violation for no-sleep outside backoff.rs / fault.rs.

fn violating(d: Duration) {
    std::thread::sleep(d);
}
