//@path: crates/core/src/solution.rs
// Seeded violation for no-hash-in-hot-paths.

use std::collections::HashMap;

fn justified() {
    // lint:allow(hash): keyed by externally-supplied opaque ids
    let _m: HashSet<u64> = HashSet::new();
}
