//@path: crates/core/src/classify.rs
// Seeded violation for no-raw-clock outside budget.rs and bench.

fn violating() -> Instant {
    Instant::now()
}

fn fine() {
    // Mentions in strings and comments never fire: Instant::now().
    let _s = "Instant::now()";
}
