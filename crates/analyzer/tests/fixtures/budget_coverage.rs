//@path: crates/setcover/src/fixture_budget.rs
// Seeded violations for the budget-coverage audit.

fn violating(xs: &[u32]) -> u32 {
    let mut s = 0;
    for x in xs {
        s += x;
    }
    s
}

fn covered(xs: &[u32], tick: &mut dyn FnMut(u64) -> bool) {
    for x in xs {
        if !tick(1) {
            return;
        }
        work(*x);
    }
}

fn outer_covered_by_inner(grid: &[Vec<u32>], tick: &mut dyn FnMut(u64) -> bool) {
    for row in grid {
        for x in row {
            tick(1);
            work(*x);
        }
    }
}

// lint:allow(budget): O(arity) setup loop, charged once by the caller
fn marker_on_fn(xs: &[u32]) {
    for x in xs {
        seed(*x);
    }
}

fn marker_on_loop(xs: &[u32]) {
    // lint:allow(budget): bounded by MAX_KEYS, a compile-time constant
    for x in xs {
        seed(*x);
    }
}
