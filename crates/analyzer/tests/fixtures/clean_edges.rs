//@path: crates/core/src/solvers/fixture_clean.rs
// Lexer stress file: every construct here hides a rule trigger inside
// a string or comment, or shapes the token stream in a way a line
// scanner would misread. Expected diagnostics: none.

/* nested /* block comment with x.unwrap() inside */ still comment */

fn raw_strings() -> &'static str {
    r#"thread::sleep(d); Instant::now(); y.unwrap()"#
}

fn multi_hash() -> &'static str {
    r##"contains "# and Ordering::SeqCst without firing"##
}

fn char_vs_lifetime<'a>(x: &'a u8) -> char {
    let c: char = 'x';
    let _escaped = '\'';
    let _ref: &'a u8 = x;
    c
}

fn byte_literals() -> (&'static [u8], u8) {
    (b"panic! in bytes", b'[')
}

// A budgeted loop: proves the fixture path is in solver scope and the
// audit sees through the noise above.
fn looping(xs: &[u32], tick: &mut dyn FnMut(u64) -> bool) {
    for x in xs {
        tick(1);
        work(*x);
    }
}
