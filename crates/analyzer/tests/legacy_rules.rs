//! The xtask line-scanner's rule tests, migrated verbatim onto the
//! token-stream engine: all seven+one legacy rules must behave
//! identically on their existing corpus. The `scan` helper mirrors the
//! old xtask one (`"<line>:<rule>"` per finding); inputs and expected
//! outputs are unchanged from `crates/xtask/src/main.rs` pre-port.

use delprop_analyzer::analyze_file;

fn scan(rel: &str, text: &str) -> Vec<String> {
    analyze_file(rel, text)
        .into_iter()
        .map(|v| format!("{}:{}", v.line, v.rule))
        .collect()
}

#[test]
fn unwrap_flagged_only_in_solver_scope_outside_tests() {
    let src = "fn f() { x.unwrap(); }\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn g() { y.unwrap(); }\n\
               }\n";
    let v = scan("crates/core/src/solvers/foo.rs", src);
    assert_eq!(v, ["1:no-unwrap"]);
    assert!(scan("crates/core/src/runtime/foo.rs", src).is_empty());
}

#[test]
fn allow_marker_needs_a_justification() {
    let bare = "// lint:allow(unwrap):\nx.unwrap();\n";
    assert_eq!(
        scan("crates/core/src/solvers/foo.rs", bare),
        ["2:no-unwrap"]
    );
    let justified = "// lint:allow(unwrap): constructed two lines up\nx.unwrap();\n";
    assert!(scan("crates/core/src/solvers/foo.rs", justified).is_empty());
}

#[test]
fn sleep_flagged_outside_backoff_fault_and_tests() {
    let src = "fn f() { std::thread::sleep(d); }\n";
    assert_eq!(scan("crates/server/src/daemon.rs", src), ["1:no-sleep"]);
    assert_eq!(
        scan("crates/core/src/runtime/budget.rs", src),
        ["1:no-sleep"]
    );
    // The two sanctioned modules and test files are exempt.
    assert!(scan("crates/server/src/backoff.rs", src).is_empty());
    assert!(scan("crates/core/src/runtime/fault.rs", src).is_empty());
    assert!(scan("tests/fault_injection.rs", src).is_empty());
    assert!(scan("crates/server/tests/chaos.rs", src).is_empty());
    // `#[cfg(test)]` items inside product files are exempt too.
    let in_test = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn g() { std::thread::sleep(d); }\n\
                   }\n";
    assert!(scan("crates/server/src/daemon.rs", in_test).is_empty());
    // An allow marker with a reason is honored; prose is not code.
    let justified = "// lint:allow(sleep): startup settle, not on a request path\n\
                     std::thread::sleep(d);\n";
    assert!(scan("crates/server/src/state.rs", justified).is_empty());
    let comment = "// never call thread::sleep here\n";
    assert!(scan("crates/server/src/daemon.rs", comment).is_empty());
}

#[test]
fn std_thread_flagged_in_shard_module_even_in_tests() {
    let src = "fn f() { std::thread::scope(|s| {}); }\n";
    assert_eq!(
        scan("crates/core/src/shard/scheduler.rs", src),
        ["1:no-std-thread-in-shard"]
    );
    // Tests in the module are NOT exempt: they must also run under
    // the model scheduler.
    let in_test = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn g() { std::thread::spawn(|| {}); }\n\
                   }\n";
    assert_eq!(
        scan("crates/core/src/shard/deque.rs", in_test),
        ["3:no-std-thread-in-shard"]
    );
    // The facade path and other modules are fine.
    let facade = "fn f() { sync::thread::scope(|s| {}); }\n";
    assert!(scan("crates/core/src/shard/scheduler.rs", facade).is_empty());
    assert!(scan("crates/core/src/runtime/portfolio.rs", src).is_empty());
    // A justified exception is honored.
    let justified = "// lint:allow(thread): std fallback when the facade is compiled out\n\
                     fn f() { std::thread::scope(|s| {}); }\n";
    assert!(scan("crates/core/src/shard/mod.rs", justified).is_empty());
}

#[test]
fn raw_atomics_flagged_but_ordering_and_facade_allowed() {
    let import = "use std::sync::atomic::AtomicU64;\n";
    assert_eq!(
        scan("crates/core/src/ir/mod.rs", import),
        ["1:no-raw-atomics"]
    );
    assert!(scan("crates/core/src/runtime/sync.rs", import).is_empty());
    assert!(scan("crates/modelcheck/src/atomic.rs", import).is_empty());
    let ordering = "use std::sync::atomic::Ordering::Relaxed;\n";
    assert!(scan("crates/core/src/ir/mod.rs", ordering).is_empty());
    let comment = "// std::sync::atomic is forbidden here\n";
    assert!(scan("crates/core/src/ir/mod.rs", comment).is_empty());
}

#[test]
fn clock_flagged_outside_budget_and_bench() {
    let src = "let t = Instant::now();\n";
    assert_eq!(scan("crates/core/src/ir/mod.rs", src), ["1:no-raw-clock"]);
    assert!(scan("crates/core/src/runtime/budget.rs", src).is_empty());
    assert!(scan("crates/bench/src/main.rs", src).is_empty());
    let in_string = "let s = \"Instant::now\";\n";
    assert!(scan("crates/core/src/ir/mod.rs", in_string).is_empty());
}

#[test]
fn direct_compiles_flagged_in_server_product_code_only() {
    let call = "let ir = problem.compiled();\n";
    assert_eq!(
        scan("crates/server/src/state.rs", call),
        ["1:no-direct-compile-in-server"]
    );
    let arc = "let ir = problem.compiled_arc();\n";
    assert_eq!(
        scan("crates/server/src/engine.rs", arc),
        ["1:no-direct-compile-in-server"]
    );
    // Core, tests, and `#[cfg(test)]` items are exempt.
    assert!(scan("crates/core/src/problem.rs", call).is_empty());
    assert!(scan("crates/server/tests/serve.rs", call).is_empty());
    let in_test = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn g() { let _ = p.compiled(); }\n\
                   }\n";
    assert!(scan("crates/server/src/state.rs", in_test).is_empty());
    // A justified allow marker is honored.
    let justified = "// lint:allow(compiled): warm-up outside any request path\n\
                     let _ = problem.compiled();\n";
    assert!(scan("crates/server/src/state.rs", justified).is_empty());
}

#[test]
fn hash_containers_flagged_in_hot_paths_only() {
    let import = "use std::collections::HashSet;\n";
    for hot in [
        "crates/core/src/solvers/primal_dual.rs",
        "crates/core/src/ir/mod.rs",
        "crates/core/src/classify.rs",
        "crates/core/src/solution.rs",
        "crates/setcover/src/greedy.rs",
        "crates/lp/src/simplex.rs",
    ] {
        assert_eq!(scan(hot, import), ["1:no-hash-in-hot-paths"], "{hot}");
    }
    // Cold layers, test files, and `#[cfg(test)]` items are exempt.
    assert!(scan("crates/core/src/problem.rs", import).is_empty());
    assert!(scan("crates/server/src/daemon.rs", import).is_empty());
    let in_test = "#[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashMap;\n\
                   }\n";
    assert!(scan("crates/core/src/solvers/foo.rs", in_test).is_empty());
    // A justified marker is honored; prose and identifiers are not.
    let justified = "// lint:allow(hash): interning table keyed by tuple value, not dense id\n\
                     let m: HashMap<Value, u32> = HashMap::new();\n";
    assert!(scan("crates/core/src/ir/mod.rs", justified).is_empty());
    let comment = "// HashMap would be wrong here\n";
    assert!(scan("crates/core/src/ir/mod.rs", comment).is_empty());
    let ident = "fn not_a_HashMapLike() {}\n";
    assert!(scan("crates/core/src/ir/mod.rs", ident).is_empty());
}

#[test]
fn unsafe_requires_adjacent_safety_comment() {
    let bad = "fn f() {\n    unsafe { g() }\n}\n";
    assert_eq!(scan("crates/core/src/x.rs", bad), ["2:safety-comments"]);
    let good = "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g() }\n}\n";
    assert!(scan("crates/core/src/x.rs", good).is_empty());
    // A multi-line comment block directly above still counts …
    let block =
        "fn f() {\n    // SAFETY: a long argument\n    // spanning lines.\n    unsafe { g() }\n}\n";
    assert!(scan("crates/core/src/x.rs", block).is_empty());
    // … but code between the comment and the `unsafe` breaks it.
    let gapped = "fn f() {\n    // SAFETY: stale.\n    h();\n    unsafe { g() }\n}\n";
    assert_eq!(scan("crates/core/src/x.rs", gapped), ["4:safety-comments"]);
    // Identifiers containing the word are not the keyword.
    let ident = "fn rejects_unsafe_head() {}\n";
    assert!(scan("crates/core/src/x.rs", ident).is_empty());
    // Prose in doc comments is not code.
    let doc = "/// This query would be unsafe.\nfn f() {}\n";
    assert!(scan("crates/core/src/x.rs", doc).is_empty());
}

// -------------------------------------------------------------------
// Token-stream wins the line scanner could not have: the same patterns
// inside raw strings and nested block comments stay silent.
// -------------------------------------------------------------------

#[test]
fn raw_strings_and_nested_comments_never_false_positive() {
    let raw = "fn f() { let s = r#\"x.unwrap() and thread::sleep\"#; }\n";
    assert!(scan("crates/core/src/solvers/foo.rs", raw).is_empty());
    assert!(scan("crates/server/src/daemon.rs", raw).is_empty());
    let nested = "/* outer /* x.unwrap() */ still comment: Instant::now */\nfn f() {}\n";
    assert!(scan("crates/core/src/solvers/foo.rs", nested).is_empty());
    assert!(scan("crates/core/src/ir/mod.rs", nested).is_empty());
}
