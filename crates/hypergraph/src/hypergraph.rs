//! A plain hypergraph with the operations the acyclicity analysis needs.

use std::collections::BTreeSet;
use std::fmt;

/// A hypergraph on vertices `0..num_vertices` with labeled hyperedges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    num_vertices: usize,
    edges: Vec<BTreeSet<usize>>,
}

impl Hypergraph {
    /// Build a hypergraph; edge members are deduplicated.
    ///
    /// # Panics
    /// Panics if an edge references a vertex `>= num_vertices`.
    pub fn new(num_vertices: usize, edges: Vec<Vec<usize>>) -> Self {
        let edges: Vec<BTreeSet<usize>> =
            edges.into_iter().map(|e| e.into_iter().collect()).collect();
        for (i, e) in edges.iter().enumerate() {
            assert!(
                e.iter().all(|&v| v < num_vertices),
                "edge {i} references vertex out of range"
            );
        }
        Hypergraph {
            num_vertices,
            edges,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[BTreeSet<usize>] {
        &self.edges
    }

    /// The dual hypergraph: one vertex per edge of `self`, and for each
    /// vertex `v` of `self` (that occurs in at least one edge) an edge
    /// containing the indices of the hyperedges containing `v`.
    pub fn dual(&self) -> Hypergraph {
        let mut dual_edges: Vec<Vec<usize>> = Vec::new();
        for v in 0..self.num_vertices {
            let e: Vec<usize> = self
                .edges
                .iter()
                .enumerate()
                .filter(|(_, edge)| edge.contains(&v))
                .map(|(i, _)| i)
                .collect();
            if !e.is_empty() {
                dual_edges.push(e);
            }
        }
        Hypergraph::new(self.edges.len(), dual_edges)
    }

    /// Connected components over the "share an edge" relation, as sorted
    /// vertex lists (isolated vertices form singleton components).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut parent: Vec<usize> = (0..self.num_vertices).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for e in &self.edges {
            let mut it = e.iter();
            if let Some(&first) = it.next() {
                for &v in it {
                    let (a, b) = (find(&mut parent, first), find(&mut parent, v));
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for v in 0..self.num_vertices {
            let r = find(&mut parent, v);
            groups.entry(r).or_default().push(v);
        }
        groups.into_values().collect()
    }

    /// The subhypergraph induced by keeping only the given vertices
    /// (edges are intersected with the set; empty results are dropped).
    /// Vertex indices are *renumbered* to `0..kept.len()` in sorted order;
    /// the mapping is returned alongside.
    pub fn induced(&self, kept: &[usize]) -> (Hypergraph, Vec<usize>) {
        let mut kept: Vec<usize> = kept.to_vec();
        kept.sort_unstable();
        kept.dedup();
        let index_of = |v: usize| kept.binary_search(&v).ok();
        let edges: Vec<Vec<usize>> = self
            .edges
            .iter()
            .map(|e| e.iter().filter_map(|&v| index_of(v)).collect::<Vec<_>>())
            .filter(|e: &Vec<usize>| !e.is_empty())
            .collect();
        (Hypergraph::new(kept.len(), edges), kept)
    }
}

impl fmt::Display for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H(n={}; ", self.num_vertices)?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{{{:?}}}", e.iter().collect::<Vec<_>>())?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_of_triangle_with_big_edge() {
        // Fig. 3(a): edges {012},{01},{02},{12}
        let h = Hypergraph::new(3, vec![vec![0, 1, 2], vec![0, 1], vec![0, 2], vec![1, 2]]);
        let d = h.dual();
        assert_eq!(d.num_vertices(), 4);
        assert_eq!(d.num_edges(), 3); // one per original vertex
    }

    #[test]
    fn components_split_correctly() {
        let h = Hypergraph::new(5, vec![vec![0, 1], vec![3, 4]]);
        let cs = h.components();
        assert_eq!(cs, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn induced_renumbers() {
        let h = Hypergraph::new(4, vec![vec![0, 2, 3], vec![1, 2]]);
        let (sub, map) = h.induced(&[2, 3]);
        assert_eq!(map, vec![2, 3]);
        assert_eq!(sub.num_vertices(), 2);
        // Edge {0,2,3} ∩ {2,3} = {2,3} -> renumbered {0,1}; {1,2} ∩ = {2} -> {0}
        assert_eq!(sub.num_edges(), 2);
    }

    #[test]
    fn dual_skips_isolated_vertices() {
        let h = Hypergraph::new(3, vec![vec![0, 1]]);
        let d = h.dual();
        assert_eq!(d.num_edges(), 2); // vertices 0 and 1 only
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_edge_rejected() {
        Hypergraph::new(2, vec![vec![2]]);
    }
}
