//! # delprop-hypergraph — hypergraph substrate
//!
//! The structural analysis behind the paper's tractable/approximable cases:
//!
//! - [`Hypergraph`]: plain hypergraphs with duals, components, induced
//!   subhypergraphs;
//! - [`gyo`]: α-acyclicity (GYO reduction) and the paper's **hypertree**
//!   test (Fig. 3) — a tree on the vertices in which every hyperedge
//!   induces a subtree, recognized via α-acyclicity of the dual;
//! - [`DualHypergraph`]: the dual hypergraph `H(Q)` of a query set and the
//!   **forest case** recognition (§IV.B);
//! - [`DataDualGraph`] / [`RootedForest`]: the data dual graph on base
//!   tuples whose paths are witness sets (§IV.E), with rooting, depth, and
//!   LCA support for the primal-dual algorithm;
//! - [`pivot`]: recognition of the **pivot-tuple** restricted forest case
//!   that makes the exact dynamic program applicable.

mod datagraph;
mod dual;
pub mod gyo;
mod hypergraph;
pub mod pivot;

pub use datagraph::{DataDualGraph, RootedForest};
pub use dual::DualHypergraph;
pub use hypergraph::Hypergraph;
pub use pivot::{find_pivot_structure, PivotStructure};
