//! α-acyclicity via the GYO (Graham / Yu–Özsoyoğlu) reduction, and the
//! paper's "hypertree" recognition built on it.
//!
//! **GYO**: repeatedly (a) delete a vertex that occurs in at most one
//! hyperedge, and (b) delete a hyperedge contained in another hyperedge.
//! The hypergraph is α-acyclic iff this empties it.
//!
//! **Hypertree (§IV.B, Fig. 3)**: the paper calls a dual hypergraph a
//! hypertree when there is a *tree on its vertices* in which every
//! hyperedge induces a subtree (the arboreal/Helly "hypertree" of the
//! hypergraph literature, cited to Fagin \[23\]). A hypergraph has such a
//! tree iff its **dual** is α-acyclic — which is exactly the test
//! [`is_hypertree`] performs, and it reproduces Fig. 3: `{T1T2T3, T1T2,
//! T1T3, T2T3}` is not a hypertree, while dropping either `T1T3` or `T2T3`
//! (queries Q4/Q5) yields one.

use crate::hypergraph::Hypergraph;
use std::collections::BTreeSet;

/// Whether `h` is α-acyclic (GYO reduces it to nothing).
pub fn is_alpha_acyclic(h: &Hypergraph) -> bool {
    let mut edges: Vec<BTreeSet<usize>> = h.edges().to_vec();
    loop {
        let mut changed = false;

        // (b) remove edges contained in another edge (also removes
        // duplicates, keeping one representative).
        let mut kept: Vec<BTreeSet<usize>> = Vec::with_capacity(edges.len());
        for (i, e) in edges.iter().enumerate() {
            let dominated = edges
                .iter()
                .enumerate()
                .any(|(j, f)| j != i && e.is_subset(f) && (e != f || j < i));
            if dominated {
                changed = true;
            } else {
                kept.push(e.clone());
            }
        }
        edges = kept;

        // (a) remove vertices occurring in at most one edge.
        let mut occurrence: std::collections::HashMap<usize, usize> = Default::default();
        for e in &edges {
            for &v in e {
                *occurrence.entry(v).or_insert(0) += 1;
            }
        }
        for e in &mut edges {
            let before = e.len();
            e.retain(|v| occurrence[v] > 1);
            if e.len() != before {
                changed = true;
            }
        }
        edges.retain(|e| !e.is_empty());

        if edges.is_empty() {
            return true;
        }
        if !changed {
            return false;
        }
    }
}

/// Whether `h` is a **hypertree** in the paper's sense: some tree on the
/// vertex set has every hyperedge inducing a subtree. Tested via
/// α-acyclicity of the dual.
pub fn is_hypertree(h: &Hypergraph) -> bool {
    is_alpha_acyclic(&h.dual())
}

/// Whether every connected component of `h` is a hypertree — the paper's
/// **forest case** (§IV.B).
pub fn is_forest_of_hypertrees(h: &Hypergraph) -> bool {
    h.components().iter().all(|comp| {
        let (sub, _) = h.induced(comp);
        is_hypertree(&sub)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: usize, edges: Vec<Vec<usize>>) -> Hypergraph {
        Hypergraph::new(n, edges)
    }

    #[test]
    fn triangle_is_not_alpha_acyclic() {
        assert!(!is_alpha_acyclic(&h(
            3,
            vec![vec![0, 1], vec![1, 2], vec![0, 2]]
        )));
    }

    #[test]
    fn triangle_plus_big_edge_is_alpha_acyclic() {
        // α-acyclicity is not hereditary: the covering edge absorbs the
        // triangle.
        assert!(is_alpha_acyclic(&h(
            3,
            vec![vec![0, 1, 2], vec![0, 1], vec![1, 2], vec![0, 2]]
        )));
    }

    #[test]
    fn path_is_alpha_acyclic() {
        assert!(is_alpha_acyclic(&h(
            4,
            vec![vec![0, 1], vec![1, 2], vec![2, 3]]
        )));
    }

    #[test]
    fn empty_and_single_edge() {
        assert!(is_alpha_acyclic(&h(0, vec![])));
        assert!(is_alpha_acyclic(&h(3, vec![vec![0, 1, 2]])));
        assert!(is_alpha_acyclic(&h(3, vec![vec![0, 1, 2], vec![0, 1, 2]])));
    }

    /// Fig. 3 of the paper: with queries as hyperedges over {T1,T2,T3,T4},
    /// Q1 = {Q1,Q3,Q4,Q5} is *not* a hypertree; Q2 = {Q1,Q3,Q5} and
    /// Q3 = {Q1,Q2,Q5} are.
    #[test]
    fn fig3_hypertree_classification() {
        // vertices: 0=T1, 1=T2, 2=T3, 3=T4
        let q1_edge = vec![0, 1, 2]; // Q1 :- T1,T2,T3
        let q2_edge = vec![0, 1, 3]; // Q2 :- T1,T2,T4
        let q3_edge = vec![0, 1]; // Q3 :- T1,T2
        let q4_edge = vec![0, 2]; // Q4 :- T1,T3
        let q5_edge = vec![1, 2]; // Q5 :- T2,T3

        let set1 = h(
            3,
            vec![
                q1_edge.clone(),
                q3_edge.clone(),
                q4_edge.clone(),
                q5_edge.clone(),
            ],
        );
        assert!(!is_hypertree(&set1), "Fig. 3(a) is not a hypertree");

        let set2 = h(3, vec![q1_edge.clone(), q3_edge.clone(), q5_edge.clone()]);
        assert!(is_hypertree(&set2), "Fig. 3(b) is a hypertree");

        let set3 = h(4, vec![q1_edge, q2_edge, q5_edge]);
        assert!(is_hypertree(&set3), "Fig. 3(c) is a hypertree");
    }

    #[test]
    fn forest_of_hypertrees() {
        // Two disjoint path components: a forest.
        let g = h(6, vec![vec![0, 1], vec![1, 2], vec![3, 4], vec![4, 5]]);
        assert!(is_forest_of_hypertrees(&g));
        // Add the Fig. 3(a) pattern to one component: no longer a forest.
        let g = h(
            6,
            vec![
                vec![0, 1, 2],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2],
                vec![3, 4],
            ],
        );
        assert!(!is_forest_of_hypertrees(&g));
    }

    #[test]
    fn star_hypergraph_is_hypertree() {
        // Edges all through a hub vertex: the star tree realizes them.
        let g = h(4, vec![vec![0, 1], vec![0, 2], vec![0, 3]]);
        assert!(is_hypertree(&g));
    }
}
