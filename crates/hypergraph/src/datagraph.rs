//! The **data dual graph** (§IV.E of the paper): a graph on base tuples in
//! which every view tuple's witness set forms a path.
//!
//! Construction: one vertex per base tuple occurring in some witness set;
//! for each witness set `[t1, …, tk]` (in the layout order of the query's
//! hypertree — body-atom order for the chain/star workloads this library
//! generates), consecutive members are joined by an edge. On the paper's
//! tree cases this graph is a forest; [`DataDualGraph::is_forest`] checks
//! it, and [`RootedForest`] provides the depth/LCA machinery the
//! primal-dual algorithm's processing order is defined with.

use delprop_relation::TupleId;
use std::collections::{BTreeSet, HashMap};

/// Graph over the base tuples appearing in witness sets.
#[derive(Debug, Clone)]
pub struct DataDualGraph {
    vertices: Vec<TupleId>,
    index: HashMap<TupleId, usize>,
    adj: Vec<BTreeSet<usize>>,
    /// Witness sets re-expressed as vertex-index paths (consecutive
    /// duplicates collapsed).
    paths: Vec<Vec<usize>>,
}

impl DataDualGraph {
    /// Build from witness sets (one per view tuple, members in layout
    /// order).
    pub fn new(witness_sets: &[Vec<TupleId>]) -> DataDualGraph {
        let mut vertices: Vec<TupleId> = Vec::new();
        let mut index: HashMap<TupleId, usize> = HashMap::new();
        let mut intern = |t: TupleId, vertices: &mut Vec<TupleId>| -> usize {
            *index.entry(t).or_insert_with(|| {
                vertices.push(t);
                vertices.len() - 1
            })
        };
        let mut paths = Vec::with_capacity(witness_sets.len());
        for ws in witness_sets {
            let mut path: Vec<usize> = Vec::with_capacity(ws.len());
            for &t in ws {
                let v = intern(t, &mut vertices);
                if path.last() != Some(&v) {
                    path.push(v);
                }
            }
            paths.push(path);
        }
        let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); vertices.len()];
        for path in &paths {
            for w in path.windows(2) {
                adj[w[0]].insert(w[1]);
                adj[w[1]].insert(w[0]);
            }
        }
        DataDualGraph {
            vertices,
            index,
            adj,
            paths,
        }
    }

    /// Number of vertices (distinct base tuples).
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// The tuple behind vertex `v`.
    pub fn tuple(&self, v: usize) -> TupleId {
        self.vertices[v]
    }

    /// The vertex of a tuple, if it occurs in any witness set.
    pub fn vertex(&self, t: TupleId) -> Option<usize> {
        self.index.get(&t).copied()
    }

    /// Witness sets as vertex paths, in input order.
    pub fn paths(&self) -> &[Vec<usize>] {
        &self.paths
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[v].iter().copied()
    }

    /// Connected components as sorted vertex lists.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.vertices.len();
        let mut comp = vec![usize::MAX; n];
        let mut out: Vec<Vec<usize>> = Vec::new();
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let c = out.len();
            let mut stack = vec![start];
            let mut members = Vec::new();
            comp[start] = c;
            while let Some(v) = stack.pop() {
                members.push(v);
                for &u in &self.adj[v] {
                    if comp[u] == usize::MAX {
                        comp[u] = c;
                        stack.push(u);
                    }
                }
            }
            members.sort_unstable();
            out.push(members);
        }
        out
    }

    /// Whether every component is a tree (|E| = |V| − 1).
    pub fn is_forest(&self) -> bool {
        let total_edges: usize = self.adj.iter().map(BTreeSet::len).sum::<usize>() / 2;
        let comps = self.components();
        total_edges + comps.len() == self.num_vertices()
    }

    /// Root every component (at its smallest vertex by default, or at the
    /// provided roots) and return the forest structure. Returns `None` if
    /// the graph is not a forest.
    pub fn rooted(&self, roots: Option<&[usize]>) -> Option<RootedForest> {
        if !self.is_forest() {
            return None;
        }
        let comps = self.components();
        let chosen: Vec<usize> = match roots {
            Some(r) => {
                assert_eq!(r.len(), comps.len(), "one root per component");
                for (root, comp) in r.iter().zip(&comps) {
                    assert!(
                        comp.binary_search(root).is_ok(),
                        "root not in its component"
                    );
                }
                r.to_vec()
            }
            None => comps.iter().map(|c| c[0]).collect(),
        };
        let n = self.num_vertices();
        let mut parent = vec![None; n];
        let mut depth = vec![0usize; n];
        let mut component = vec![usize::MAX; n];
        let mut bfs_order = Vec::with_capacity(n);
        for (ci, &root) in chosen.iter().enumerate() {
            let mut queue = std::collections::VecDeque::from([root]);
            component[root] = ci;
            while let Some(v) = queue.pop_front() {
                bfs_order.push(v);
                for &u in &self.adj[v] {
                    if component[u] == usize::MAX {
                        component[u] = ci;
                        parent[u] = Some(v);
                        depth[u] = depth[v] + 1;
                        queue.push_back(u);
                    }
                }
            }
        }
        Some(RootedForest {
            roots: chosen,
            parent,
            depth,
            component,
            bfs_order,
        })
    }
}

/// A rooted forest over the data dual graph's vertices.
#[derive(Debug, Clone)]
pub struct RootedForest {
    /// Root vertex per component.
    pub roots: Vec<usize>,
    /// Parent of each vertex (`None` for roots).
    pub parent: Vec<Option<usize>>,
    /// Depth of each vertex (0 at roots).
    pub depth: Vec<usize>,
    /// Component index of each vertex.
    pub component: Vec<usize>,
    /// All vertices in BFS order (roots first within each component).
    pub bfs_order: Vec<usize>,
}

impl RootedForest {
    /// Lowest common ancestor of two vertices, or `None` if they lie in
    /// different components.
    pub fn lca(&self, mut a: usize, mut b: usize) -> Option<usize> {
        if self.component[a] != self.component[b] {
            return None;
        }
        while self.depth[a] > self.depth[b] {
            a = self.parent[a].expect("non-root has parent");
        }
        while self.depth[b] > self.depth[a] {
            b = self.parent[b].expect("non-root has parent");
        }
        while a != b {
            a = self.parent[a].expect("distinct vertices at depth 0 would differ in component");
            b = self.parent[b].expect("distinct vertices at depth 0 would differ in component");
        }
        Some(a)
    }

    /// Shallowest vertex of a non-empty vertex set (the path's top, used to
    /// order primal-dual demand processing).
    pub fn shallowest<'a>(&self, vs: impl IntoIterator<Item = &'a usize>) -> Option<usize> {
        vs.into_iter().copied().min_by_key(|&v| self.depth[v])
    }

    /// Vertices on the path from `v` up to (and including) the root.
    pub fn ancestors_inclusive(&self, mut v: usize) -> Vec<usize> {
        let mut out = vec![v];
        while let Some(p) = self.parent[v] {
            out.push(p);
            v = p;
        }
        out
    }

    /// Children lists (inverse of `parent`).
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (v, p) in self.parent.iter().enumerate() {
            if let Some(p) = p {
                ch[*p].push(v);
            }
        }
        ch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delprop_relation::RelationId;

    fn t(r: usize, i: usize) -> TupleId {
        TupleId::new(RelationId(r), i)
    }

    #[test]
    fn chain_paths_form_tree() {
        // Two view tuples sharing a middle tuple: a path a-b-c plus b-d.
        let g = DataDualGraph::new(&[vec![t(0, 0), t(1, 0), t(2, 0)], vec![t(0, 1), t(1, 0)]]);
        assert_eq!(g.num_vertices(), 4);
        assert!(g.is_forest());
        assert_eq!(g.components().len(), 1);
    }

    #[test]
    fn cycle_detected() {
        let g = DataDualGraph::new(&[
            vec![t(0, 0), t(1, 0)],
            vec![t(1, 0), t(2, 0)],
            vec![t(2, 0), t(0, 0)],
        ]);
        assert!(!g.is_forest());
        assert!(g.rooted(None).is_none());
    }

    #[test]
    fn rooted_depth_and_lca() {
        // Star: center c with leaves x, y, z (three 2-tuple witness sets).
        let c = t(0, 0);
        let g = DataDualGraph::new(&[vec![c, t(1, 0)], vec![c, t(1, 1)], vec![c, t(1, 2)]]);
        let f = g.rooted(Some(&[g.vertex(c).unwrap()])).unwrap();
        assert_eq!(f.depth[g.vertex(c).unwrap()], 0);
        let x = g.vertex(t(1, 0)).unwrap();
        let y = g.vertex(t(1, 1)).unwrap();
        assert_eq!(f.depth[x], 1);
        assert_eq!(f.lca(x, y), Some(g.vertex(c).unwrap()));
        assert_eq!(f.ancestors_inclusive(x), vec![x, g.vertex(c).unwrap()]);
    }

    #[test]
    fn lca_across_components_is_none() {
        let g = DataDualGraph::new(&[vec![t(0, 0), t(1, 0)], vec![t(0, 1), t(1, 1)]]);
        let f = g.rooted(None).unwrap();
        let a = g.vertex(t(0, 0)).unwrap();
        let b = g.vertex(t(0, 1)).unwrap();
        assert_eq!(f.lca(a, b), None);
        assert_eq!(f.roots.len(), 2);
    }

    #[test]
    fn repeated_tuple_in_witness_collapses() {
        // Self-join hitting the same tuple twice: path has one vertex.
        let g = DataDualGraph::new(&[vec![t(0, 0), t(0, 0)]]);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.paths()[0], vec![0]);
        assert!(g.is_forest());
    }

    #[test]
    fn children_inverse_of_parent() {
        let g = DataDualGraph::new(&[vec![t(0, 0), t(1, 0), t(2, 0)]]);
        let root = g.vertex(t(0, 0)).unwrap();
        let f = g.rooted(Some(&[root])).unwrap();
        let ch = f.children();
        assert_eq!(ch[root], vec![g.vertex(t(1, 0)).unwrap()]);
    }

    #[test]
    fn shallowest_picks_min_depth() {
        let g = DataDualGraph::new(&[vec![t(0, 0), t(1, 0), t(2, 0)]]);
        let root = g.vertex(t(0, 0)).unwrap();
        let f = g.rooted(Some(&[root])).unwrap();
        let path = &g.paths()[0];
        assert_eq!(f.shallowest(path.iter()), Some(root));
    }
}
