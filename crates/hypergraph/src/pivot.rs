//! Recognition of the paper's restricted forest case (§IV.E): a data dual
//! graph that is a forest in which each component has a **pivot tuple**
//! such that every view tuple's witness set is the set of tuples on the
//! path from the pivot to some tuple (a *root-prefix path* once the
//! component is rooted at the pivot).
//!
//! The exact dynamic program `DPTreeVSE` is only correct for inputs with
//! this structure; [`find_pivot_structure`] certifies it.

use crate::datagraph::{DataDualGraph, RootedForest};
use std::collections::BTreeSet;

/// A certified pivot structure: the forest rooted at per-component pivots,
/// plus the deepest vertex (path endpoint) of each witness path.
#[derive(Debug, Clone)]
pub struct PivotStructure {
    /// The data dual graph's forest rooted at the pivots.
    pub forest: RootedForest,
    /// For each input witness path (in input order), the endpoint vertex:
    /// the path equals `ancestors_inclusive(endpoint)`.
    pub endpoints: Vec<usize>,
}

/// Try to find pivot tuples making every witness path a root-prefix path.
///
/// Returns `None` when the graph is not a forest or no pivot assignment
/// works. Candidate pivots for a component are the common vertices of all
/// its paths (a pivot necessarily lies on every path), so the search is
/// cheap.
pub fn find_pivot_structure(graph: &DataDualGraph) -> Option<PivotStructure> {
    if !graph.is_forest() {
        return None;
    }
    let components = graph.components();
    let comp_of = {
        let mut comp = vec![usize::MAX; graph.num_vertices()];
        for (ci, members) in components.iter().enumerate() {
            for &v in members {
                comp[v] = ci;
            }
        }
        comp
    };

    // Group paths by component (a path lies in one component by
    // construction: its edges connect its members).
    let mut paths_by_comp: Vec<Vec<usize>> = vec![Vec::new(); components.len()];
    for (pi, path) in graph.paths().iter().enumerate() {
        if let Some(&v0) = path.first() {
            paths_by_comp[comp_of[v0]].push(pi);
        }
    }

    // Candidate pivots per component: intersection of all path member sets
    // (components with no paths root anywhere).
    let mut roots: Vec<usize> = Vec::with_capacity(components.len());
    for (ci, members) in components.iter().enumerate() {
        let pis = &paths_by_comp[ci];
        if pis.is_empty() {
            roots.push(members[0]);
            continue;
        }
        let mut candidates: BTreeSet<usize> = graph.paths()[pis[0]].iter().copied().collect();
        for &pi in &pis[1..] {
            let members: BTreeSet<usize> = graph.paths()[pi].iter().copied().collect();
            candidates = candidates.intersection(&members).copied().collect();
        }
        // Try each candidate: all paths must be root-prefix paths.
        let mut found = None;
        'cands: for &cand in &candidates {
            let forest = graph
                .rooted(Some(&single_root_vector(graph, &components, ci, cand)))
                .expect("forest checked above");
            for &pi in pis {
                if prefix_endpoint(&forest, &graph.paths()[pi]).is_none() {
                    continue 'cands;
                }
            }
            found = Some(cand);
            break;
        }
        roots.push(found?);
    }

    let forest = graph.rooted(Some(&roots)).expect("forest checked above");
    let endpoints = graph
        .paths()
        .iter()
        .map(|p| prefix_endpoint(&forest, p).expect("verified per component"))
        .collect();
    Some(PivotStructure { forest, endpoints })
}

/// Root vector that roots component `ci` at `cand` and every other
/// component at its default (smallest) vertex.
fn single_root_vector(
    _graph: &DataDualGraph,
    components: &[Vec<usize>],
    ci: usize,
    cand: usize,
) -> Vec<usize> {
    components
        .iter()
        .enumerate()
        .map(|(i, m)| if i == ci { cand } else { m[0] })
        .collect()
}

/// If `path`'s member set equals the root-to-`e` ancestor chain for some
/// vertex `e`, return `e` (the deepest member); else `None`.
fn prefix_endpoint(forest: &RootedForest, path: &[usize]) -> Option<usize> {
    let members: BTreeSet<usize> = path.iter().copied().collect();
    let &endpoint = path.iter().max_by_key(|&&v| forest.depth[v])?;
    let chain: BTreeSet<usize> = forest.ancestors_inclusive(endpoint).into_iter().collect();
    (chain == members).then_some(endpoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use delprop_relation::{RelationId, TupleId};

    fn t(r: usize, i: usize) -> TupleId {
        TupleId::new(RelationId(r), i)
    }

    #[test]
    fn star_with_pivot_center() {
        let c = t(0, 0);
        let g = DataDualGraph::new(&[vec![c, t(1, 0)], vec![c, t(1, 1)], vec![c]]);
        let p = find_pivot_structure(&g).expect("star has a pivot");
        let cv = g.vertex(c).unwrap();
        assert_eq!(p.forest.roots, vec![cv]);
        assert_eq!(p.endpoints[2], cv, "singleton path ends at the pivot");
    }

    #[test]
    fn chain_with_nested_prefixes() {
        // Paths {a}, {a,b}, {a,b,c}: pivot a.
        let (a, b, c) = (t(0, 0), t(1, 0), t(2, 0));
        let g = DataDualGraph::new(&[vec![a], vec![a, b], vec![a, b, c]]);
        let p = find_pivot_structure(&g).unwrap();
        assert_eq!(p.forest.roots, vec![g.vertex(a).unwrap()]);
        assert_eq!(p.endpoints[2], g.vertex(c).unwrap());
    }

    #[test]
    fn non_prefix_paths_rejected() {
        // Paths {a,b} and {b,c} on the chain a-b-c: no single pivot works
        // ({a,b} forces pivot ∈ {a,b}, {b,c} forces pivot ∈ {b,c}; pivot b
        // fails because path {a,b} has endpoint a and chain {a,b} — wait,
        // that IS a prefix from b. And {b,c} likewise. So pivot b works!)
        let (a, b, c) = (t(0, 0), t(1, 0), t(2, 0));
        let g = DataDualGraph::new(&[vec![a, b], vec![b, c]]);
        let p = find_pivot_structure(&g).unwrap();
        assert_eq!(p.forest.roots, vec![g.vertex(b).unwrap()]);

        // But a *gap* path {a,c} (as a set, realized as a path through b in
        // the tree) cannot be a prefix chain: {a, c} ≠ {a, b, c}… the path
        // a-c creates its own edge, making a triangle -> not a forest.
        let g = DataDualGraph::new(&[vec![a, b], vec![b, c], vec![a, c]]);
        assert!(find_pivot_structure(&g).is_none());
    }

    #[test]
    fn two_arm_paths_without_common_vertex_rejected() {
        // Tree a-b-c-d with paths {a,b} and {c,d}: intersection empty.
        let (a, b, c, d) = (t(0, 0), t(1, 0), t(2, 0), t(3, 0));
        let g = DataDualGraph::new(&[vec![a, b], vec![b, c], vec![c, d], vec![a, b], vec![c, d]]);
        // Paths: {a,b}, {b,c}, {c,d}, {a,b}, {c,d}; common intersection is
        // empty, so no pivot exists.
        assert!(find_pivot_structure(&g).is_none());
    }

    #[test]
    fn multiple_components_each_need_a_pivot() {
        let g = DataDualGraph::new(&[vec![t(0, 0), t(1, 0)], vec![t(0, 1), t(1, 1)]]);
        let p = find_pivot_structure(&g).unwrap();
        assert_eq!(p.forest.roots.len(), 2);
    }

    #[test]
    fn component_without_paths_roots_anywhere() {
        // Single-vertex path plus an isolated vertex cannot happen (every
        // vertex comes from a path), but a component whose only paths are
        // singletons exercises the trivial branch.
        let g = DataDualGraph::new(&[vec![t(0, 0)]]);
        let p = find_pivot_structure(&g).unwrap();
        assert_eq!(p.endpoints, vec![0]);
    }
}
