//! The dual hypergraph `H(Q)` of a query set (§IV.B of the paper):
//! one vertex per relation, one hyperedge per query containing the
//! relations its body mentions.

use crate::gyo;
use crate::hypergraph::Hypergraph;
use delprop_relation::RelationId;
use std::collections::BTreeSet;

/// The dual hypergraph of a set of queries, with the vertex numbering
/// retained for reporting.
#[derive(Debug, Clone)]
pub struct DualHypergraph {
    /// Relations in vertex order (vertex `i` is `relations[i]`).
    pub relations: Vec<RelationId>,
    /// The hypergraph: vertex `i` ↔ `relations[i]`, edge `j` ↔ query `j`.
    pub hypergraph: Hypergraph,
}

impl DualHypergraph {
    /// Build from the per-query relation sets (body relations of each
    /// query, self-joins collapsing to one occurrence).
    pub fn new(query_relations: &[Vec<RelationId>]) -> DualHypergraph {
        let mut relations: Vec<RelationId> = query_relations
            .iter()
            .flatten()
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        relations.sort_unstable();
        let vertex_of = |r: RelationId| relations.binary_search(&r).expect("collected above");
        let edges: Vec<Vec<usize>> = query_relations
            .iter()
            .map(|q| q.iter().map(|&r| vertex_of(r)).collect())
            .collect();
        DualHypergraph {
            hypergraph: Hypergraph::new(relations.len(), edges),
            relations,
        }
    }

    /// Whether the paper's **forest case** applies: every connected
    /// component of the dual hypergraph is a hypertree.
    pub fn is_forest_case(&self) -> bool {
        gyo::is_forest_of_hypertrees(&self.hypergraph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(i: usize) -> RelationId {
        RelationId(i)
    }

    #[test]
    fn fig3_via_dual_hypergraph() {
        // T1..T4 are relations 0..3.
        let q1 = vec![rid(0), rid(1), rid(2)];
        let q2 = vec![rid(0), rid(1), rid(3)];
        let q3 = vec![rid(0), rid(1)];
        let q4 = vec![rid(0), rid(2)];
        let q5 = vec![rid(1), rid(2)];

        let set1 = DualHypergraph::new(&[q1.clone(), q3.clone(), q4.clone(), q5.clone()]);
        assert!(!set1.is_forest_case());

        let set2 = DualHypergraph::new(&[q1.clone(), q3, q5.clone()]);
        assert!(set2.is_forest_case());

        let set3 = DualHypergraph::new(&[q1, q2, q5]);
        assert!(set3.is_forest_case());
    }

    #[test]
    fn vertex_numbering_is_dense_over_used_relations() {
        let d = DualHypergraph::new(&[vec![rid(7), rid(3)], vec![rid(3)]]);
        assert_eq!(d.relations, vec![rid(3), rid(7)]);
        assert_eq!(d.hypergraph.num_vertices(), 2);
        assert_eq!(d.hypergraph.num_edges(), 2);
    }

    #[test]
    fn disconnected_queries_form_forest() {
        let d = DualHypergraph::new(&[vec![rid(0), rid(1)], vec![rid(2), rid(3)]]);
        assert!(d.is_forest_case());
        assert_eq!(d.hypergraph.components().len(), 2);
    }

    #[test]
    fn self_join_collapses() {
        // A query over the same relation twice has a singleton edge.
        let d = DualHypergraph::new(&[vec![rid(0), rid(0)]]);
        assert_eq!(d.hypergraph.edges()[0].len(), 1);
        assert!(d.is_forest_case());
    }
}
