//! # delprop-bench — experiment harness
//!
//! Each public `ex_*` function in [`experiments`] regenerates one
//! table/figure experiment of `EXPERIMENTS.md` and returns its report as
//! text; the `harness` binary dispatches on experiment ids. Criterion
//! microbenches (in `benches/`) cover the runtime claims.

pub mod experiments;
// The JSON value type moved to its own crate (the serving daemon's
// wire protocol shares it); re-exported here so `delprop_bench::json`
// paths keep working.
pub use delprop_json as json;

/// Format a ratio or sentinel when the denominator is ~0.
pub fn ratio(num: f64, den: f64) -> String {
    if den > 1e-9 {
        format!("{:.2}", num / den)
    } else if num > 1e-9 {
        "inf".to_string()
    } else {
        "1.00".to_string()
    }
}

/// Render rows as a fixed-width table with a header.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    let mut out = String::new();
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns() {
        let t = table(
            &["a", "long"],
            &[vec!["1".into(), "2".into()], vec!["100".into(), "x".into()]],
        );
        assert!(t.contains("100 |"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(0.0, 0.0), "1.00");
        assert_eq!(ratio(1.0, 0.0), "inf");
        assert_eq!(ratio(3.0, 2.0), "1.50");
    }
}
