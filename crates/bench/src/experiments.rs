//! The experiment suite: one function per table/figure of
//! `EXPERIMENTS.md`. Everything is seeded and deterministic.

use crate::json::{self, Json};
use crate::{ratio, table};
use delprop_core::solvers::{dp_tree, exact, general, lowdeg_tree, lp_round, primal_dual};
use delprop_core::{classify, landscape};
use delprop_hypergraph::{gyo, Hypergraph};
use delprop_setcover::exact::ExactConfig;
use delprop_workload::{cleaning, figures, forest, gadget, random_db, redblue_gen};
use std::time::Instant;

/// EX-FIG1 — the paper's Fig. 1 worked example, both deletions of §II.C.
pub fn ex_fig1() -> String {
    let mut out =
        String::from("EX-FIG1: Fig. 1 worked example (Q4 over the author/journal DB)\n\n");
    let p = figures::fig1_problem();
    out.push_str(&format!("D:\n{}", p.db().render()));
    out.push_str(&format!("\n‖V‖ = {} (paper: 7)\n", p.norm_v()));
    out.push_str("ΔV = {(John, TKDE, XML)}\n");
    let opt = exact::solve(p.compiled(), ExactConfig::default());
    let sol = opt.solution.expect("feasible");
    out.push_str(&format!(
        "optimal ΔD = {:?}, view side-effect = {} (paper: 1 — either\n\
         T1(John,TKDE) at cost 1 or T2(TKDE,XML,30) at cost 2; the key-\n\
         preserving property lets side-effects be read off key occurrences)\n",
        sol.deleted
            .iter()
            .map(|&t| p.db().tuple(t).unwrap().to_string())
            .collect::<Vec<_>>(),
        opt.cost
    ));
    let report = classify(&p);
    out.push_str(&format!("classifier: {}\n", report.recommendation));
    out
}

/// EX-FIG2 — the Fig. 2 reduction gadget.
pub fn ex_fig2() -> String {
    let mut out = String::from("EX-FIG2: Fig. 2 hardness gadget (Thm 1 reduction)\n\n");
    let rb = figures::fig2_redblue();
    out.push_str(&format!("{rb}\n"));
    let g = gadget::redblue_to_vse(&rb);
    out.push_str(&format!(
        "gadget: {} views ({} red join-path + {} blue), |D| = {}\n",
        g.problem.views().views.len(),
        g.red_views.len(),
        g.blue_views.len(),
        g.problem.db().len()
    ));
    let rb_opt = delprop_setcover::exact::solve(&rb, ExactConfig::default()).cost;
    let vse_opt = exact::solve(g.problem.compiled(), ExactConfig::default()).cost;
    out.push_str(&format!(
        "Red-Blue OPT = {rb_opt}, view-side-effect OPT = {vse_opt} (must coincide)\n"
    ));
    assert_eq!(rb_opt, vse_opt);
    out
}

/// EX-FIG3 — Fig. 3 dual-hypergraph hypertree classification.
pub fn ex_fig3() -> String {
    let mut out = String::from("EX-FIG3: Fig. 3 dual hypergraphs (hypertree recognition)\n\n");
    let (s1, s2, s3) = figures::fig3_query_sets();
    for (name, set, expected) in [
        ("Q1 = {Q1,Q3,Q4,Q5}", s1, false),
        ("Q2 = {Q1,Q3,Q5}", s2, true),
        ("Q3 = {Q1,Q2,Q5}", s3, true),
    ] {
        let got = gyo::is_hypertree(&Hypergraph::new(4, set));
        out.push_str(&format!("{name}: hypertree = {got} (paper: {expected})\n"));
        assert_eq!(got, expected);
    }
    out
}

/// EX-TAB1 — Table I (notation) as an API glossary.
pub fn ex_tab1() -> String {
    let rows = vec![
        vec![
            "S".into(),
            "schema".into(),
            "delprop_relation::Schema".into(),
        ],
        vec![
            "D".into(),
            "database instance".into(),
            "delprop_relation::Database".into(),
        ],
        vec![
            "T".into(),
            "relation symbol".into(),
            "delprop_relation::RelationSchema".into(),
        ],
        vec![
            "t".into(),
            "tuple".into(),
            "delprop_relation::Tuple / TupleId".into(),
        ],
        vec![
            "Q, Q(D), V".into(),
            "query, result, view".into(),
            "delprop_query::{BoundQuery, View}".into(),
        ],
        vec![
            "Q".into(),
            "query set".into(),
            "delprop_core::Problem::queries".into(),
        ],
        vec![
            "V".into(),
            "view set".into(),
            "delprop_query::ViewSet".into(),
        ],
        vec![
            "ΔV".into(),
            "view deletions".into(),
            "delprop_core::Problem::deletions".into(),
        ],
        vec![
            "ΔD".into(),
            "source deletions".into(),
            "delprop_core::Solution".into(),
        ],
        vec![
            "‖·‖".into(),
            "total size".into(),
            "Problem::{norm_v, norm_delta}".into(),
        ],
    ];
    format!(
        "EX-TAB1: Table I notation → API map\n\n{}",
        table(&["paper", "meaning", "API"], &rows)
    )
}

/// EX-TAB25 — Tables II–V: the complexity landscape.
pub fn ex_tab25() -> String {
    let mut out = String::from("EX-TAB25: complexity landscape (Tables II–V + this paper)\n\n");
    out.push_str("— source side-effect (Tables II–III) —\n");
    out.push_str(&landscape::render(&landscape::source_side_effect()));
    out.push_str("\n— view side-effect (Tables IV–V + this paper's results) —\n");
    out.push_str(&landscape::render(&landscape::view_side_effect()));
    out
}

/// EX-T1 — Theorem 1: the reduction preserves optima exactly, and the
/// approximation gap of cheap heuristics grows with instance size.
pub fn ex_t1() -> String {
    let mut rows = Vec::new();
    for (nr, nb, ns) in [(4, 4, 6), (6, 5, 8), (8, 6, 10), (10, 7, 14), (12, 8, 18)] {
        for seed in 0..3u64 {
            let rb = redblue_gen::redblue(
                redblue_gen::RedBlueParams {
                    num_red: nr,
                    num_blue: nb,
                    num_sets: ns,
                    ..Default::default()
                },
                seed,
            );
            let g = gadget::redblue_to_vse(&rb);
            let rb_opt = delprop_setcover::exact::solve(&rb, ExactConfig::default()).cost;
            let vse = exact::solve(g.problem.compiled(), ExactConfig::default());
            let greedy = general::solve_greedy(g.problem.compiled()).unwrap();
            assert!((rb_opt - vse.cost).abs() < 1e-9, "optima must transfer");
            rows.push(vec![
                format!("{nr}/{nb}/{ns}"),
                seed.to_string(),
                g.problem.norm_v().to_string(),
                g.problem.db().len().to_string(),
                format!("{rb_opt:.0}"),
                format!("{:.0}", vse.cost),
                ratio(greedy.side_effect(&g.problem), vse.cost),
            ]);
        }
    }
    format!(
        "EX-T1: Theorem 1 reduction (Red-Blue ↔ view side-effect)\n\
         optima coincide on every row (asserted) — the cost-preserving map\n\
         behind the inapproximability transfer; the greedy column shows\n\
         where the cheap heuristic starts missing.\n\n{}",
        table(
            &[
                "ρ/β/|𝒞|",
                "seed",
                "‖V‖",
                "|D|",
                "RB-OPT",
                "VSE-OPT",
                "greedy/OPT"
            ],
            &rows
        )
    )
}

/// EX-T2 — Theorem 2: the balanced reduction preserves optima exactly.
pub fn ex_t2() -> String {
    let mut rows = Vec::new();
    for (nr, nb, ns) in [(4, 4, 6), (6, 5, 8), (8, 6, 10), (10, 7, 12)] {
        for seed in 0..3u64 {
            let pn = redblue_gen::posneg(
                redblue_gen::RedBlueParams {
                    num_red: nr,
                    num_blue: nb,
                    num_sets: ns,
                    weighted: true,
                    ..Default::default()
                },
                seed,
            );
            let g = gadget::posneg_to_balanced(&pn);
            let (_, pn_opt, _) =
                delprop_setcover::reduce::solve_posneg_exact(&pn, ExactConfig::default());
            let bal = exact::solve_balanced(g.problem.compiled(), ExactConfig::default());
            assert!(
                (pn_opt - bal.cost).abs() < 1e-9,
                "balanced optima must transfer"
            );
            rows.push(vec![
                format!("{nr}/{nb}/{ns}"),
                seed.to_string(),
                g.problem.norm_v().to_string(),
                format!("{pn_opt:.1}"),
                format!("{:.1}", bal.cost),
            ]);
        }
    }
    format!(
        "EX-T2: Theorem 2 reduction (Pos-Neg ↔ balanced deletion propagation)\n\n{}",
        table(&["|N|/|P|/|𝒞|", "seed", "‖V‖", "PN-OPT", "BAL-OPT"], &rows)
    )
}

/// EX-C1 — Claim 1: general-case approximation vs its bound.
pub fn ex_c1() -> String {
    let mut rows = Vec::new();
    for (m, atoms) in [(2usize, 2usize), (3, 2), (4, 2), (2, 3), (3, 3)] {
        for seed in 0..3u64 {
            let p = random_db::generate(
                random_db::RandomDbParams {
                    num_queries: m,
                    atoms_per_query: atoms,
                    num_relations: atoms + 3,
                    // Keep 3-atom workloads small: the exact/LP baselines
                    // are exponential/dense and only the *shape* matters.
                    domain: if atoms >= 3 { 4 } else { 6 },
                    tuples_per_relation: if atoms >= 3 { 9 } else { 14 },
                    ..Default::default()
                },
                seed,
            );
            let sol = general::solve(p.compiled()).unwrap();
            let cost = sol.side_effect(&p);
            let lb = lp_round::lower_bound(p.compiled());
            let ex = exact::solve(
                p.compiled(),
                ExactConfig {
                    node_limit: Some(2_000_000),
                },
            );
            let denom = if ex.proven_optimal { ex.cost } else { lb };
            let bound = general::ratio_bound(p.compiled());
            assert!(sol.is_feasible(&p));
            assert!(cost <= bound * denom.max(1.0) + 1e-6);
            rows.push(vec![
                format!("{m}×{atoms}"),
                seed.to_string(),
                p.l().to_string(),
                p.norm_v().to_string(),
                p.norm_delta().to_string(),
                format!("{cost:.0}"),
                if ex.proven_optimal {
                    format!("{:.0}", ex.cost)
                } else {
                    format!("≥{lb:.1}")
                },
                ratio(cost, denom),
                format!("{bound:.1}"),
            ]);
        }
    }
    format!(
        "EX-C1: Claim 1 general-case approximation (reduce to Red-Blue + LowDeg)\n\
         measured ratios sit far below the 2√(l·‖V‖·log‖ΔV‖) bound.\n\n{}",
        table(
            &[
                "q×atoms",
                "seed",
                "l",
                "‖V‖",
                "‖ΔV‖",
                "alg",
                "OPT",
                "ratio",
                "bound"
            ],
            &rows
        )
    )
}

/// EX-L1 — Lemma 1: balanced approximation vs its bound.
pub fn ex_l1() -> String {
    let mut rows = Vec::new();
    for (m, atoms) in [(2usize, 2usize), (3, 2), (2, 3)] {
        for seed in 0..3u64 {
            let p = random_db::generate(
                random_db::RandomDbParams {
                    num_queries: m,
                    atoms_per_query: atoms,
                    num_relations: atoms + 3,
                    tuples_per_relation: 12,
                    ..Default::default()
                },
                seed,
            );
            let sol = general::solve_balanced(p.compiled());
            let cost = sol.balanced_cost(&p);
            let ex = exact::solve_balanced(
                p.compiled(),
                ExactConfig {
                    node_limit: Some(2_000_000),
                },
            );
            let lb = if ex.proven_optimal {
                ex.cost
            } else {
                lp_round::balanced_lower_bound(p.compiled())
            };
            let bound = general::balanced_ratio_bound(p.compiled());
            assert!(cost <= bound * lb.max(1.0) + 1e-6);
            rows.push(vec![
                format!("{m}×{atoms}"),
                seed.to_string(),
                p.norm_v().to_string(),
                p.norm_delta().to_string(),
                format!("{cost:.1}"),
                format!("{lb:.1}"),
                ratio(cost, lb),
                format!("{bound:.1}"),
            ]);
        }
    }
    format!(
        "EX-L1: Lemma 1 balanced approximation (via Pos-Neg partial cover)\n\n{}",
        table(
            &[
                "q×atoms",
                "seed",
                "‖V‖",
                "‖ΔV‖",
                "alg",
                "OPT/LB",
                "ratio",
                "bound"
            ],
            &rows
        )
    )
}

/// EX-T3 — Theorem 3: PrimeDualVSE ratio ≤ l on forest cases.
pub fn ex_t3() -> String {
    let mut rows = Vec::new();
    for window in 1usize..=4 {
        let mut worst: f64 = 0.0;
        let mut sum = 0.0;
        let mut n = 0usize;
        for seed in 0..6u64 {
            let p = forest::generate(
                forest::ForestParams {
                    levels: window.max(3) + 1,
                    window,
                    chains: 10,
                    delete_fraction: 0.3,
                    weighted: true,
                },
                seed,
            );
            let out = primal_dual::solve(p.compiled(), &Default::default()).unwrap();
            let ex = exact::solve(
                p.compiled(),
                ExactConfig {
                    node_limit: Some(5_000_000),
                },
            );
            assert!(out.solution.is_feasible(&p));
            assert!(out.dual_objective <= ex.cost + 1e-6);
            let r = if ex.cost > 1e-9 {
                out.solution.side_effect(&p) / ex.cost
            } else if out.solution.side_effect(&p) > 1e-9 {
                f64::INFINITY
            } else {
                1.0
            };
            worst = worst.max(r);
            sum += r;
            n += 1;
        }
        let l = window + 1;
        assert!(worst <= l as f64 + 1e-6, "ratio above l");
        rows.push(vec![
            l.to_string(),
            format!("{:.2}", sum / n as f64),
            format!("{worst:.2}"),
            l.to_string(),
        ]);
    }
    format!(
        "EX-T3: Theorem 3 — PrimeDualVSE on forest cases (6 seeds per l)\n\
         every measured ratio ≤ l; dual objective ≤ OPT (weak duality checked).\n\n{}",
        table(&["l", "mean ratio", "worst ratio", "bound (l)"], &rows)
    )
}

/// EX-P1 — Proposition 1: PrimeDualVSE runtime scaling.
pub fn ex_p1() -> String {
    let mut rows = Vec::new();
    let mut points: Vec<(f64, f64)> = Vec::new();
    for chains in [64usize, 128, 256, 512, 1024] {
        let p = forest::generate(
            forest::ForestParams {
                levels: 4,
                window: 2,
                chains,
                delete_fraction: 0.2,
                weighted: false,
            },
            7,
        );
        let start = Instant::now();
        let out = primal_dual::solve(p.compiled(), &Default::default()).unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        assert!(out.solution.is_feasible(&p));
        points.push(((p.norm_v() as f64).ln(), elapsed.max(1e-6).ln()));
        rows.push(vec![
            chains.to_string(),
            p.norm_v().to_string(),
            p.norm_delta().to_string(),
            format!("{:.3} ms", elapsed * 1e3),
        ]);
    }
    // Least-squares slope of log(time) vs log(‖V‖).
    let n = points.len() as f64;
    let (sx, sy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |a, p| (a.0 + p.0, a.1 + p.1));
    let (sxx, sxy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |a, p| (a.0 + p.0 * p.0, a.1 + p.0 * p.1));
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    format!(
        "EX-P1: Proposition 1 — PrimeDualVSE runtime scaling\n\
         fitted log-log slope = {slope:.2}; Proposition 1 allows up to\n\
         O(l·‖ΔV‖²·‖V‖ + ‖V‖⁴) — the implementation sits far below it.\n\n{}",
        table(&["chains", "‖V‖", "‖ΔV‖", "time"], &rows)
    )
}

/// Scale factor for the scaling experiments (the harness's `--scale`
/// knob). 1 — the default — reproduces the gated sweeps exactly; larger
/// factors multiply the workload sizes for order-of-magnitude
/// exploration (ROADMAP item 5 prep) and suppress the baseline-locked
/// speedup columns, since the committed baselines only describe the
/// unscaled sweep.
static SCALE: delprop_core::runtime::sync::AtomicUsize =
    delprop_core::runtime::sync::AtomicUsize::new(1);

/// Set the workload scale factor (panics on 0).
pub fn set_scale(factor: usize) {
    assert!(factor >= 1, "--scale must be at least 1");
    // ordering: Relaxed — set once from main before any sweep thread
    // reads it; no other data rides on this store.
    SCALE.store(factor, delprop_core::runtime::sync::Ordering::Relaxed);
}

/// The current workload scale factor.
pub fn scale() -> usize {
    SCALE.load(delprop_core::runtime::sync::Ordering::Relaxed) // ordering: plain config read, set before sweeps start
}

/// EX-KERN — the packed-kernel hot paths on the EX-P1 sweep: bitset
/// witness rows and word-parallel sweeps (dense primal-dual), the
/// monotone bucket-queue τ-sweep (`lowdeg_tree`), and the bucket-queue
/// greedy on a large Red-Blue instance. Wall clocks are min-of-REPS;
/// the primal-dual column is compared against the pre-refactor
/// implementation (hash-set hot paths) measured on the same workloads
/// and machine class, and the geomean speedup is asserted ≥ 2×. Raw
/// rows land in `artifacts/BENCH_kernels.json`, which the CI bench gate
/// holds against `baselines/` (±30% on `*_micros`, hard equality on
/// costs and instance measures). With `--scale N > 1` the sweep runs
/// N× larger and the speedup columns are omitted (not gated).
pub fn ex_kern() -> String {
    use delprop_setcover::{greedy, lowdeg, CoverSet, RedBlueInstance};
    use delprop_workload::rng::SplitMix64;

    const REPS: usize = 50;
    // Solves per timed rep: the fastest cells run in ~1µs, where clock
    // quantization alone is a ±30% swing; timing a 16-solve batch and
    // dividing keeps every measured quantum well above the noise floor.
    // (Batch means sit slightly above a single-solve min, so the
    // speedups below are if anything conservative.)
    const BATCH: usize = 16;
    const SETCOVER_REPS: usize = 5;
    const CHAINS: [usize; 5] = [64, 128, 256, 512, 1024];
    // Pre-refactor wall-clock floors (µs) on the same workloads
    // (seed 7), measured at commit 4495423 — the last commit with the
    // HashSet/HashMap hot paths — under EXACTLY the discipline below:
    // compile hoisted, min over 50 reps of a 16-solve batch mean
    // (median of three back-to-back runs). The geomean gate further
    // down is over BOTH kernel columns: the dense primal-dual and the
    // bucket-queue τ-sweep, i.e. every solver hot path the EX-P1
    // forest sweep hits.
    const PRE_PD_MICROS: [f64; 5] = [1.35, 2.47, 5.50, 12.0, 23.4];
    const PRE_LOWDEG_MICROS: [f64; 5] = [13.2, 24.0, 50.4, 108.3, 216.4];
    // The calibration sweep's duration on the box that recorded the
    // floors above (same discipline: min of 20 timed passes; observed
    // 143–152 µs across runs, midpoint recorded).
    const CAL_REF_MICROS: f64 = 148.0;

    let k = scale();
    // The PRE_* floors are absolute wall clocks, so a throttled (or a
    // faster) box would shift the measured speedups even though the
    // code did not change. A fixed, deterministic popcount/rotate
    // sweep — serially dependent, so it times the scalar core like the
    // kernel inner loops do — is measured with the same min-of-reps
    // discipline, and every floor is rescaled by `cal / CAL_REF`:
    // uniform CPU-speed drift cancels out of the speedup columns. The
    // raw micros columns stay raw (they carry their own ±tolerance in
    // the bench gate).
    let cal_micros = {
        let words: Vec<u64> = (0..1usize << 14)
            .map(|i| (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut best = f64::INFINITY;
        for _ in 0..20 {
            let t = Instant::now();
            let mut acc = 0u64;
            for _ in 0..8 {
                for w in &words {
                    acc = acc.rotate_left(7) ^ u64::from(w.count_ones());
                }
            }
            std::hint::black_box(acc);
            best = best.min(t.elapsed().as_secs_f64() * 1e6);
        }
        best
    };
    let cal_scale = cal_micros / CAL_REF_MICROS;
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut log_speedups = Vec::new();
    for (i, &chains) in CHAINS.iter().enumerate() {
        let p = forest::generate(
            forest::ForestParams {
                levels: 4,
                window: 2,
                chains,
                delete_fraction: 0.2,
                weighted: false,
            }
            .scaled(k),
            7,
        );
        let ir = p.compiled(); // compile outside the timed region
        let mut pd_micros = f64::INFINITY;
        for _ in 0..REPS {
            let t = Instant::now();
            for _ in 0..BATCH {
                let out = primal_dual::solve(ir, &Default::default()).unwrap();
                std::hint::black_box(out.solution.len());
            }
            pd_micros = pd_micros.min(t.elapsed().as_secs_f64() * 1e6 / BATCH as f64);
        }
        // Cost is deterministic — price one solve outside the timer.
        let cost = {
            let out = primal_dual::solve(ir, &Default::default()).unwrap();
            ir.side_effect_of(&out.solution)
        };
        let mut ld_micros = f64::INFINITY;
        for _ in 0..REPS {
            let t = Instant::now();
            for _ in 0..BATCH {
                let sol = lowdeg_tree::solve(ir).unwrap();
                std::hint::black_box(sol.len());
            }
            ld_micros = ld_micros.min(t.elapsed().as_secs_f64() * 1e6 / BATCH as f64);
        }
        assert!(lowdeg_tree::solve(ir).unwrap().is_feasible(&p));
        let fields = vec![
            ("chains", Json::uint((chains * k) as u64)),
            ("norm_v", Json::uint(p.norm_v() as u64)),
            ("norm_delta", Json::uint(p.norm_delta() as u64)),
            ("pd_cost", Json::rounded(cost, 6)),
            ("primal_dual_micros", Json::rounded(pd_micros, 1)),
            ("lowdeg_micros", Json::rounded(ld_micros, 1)),
        ];
        // Per-row speedups are display-only: at µs scale the row-level
        // ratios are too noisy to gate individually, so the gate holds
        // the per-row micros (±30%) and the single geomean below.
        let (pd_col, ld_col) = if k == 1 {
            let pd_speedup = PRE_PD_MICROS[i] * cal_scale / pd_micros;
            let ld_speedup = PRE_LOWDEG_MICROS[i] * cal_scale / ld_micros;
            log_speedups.push(pd_speedup.ln());
            log_speedups.push(ld_speedup.ln());
            (format!("{pd_speedup:.1}x"), format!("{ld_speedup:.1}x"))
        } else {
            ("—".into(), "—".into())
        };
        rows.push(vec![
            (chains * k).to_string(),
            p.norm_v().to_string(),
            p.norm_delta().to_string(),
            format!("{:.3} ms", pd_micros / 1e3),
            pd_col,
            format!("{:.3} ms", ld_micros / 1e3),
            ld_col,
        ]);
        json_rows.push(Json::obj(fields));
    }

    // The bucket-queue greedy on a large deterministic Red-Blue instance
    // (every blue coverable by construction: set `b % ns` gets blue `b`).
    let (nr, nb, ns) = (400 * k, 300 * k, 1500 * k);
    let mut rng = SplitMix64::seed_from_u64(0x6b65726e); // "kern"
    let mut sets: Vec<CoverSet> = (0..ns)
        .map(|_| {
            let reds = (0..rng.below(6)).map(|_| rng.below(nr)).collect();
            let blues = (0..rng.below(6)).map(|_| rng.below(nb)).collect();
            CoverSet::new(reds, blues)
        })
        .collect();
    for b in 0..nb {
        if !sets.iter().any(|s| s.blue.contains(&b)) {
            let si = b % sets.len();
            let mut blue = sets[si].blue.clone();
            blue.push(b);
            sets[si] = CoverSet::new(sets[si].red.clone(), blue);
        }
    }
    let inst = RedBlueInstance::new(nr, nb, sets);
    let mut greedy_micros = f64::INFINITY;
    let mut greedy_cost = 0.0;
    for _ in 0..SETCOVER_REPS {
        let t = Instant::now();
        let sel = greedy::cover(&inst).expect("coverable by construction");
        greedy_micros = greedy_micros.min(t.elapsed().as_secs_f64() * 1e6);
        greedy_cost = inst.cost(&sel);
    }
    let mut lowdeg_cover_micros = f64::INFINITY;
    let mut lowdeg_cost = 0.0;
    for _ in 0..SETCOVER_REPS {
        let t = Instant::now();
        let sel = lowdeg::solve(&inst).expect("coverable by construction");
        lowdeg_cover_micros = lowdeg_cover_micros.min(t.elapsed().as_secs_f64() * 1e6);
        lowdeg_cost = inst.cost(&sel);
    }
    json_rows.push(Json::obj(vec![
        ("sets", Json::uint(ns as u64)),
        ("reds", Json::uint(nr as u64)),
        ("blues", Json::uint(nb as u64)),
        ("greedy_cost", Json::rounded(greedy_cost, 6)),
        ("greedy_micros", Json::rounded(greedy_micros, 1)),
        ("lowdeg_cost", Json::rounded(lowdeg_cost, 6)),
        ("lowdeg_cover_micros", Json::rounded(lowdeg_cover_micros, 1)),
    ]));

    let geomean_note = if k == 1 {
        let geomean = (log_speedups.iter().sum::<f64>() / log_speedups.len() as f64).exp();
        assert!(
            geomean >= 2.0,
            "packed kernels must hold a >=2x geomean win over the \
             pre-refactor hot paths (measured {geomean:.2}x)"
        );
        json_rows.push(Json::obj(vec![
            ("cal_micros", Json::rounded(cal_micros, 1)),
            ("geomean_speedup", Json::rounded(geomean, 2)),
        ]));
        format!(
            "geomean speedup vs pre-refactor hot paths: {geomean:.1}x \
             (gate: >=2x; floors rescaled by {cal_scale:.2} via calibration)"
        )
    } else {
        format!("scale factor {k}: exploratory sweep, speedup columns ungated")
    };
    let written = json::write_artifact("artifacts/BENCH_kernels.json", &Json::Arr(json_rows))
        .unwrap_or_else(|e| format!("(not written: {e})"));
    format!(
        "EX-KERN: packed kernel hot paths on the EX-P1 sweep (min of {REPS} {BATCH}-solve batches)\n         \
         {geomean_note}\n         \
         greedy/lowdeg on a {ns}-set Red-Blue instance: {:.3} ms / {:.3} ms\n         \
         (raw JSON: {written})\n\n{}",
        greedy_micros / 1e3,
        lowdeg_cover_micros / 1e3,
        table(
            &[
                "chains",
                "‖V‖",
                "‖ΔV‖",
                "primal-dual",
                "pd speedup",
                "lowdeg τ-sweep",
                "ld speedup"
            ],
            &rows
        )
    )
}

/// EX-INC — the incremental engine on the EX-P1 forest sweep: warm
/// ΔV-stream servicing (engine patch + solve per batch) vs cold
/// recompute (full `compiled()` + solve per batch) over the same
/// deterministic delete/restore stream. Equivalence is asserted in-run
/// — every warm projection must carry the same `shape_digest` as its
/// cold twin, and the final solver costs must match bit-for-bit — so
/// the speedup column compares identical answers, not approximations.
/// Raw rows land in `artifacts/BENCH_incr.json`; the CI gate holds
/// `warm_speedup` per row (LowerIsWorse) plus the hard `>= 5x` geomean
/// assert below. With `--scale N > 1` the sweep runs N× larger and the
/// speedup gate is skipped (exploratory, not baselined).
pub fn ex_incr() -> String {
    use delprop_core::{DeltaBatch, Engine};
    use delprop_workload::rng::SplitMix64;

    const REPS: usize = 7;
    const STREAM: usize = 12;
    const CHAINS: [usize; 5] = [64, 128, 256, 512, 1024];

    let k = scale();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut log_speedups = Vec::new();
    for &chains in &CHAINS {
        // The EX-P1 forest shapes, started pristine: the serving regime
        // the engine exists for is a large stable instance taking small
        // ΔV batches, so the stream itself carries the whole ΔV. (With
        // EX-P1's 20% pre-seeded ΔV the per-batch solve — identical in
        // both arms — would drown the compile-vs-patch signal.)
        let base = forest::generate(
            forest::ForestParams {
                levels: 4,
                window: 2,
                chains,
                delete_fraction: 0.0,
                weighted: false,
            }
            .scaled(k),
            7,
        );
        // A fixed, replayable batch stream: deletes drawn from the
        // tuples still preserved, restores from the accumulated ΔV.
        let mut rng = SplitMix64::seed_from_u64(0x696e_6372 + chains as u64); // "incr"
        let mut mirror: Vec<_> = base.deletions().iter().copied().collect();
        let mut preserved: Vec<_> = base.preserved().map(|(id, _)| id).collect();
        let mut stream = Vec::with_capacity(STREAM);
        for _ in 0..STREAM {
            let mut batch = DeltaBatch::default();
            for _ in 0..2 {
                if preserved.is_empty() {
                    break;
                }
                let id = preserved.swap_remove(rng.below(preserved.len()));
                batch.delete.push(id);
                mirror.push(id);
            }
            if !mirror.is_empty() && rng.chance(0.5) {
                let id = mirror.swap_remove(rng.below(mirror.len()));
                batch.restore.push(id);
                preserved.push(id);
            }
            stream.push(batch);
        }

        // Untimed correctness pass: the warm projection must be
        // byte-identical to a cold compile at every step.
        let prototype = Engine::new(base.clone()).unwrap();
        let mut engine = prototype.clone();
        let mut cold = base.clone();
        for batch in &stream {
            engine.apply(batch).unwrap();
            for &id in &batch.delete {
                cold.mark_deleted_id(id).unwrap();
            }
            for &id in &batch.restore {
                cold.unmark_deleted_id(id).unwrap();
            }
            assert_eq!(
                engine.compiled().shape_digest(),
                cold.compiled().shape_digest(),
                "warm projection diverged from cold compile ({chains} chains)"
            );
        }
        let warm_out = primal_dual::solve(&engine.compiled(), &Default::default()).unwrap();
        let cold_out = primal_dual::solve(cold.compiled(), &Default::default()).unwrap();
        let final_cost = cold.compiled().side_effect_of(&cold_out.solution);
        assert_eq!(
            engine
                .compiled()
                .side_effect_of(&warm_out.solution)
                .to_bits(),
            final_cost.to_bits(),
            "warm/cold solver costs diverged ({chains} chains)"
        );

        // Warm arm: one long-lived engine services the whole stream.
        let mut warm_micros = f64::INFINITY;
        for _ in 0..REPS {
            let mut engine = prototype.clone();
            let t = Instant::now();
            for batch in &stream {
                engine.apply(batch).unwrap();
                let out = primal_dual::solve(&engine.compiled(), &Default::default()).unwrap();
                std::hint::black_box(out.solution.len());
            }
            warm_micros = warm_micros.min(t.elapsed().as_secs_f64() * 1e6 / STREAM as f64);
        }
        // Cold arm: every batch pays a full compile before the solve.
        let mut cold_micros = f64::INFINITY;
        for _ in 0..REPS {
            let mut cold = base.clone();
            let t = Instant::now();
            for batch in &stream {
                for &id in &batch.delete {
                    cold.mark_deleted_id(id).unwrap();
                }
                for &id in &batch.restore {
                    cold.unmark_deleted_id(id).unwrap();
                }
                let out = primal_dual::solve(cold.compiled(), &Default::default()).unwrap();
                std::hint::black_box(out.solution.len());
            }
            cold_micros = cold_micros.min(t.elapsed().as_secs_f64() * 1e6 / STREAM as f64);
        }
        let speedup = cold_micros / warm_micros;
        log_speedups.push(speedup.ln());
        json_rows.push(Json::obj(vec![
            ("chains", Json::uint((chains * k) as u64)),
            ("norm_v", Json::uint(base.norm_v() as u64)),
            ("stream_batches", Json::uint(STREAM as u64)),
            ("final_cost", Json::rounded(final_cost, 6)),
            ("warm_micros", Json::rounded(warm_micros, 1)),
            ("cold_micros", Json::rounded(cold_micros, 1)),
            ("warm_speedup", Json::rounded(speedup, 2)),
        ]));
        rows.push(vec![
            (chains * k).to_string(),
            base.norm_v().to_string(),
            format!("{:.3} ms", warm_micros / 1e3),
            format!("{:.3} ms", cold_micros / 1e3),
            format!("{speedup:.1}x"),
        ]);
    }
    let geomean = (log_speedups.iter().sum::<f64>() / log_speedups.len() as f64).exp();
    let gate_note = if k == 1 {
        assert!(
            geomean >= 5.0,
            "warm ΔV-stream servicing must hold a >=5x geomean win over \
             cold recompute (measured {geomean:.2}x)"
        );
        format!("geomean warm speedup: {geomean:.1}x (gate: >=5x)")
    } else {
        format!("scale factor {k}: exploratory sweep, geomean {geomean:.1}x ungated")
    };
    let written = json::write_artifact("artifacts/BENCH_incr.json", &Json::Arr(json_rows))
        .unwrap_or_else(|e| format!("(not written: {e})"));
    format!(
        "EX-INC: incremental engine — warm ΔV-stream servicing vs cold recompute\n         \
         ({STREAM}-batch delete/restore streams on the EX-P1 sweep, min of {REPS} replays,\n         \
         per-batch patch+solve vs compile+solve; digests asserted identical in-run)\n         \
         {gate_note}\n         \
         (raw JSON: {written})\n\n{}",
        table(
            &["chains", "‖V‖", "warm/batch", "cold/batch", "speedup"],
            &rows
        )
    )
}

/// EX-T4 — Theorem 4: LowDegTreeVSETwo ≤ 2√‖V‖, and the crossover
/// against factor-l PrimeDualVSE.
pub fn ex_t4() -> String {
    let mut rows = Vec::new();
    // Regime A: large l, few view tuples (2√‖V‖ < l plausible).
    // Regime B: small l, many view tuples (l < 2√‖V‖).
    for (label, levels, window, chains) in [
        ("large-l", 6usize, 5usize, 4usize),
        ("large-l", 5, 4, 4),
        ("small-l", 4, 1, 24),
        ("small-l", 5, 2, 16),
    ] {
        for seed in 0..3u64 {
            let p = forest::generate(
                forest::ForestParams {
                    levels,
                    window,
                    chains,
                    delete_fraction: 0.3,
                    weighted: true,
                },
                seed,
            );
            let pd = primal_dual::solve_default(p.compiled()).unwrap();
            let ld = lowdeg_tree::solve(p.compiled()).unwrap();
            let ex = exact::solve(
                p.compiled(),
                ExactConfig {
                    node_limit: Some(5_000_000),
                },
            );
            let bound = lowdeg_tree::ratio_bound(p.compiled());
            assert!(ld.side_effect(&p) <= bound * ex.cost.max(1.0) + 1e-6);
            let l = p.l() as f64;
            rows.push(vec![
                label.to_string(),
                seed.to_string(),
                format!("{l:.0}"),
                format!("{:.1}", 2.0 * (p.norm_v() as f64).sqrt()),
                format!("{:.0}", ex.cost),
                format!("{:.0}", pd.side_effect(&p)),
                format!("{:.0}", ld.side_effect(&p)),
                if ld.side_effect(&p) < pd.side_effect(&p) - 1e-9 {
                    "lowdeg".into()
                } else if pd.side_effect(&p) < ld.side_effect(&p) - 1e-9 {
                    "primal-dual".into()
                } else {
                    "tie".into()
                },
            ]);
        }
    }
    format!(
        "EX-T4: Theorem 4 — LowDegTreeVSETwo (2√‖V‖) vs PrimeDualVSE (l)\n\
         the paper: \"sometimes better than factor l\". The *guarantee*\n\
         crossover shows in the l vs 2√‖V‖ columns (which bound is\n\
         smaller flips between regimes); on these workloads both\n\
         algorithms usually reach the optimum, so measured costs tie.\n\n{}",
        table(
            &[
                "regime",
                "seed",
                "l",
                "2√‖V‖",
                "OPT",
                "primal-dual",
                "lowdeg",
                "winner"
            ],
            &rows
        )
    )
}

/// EX-DP — §IV.E: the pivot-forest DP is exact and scales polynomially
/// where branch and bound explodes.
pub fn ex_dp() -> String {
    let mut rows = Vec::new();
    for (branches, depth) in [(3usize, 2usize), (5, 2), (8, 3), (12, 3), (40, 3), (120, 3)] {
        let blue: Vec<usize> = (0..branches).step_by(2).collect();
        let p = forest::pivot_broom(branches, depth, &blue);
        assert!(dp_tree::applies(p.compiled()));
        let t0 = Instant::now();
        let dp = dp_tree::solve(p.compiled()).unwrap();
        let dp_time = t0.elapsed().as_secs_f64();
        let (opt_str, exact_time) = if branches <= 12 {
            let t1 = Instant::now();
            let ex = exact::solve(
                p.compiled(),
                ExactConfig {
                    node_limit: Some(5_000_000),
                },
            );
            let et = t1.elapsed().as_secs_f64();
            assert!(
                (dp.side_effect(&p) - ex.cost).abs() < 1e-9,
                "DP must be exact"
            );
            (format!("{:.0}", ex.cost), format!("{:.3} ms", et * 1e3))
        } else {
            ("—".into(), "skipped".into())
        };
        rows.push(vec![
            format!("{branches}×{depth}"),
            p.norm_v().to_string(),
            p.norm_delta().to_string(),
            format!("{:.0}", dp.side_effect(&p)),
            opt_str,
            format!("{:.3} ms", dp_time * 1e3),
            exact_time,
        ]);
    }
    format!(
        "EX-DP: §IV.E — DPTreeVSE exactness and polynomial runtime on pivot brooms\n\n{}",
        table(
            &[
                "broom",
                "‖V‖",
                "‖ΔV‖",
                "DP cost",
                "OPT",
                "DP time",
                "B&B time"
            ],
            &rows
        )
    )
}

/// EX-IR — the compiled-instance IR: one compile per portfolio solve,
/// and the cost of compiling once versus rebuilding per member, on the
/// EX-P1 forest sweep. Raw measurements land in `artifacts/BENCH_ir.json`.
pub fn ex_ir() -> String {
    use delprop_core::ir;
    use delprop_core::runtime::{Budget, MemberStatus, Portfolio};

    let params = |chains: usize| forest::ForestParams {
        levels: 4,
        window: 2,
        chains,
        delete_fraction: 0.2,
        weighted: false,
    };
    let chain = Portfolio::standard();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for chains in [64usize, 128, 256, 512, 1024] {
        // Cold compile on a fresh instance.
        let p = forest::generate(params(chains), 7);
        let t0 = Instant::now();
        let _ = p.compiled();
        let compile = t0.elapsed().as_secs_f64();

        // One portfolio solve on a *fresh* instance: the compile counter
        // must advance by exactly one — every member, applicability
        // check, and verification shares that single compile.
        let fresh = forest::generate(params(chains), 7);
        let before = ir::compile_count();
        let out = chain.solve(&fresh, &Budget::unlimited()).unwrap();
        let solve = out.report.iter().map(|m| m.micros).sum::<u64>() as f64 / 1e6
            + out.compile_micros as f64 / 1e6;
        let compiles = ir::compile_count() - before;
        assert_eq!(compiles, 1, "portfolio must compile the IR exactly once");
        assert!(out.solution.is_feasible(&fresh));

        // Rebuild-per-member counterfactual: compile a fresh instance
        // once per member that actually ran (what the pre-IR layering
        // effectively did by re-deriving incidence inside each solver).
        let ran = out
            .report
            .iter()
            .filter(|m| !matches!(m.status, MemberStatus::Skipped | MemberStatus::NotReached))
            .count()
            .max(1);
        let t2 = Instant::now();
        for _ in 0..ran {
            let fresh = forest::generate(params(chains), 7);
            let _ = fresh.compiled();
        }
        let rebuild = t2.elapsed().as_secs_f64();

        rows.push(vec![
            chains.to_string(),
            fresh.norm_v().to_string(),
            format!("{:.3} ms", compile * 1e3),
            format!("{:.3} ms", solve * 1e3),
            compiles.to_string(),
            ran.to_string(),
            format!("{:.3} ms", rebuild * 1e3),
        ]);
        json_rows.push(Json::obj(vec![
            ("chains", Json::uint(chains as u64)),
            ("norm_v", Json::uint(fresh.norm_v() as u64)),
            ("norm_delta", Json::uint(fresh.norm_delta() as u64)),
            ("compile_micros", Json::rounded(compile * 1e6, 1)),
            ("portfolio_micros", Json::rounded(solve * 1e6, 1)),
            ("compiles_per_portfolio_solve", Json::uint(compiles)),
            ("members_run", Json::uint(ran as u64)),
            ("rebuild_per_member_micros", Json::rounded(rebuild * 1e6, 1)),
        ]));
    }
    let written = json::write_artifact("artifacts/BENCH_ir.json", &Json::Arr(json_rows))
        .unwrap_or_else(|e| format!("(not written: {e})"));
    format!(
        "EX-IR: compiled-instance IR — one compile per portfolio solve\n         (generation + compile measured on fresh instances each round;\n         raw JSON: {written})\n\n{}",
        table(
            &[
                "chains",
                "\u{2016}V\u{2016}",
                "compile",
                "portfolio",
                "compiles/solve",
                "members run",
                "rebuild\u{d7}members"
            ],
            &rows
        )
    )
}

/// EX-APP — §V: batch vs sequential query-oriented cleaning.
pub fn ex_app() -> String {
    let mut rows = Vec::new();
    let mut batch_total = 0.0;
    let mut seq_total = 0.0;
    for seed in 0..10u64 {
        let s = cleaning::generate(cleaning::CleaningParams::default(), seed);
        let p = &s.problem;
        let batch = exact::solve(p.compiled(), ExactConfig::default());
        let fwd = cleaning::sequential_baseline(p, &[0, 1, 2]);
        let rev = cleaning::sequential_baseline(p, &[2, 1, 0]);
        let best_seq = fwd.side_effect(p).min(rev.side_effect(p));
        batch_total += batch.cost;
        seq_total += best_seq;
        rows.push(vec![
            seed.to_string(),
            p.norm_delta().to_string(),
            format!("{:.0}", batch.cost),
            format!("{:.0}", fwd.side_effect(p)),
            format!("{:.0}", rev.side_effect(p)),
        ]);
    }
    format!(
        "EX-APP: §V — query-oriented cleaning, batch vs sequential feedback\n\
         batch total = {batch_total:.0}, best-sequential total = {seq_total:.0}\n\
         (batch never loses; the gap is the cost of order-dependent cleaning)\n\n{}",
        table(
            &[
                "seed",
                "‖ΔV‖",
                "batch OPT",
                "seq(QA,QJ,QT)",
                "seq(QT,QJ,QA)"
            ],
            &rows
        )
    )
}

/// EX-SRC — the source side-effect sibling objective (Tables II–III):
/// the two measures genuinely diverge on shared-witness workloads.
pub fn ex_src() -> String {
    use delprop_core::solvers::source;
    let mut rows = Vec::new();
    for seed in 0..6u64 {
        let p = random_db::generate(
            random_db::RandomDbParams {
                num_queries: 3,
                ..Default::default()
            },
            seed,
        );
        let src_opt = source::solve(p.compiled());
        let src_greedy = source::solve_greedy(p.compiled());
        let view_opt = exact::solve(
            p.compiled(),
            ExactConfig {
                node_limit: Some(2_000_000),
            },
        );
        assert!(src_opt.is_feasible(&p) && src_greedy.is_feasible(&p));
        assert!(src_greedy.len() >= src_opt.len());
        let view_sol = view_opt.solution.expect("feasible");
        rows.push(vec![
            seed.to_string(),
            p.norm_delta().to_string(),
            src_opt.len().to_string(),
            src_greedy.len().to_string(),
            format!("{:.0}", src_opt.side_effect(&p)),
            view_sol.len().to_string(),
            format!("{:.0}", view_sol.side_effect(&p)),
        ]);
    }
    format!(
        "EX-SRC: source vs view side-effect (the sibling objective of Tables II–III)\n\
         the source-optimal ΔD is small but collaterally damaging; the\n\
         view-optimal ΔD deletes more tuples to protect the views.\n\n{}",
        table(
            &[
                "seed",
                "‖ΔV‖",
                "src-OPT |ΔD|",
                "src-greedy |ΔD|",
                "src-OPT damage",
                "view-OPT |ΔD|",
                "view-OPT damage"
            ],
            &rows
        )
    )
}

/// EX-LS — local-search post-optimization of every approximate solver.
pub fn ex_ls() -> String {
    use delprop_core::solvers::local_search::{self, LocalSearchConfig};
    let mut rows = Vec::new();
    for seed in 0..5u64 {
        let p = forest::generate(
            forest::ForestParams {
                levels: 4,
                window: 2,
                chains: 10,
                delete_fraction: 0.3,
                weighted: true,
            },
            seed,
        );
        let opt = exact::solve(
            p.compiled(),
            ExactConfig {
                node_limit: Some(5_000_000),
            },
        )
        .cost;
        let mut row = vec![seed.to_string(), format!("{opt:.0}")];
        for sol in [
            general::solve(p.compiled()).unwrap(),
            primal_dual::solve_default(p.compiled()).unwrap(),
            lowdeg_tree::solve(p.compiled()).unwrap(),
            // Strawman start: delete every candidate tuple.
            delprop_core::Solution::from_tuples(p.candidates()),
        ] {
            let polished = local_search::improve(p.compiled(), &sol, LocalSearchConfig::default());
            assert!(polished.is_feasible(&p));
            assert!(polished.side_effect(&p) <= sol.side_effect(&p) + 1e-9);
            assert!(polished.side_effect(&p) >= opt - 1e-9);
            row.push(format!(
                "{:.0}→{:.0}",
                sol.side_effect(&p),
                polished.side_effect(&p)
            ));
        }
        rows.push(row);
    }
    format!(
        "EX-LS: local-search polish (remove/swap descent) on weighted forest cases\n\
         'a→b' = side-effect before → after polishing; never worse, often optimal.\n\n{}",
        table(
            &[
                "seed",
                "OPT",
                "general",
                "primal-dual",
                "lowdeg-tree",
                "delete-all"
            ],
            &rows
        )
    )
}

/// EX-ABL — Algorithm 1 ablations: demand order and reverse-delete.
pub fn ex_abl() -> String {
    use delprop_core::solvers::primal_dual::{DemandOrder, PrimalDualConfig};
    let mut rows = Vec::new();
    for seed in 0..6u64 {
        let p = forest::generate(
            forest::ForestParams {
                levels: 5,
                window: 3,
                chains: 12,
                delete_fraction: 0.35,
                weighted: false,
            },
            seed,
        );
        let base = primal_dual::solve(p.compiled(), &PrimalDualConfig::default()).unwrap();
        let no_prune = primal_dual::solve(
            p.compiled(),
            &PrimalDualConfig {
                skip_reverse_delete: true,
                ..Default::default()
            },
        )
        .unwrap();
        let arbitrary = primal_dual::solve(
            p.compiled(),
            &PrimalDualConfig {
                order: DemandOrder::Arbitrary,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(base.solution.side_effect(&p) <= no_prune.solution.side_effect(&p) + 1e-9);
        rows.push(vec![
            seed.to_string(),
            format!("{:.0}", base.solution.side_effect(&p)),
            format!("{:.0}", no_prune.solution.side_effect(&p)),
            format!("{:.0}", arbitrary.solution.side_effect(&p)),
            format!("{}→{}", no_prune.solution.len(), base.solution.len()),
        ]);
    }
    format!(
        "EX-ABL: PrimeDualVSE ablations (Algorithm 1 design choices)\n\
         reverse-delete (lines 7–10) is what keeps the solution lean; the\n\
         bottom-up order matters less but never hurts on these workloads.\n\n{}",
        table(
            &[
                "seed",
                "full alg",
                "no prune",
                "arbitrary order",
                "|ΔD| no-prune→pruned"
            ],
            &rows
        )
    )
}

/// EX-FD — functional dependencies widen the tractable class.
pub fn ex_fd() -> String {
    use delprop_core::Problem;
    use delprop_query::parse_query;
    use delprop_relation::{
        tup, Database, FunctionalDependency, RelationFds, RelationSchema, Schema, SchemaFds,
    };
    let schema = Schema::from_relations([
        RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
        RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
    ])
    .unwrap();
    let mut db = Database::new(schema);
    for (a, j) in [("Joe", "TKDE"), ("John", "TODS"), ("Tom", "VLDB")] {
        db.insert("T1", tup![a, j]).unwrap();
    }
    for (j, z, w) in [
        ("TKDE", "XML", 30),
        ("TODS", "CUBE", 20),
        ("VLDB", "ML", 10),
    ] {
        db.insert("T2", tup![j, z, w]).unwrap();
    }
    let t1 = db.schema().relation_id("T1").unwrap();
    let t2 = db.schema().relation_id("T2").unwrap();
    let mut fds = SchemaFds::new();
    let mut f1 = RelationFds::new(2);
    f1.add(FunctionalDependency::new(vec![0], vec![1])).unwrap();
    fds.insert(t1, f1);
    let mut f2 = RelationFds::new(3);
    f2.add(FunctionalDependency::new(vec![1], vec![0, 2]))
        .unwrap();
    fds.insert(t2, f2);

    let q3 = parse_query("Q3(x, z) :- T1(x, y), T2(y, z, w)")
        .unwrap()
        .bind(db.schema())
        .unwrap();
    let plain = Problem::new(db.clone(), vec![q3.clone()]);
    let with_fds = Problem::new_with_fds(db, vec![q3], &fds);
    let mut out = String::from(
        "EX-FD: FD-extended key preservation (the 'fd-…' rows of Tables II–V)\n\n\
         Q3(x, z) :- T1(x, y), T2(y, z, w) drops the key variable y.\n",
    );
    out.push_str(&format!(
        "plain constructor: {}\n",
        plain
            .map(|_| "accepted".to_string())
            .unwrap_or_else(|e| format!("rejected — {e}"))
    ));
    match with_fds {
        Ok(mut p) => {
            out.push_str(&format!(
                "with x→y on T1 and topic→(journal, papers) on T2: accepted, ‖V‖ = {}\n",
                p.norm_v()
            ));
            p.mark_deleted(0, &tup!["Joe", "XML"]).unwrap();
            let sol = exact::solve(p.compiled(), ExactConfig::default());
            out.push_str(&format!(
                "deleting Q3(Joe, XML) exactly: side-effect = {} (unique witnesses hold)\n",
                sol.cost
            ));
        }
        Err(e) => out.push_str(&format!("with FDs: unexpectedly rejected — {e}\n")),
    }
    out
}

/// EX-YAN — the Yannakakis engine vs hash-join on acyclic workloads.
pub fn ex_yan() -> String {
    use delprop_query::eval::{hashjoin, sort_matches, yannakakis, CompiledQuery};
    use delprop_query::parse_query;
    use delprop_relation::{tup, Database, RelationSchema, Schema};
    let mut rows = Vec::new();
    for n in [200i64, 800, 2000] {
        let schema = Schema::from_relations([
            RelationSchema::new("A", 2, vec![0]).unwrap(),
            RelationSchema::new("B", 2, vec![0]).unwrap(),
            RelationSchema::new("C", 2, vec![0]).unwrap(),
        ])
        .unwrap();
        let mut db = Database::new(schema);
        for i in 0..n {
            db.insert("A", tup![i, i % 40]).unwrap();
            db.insert("B", tup![i, i % 17]).unwrap();
            db.insert("C", tup![i, i % 5]).unwrap();
        }
        let q = parse_query("Q(x, y, z, w) :- A(x, y), B(y, z), C(z, w)")
            .unwrap()
            .bind(db.schema())
            .unwrap();
        let c = CompiledQuery::compile(&q);
        let t0 = Instant::now();
        let mut hj = hashjoin::evaluate(&db, &c);
        let t_hj = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let mut yk = yannakakis::evaluate(&db, &c).expect("chain is acyclic");
        let t_yk = t1.elapsed().as_secs_f64();
        sort_matches(&mut hj);
        sort_matches(&mut yk);
        assert_eq!(hj, yk, "engines must agree");
        rows.push(vec![
            n.to_string(),
            hj.len().to_string(),
            format!("{:.2} ms", t_hj * 1e3),
            format!("{:.2} ms", t_yk * 1e3),
        ]);
    }
    format!(
        "EX-YAN: Yannakakis (semijoin-reduced) vs hash-join on acyclic chains\n\
         identical outputs; relative speed depends on dangling-tuple share.\n\n{}",
        table(&["|R|", "answers", "hash-join", "yannakakis"], &rows)
    )
}

/// An experiment runner.
pub type Runner = fn() -> String;

/// EX-BAL — the balanced prize-collecting primal-dual (§IV.C's "similar
/// results for the balanced version").
pub fn ex_bal() -> String {
    use delprop_core::solvers::primal_dual_balanced;
    let mut rows = Vec::new();
    for seed in 0..6u64 {
        let mut p = forest::generate(
            forest::ForestParams {
                levels: 4,
                window: 2,
                chains: 10,
                delete_fraction: 0.3,
                weighted: true,
            },
            seed,
        );
        // Make a third of the demands dubious (cheap prizes).
        let demands: Vec<_> = p.deletions().iter().copied().collect();
        for (i, id) in demands.iter().enumerate() {
            if i % 3 == 0 {
                p.set_weight(*id, 0.3).unwrap();
            }
        }
        let out = primal_dual_balanced::solve_balanced(p.compiled(), &Default::default()).unwrap();
        let opt = exact::solve_balanced(
            p.compiled(),
            ExactConfig {
                node_limit: Some(5_000_000),
            },
        );
        assert!(out.dual_objective <= opt.cost + 1e-6, "weak duality");
        rows.push(vec![
            seed.to_string(),
            p.norm_delta().to_string(),
            out.skipped.len().to_string(),
            format!("{:.1}", out.solution.balanced_cost(&p)),
            format!("{:.1}", opt.cost),
            format!("{:.1}", out.dual_objective),
        ]);
    }
    format!(
        "EX-BAL: balanced prize-collecting PrimeDualVSE (§IV.C)\n\
         cheap prizes get paid instead of cut; Σv_r lower-bounds OPT.\n\n{}",
        table(&["seed", "‖ΔV‖", "skipped", "alg", "OPT", "dual LB"], &rows)
    )
}

/// EX-PORT — the portfolio runtime as the default entry point: verified
/// guarantee-ordered fallback over mixed workloads, under a tick budget.
pub fn ex_port() -> String {
    use delprop_core::runtime::{Budget, MemberStatus, Portfolio};

    let mut workloads = vec![("fig1".to_string(), figures::fig1_problem())];
    for seed in 0..3u64 {
        workloads.push((
            format!("forest/{seed}"),
            forest::generate(
                forest::ForestParams {
                    levels: 4,
                    window: 2,
                    chains: 8,
                    delete_fraction: 0.3,
                    weighted: true,
                },
                seed,
            ),
        ));
        workloads.push((
            format!("random/{seed}"),
            random_db::generate(
                random_db::RandomDbParams {
                    num_relations: 4,
                    num_queries: 3,
                    atoms_per_query: 2,
                    domain: 6,
                    tuples_per_relation: 12,
                    delete_fraction: 0.3,
                    weighted: true,
                },
                seed,
            ),
        ));
    }

    let mut rows = Vec::new();
    for (name, p) in &workloads {
        let budget = Budget::with_ticks(2_000_000);
        let out = Portfolio::standard()
            .solve(p, &budget)
            .expect("greedy tail always verifies");
        let tried = out
            .report
            .iter()
            .filter(|m| !matches!(m.status, MemberStatus::Skipped | MemberStatus::NotReached))
            .count();
        let guarantee = out
            .report
            .iter()
            .find(|m| m.name == out.winner)
            .map(|m| m.guarantee.to_string())
            .unwrap_or_default();
        rows.push(vec![
            name.clone(),
            p.norm_v().to_string(),
            p.norm_delta().to_string(),
            out.winner.to_string(),
            guarantee,
            format!("{:.1}", out.cost),
            tried.to_string(),
            budget.used().to_string(),
        ]);
    }
    format!(
        "EX-PORT: solver portfolio runtime (verified fallback chains)\n\
         every answer below was re-verified by ground-truth re-evaluation\n\
         before being reported; `tried` counts members that actually ran.\n\n{}",
        table(
            &[
                "workload",
                "‖V‖",
                "‖ΔV‖",
                "winner",
                "guarantee",
                "cost",
                "tried",
                "ticks"
            ],
            &rows
        )
    )
}

/// EX-PAR — racing the portfolio: thread-parallel `solve_racing` vs the
/// sequential `solve_best` on the EX-P1 forest sweep, where five
/// standard members apply (lowdeg_tree, primal_dual, lp_round, general,
/// greedy) and the sequential path pays the *sum* of their latencies —
/// dominated by the lp_round simplex — while racing pays roughly the
/// max until the first verifier cancels the field. Raw measurements
/// land in `artifacts/BENCH_parallel.json`.
pub fn ex_par() -> String {
    use delprop_core::runtime::{Budget, MemberStatus, Portfolio};

    // Racing runs are µs-scale since the packed-kernel refactor, so a
    // single rep is mostly thread-spawn jitter; min-of-15 recovers a
    // reproducible floor the gate can hold.
    const REPS: usize = 15;
    let chain = Portfolio::standard();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut best_speedup = 0.0f64;
    for chains in [64usize, 128, 256, 512] {
        let p = forest::generate(
            forest::ForestParams {
                levels: 4,
                window: 2,
                chains,
                delete_fraction: 0.2,
                weighted: false,
            },
            7,
        );
        // Warm the IR cache so neither path pays the one-off compile.
        let _ = p.compiled();

        let mut seq_secs = f64::INFINITY;
        let mut seq_cost = 0.0;
        for _ in 0..REPS {
            let t = Instant::now();
            let out = chain.solve_best(&p, &Budget::unlimited()).unwrap();
            seq_secs = seq_secs.min(t.elapsed().as_secs_f64());
            assert!(out.solution.is_feasible(&p));
            seq_cost = out.cost;
        }

        let mut par_secs = f64::INFINITY;
        let mut par_cost = 0.0;
        let mut cancelled = 0usize;
        let mut winner = "";
        for _ in 0..REPS {
            let t = Instant::now();
            let out = chain.solve_racing(&p, &Budget::unlimited()).unwrap();
            par_secs = par_secs.min(t.elapsed().as_secs_f64());
            assert!(out.solution.is_feasible(&p));
            par_cost = out.cost;
            winner = out.winner;
            cancelled = out
                .report
                .iter()
                .filter(|m| m.status == MemberStatus::Cancelled)
                .count();
        }

        let speedup = seq_secs / par_secs.max(1e-9);
        best_speedup = best_speedup.max(speedup);
        rows.push(vec![
            chains.to_string(),
            p.norm_v().to_string(),
            format!("{:.3} ms", seq_secs * 1e3),
            format!("{:.3} ms", par_secs * 1e3),
            format!("{speedup:.2}x"),
            winner.to_string(),
            cancelled.to_string(),
        ]);
        json_rows.push(Json::obj(vec![
            ("chains", Json::uint(chains as u64)),
            ("norm_v", Json::uint(p.norm_v() as u64)),
            ("norm_delta", Json::uint(p.norm_delta() as u64)),
            ("sequential_micros", Json::rounded(seq_secs * 1e6, 1)),
            ("racing_micros", Json::rounded(par_secs * 1e6, 1)),
            ("speedup", Json::rounded(speedup, 3)),
            ("sequential_cost", Json::Num(seq_cost)),
            ("racing_cost", Json::Num(par_cost)),
            ("winner", Json::str(winner)),
            ("members_cancelled", Json::uint(cancelled as u64)),
            ("reps", Json::uint(REPS as u64)),
        ]));
    }
    assert!(
        best_speedup >= 1.5,
        "racing must beat sequential solve_best by at least 1.5x somewhere \
         on the sweep (best observed: {best_speedup:.2}x)"
    );
    let written = json::write_artifact("artifacts/BENCH_parallel.json", &Json::Arr(json_rows))
        .unwrap_or_else(|e| format!("(not written: {e})"));
    format!(
        "EX-PAR: racing portfolio — solve_racing vs sequential solve_best\n         (min of {REPS} reps each; both paths verified; raw JSON: {written})\n\n{}",
        table(
            &[
                "chains",
                "\u{2016}V\u{2016}",
                "sequential",
                "racing",
                "speedup",
                "winner",
                "cancelled"
            ],
            &rows
        )
    )
}

/// EX-SHARD — the sharded portfolio vs whole-instance racing on
/// value-disjoint multi-component forest instances (DESIGN.md §15).
/// `solve_sharded` partitions the compiled incidence index into
/// connected components and solves each component's deterministic chain
/// through the work-stealing scheduler; on a `k`-copy instance the
/// packed witness masks shrink from `‖ΔV‖×‖𝒞‖/64` words to
/// `Σ_c ‖ΔV_c‖×‖𝒞_c‖/64 ≈ 1/k` of that, so the win is algorithmic and
/// survives single-core CI boxes. Gate (scale 1 only): per-copy-count
/// speedup ≥ max(2, k/2), and the merged certified cost must match the
/// unsharded deterministic chain on the full instance to 1e-9. Raw rows
/// land in `artifacts/BENCH_shard.json` (`shard_speedup` is
/// LowerIsWorse-gated against `baselines/`; racing columns stay
/// display-only — the racing portfolio is a scheduler lottery).
pub fn ex_shard() -> String {
    use delprop_core::runtime::{Budget, Portfolio};
    use delprop_core::shard;
    use delprop_core::solvers::local_search::Objective;

    const REPS: usize = 9;
    let chain = Portfolio::standard();
    let k_scale = scale();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut log_speedups = Vec::new();
    let mut gate_fail: Option<String> = None;
    for copies in [2usize, 4, 8] {
        let p = forest::generate_disjoint(
            forest::ForestParams {
                levels: 4,
                window: 2,
                chains: 96 * k_scale,
                delete_fraction: 0.2,
                weighted: false,
            },
            copies,
            7,
        );
        // Warm the IR cache so neither path pays the one-off compile.
        let ir = p.compiled_arc();
        // The unsharded deterministic chain on the full instance is the
        // cost reference: same member order as each shard runs, so the
        // merged sharded cost must reproduce it exactly (the racing
        // winner may legitimately differ — any certified member can win
        // the race).
        let reference = shard::solve_component(&ir, Objective::Standard, &Budget::unlimited())
            .expect("reference chain must solve the full instance");
        let components = shard::partition(&ir).shards.len();
        assert!(components >= copies, "copies must stay value-disjoint");

        let mut sharded_secs = f64::INFINITY;
        let mut sharded_cost = 0.0;
        for _ in 0..REPS {
            let t = Instant::now();
            let out = chain.solve_sharded(&p, &Budget::unlimited()).unwrap();
            sharded_secs = sharded_secs.min(t.elapsed().as_secs_f64());
            assert!(out.solution.is_feasible(&p));
            sharded_cost = out.cost;
        }
        assert!(
            (sharded_cost - reference.cost).abs() <= 1e-9 * (1.0 + reference.cost.abs()),
            "sharded cost {sharded_cost} must match the unsharded chain {}",
            reference.cost
        );

        let mut racing_secs = f64::INFINITY;
        let mut racing_cost = 0.0;
        let mut winner = "";
        for _ in 0..REPS {
            let t = Instant::now();
            let out = chain.solve_racing(&p, &Budget::unlimited()).unwrap();
            racing_secs = racing_secs.min(t.elapsed().as_secs_f64());
            assert!(out.solution.is_feasible(&p));
            racing_cost = out.cost;
            winner = out.winner;
        }
        assert!(
            sharded_cost <= racing_cost + 1e-9,
            "sharding must never certify a worse cost than racing \
             ({sharded_cost} vs {racing_cost})"
        );

        let speedup = racing_secs / sharded_secs.max(1e-9);
        log_speedups.push(speedup.max(1e-9).ln());
        let floor = (copies as f64 / 2.0).max(2.0);
        if k_scale == 1 && speedup < floor && gate_fail.is_none() {
            gate_fail = Some(format!(
                "sharded solve must beat racing by >= {floor:.1}x on the \
                 {copies}-copy instance (measured {speedup:.2}x)"
            ));
        }
        rows.push(vec![
            copies.to_string(),
            components.to_string(),
            p.norm_v().to_string(),
            format!("{:.3} ms", racing_secs * 1e3),
            format!("{:.3} ms", sharded_secs * 1e3),
            format!("{speedup:.2}x"),
            format!(">={floor:.0}x"),
            format!("{sharded_cost:.1}"),
        ]);
        json_rows.push(Json::obj(vec![
            ("copies", Json::uint(copies as u64)),
            ("components", Json::uint(components as u64)),
            ("norm_v", Json::uint(p.norm_v() as u64)),
            ("norm_delta", Json::uint(p.norm_delta() as u64)),
            ("sharded_micros", Json::rounded(sharded_secs * 1e6, 1)),
            ("racing_micros", Json::rounded(racing_secs * 1e6, 1)),
            ("shard_speedup", Json::rounded(speedup, 3)),
            ("sharded_cost", Json::Num(sharded_cost)),
            ("racing_cost", Json::Num(racing_cost)),
            ("winner", Json::str(winner)),
            ("reps", Json::uint(REPS as u64)),
        ]));
    }
    if let Some(fail) = gate_fail {
        panic!("{fail}");
    }
    let geomean = (log_speedups.iter().sum::<f64>() / log_speedups.len() as f64).exp();
    let geomean_note = if k_scale == 1 {
        format!("geomean speedup vs racing: {geomean:.1}x (per-row gate: >= max(2, k/2))")
    } else {
        format!("scale factor {k_scale}: exploratory sweep, geomean {geomean:.1}x ungated")
    };
    let written = json::write_artifact("artifacts/BENCH_shard.json", &Json::Arr(json_rows))
        .unwrap_or_else(|e| format!("(not written: {e})"));
    format!(
        "EX-SHARD: component-sharded portfolio vs whole-instance racing\n         \
         (min of {REPS} reps each; merged cost checked against the unsharded\n         \
         deterministic chain; {geomean_note}; raw JSON: {written})\n\n{}",
        table(
            &[
                "copies",
                "shards",
                "\u{2016}V\u{2016}",
                "racing",
                "sharded",
                "speedup",
                "gate",
                "cost"
            ],
            &rows
        )
    )
}

/// EX-OBS — tracing overhead: the EX-P1 forest sweep solved with no
/// sink, the no-op sink, and the ring-buffer sink. The <3% overhead
/// claim of DESIGN.md §10 is asserted here; raw measurements land in
/// `artifacts/BENCH_obs.json` and one full trace in
/// `artifacts/TRACE_obs.jsonl`.
pub fn ex_obs() -> String {
    use delprop_core::runtime::{trace, Budget, NoopSink, Portfolio, RingBufferSink, TraceSink};
    use std::sync::Arc;

    // The gated overhead percentages are ratios of two minima, which
    // doubles their sensitivity to scheduler noise; min-of-20 keeps
    // both sides of the ratio on their floor.
    const REPS: usize = 20;
    // Overhead as a fraction of per-solve work is what matters, and on
    // sub-millisecond solves scheduler noise dominates any signal, so the
    // assertion only samples the largest instance of the sweep.
    const ASSERT_CHAINS: usize = 256;
    let chain = Portfolio::standard();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut trace_path = String::from("(no trace written)");
    for chains in [64usize, 128, 256] {
        let p = forest::generate(
            forest::ForestParams {
                levels: 4,
                window: 2,
                chains,
                delete_fraction: 0.2,
                weighted: false,
            },
            7,
        );
        // Warm the IR cache: compile time is EX-IR's subject, not ours.
        let _ = p.compiled();

        // One timed solve for one sink mode; also returns the cost,
        // which must not depend on the sink.
        let time_once = |b: Budget| -> (f64, f64) {
            let t = Instant::now();
            let out = chain.solve_best(&p, &b).unwrap();
            let secs = t.elapsed().as_secs_f64();
            assert!(out.solution.is_feasible(&p));
            (secs, out.cost)
        };

        // Interleave the three modes within each rep: the overhead
        // percentages are ratios between modes, and mode-major loops
        // let scheduler/frequency drift between the loops masquerade as
        // sink overhead. Round-robin keeps every mode's min-of-REPS
        // sampled under the same conditions.
        let noop: Arc<dyn TraceSink> = Arc::new(NoopSink);
        let ring = Arc::new(RingBufferSink::with_capacity(1 << 16));
        let ring_sink: Arc<dyn TraceSink> = Arc::clone(&ring) as Arc<dyn TraceSink>;
        let (mut base_secs, mut noop_secs, mut ring_secs) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let (mut base_cost, mut noop_cost, mut ring_cost) = (0.0, 0.0, 0.0);
        for _ in 0..REPS {
            let (s, c) = time_once(Budget::unlimited());
            base_secs = base_secs.min(s);
            base_cost = c;
            let (s, c) = time_once(Budget::unlimited().with_sink(Arc::clone(&noop)));
            noop_secs = noop_secs.min(s);
            noop_cost = c;
            let (s, c) = time_once(Budget::unlimited().with_sink(Arc::clone(&ring_sink)));
            ring_secs = ring_secs.min(s);
            ring_cost = c;
        }

        assert_eq!(base_cost, noop_cost, "no-op sink changed the cost");
        assert_eq!(base_cost, ring_cost, "ring sink changed the cost");

        // One final traced run so the dumped trace covers exactly one
        // solve_best (the timing loops above already lapped the ring).
        let fresh_ring = Arc::new(RingBufferSink::with_capacity(1 << 16));
        let b = Budget::unlimited().with_sink(Arc::clone(&fresh_ring) as Arc<dyn TraceSink>);
        let _ = chain.solve_best(&p, &b).unwrap();
        let events = fresh_ring.recorded();
        if chains == ASSERT_CHAINS {
            trace_path = trace::dump_jsonl("artifacts/TRACE_obs.jsonl", &fresh_ring.snapshot())
                .map(|()| "artifacts/TRACE_obs.jsonl".to_string())
                .unwrap_or_else(|e| format!("(not written: {e})"));
        }

        let noop_overhead = (noop_secs / base_secs - 1.0) * 100.0;
        let ring_overhead = (ring_secs / base_secs - 1.0) * 100.0;
        // The true overheads are ~0–2%, but min-of-REPS floors on a
        // ~20ms solve wander by up to ~5% between modes on a shared
        // 1-core box, so this in-run assert is a 10% sanity bound (a
        // real regression — an allocation or lock on the event path —
        // costs far more than that). The tight enforcement is the CI
        // gate, which holds the gated overhead_pct fields within +5
        // points of the committed baselines.
        if chains == ASSERT_CHAINS {
            assert!(
                ring_overhead < 10.0,
                "ring-buffer tracing overhead {ring_overhead:.2}% >= 10% \
                 on the {chains}-chain instance (base {base_secs:.6}s, ring {ring_secs:.6}s)"
            );
            assert!(
                noop_overhead < 10.0,
                "no-op tracing overhead {noop_overhead:.2}% >= 10% \
                 on the {chains}-chain instance (base {base_secs:.6}s, noop {noop_secs:.6}s)"
            );
        }

        rows.push(vec![
            chains.to_string(),
            p.norm_v().to_string(),
            format!("{:.3} ms", base_secs * 1e3),
            format!("{:.3} ms", noop_secs * 1e3),
            format!("{:.3} ms", ring_secs * 1e3),
            format!("{noop_overhead:+.2}%"),
            format!("{ring_overhead:+.2}%"),
            events.to_string(),
        ]);
        let mut fields = vec![
            ("chains", Json::uint(chains as u64)),
            ("norm_v", Json::uint(p.norm_v() as u64)),
            ("norm_delta", Json::uint(p.norm_delta() as u64)),
            ("cost", Json::Num(base_cost)),
            ("base_micros", Json::rounded(base_secs * 1e6, 1)),
            ("noop_micros", Json::rounded(noop_secs * 1e6, 1)),
            ("ring_micros", Json::rounded(ring_secs * 1e6, 1)),
        ];
        // The gated overhead percentages only appear on the asserted
        // (largest) instance: on the sub-3ms rows the ratio of two
        // min-floors is scheduler noise, not an overhead measurement —
        // the table above still shows them for context.
        if chains == ASSERT_CHAINS {
            fields.push(("noop_overhead_pct", Json::rounded(noop_overhead, 2)));
            fields.push(("ring_overhead_pct", Json::rounded(ring_overhead, 2)));
        }
        fields.push(("trace_events", Json::uint(events)));
        fields.push(("reps", Json::uint(REPS as u64)));
        json_rows.push(Json::obj(fields));
    }
    let written = json::write_artifact("artifacts/BENCH_obs.json", &Json::Arr(json_rows))
        .unwrap_or_else(|e| format!("(not written: {e})"));
    format!(
        "EX-OBS: tracing overhead — solve_best with no sink / NoopSink / RingBufferSink\n         (min of {REPS} reps each; costs must coincide across modes;\n         raw JSON: {written}; trace: {trace_path})\n\n{}",
        table(
            &[
                "chains",
                "\u{2016}V\u{2016}",
                "no sink",
                "noop",
                "ring",
                "noop ovh",
                "ring ovh",
                "events"
            ],
            &rows
        )
    )
}

/// EX-SERVE — the serving daemon end to end: closed-loop clients doing
/// request/response round trips over TCP loopback against a live
/// `delpropd`, per-request latency measured at the client. Closed loop
/// keeps the outcome deterministic (admission is sized so nothing
/// sheds: every request must come back `ok`); the latency percentiles
/// land in `artifacts/BENCH_serve.json`, whose `p99_micros` the CI
/// bench gate holds against `baselines/`.
pub fn ex_serve() -> String {
    const REQUESTS_PER_CLIENT: usize = 50;
    // A whole 5-storm row finishes in tens of milliseconds — one host
    // throttle window used to cover all of them and double every gated
    // percentile. Twenty storms keep the row under ~3s while making
    // the per-percentile min robust to transient stalls.
    const REPS: usize = 20;

    fn percentile(sorted: &[u64], p: f64) -> u64 {
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    // One storm: a fresh daemon, `clients` closed-loop clients, each
    // doing REQUESTS_PER_CLIENT round trips. Returns sorted latencies
    // plus the storm's wall clock.
    fn storm(clients: usize) -> (Vec<u64>, f64) {
        use delprop_server::{
            Client, Daemon, InstanceSpec, Request, Response, ServerConfig, SolveRequest,
        };
        // The EX-P1/EX-PAR forest at 64 chains: heavy enough that the
        // deterministic solve work dominates the round trip, so the
        // gated percentiles measure the serving stack rather than
        // loopback scheduling noise.
        let mut cfg = ServerConfig {
            initial: InstanceSpec::Forest {
                levels: 4,
                window: 2,
                chains: 64,
                delete_fraction: 0.2,
                weighted: false,
                seed: 7,
            },
            initial_label: "forest-bench".to_string(),
            ..ServerConfig::default()
        };
        // One tenant per client and a global limit above the client
        // count: the closed loop must never shed, so `ok == requests`
        // is an exact (gated) invariant, not a timing accident.
        cfg.admission.max_inflight = clients.max(1);
        cfg.admission.max_per_tenant = 1;
        // Sequential portfolio, not racing: racing spawns a thread per
        // member, and 8 concurrent requests x 7 members oversubscribes
        // any CI box — the resulting scheduler noise would swamp the
        // p99 the gate watches. EX-PAR owns the racing-vs-sequential
        // comparison; this experiment gates the serving stack.
        cfg.engine.racing = false;
        let mut daemon = Daemon::spawn(cfg).expect("daemon must spawn on loopback");
        let addr = daemon.tcp_addr().expect("tcp bind");

        let wall = Instant::now();
        let mut latencies: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    s.spawn(move || {
                        let mut client = Client::connect_tcp(addr).expect("connect");
                        client
                            .set_read_timeout(Some(std::time::Duration::from_secs(60)))
                            .expect("read timeout");
                        let mut lat = Vec::with_capacity(REQUESTS_PER_CLIENT);
                        for _ in 0..REQUESTS_PER_CLIENT {
                            let t = Instant::now();
                            let resp = client
                                .request(&Request::Solve(SolveRequest {
                                    tenant: format!("bench-{c}"),
                                    ..SolveRequest::default()
                                }))
                                .expect("round trip");
                            lat.push(t.elapsed().as_micros() as u64);
                            match resp {
                                Response::Ok(ok) => assert!(!ok.deleted.is_empty()),
                                other => panic!("closed loop must not shed, got {other:?}"),
                            }
                        }
                        lat
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("bench client"))
                .collect()
        });
        let wall_secs = wall.elapsed().as_secs_f64();
        daemon.shutdown();
        latencies.sort_unstable();
        (latencies, wall_secs)
    }

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for clients in [1usize, 4, 8] {
        // Min of REPS independent storms, per percentile: tail
        // percentiles of a single storm are scheduler-noisy at loopback
        // latencies, and the gate needs a reproducible floor (the same
        // min-of-reps idiom the other wall-clock experiments use).
        let (mut p50, mut p90, mut p99, mut max) = (u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        let mut wall_secs = f64::INFINITY;
        for _ in 0..REPS {
            let (latencies, secs) = storm(clients);
            p50 = p50.min(percentile(&latencies, 0.50));
            p90 = p90.min(percentile(&latencies, 0.90));
            p99 = p99.min(percentile(&latencies, 0.99));
            max = max.min(*latencies.last().unwrap());
            wall_secs = wall_secs.min(secs);
        }
        let requests = (clients * REQUESTS_PER_CLIENT) as u64;

        rows.push(vec![
            clients.to_string(),
            requests.to_string(),
            format!("{:.3} ms", p50 as f64 / 1e3),
            format!("{:.3} ms", p90 as f64 / 1e3),
            format!("{:.3} ms", p99 as f64 / 1e3),
            format!("{:.3} ms", max as f64 / 1e3),
            format!("{wall_secs:.3} s"),
        ]);
        json_rows.push(Json::obj(vec![
            ("clients", Json::uint(clients as u64)),
            ("requests", Json::uint(requests)),
            ("ok", Json::uint(requests)),
            ("shed", Json::uint(0)),
            ("p50_micros", Json::uint(p50)),
            ("p90_micros", Json::uint(p90)),
            ("p99_micros", Json::uint(p99)),
            ("max_micros", Json::uint(max)),
            ("wall_secs", Json::rounded(wall_secs, 3)),
            ("reps", Json::uint(REPS as u64)),
        ]));
    }
    let written = json::write_artifact("artifacts/BENCH_serve.json", &Json::Arr(json_rows))
        .unwrap_or_else(|e| format!("(not written: {e})"));
    format!(
        "EX-SERVE: serving daemon — closed-loop round-trip latency over TCP loopback\n         ({REQUESTS_PER_CLIENT} requests per client, min of {REPS} storms per row,\n         admission sized to never shed; raw JSON: {written})\n\n{}",
        table(
            &["clients", "requests", "p50", "p90", "p99", "max", "wall"],
            &rows
        )
    )
}

/// All experiments in order, as `(id, runner)`.
pub fn all() -> Vec<(&'static str, Runner)> {
    vec![
        ("ex-fig1", ex_fig1 as Runner),
        ("ex-fig2", ex_fig2),
        ("ex-fig3", ex_fig3),
        ("ex-tab1", ex_tab1),
        ("ex-tab25", ex_tab25),
        ("ex-t1", ex_t1),
        ("ex-t2", ex_t2),
        ("ex-c1", ex_c1),
        ("ex-l1", ex_l1),
        ("ex-t3", ex_t3),
        ("ex-p1", ex_p1),
        ("ex-kern", ex_kern),
        ("ex-incr", ex_incr),
        ("ex-t4", ex_t4),
        ("ex-dp", ex_dp),
        ("ex-ir", ex_ir),
        ("ex-app", ex_app),
        ("ex-src", ex_src),
        ("ex-ls", ex_ls),
        ("ex-abl", ex_abl),
        ("ex-fd", ex_fd),
        ("ex-yan", ex_yan),
        ("ex-bal", ex_bal),
        ("ex-port", ex_port),
        ("ex-par", ex_par),
        ("ex-shard", ex_shard),
        ("ex-obs", ex_obs),
        ("ex-serve", ex_serve),
    ]
}

/// The experiments the CI bench gate runs (`harness --smoke`): the six
/// whose artifacts are diffed against `baselines/`.
pub fn smoke_ids() -> &'static [&'static str] {
    &[
        "ex-par", "ex-obs", "ex-serve", "ex-kern", "ex-incr", "ex-shard",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cheap figure/table experiments run in debug; the heavy sweeps
    /// are exercised by `all_experiments_run_full` (release-only, run via
    /// `cargo test -p delprop-bench --release -- --ignored`) and by the
    /// harness itself.
    #[test]
    fn figure_experiments_run() {
        for (id, run) in all().into_iter().take(7) {
            let report = run();
            assert!(report.len() > 40, "{id} produced a trivial report");
        }
    }

    /// The portfolio experiment is all-polynomial (no exact member) and
    /// cheap enough for debug builds.
    #[test]
    fn portfolio_experiment_runs() {
        let report = ex_port();
        assert!(report.contains("winner"), "missing table header:\n{report}");
        assert!(report.len() > 40);
    }

    /// Every experiment must run without panicking (internal asserts are
    /// the claims themselves) and produce a non-trivial report.
    #[test]
    #[ignore = "heavy: run with --release -- --ignored"]
    fn all_experiments_run_full() {
        for (id, run) in all() {
            let report = run();
            assert!(report.len() > 40, "{id} produced a trivial report");
        }
    }
}
