//! Ad-hoc profiling helper: times the pieces of the slowest experiments
//! so regressions are easy to localize. Not part of the experiment suite.

use delprop_core::solvers::{exact, general, lp_round};
use delprop_setcover::exact::ExactConfig;
use delprop_workload::random_db;
use std::time::Instant;

fn main() {
    for (m, atoms) in [(2usize, 2usize), (3, 2), (4, 2), (2, 3), (3, 3)] {
        for seed in 0..3u64 {
            let p = random_db::generate(
                random_db::RandomDbParams {
                    num_queries: m,
                    atoms_per_query: atoms,
                    num_relations: atoms + 3,
                    // Keep 3-atom workloads small: the exact/LP baselines
                    // are exponential/dense and only the *shape* matters.
                    domain: if atoms >= 3 { 4 } else { 6 },
                    tuples_per_relation: if atoms >= 3 { 9 } else { 14 },
                    ..Default::default()
                },
                seed,
            );
            let t0 = Instant::now();
            let sol = general::solve(p.compiled()).unwrap();
            let t_gen = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let lb = lp_round::lower_bound(p.compiled());
            let t_lp = t1.elapsed().as_secs_f64();
            let t2 = Instant::now();
            let ex = exact::solve(
                p.compiled(),
                ExactConfig {
                    node_limit: Some(2_000_000),
                },
            );
            let t_ex = t2.elapsed().as_secs_f64();
            println!(
                "{m}x{atoms} seed {seed}: V={} dV={} gen={:.2}s lp={:.2}s (lb={lb:.1}) exact={:.2}s (opt={}, proven={})",
                p.norm_v(),
                p.norm_delta(),
                t_gen,
                t_lp,
                t_ex,
                ex.cost,
                ex.proven_optimal
            );
            let _ = sol;
        }
    }
}
