//! The experiment harness: regenerates every table/figure experiment of
//! `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p delprop-bench --bin harness              # run everything
//! cargo run -p delprop-bench --bin harness -- ex-t3     # one experiment
//! cargo run -p delprop-bench --bin harness -- --smoke   # bench-gate set
//! cargo run -p delprop-bench --bin harness -- --list    # list ids
//! cargo run -p delprop-bench --bin harness -- --scale 10 ex-kern
//! #   ^ multiply workload sizes in the scaling experiments (ungated)
//! ```

use delprop_bench::experiments;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--scale") {
        args.remove(i);
        let factor = args
            .get(i)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                eprintln!("--scale requires a positive integer factor");
                std::process::exit(2);
            });
        args.remove(i);
        experiments::set_scale(factor);
    }
    let all = experiments::all();
    if args.iter().any(|a| a == "--list") {
        for (id, _) in &all {
            println!("{id}");
        }
        return;
    }
    // --smoke: the baseline-gated experiments (plus any ids given
    // explicitly alongside it).
    if let Some(i) = args.iter().position(|a| a == "--smoke") {
        args.remove(i);
        for id in experiments::smoke_ids() {
            if !args.iter().any(|a| a == id) {
                args.push(id.to_string());
            }
        }
    }
    let selected: Vec<&(&str, delprop_bench::experiments::Runner)> = if args.is_empty() {
        all.iter().collect()
    } else {
        let picks: Vec<_> = all
            .iter()
            .filter(|(id, _)| args.iter().any(|a| a == id))
            .collect();
        if picks.is_empty() {
            eprintln!(
                "unknown experiment id(s) {:?}; known ids:\n  {}",
                args,
                all.iter()
                    .map(|(id, _)| *id)
                    .collect::<Vec<_>>()
                    .join("\n  ")
            );
            std::process::exit(2);
        }
        picks
    };
    for (i, (id, run)) in selected.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(72));
        }
        let start = std::time::Instant::now();
        let report = run();
        println!("{report}");
        println!("[{id} completed in {:.2}s]", start.elapsed().as_secs_f64());
    }
}
