//! Out-of-core scale proof (`CI scale-1M`): stream a DPF1 flat instance
//! with ≥ 10⁶ incidence rows to disk, map it back, union-find the
//! components, and solve every component through the same deterministic
//! chain the sharded portfolio runs — all without ever materializing
//! the whole instance in resident memory. The peak RSS (VmHWM from
//! `/proc/self/status`) is asserted against a ceiling, so a regression
//! that buffers the instance (or leaks per-component IRs) fails the
//! nightly job even when wall clock looks fine.
//!
//! Knobs (env):
//! - `SCALE_TUPLES`   — total incidence rows to generate (default 1 000 000)
//! - `SCALE_RSS_MB`   — VmHWM ceiling in MiB (default 1536)
//! - `SCALE_KEEP`     — set to keep the generated flat file

use delprop_core::ir::CompiledInstance;
use delprop_core::runtime::Budget;
use delprop_core::shard::{solve_component, UnionFind};
use delprop_core::solvers::local_search::Objective;
use delprop_relation::{RelationId, TupleId};
use delprop_workload::flat::{self, FlatReader};
use std::time::Instant;

/// Read a `VmRSS`/`VmHWM`-style line of `/proc/self/status`, in KiB.
/// Returns 0 when the field (or the file) is unavailable, so the
/// assertion degrades to a no-op off Linux instead of a false failure.
fn proc_status_kib(field: &str) -> u64 {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let rest = rest.trim_start_matches(':').trim();
            if let Some(kib) = rest.split_whitespace().next() {
                return kib.parse().unwrap_or(0);
            }
        }
    }
    0
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let total_rows = env_usize("SCALE_TUPLES", 1_000_000);
    let rss_ceiling_mib = env_usize("SCALE_RSS_MB", 1536) as u64;

    // Component sizing: fixed-size components so the total solve time
    // scales linearly with the row count (the per-component chain is
    // superlinear in component size — the scale axis here is *how many*
    // independent subproblems stream through, not how hard each one
    // is). Every row references `ROW_LEN` bases from its own component.
    const ROW_LEN: usize = 3;
    const ROWS_PER_COMPONENT: usize = 128;
    let components = total_rows.div_ceil(ROWS_PER_COMPONENT);
    let rows_per = ROWS_PER_COMPONENT;
    let demands_per = rows_per / 4;
    let vulnerable_per = rows_per - demands_per;
    let bases_per = rows_per.max(ROW_LEN + 1);

    let mut path = std::env::temp_dir();
    path.push(format!("delprop-scale1m-{}.dpf1", std::process::id()));

    let t = Instant::now();
    let num_bases = flat::write_disjoint(
        &path,
        components,
        bases_per,
        demands_per,
        vulnerable_per,
        ROW_LEN,
        7,
    )
    .expect("streaming the flat instance must succeed");
    let write_secs = t.elapsed().as_secs_f64();
    let file_mib =
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0) as f64 / (1024.0 * 1024.0);

    let t = Instant::now();
    let reader = FlatReader::open(&path).expect("flat instance must map back");
    let rows = reader.num_demands() + reader.num_vulnerable();
    assert_eq!(reader.num_bases() as u64, num_bases);
    assert!(
        rows >= total_rows,
        "generated {rows} rows, wanted >= {total_rows}"
    );

    // Pass 1: union-find the base ids row by row, remembering each
    // row's byte offset so pass 2 can jump straight back to it.
    let mut uf = UnionFind::new(reader.num_bases());
    let mut offsets: Vec<u64> = Vec::with_capacity(rows);
    for row in reader.rows() {
        offsets.push(row.offset as u64);
        let first = row.id(0) as u32;
        for id in row.iter().skip(1) {
            uf.union(first, id as u32);
        }
    }
    // Dense component ids keyed by each row's first base.
    let mut comp_of_root: Vec<u32> = vec![u32::MAX; reader.num_bases()];
    let mut row_comp: Vec<u32> = Vec::with_capacity(rows);
    let mut num_components = 0u32;
    for &off in &offsets {
        let root = uf.find(reader.row_at(off as usize).id(0) as u32) as usize;
        if comp_of_root[root] == u32::MAX {
            comp_of_root[root] = num_components;
            num_components += 1;
        }
        row_comp.push(comp_of_root[root]);
    }
    let mut rows_of: Vec<Vec<u32>> = vec![Vec::new(); num_components as usize];
    for (i, &c) in row_comp.iter().enumerate() {
        rows_of[c as usize].push(i as u32);
    }
    let partition_secs = t.elapsed().as_secs_f64();

    // Pass 2: synthesize + solve one component at a time. Peak RSS is
    // bounded by the largest single component, not the instance.
    let t = Instant::now();
    let budget = Budget::unlimited();
    let mut total_cost = 0.0;
    let mut degraded = 0usize;
    let mut solved = 0usize;
    for rows in &rows_of {
        let mut demands: Vec<(f64, Vec<TupleId>)> = Vec::new();
        let mut vulnerable: Vec<(f64, Vec<TupleId>)> = Vec::new();
        for &i in rows {
            let row = reader.row_at(offsets[i as usize] as usize);
            let ids: Vec<TupleId> = row
                .iter()
                .map(|id| TupleId::new(RelationId(0), id as usize))
                .collect();
            if row.vulnerable {
                vulnerable.push((row.weight, ids));
            } else {
                demands.push((1.0, ids));
            }
        }
        let ir = CompiledInstance::synthesize(&demands, &vulnerable);
        let out = solve_component(&ir, Objective::Standard, &budget)
            .expect("component chain must not fail under an unlimited budget");
        assert!(
            ir.is_feasible_bits(&ir.base_bits(&out.solution)),
            "per-component solution must eliminate every demand"
        );
        total_cost += out.cost;
        degraded += out.degraded as usize;
        solved += 1;
    }
    let solve_secs = t.elapsed().as_secs_f64();

    let rss_kib = proc_status_kib("VmRSS");
    let hwm_kib = proc_status_kib("VmHWM");
    if std::env::var("SCALE_KEEP").is_err() {
        let _ = std::fs::remove_file(&path);
    }

    println!("scale-1M: out-of-core component solve over a DPF1 flat instance");
    println!(
        "  rows          : {rows} ({} demands)",
        reader.num_demands()
    );
    println!("  bases         : {num_bases}");
    println!("  file          : {file_mib:.1} MiB (write {write_secs:.2}s)");
    println!("  components    : {num_components} (partition {partition_secs:.2}s)");
    println!(
        "  solved        : {solved} ({degraded} degraded), cost {total_cost:.1}, {solve_secs:.2}s"
    );
    println!(
        "  VmRSS / VmHWM : {:.1} / {:.1} MiB (ceiling {rss_ceiling_mib} MiB)",
        rss_kib as f64 / 1024.0,
        hwm_kib as f64 / 1024.0,
    );

    assert_eq!(
        num_components as usize, components,
        "value-disjoint generation must union-find back into its components"
    );
    assert_eq!(solved, components);
    assert_eq!(
        degraded, 0,
        "unlimited budget must not degrade any component"
    );
    if hwm_kib > 0 {
        assert!(
            hwm_kib <= rss_ceiling_mib * 1024,
            "peak RSS {:.1} MiB exceeds the {} MiB ceiling",
            hwm_kib as f64 / 1024.0,
            rss_ceiling_mib
        );
    }
    println!("scale-1M OK");
}
