//! The CI bench gate: compare fresh `artifacts/BENCH_*.json` against the
//! committed `baselines/` copies and fail on regression.
//!
//! ```text
//! cargo run -p delprop-bench --bin check                    # gate
//! cargo run -p delprop-bench --bin check -- --write-baseline # re-baseline
//! cargo run -p delprop-bench --bin check -- --tolerance-pct 50
//! ```
//!
//! Per-field policy (documented in CONTRIBUTING.md):
//!
//! - **skipped** — racing outcomes that legitimately vary with thread
//!   timing: `winner`, `racing_cost` (the cost of whichever member won
//!   the race — all members are verified-feasible, so this only varies
//!   between correct answers), `members_cancelled`, `members_run`,
//!   `reps`; plus `max_micros`, the floor-less single-slowest-request
//!   tail of the serve storms, and `racing_micros`/`speedup`, which on
//!   a 1-core CI container are a scheduler lottery (EX-PAR's in-run
//!   `>= 1.5x` assert enforces the racing claim instead);
//! - **wall clock** (`*_micros`, `*_secs`) — regression-only relative
//!   tolerance, default ±75% (`BENCH_GATE_TOLERANCE_PCT` or
//!   `--tolerance-pct` override): fresh may be *slower* by at most
//!   that much; getting faster never fails. 75% is sized for shared
//!   1–2-core CI containers, where host throttling can shift an
//!   entire run — min-of-reps included — by well over half; the
//!   regressions the gate exists to catch — an accidental blocking
//!   sleep, a lost wakeup, an admission convoy, a hash set back in a
//!   hot loop — show up as 3–10x, not +75%;
//! - **`speedup` / `*_speedup`** — same tolerance, opposite direction
//!   (fresh may be lower by at most that much); the headline kernel
//!   geomean additionally has a hard `>= 2x` assert inside EX-KERN
//!   itself, so a collapse fails the harness before the gate runs;
//! - **`*_overhead_pct`** — absolute points, default +5
//!   (`BENCH_GATE_PCT_POINTS`): fresh may exceed baseline by at most
//!   that many percentage points;
//! - **everything else** (costs, instance measures, compile counts,
//!   `trace_events`) — hard equality; these are deterministic, and a
//!   change means solver behavior changed.

use delprop_bench::json::{self, Json};
use std::path::{Path, PathBuf};

/// The artifacts the gate diffs. `harness --smoke` regenerates exactly
/// these (see `experiments::smoke_ids`).
const GATED: &[&str] = &[
    "BENCH_parallel.json",
    "BENCH_obs.json",
    "BENCH_serve.json",
    "BENCH_kernels.json",
    "BENCH_incr.json",
    "BENCH_shard.json",
];

const SKIP: &[&str] = &[
    "winner",
    "racing_cost",
    "members_cancelled",
    "members_run",
    "reps",
    // The single slowest request of a storm: a pure tail statistic with
    // no floor even under min-of-reps. The gated percentiles (p50/p90/
    // p99) carry the regression signal.
    "max_micros",
    // Racing wall clock and the derived speedup: the portfolio spawns
    // one thread per member, so on a 1-core CI container these are a
    // scheduler lottery even under min-of-reps. The racing claim is
    // enforced by EX-PAR's own in-run `best_speedup >= 1.5x` assert;
    // the gate holds the CPU-bound `sequential_micros` and the exact
    // costs.
    "racing_micros",
    "speedup",
];

#[derive(Debug, Clone, Copy, PartialEq)]
enum Class {
    Skip,
    /// Higher fresh value is a regression (wall clock).
    SlowerIsWorse,
    /// Lower fresh value is a regression (speedup).
    LowerIsWorse,
    /// Absolute percentage-point ceiling (overhead percentages).
    PctPoints,
    Exact,
}

fn classify(key: &str) -> Class {
    if SKIP.contains(&key) {
        Class::Skip
    } else if key.ends_with("_overhead_pct") {
        Class::PctPoints
    } else if key.ends_with("_micros") || key.ends_with("_secs") {
        Class::SlowerIsWorse
    } else if key == "speedup" || key.ends_with("_speedup") {
        Class::LowerIsWorse
    } else {
        Class::Exact
    }
}

struct Gate {
    tolerance_pct: f64,
    pct_points: f64,
    failures: Vec<String>,
}

impl Gate {
    fn fail(&mut self, file: &str, row: usize, key: &str, msg: String) {
        self.failures.push(format!("{file} row {row} {key}: {msg}"));
    }

    fn compare_rows(&mut self, file: &str, row: usize, base: &Json, fresh: &Json) {
        let base_keys = base.keys();
        let fresh_keys = fresh.keys();
        if base_keys != fresh_keys {
            self.fail(
                file,
                row,
                "(schema)",
                format!("field sets differ: baseline {base_keys:?} vs fresh {fresh_keys:?}"),
            );
            return;
        }
        for key in base_keys {
            let (b, f) = (base.get(key).unwrap(), fresh.get(key).unwrap());
            match classify(key) {
                Class::Skip => {}
                Class::Exact => {
                    if b != f {
                        self.fail(
                            file,
                            row,
                            key,
                            format!(
                                "expected {}, got {} (deterministic field: hard equality)",
                                b.render().trim(),
                                f.render().trim()
                            ),
                        );
                    }
                }
                class => {
                    let (Some(bv), Some(fv)) = (b.as_num(), f.as_num()) else {
                        self.fail(file, row, key, format!("not numeric: {b:?} vs {f:?}"));
                        continue;
                    };
                    let pct = self.tolerance_pct;
                    let tol = pct / 100.0;
                    match class {
                        Class::SlowerIsWorse if bv > 1e-9 && fv > bv * (1.0 + tol) => {
                            self.fail(
                                file,
                                row,
                                key,
                                format!(
                                    "{fv} is {:+.1}% vs baseline {bv} (allowed +{:.0}%)",
                                    (fv / bv - 1.0) * 100.0,
                                    pct
                                ),
                            );
                        }
                        Class::LowerIsWorse if bv > 1e-9 && fv < bv * (1.0 - tol) => {
                            self.fail(
                                file,
                                row,
                                key,
                                format!(
                                    "{fv} is {:+.1}% vs baseline {bv} (allowed -{:.0}%)",
                                    (fv / bv - 1.0) * 100.0,
                                    pct
                                ),
                            );
                        }
                        // Overhead percentages can dip below zero when
                        // scheduler noise makes the instrumented run
                        // faster than the bare one; a negative baseline
                        // is noise, not a claim to hold, so measure the
                        // allowance from zero in that case.
                        Class::PctPoints if fv > bv.max(0.0) + self.pct_points => {
                            self.fail(
                                file,
                                row,
                                key,
                                format!(
                                    "{fv} exceeds baseline {} by more than {} points",
                                    bv.max(0.0),
                                    self.pct_points
                                ),
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    fn compare_files(&mut self, name: &str, base_path: &Path, fresh_path: &Path) {
        let load = |path: &Path| -> Result<Vec<Json>, String> {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            match json::parse(&text)? {
                Json::Arr(rows) => Ok(rows),
                other => Err(format!(
                    "{}: expected an array, got {other:?}",
                    path.display()
                )),
            }
        };
        let base = match load(base_path) {
            Ok(rows) => rows,
            Err(e) => return self.failures.push(e),
        };
        let fresh = match load(fresh_path) {
            Ok(rows) => rows,
            Err(e) => return self.failures.push(e),
        };
        if base.len() != fresh.len() {
            self.failures.push(format!(
                "{name}: row count differs: baseline {} vs fresh {}",
                base.len(),
                fresh.len()
            ));
            return;
        }
        for (i, (b, f)) in base.iter().zip(&fresh).enumerate() {
            self.compare_rows(name, i, b, f);
        }
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifacts = PathBuf::from("artifacts");
    let mut baselines = PathBuf::from("baselines");
    let mut tolerance_pct = env_f64("BENCH_GATE_TOLERANCE_PCT", 75.0);
    let pct_points = env_f64("BENCH_GATE_PCT_POINTS", 5.0);
    let mut write_baseline = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--write-baseline" => write_baseline = true,
            "--artifacts" => artifacts = it.next().expect("--artifacts DIR").into(),
            "--baselines" => baselines = it.next().expect("--baselines DIR").into(),
            "--tolerance-pct" => {
                tolerance_pct = it
                    .next()
                    .expect("--tolerance-pct N")
                    .parse()
                    .expect("tolerance must be a number")
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: check [--write-baseline] \
                     [--artifacts DIR] [--baselines DIR] [--tolerance-pct N]"
                );
                std::process::exit(2);
            }
        }
    }

    if write_baseline {
        std::fs::create_dir_all(&baselines).expect("create baselines dir");
        for name in GATED {
            let from = artifacts.join(name);
            let to = baselines.join(name);
            match std::fs::copy(&from, &to) {
                Ok(_) => println!("baselined {} -> {}", from.display(), to.display()),
                Err(e) => {
                    eprintln!(
                        "cannot baseline {}: {e} (run `harness --smoke` first)",
                        from.display()
                    );
                    std::process::exit(2);
                }
            }
        }
        return;
    }

    let mut gate = Gate {
        tolerance_pct,
        pct_points,
        failures: Vec::new(),
    };
    for name in GATED {
        gate.compare_files(name, &baselines.join(name), &artifacts.join(name));
    }
    if gate.failures.is_empty() {
        println!(
            "bench gate OK: {} files within ±{tolerance_pct}% wall clock, \
             +{pct_points} overhead points, exact costs",
            GATED.len()
        );
    } else {
        eprintln!("bench gate FAILED ({} problem(s)):", gate.failures.len());
        for f in &gate.failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "\nIf the change is intentional, regenerate baselines with\n  \
             cargo run -p delprop-bench --bin harness --release -- --smoke\n  \
             cargo run -p delprop-bench --bin check -- --write-baseline\n\
             and commit the updated baselines/ files (see CONTRIBUTING.md)."
        );
        std::process::exit(1);
    }
}
