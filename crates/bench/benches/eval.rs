//! EX-EVAL: query-engine substrate microbenches — hash-join vs the naive
//! oracle on chain joins, and view materialization with provenance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delprop_query::eval::{hashjoin, naive, CompiledQuery};
use delprop_query::{parse_query, View};
use delprop_relation::{tup, Database, RelationSchema, Schema};

fn chain_db(n: i64) -> Database {
    let schema = Schema::from_relations([
        RelationSchema::new("A", 2, vec![0]).unwrap(),
        RelationSchema::new("B", 2, vec![0]).unwrap(),
        RelationSchema::new("C", 2, vec![0]).unwrap(),
    ])
    .unwrap();
    let mut d = Database::new(schema);
    for i in 0..n {
        d.insert("A", tup![i, i % 50]).unwrap();
        d.insert("B", tup![i, i % 20]).unwrap();
        d.insert("C", tup![i, i % 10]).unwrap();
    }
    d
}

fn bench_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval");
    for n in [100i64, 400] {
        let db = chain_db(n);
        let q = parse_query("Q(x, y, z, w) :- A(x, y), B(y, z), C(z, w)")
            .unwrap()
            .bind(db.schema())
            .unwrap();
        let compiled = CompiledQuery::compile(&q);
        group.bench_with_input(
            BenchmarkId::new("hashjoin", n),
            &(&db, &compiled),
            |b, (db, cq)| b.iter(|| hashjoin::evaluate(db, cq)),
        );
        if n <= 100 {
            group.bench_with_input(
                BenchmarkId::new("naive", n),
                &(&db, &compiled),
                |b, (db, cq)| b.iter(|| naive::evaluate(db, cq)),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("materialize", n),
            &(&db, &q),
            |b, (db, q)| b.iter(|| View::materialize(db, q).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
