//! EX-T1 (runtime side): the Theorem 1 gadget construction and the
//! Claim 1 reduction of a deletion-propagation instance to Red-Blue Set
//! Cover. Both are claimed (and must stay) linear-ish in instance size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delprop_core::reduction;
use delprop_workload::redblue_gen::{self, RedBlueParams};
use delprop_workload::{gadget, random_db};

fn bench_gadget_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("gadget_build");
    for ns in [8usize, 16, 32] {
        let inst = redblue_gen::redblue(
            RedBlueParams {
                num_red: ns,
                num_blue: ns / 2,
                num_sets: ns,
                ..Default::default()
            },
            7,
        );
        group.bench_with_input(BenchmarkId::from_parameter(ns), &inst, |b, inst| {
            b.iter(|| gadget::redblue_to_vse(inst))
        });
    }
    group.finish();
}

fn bench_vse_to_redblue(c: &mut Criterion) {
    let mut group = c.benchmark_group("vse_to_redblue");
    for tuples in [10usize, 30, 60] {
        let p = random_db::generate(
            random_db::RandomDbParams {
                tuples_per_relation: tuples,
                domain: tuples,
                ..Default::default()
            },
            3,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}v", p.norm_v())),
            &p,
            |b, p| b.iter(|| reduction::to_redblue(p)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gadget_build, bench_vse_to_redblue);
criterion_main!(benches);
