//! Solver microbenches backing EX-C1, EX-T3, EX-P1, EX-T4 and EX-DP:
//! the general approximation, the primal-dual algorithm (with its
//! Proposition 1 scaling series), the τ-sweeping tree algorithm, the
//! pivot-forest DP, and the LP machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delprop_core::solvers::{dp_tree, general, lowdeg_tree, lp_round, primal_dual};
use delprop_workload::{forest, random_db};

fn bench_general(c: &mut Criterion) {
    let mut group = c.benchmark_group("general_approx");
    for m in [2usize, 4] {
        let p = random_db::generate(
            random_db::RandomDbParams {
                num_queries: m,
                ..Default::default()
            },
            11,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}q_{}v", p.norm_v())),
            &p,
            |b, p| b.iter(|| general::solve(p.compiled()).unwrap()),
        );
    }
    group.finish();
}

fn bench_primal_dual_scaling(c: &mut Criterion) {
    // EX-P1: ‖V‖ scaling series at fixed shape.
    let mut group = c.benchmark_group("primal_dual_scaling");
    for chains in [64usize, 256, 1024] {
        let p = forest::generate(
            forest::ForestParams {
                levels: 4,
                window: 2,
                chains,
                delete_fraction: 0.2,
                weighted: false,
            },
            7,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}v", p.norm_v())),
            &p,
            |b, p| b.iter(|| primal_dual::solve_default(p.compiled()).unwrap()),
        );
    }
    group.finish();
}

fn bench_lowdeg_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowdeg_tree");
    group.sample_size(20);
    for chains in [8usize, 16] {
        let p = forest::generate(
            forest::ForestParams {
                levels: 4,
                window: 2,
                chains,
                delete_fraction: 0.3,
                weighted: false,
            },
            5,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}v", p.norm_v())),
            &p,
            |b, p| b.iter(|| lowdeg_tree::solve(p.compiled()).unwrap()),
        );
    }
    group.finish();
}

fn bench_dp_tree(c: &mut Criterion) {
    // EX-DP runtime side: the DP is near-linear; sizes can grow freely.
    let mut group = c.benchmark_group("dp_tree");
    for branches in [16usize, 64, 256] {
        let blue: Vec<usize> = (0..branches).step_by(2).collect();
        let p = forest::pivot_broom(branches, 3, &blue);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}v", p.norm_v())),
            &p,
            |b, p| b.iter(|| dp_tree::solve(p.compiled()).unwrap()),
        );
    }
    group.finish();
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_lower_bound");
    group.sample_size(20);
    for tuples in [10usize, 20] {
        let p = random_db::generate(
            random_db::RandomDbParams {
                tuples_per_relation: tuples,
                ..Default::default()
            },
            13,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}v", p.norm_v())),
            &p,
            |b, p| b.iter(|| lp_round::lower_bound(p.compiled())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_general,
    bench_primal_dual_scaling,
    bench_lowdeg_tree,
    bench_dp_tree,
    bench_lp
);
criterion_main!(benches);
