//! EX-SC: set-cover substrate microbenches — exact branch-and-bound vs
//! greedy vs the low-degree algorithm on random Red-Blue instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delprop_setcover::exact::ExactConfig;
use delprop_setcover::{exact, greedy, lowdeg};
use delprop_workload::redblue_gen::{self, RedBlueParams};

fn bench_setcover(c: &mut Criterion) {
    let mut group = c.benchmark_group("setcover");
    for (nr, nb, ns) in [(8usize, 6usize, 10usize), (12, 8, 16), (16, 10, 22)] {
        let inst = redblue_gen::redblue(
            RedBlueParams {
                num_red: nr,
                num_blue: nb,
                num_sets: ns,
                ..Default::default()
            },
            42,
        );
        let label = format!("{nr}r{nb}b{ns}s");
        group.bench_with_input(BenchmarkId::new("greedy", &label), &inst, |b, inst| {
            b.iter(|| greedy::cover(inst))
        });
        group.bench_with_input(BenchmarkId::new("lowdeg", &label), &inst, |b, inst| {
            b.iter(|| lowdeg::solve(inst))
        });
        if ns <= 16 {
            group.bench_with_input(BenchmarkId::new("exact", &label), &inst, |b, inst| {
                b.iter(|| exact::solve(inst, ExactConfig::default()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_setcover);
criterion_main!(benches);
