//! Microbenches for the extension modules: incremental maintenance vs
//! re-materialization, the Yannakakis engine, the source-side-effect
//! solver, and the local-search polish.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use delprop_core::solvers::{general, local_search, source};
use delprop_query::eval::{hashjoin, yannakakis, CompiledQuery};
use delprop_query::{parse_query, DeletionDelta, ViewSet};
use delprop_relation::{tup, Database, RelationSchema, Schema, TupleId};
use delprop_workload::{forest, random_db};

fn chain_db(n: i64) -> Database {
    let schema = Schema::from_relations([
        RelationSchema::new("A", 2, vec![0]).unwrap(),
        RelationSchema::new("B", 2, vec![0]).unwrap(),
        RelationSchema::new("C", 2, vec![0]).unwrap(),
    ])
    .unwrap();
    let mut d = Database::new(schema);
    for i in 0..n {
        d.insert("A", tup![i, i % 50]).unwrap();
        d.insert("B", tup![i, i % 20]).unwrap();
        d.insert("C", tup![i, i % 10]).unwrap();
    }
    d
}

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance");
    for n in [200i64, 800] {
        let db = chain_db(n);
        let q = parse_query("Q(x, y, z, w) :- A(x, y), B(y, z), C(z, w)")
            .unwrap()
            .bind(db.schema())
            .unwrap();
        let vs = ViewSet::materialize(&db, std::slice::from_ref(&q)).unwrap();
        let victims: Vec<TupleId> = db.live_ids().step_by(37).collect();
        group.bench_with_input(
            BenchmarkId::new("delta", n),
            &(&vs, &victims),
            |b, (vs, victims)| b.iter(|| DeletionDelta::compute(vs, victims)),
        );
        group.bench_with_input(
            BenchmarkId::new("rematerialize", n),
            &(&db, &q, &victims),
            |b, (db, q, victims)| {
                b.iter(|| {
                    let mut d = (*db).clone();
                    d.delete_all(victims);
                    ViewSet::materialize(&d, std::slice::from_ref(*q)).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_yannakakis(c: &mut Criterion) {
    let mut group = c.benchmark_group("yannakakis");
    for n in [200i64, 800] {
        let db = chain_db(n);
        let q = parse_query("Q(x, y, z, w) :- A(x, y), B(y, z), C(z, w)")
            .unwrap()
            .bind(db.schema())
            .unwrap();
        let compiled = CompiledQuery::compile(&q);
        group.bench_with_input(
            BenchmarkId::new("yannakakis", n),
            &(&db, &compiled),
            |b, (db, cq)| b.iter(|| yannakakis::evaluate(db, cq).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("hashjoin", n),
            &(&db, &compiled),
            |b, (db, cq)| b.iter(|| hashjoin::evaluate(db, cq)),
        );
    }
    group.finish();
}

fn bench_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("source_side_effect");
    let p = random_db::generate(
        random_db::RandomDbParams {
            num_queries: 3,
            ..Default::default()
        },
        7,
    );
    group.bench_function("exact", |b| b.iter(|| source::solve(p.compiled())));
    group.bench_function("greedy", |b| b.iter(|| source::solve_greedy(p.compiled())));
    group.finish();
}

fn bench_local_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_search");
    group.sample_size(20);
    let p = forest::generate(
        forest::ForestParams {
            levels: 4,
            window: 2,
            chains: 12,
            delete_fraction: 0.3,
            weighted: true,
        },
        5,
    );
    let start = general::solve(p.compiled()).unwrap();
    group.bench_function("polish", |b| {
        b.iter(|| local_search::improve(p.compiled(), &start, Default::default()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_maintenance,
    bench_yannakakis,
    bench_source,
    bench_local_search
);
criterion_main!(benches);
