//! # delprop-query — conjunctive-query substrate
//!
//! Datalog-style conjunctive queries (§II.B of the paper), their analysis,
//! evaluation, and materialization into views with witness provenance:
//!
//! - [`ConjunctiveQuery`] / [`BoundQuery`]: AST and schema binding;
//! - [`parse_query`] / [`parse_program`]: the text syntax
//!   (`Q(x, z) :- T1(x, y), T2(y, z, w)`);
//! - [`properties`]: project-free / self-join-free / key-preserving
//!   classification and the paper's `l = max arity(Q)`;
//! - [`eval`]: a naive oracle and a hash-join engine, both producing
//!   matches with witness lists;
//! - [`View`] / [`ViewSet`]: materialized results with per-view-tuple
//!   witness sets and an inverted base-tuple → view-tuple index. For
//!   key-preserving queries the witness set is provably unique, which is
//!   the structural fact all deletion-propagation solvers build on.

mod ast;
pub mod containment;
mod error;
pub mod eval;
mod maintain;
mod parse;
pub mod properties;
mod view;

pub use ast::{Atom, BoundAtom, BoundQuery, ConjunctiveQuery, Term};
pub use error::QueryError;
pub use maintain::{DeletionDelta, MaintainedViews};
pub use parse::{parse_atom, parse_program, parse_query};
pub use view::{View, ViewSet, ViewTuple, ViewTupleId};
