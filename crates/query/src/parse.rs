//! A small text syntax for conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query  :=  NAME '(' terms ')' ':-' atom (',' atom)*
//! atom   :=  NAME '(' terms ')'
//! terms  :=  term (',' term)*
//! term   :=  IDENT            // variable
//!          | INT              // integer constant
//!          | '\'' chars '\''  // string constant
//!          | '"' chars '"'    // string constant
//! ```
//!
//! Bare identifiers are **variables**; constants must be quoted or numeric.
//! This matches how the paper writes queries, e.g.
//! `Q3(x, z) :- T1(x, y), T2(y, z, w)`.

use crate::ast::{Atom, ConjunctiveQuery, Term};
use crate::error::QueryError;
use delprop_relation::Value;

/// Parse one conjunctive query from text.
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery, QueryError> {
    Parser::new(input).query()
}

/// Parse one atom, e.g. `T1('John', 'TKDE')` or `T2(x, 'XML', w)`.
/// Used by fact-file formats on top of this crate.
pub fn parse_atom(input: &str) -> Result<Atom, QueryError> {
    let mut p = Parser::new(input);
    let atom = p.atom()?;
    p.skip_ws();
    if !p.rest.is_empty() {
        return Err(p.err(format!("trailing input {:?}", p.rest)));
    }
    Ok(atom)
}

/// Parse a whole program: one query per non-empty, non-`%`-comment line.
pub fn parse_program(input: &str) -> Result<Vec<ConjunctiveQuery>, QueryError> {
    input
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('%'))
        .map(parse_query)
        .collect()
}

struct Parser<'a> {
    input: &'a str,
    rest: &'a str,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, rest: input }
    }

    fn err(&self, reason: impl Into<String>) -> QueryError {
        QueryError::Parse {
            input: self.input.to_string(),
            reason: reason.into(),
        }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn eat(&mut self, token: &str) -> Result<(), QueryError> {
        self.skip_ws();
        if let Some(r) = self.rest.strip_prefix(token) {
            self.rest = r;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {token:?} at {:?}",
                &self.rest[..self.rest.len().min(20)]
            )))
        }
    }

    fn peek(&mut self, token: &str) -> bool {
        self.skip_ws();
        self.rest.starts_with(token)
    }

    fn ident(&mut self) -> Result<String, QueryError> {
        self.skip_ws();
        let mut chars = self.rest.char_indices();
        match chars.next() {
            Some((_, c)) if c.is_ascii_alphabetic() || c == '_' => {}
            _ => return Err(self.err("expected identifier")),
        }
        let end = self
            .rest
            .char_indices()
            .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_' || c == '\u{2032}'))
            .map(|(i, _)| i)
            .unwrap_or(self.rest.len());
        let (id, r) = self.rest.split_at(end);
        self.rest = r;
        Ok(id.to_string())
    }

    fn term(&mut self) -> Result<Term, QueryError> {
        self.skip_ws();
        let first = self
            .rest
            .chars()
            .next()
            .ok_or_else(|| self.err("expected term"))?;
        match first {
            '\'' | '"' => {
                let quote = first;
                let body = &self.rest[1..];
                let end = body
                    .find(quote)
                    .ok_or_else(|| self.err("unterminated string constant"))?;
                let s = &body[..end];
                self.rest = &body[end + 1..];
                Ok(Term::Const(Value::str(s)))
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start_neg = c == '-';
                let digits_from = usize::from(start_neg);
                let end = self.rest[digits_from..]
                    .char_indices()
                    .find(|&(_, c)| !c.is_ascii_digit())
                    .map(|(i, _)| i + digits_from)
                    .unwrap_or(self.rest.len());
                if end == digits_from {
                    return Err(self.err("expected digits after '-'"));
                }
                let (num, r) = self.rest.split_at(end);
                let v: i64 = num
                    .parse()
                    .map_err(|_| self.err(format!("bad integer {num:?}")))?;
                self.rest = r;
                Ok(Term::Const(Value::int(v)))
            }
            _ => Ok(Term::Var(self.ident()?)),
        }
    }

    fn term_list(&mut self) -> Result<Vec<Term>, QueryError> {
        self.eat("(")?;
        let mut terms = vec![self.term()?];
        while self.peek(",") {
            self.eat(",")?;
            terms.push(self.term()?);
        }
        self.eat(")")?;
        Ok(terms)
    }

    fn atom(&mut self) -> Result<Atom, QueryError> {
        let name = self.ident()?;
        let terms = self.term_list()?;
        Ok(Atom::new(name, terms))
    }

    fn query(&mut self) -> Result<ConjunctiveQuery, QueryError> {
        let name = self.ident()?;
        let head = self.term_list()?;
        self.eat(":-")?;
        let mut body = vec![self.atom()?];
        while self.peek(",") {
            self.eat(",")?;
            body.push(self.atom()?);
        }
        self.skip_ws();
        if !self.rest.is_empty() {
            return Err(self.err(format!("trailing input {:?}", self.rest)));
        }
        Ok(ConjunctiveQuery::new(name, head, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_q3() {
        let q = parse_query("Q3(x, z) :- T1(x, y), T2(y, z, w)").unwrap();
        assert_eq!(q.name, "Q3");
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.body.len(), 2);
        assert_eq!(q.to_string(), "Q3(x, z) :- T1(x, y), T2(y, z, w)");
    }

    #[test]
    fn parses_constants() {
        let q = parse_query(r#"Q(x) :- T(x, 'XML', 30, -2, "quoted")"#).unwrap();
        let a = &q.body[0];
        assert_eq!(a.terms[1], Term::constant("XML"));
        assert_eq!(a.terms[2], Term::constant(30));
        assert_eq!(a.terms[3], Term::constant(-2));
        assert_eq!(a.terms[4], Term::constant("quoted"));
    }

    #[test]
    fn parses_without_spaces() {
        let q = parse_query("Q(x):-T(x,y)").unwrap();
        assert_eq!(q.body[0].terms.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("Q(x)").is_err()); // missing body
        assert!(parse_query("Q(x) :- T(x").is_err()); // unbalanced
        assert!(parse_query("Q(x) :- T(x) extra").is_err()); // trailing
        assert!(parse_query("(x) :- T(x)").is_err()); // missing name
        assert!(parse_query("Q(x) :- T('oops)").is_err()); // unterminated
        assert!(parse_query("Q(x) :- T(-)").is_err()); // dash w/o digits
    }

    #[test]
    fn program_skips_comments_and_blanks() {
        let qs = parse_program("% two queries\nQ1(x) :- T(x, y)\n\nQ2(y) :- T(x, y)\n").unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[1].name, "Q2");
    }

    #[test]
    fn roundtrip_display_parse() {
        let src = "Q1(y1, y2, w) :- T1(x, y1, z), T2(x, y2, w)";
        let q = parse_query(src).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}
