//! Conjunctive-query containment and equivalence via the classical
//! Chandra–Merlin homomorphism theorem (the paper's reference \[9\]).
//!
//! `Q1 ⊑ Q2` (every database gives `Q1(D) ⊆ Q2(D)`) iff there is a
//! **containment mapping** `h : Var(Q2) → Var(Q1) ∪ Const` such that
//! every atom of `Q2` maps into an atom of `Q1` and `h` maps `Q2`'s head
//! to `Q1`'s head. Deciding this is NP-complete in query size, which is
//! irrelevant at the 2–6-atom sizes of this domain.
//!
//! Why it lives here: multi-query deletion-propagation inputs often carry
//! redundant views (duplicated or subsumed queries inflate `‖V‖`, and
//! with it the bounds `2√(l·‖V‖·log‖ΔV‖)` and `2√‖V‖`). [`equivalent`]
//! lets a workload be de-duplicated *semantically* before solving.

use crate::ast::{BoundQuery, Term};
use delprop_relation::Value;
use std::collections::HashMap;

/// A homomorphism target: variables map to variables or constants.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Image {
    Var(String),
    Const(Value),
}

impl Image {
    fn of(term: &Term) -> Image {
        match term {
            Term::Var(v) => Image::Var(v.clone()),
            Term::Const(c) => Image::Const(c.clone()),
        }
    }
}

/// Whether `sub ⊑ sup`: every answer of `sub` is an answer of `sup` on
/// every database. Requires equal head arity (otherwise trivially false).
pub fn contained_in(sub: &BoundQuery, sup: &BoundQuery) -> bool {
    if sub.head.len() != sup.head.len() {
        return false;
    }
    // Seed the mapping with the head constraint h(sup.head[i]) = sub.head[i].
    let mut mapping: HashMap<String, Image> = HashMap::new();
    for (sv, tv) in sup.head.iter().zip(sub.head.iter()) {
        let img = Image::Var(tv.clone());
        match mapping.get(sv) {
            Some(existing) if existing != &img => return false,
            _ => {
                mapping.insert(sv.clone(), img);
            }
        }
    }
    search(sup, sub, 0, mapping)
}

/// Backtracking over `sup`'s atoms: each must map into some atom of `sub`
/// over the same relation, consistently extending the variable mapping.
fn search(
    sup: &BoundQuery,
    sub: &BoundQuery,
    atom_idx: usize,
    mapping: HashMap<String, Image>,
) -> bool {
    let Some(atom) = sup.atoms.get(atom_idx) else {
        return true;
    };
    for target in sub.atoms.iter().filter(|t| t.relation == atom.relation) {
        let mut extended = mapping.clone();
        let mut ok = true;
        for (s_term, t_term) in atom.terms.iter().zip(target.terms.iter()) {
            match s_term {
                Term::Const(c) => {
                    // Constants must match constants exactly.
                    if !matches!(t_term, Term::Const(tc) if tc == c) {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => {
                    let img = Image::of(t_term);
                    match extended.get(v) {
                        Some(existing) if existing != &img => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            extended.insert(v.clone(), img);
                        }
                    }
                }
            }
        }
        if ok && search(sup, sub, atom_idx + 1, extended) {
            return true;
        }
    }
    false
}

/// Whether two queries are semantically equivalent (mutual containment).
pub fn equivalent(a: &BoundQuery, b: &BoundQuery) -> bool {
    contained_in(a, b) && contained_in(b, a)
}

/// Partition a query set into equivalence classes; returns, per input
/// query, the index of its class representative (the first equivalent
/// query). Useful for de-duplicating multi-query workloads before
/// solving.
pub fn deduplicate(queries: &[BoundQuery]) -> Vec<usize> {
    let mut representative: Vec<usize> = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let rep = (0..i)
            .find(|&j| representative[j] == j && equivalent(q, &queries[j]))
            .unwrap_or(i);
        representative.push(rep);
    }
    representative
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use delprop_relation::{RelationSchema, Schema};

    fn schema() -> Schema {
        Schema::from_relations([
            RelationSchema::new("R", 2, vec![0]).unwrap(),
            RelationSchema::new("S", 2, vec![0]).unwrap(),
        ])
        .unwrap()
    }

    fn bind(src: &str) -> BoundQuery {
        parse_query(src).unwrap().bind(&schema()).unwrap()
    }

    #[test]
    fn renamed_variables_are_equivalent() {
        let a = bind("Q(x, z) :- R(x, y), S(y, z)");
        let b = bind("P(u, w) :- R(u, v), S(v, w)");
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn redundant_atom_is_contained_both_ways() {
        // Adding a duplicate-up-to-renaming atom does not change meaning.
        let small = bind("Q(x, z) :- R(x, y), S(y, z)");
        let big = bind("Q(x, z) :- R(x, y), S(y, z), R(x, y2)");
        assert!(equivalent(&small, &big));
    }

    #[test]
    fn strictly_more_constrained_is_one_way() {
        let general = bind("Q(x) :- R(x, y)");
        let specific = bind("Q(x) :- R(x, 1)");
        assert!(contained_in(&specific, &general));
        assert!(!contained_in(&general, &specific));
    }

    #[test]
    fn join_is_contained_in_projection_of_one_atom() {
        let join = bind("Q(x) :- R(x, y), S(y, z)");
        let single = bind("Q(x) :- R(x, y)");
        assert!(contained_in(&join, &single));
        assert!(!contained_in(&single, &join));
    }

    #[test]
    fn head_order_matters() {
        let a = bind("Q(x, y) :- R(x, y)");
        let b = bind("Q(y, x) :- R(x, y)");
        assert!(!contained_in(&a, &b));
        assert!(!equivalent(&a, &b));
    }

    #[test]
    fn different_relations_are_incomparable() {
        let a = bind("Q(x, y) :- R(x, y)");
        let b = bind("Q(x, y) :- S(x, y)");
        assert!(!contained_in(&a, &b));
        assert!(!contained_in(&b, &a));
    }

    #[test]
    fn arity_mismatch_is_never_contained() {
        let a = bind("Q(x) :- R(x, y)");
        let b = bind("Q(x, y) :- R(x, y)");
        assert!(!contained_in(&a, &b));
    }

    #[test]
    fn self_join_collapse() {
        // R(x,y), R(y,y): contained in R(x,y) but not vice versa.
        let tight = bind("Q(x, y) :- R(x, y), R(y, y)");
        let loose = bind("Q(x, y) :- R(x, y)");
        assert!(contained_in(&tight, &loose));
        assert!(!contained_in(&loose, &tight));
    }

    #[test]
    fn deduplicate_groups_equivalent_queries() {
        let qs = vec![
            bind("Q0(x, z) :- R(x, y), S(y, z)"),
            bind("Q1(a, c) :- R(a, b), S(b, c)"), // ≡ Q0
            bind("Q2(x) :- R(x, y)"),
            bind("Q3(x, z) :- R(x, y), S(y, z), R(x, y2)"), // ≡ Q0
        ];
        assert_eq!(deduplicate(&qs), vec![0, 0, 2, 0]);
    }

    #[test]
    fn constants_must_agree() {
        let one = bind("Q(x) :- R(x, 1)");
        let two = bind("Q(x) :- R(x, 2)");
        assert!(!contained_in(&one, &two));
        assert!(!contained_in(&two, &one));
        assert!(equivalent(&one, &one.clone()));
    }
}
