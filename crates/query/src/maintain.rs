//! Incremental view maintenance under deletions.
//!
//! Deletion propagation explores many candidate `ΔD`s; re-materializing
//! every view per candidate is O(query evaluation) each time. For
//! key-preserving views the occurrence index makes maintenance exact and
//! cheap: a view tuple dies iff its (unique) witness set intersects the
//! deleted set, and the inverted index already maps base tuples to the
//! view tuples containing them. [`DeletionDelta`] computes the affected
//! set in time proportional to the damage, not the view size, and
//! [`MaintainedViews`] keeps a live/dead mask across a *sequence* of
//! deletions with O(1) amortized updates — the building block a cleaning
//! loop (apply feedback, inspect, apply more) needs.

use crate::view::{ViewSet, ViewTupleId};
use delprop_relation::TupleId;
use std::collections::HashSet;

/// The effect of deleting a batch of base tuples from materialized views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeletionDelta {
    /// View tuples eliminated by the batch, sorted and deduplicated.
    pub eliminated: Vec<ViewTupleId>,
}

impl DeletionDelta {
    /// Compute the delta of deleting `tuples` against `views`.
    ///
    /// For key-preserving views this is exact. For general views a tuple
    /// is reported eliminated only when **all** of its witness sets are
    /// hit (the same rule as [`crate::view::ViewTuple::survives`]).
    pub fn compute(views: &ViewSet, tuples: &[TupleId]) -> DeletionDelta {
        let deleted: HashSet<TupleId> = tuples.iter().copied().collect();
        let mut touched: Vec<ViewTupleId> = tuples
            .iter()
            .flat_map(|&t| views.occurrences(t).iter().copied())
            .collect();
        touched.sort_unstable();
        touched.dedup();
        let eliminated = touched
            .into_iter()
            .filter(|&id| !views.tuple(id).survives(&deleted))
            .collect();
        DeletionDelta { eliminated }
    }
}

/// Materialized views plus a liveness mask maintained across incremental
/// deletions.
#[derive(Debug, Clone)]
pub struct MaintainedViews<'a> {
    views: &'a ViewSet,
    deleted: HashSet<TupleId>,
    dead: HashSet<ViewTupleId>,
}

impl<'a> MaintainedViews<'a> {
    /// Start maintenance over freshly materialized views.
    pub fn new(views: &'a ViewSet) -> Self {
        MaintainedViews {
            views,
            deleted: HashSet::new(),
            dead: HashSet::new(),
        }
    }

    /// The underlying views.
    pub fn views(&self) -> &ViewSet {
        self.views
    }

    /// Apply one more batch of base-tuple deletions; returns the view
    /// tuples that died **in this batch** (already-dead ones are not
    /// repeated).
    pub fn delete(&mut self, tuples: &[TupleId]) -> Vec<ViewTupleId> {
        self.deleted.extend(tuples.iter().copied());
        let mut touched: Vec<ViewTupleId> = tuples
            .iter()
            .flat_map(|&t| self.views.occurrences(t).iter().copied())
            .collect();
        touched.sort_unstable();
        touched.dedup();
        let mut newly_dead = Vec::new();
        for id in touched {
            if !self.dead.contains(&id) && !self.views.tuple(id).survives(&self.deleted) {
                self.dead.insert(id);
                newly_dead.push(id);
            }
        }
        newly_dead
    }

    /// Whether a view tuple is still live.
    pub fn is_live(&self, id: ViewTupleId) -> bool {
        !self.dead.contains(&id)
    }

    /// Number of live view tuples.
    pub fn live_count(&self) -> usize {
        self.views.total_tuples() - self.dead.len()
    }

    /// All base tuples deleted so far.
    pub fn deleted_tuples(&self) -> &HashSet<TupleId> {
        &self.deleted
    }

    /// Iterate the surviving view tuples.
    pub fn live(&self) -> impl Iterator<Item = ViewTupleId> + '_ {
        self.views
            .iter()
            .map(|(id, _)| id)
            .filter(move |id| !self.dead.contains(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use crate::view::ViewSet;
    use delprop_relation::{tup, Database, RelationSchema, Schema, Value};

    fn fig1() -> (Database, ViewSet) {
        let schema = Schema::from_relations([
            RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
            RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
        ])
        .unwrap();
        let mut d = Database::new(schema);
        for t in [
            tup!["Joe", "TKDE"],
            tup!["John", "TKDE"],
            tup!["Tom", "TKDE"],
            tup!["John", "TODS"],
        ] {
            d.insert("T1", t).unwrap();
        }
        for t in [
            tup!["TKDE", "XML", 30],
            tup!["TKDE", "CUBE", 30],
            tup!["TODS", "XML", 30],
        ] {
            d.insert("T2", t).unwrap();
        }
        let q4 = parse_query("Q4(x, y, z) :- T1(x, y), T2(y, z, w)")
            .unwrap()
            .bind(d.schema())
            .unwrap();
        let q3 = parse_query("Q3(x, z) :- T1(x, y), T2(y, z, w)")
            .unwrap()
            .bind(d.schema())
            .unwrap();
        let vs = ViewSet::materialize(&d, &[q4, q3]).unwrap();
        (d, vs)
    }

    fn tid(db: &Database, rel: &str, key: &[Value]) -> TupleId {
        let r = db.schema().relation_id(rel).unwrap();
        db.find_by_key(r, key).unwrap()
    }

    #[test]
    fn delta_matches_full_rematerialization() {
        let (mut db, vs) = fig1();
        let victim = tid(&db, "T1", &[Value::str("John"), Value::str("TKDE")]);
        let delta = DeletionDelta::compute(&vs, &[victim]);

        db.delete(victim);
        let reeval =
            ViewSet::materialize(&db, &[vs.views[0].query.clone(), vs.views[1].query.clone()])
                .unwrap();
        // Predicted dead = tuples present before, absent after.
        let mut expected = Vec::new();
        for (vi, view) in vs.views.iter().enumerate() {
            for (ti, vt) in view.tuples.iter().enumerate() {
                if reeval.views[vi].position_of(&vt.head).is_none() {
                    expected.push(ViewTupleId::new(vi, ti));
                }
            }
        }
        assert_eq!(delta.eliminated, expected);
    }

    #[test]
    fn multi_witness_tuples_need_all_witnesses_cut() {
        let (db, vs) = fig1();
        // Q3's (John, XML) has witnesses via TKDE and TODS; deleting one
        // T1 row does not kill it.
        let john_tkde = tid(&db, "T1", &[Value::str("John"), Value::str("TKDE")]);
        let john_tods = tid(&db, "T1", &[Value::str("John"), Value::str("TODS")]);
        let q3_john_xml = {
            let idx = vs.views[1].position_of(&tup!["John", "XML"]).unwrap();
            ViewTupleId::new(1, idx)
        };
        let d1 = DeletionDelta::compute(&vs, &[john_tkde]);
        assert!(!d1.eliminated.contains(&q3_john_xml));
        let d2 = DeletionDelta::compute(&vs, &[john_tkde, john_tods]);
        assert!(d2.eliminated.contains(&q3_john_xml));
    }

    #[test]
    fn maintained_views_report_incremental_deaths_once() {
        let (db, vs) = fig1();
        let mut m = MaintainedViews::new(&vs);
        let before = m.live_count();
        let john_tkde = tid(&db, "T1", &[Value::str("John"), Value::str("TKDE")]);
        let first = m.delete(&[john_tkde]);
        assert!(!first.is_empty());
        assert_eq!(m.live_count(), before - first.len());
        // Deleting the same tuple again kills nothing new.
        let again = m.delete(&[john_tkde]);
        assert!(again.is_empty());
        // A second batch only reports additional deaths.
        let tkde_xml = tid(&db, "T2", &[Value::str("TKDE"), Value::str("XML")]);
        let second = m.delete(&[tkde_xml]);
        for id in &second {
            assert!(!first.contains(id));
        }
        assert_eq!(m.live_count(), before - first.len() - second.len());
    }

    #[test]
    fn sequence_of_batches_equals_one_big_batch() {
        let (db, vs) = fig1();
        let a = tid(&db, "T1", &[Value::str("John"), Value::str("TKDE")]);
        let b = tid(&db, "T1", &[Value::str("John"), Value::str("TODS")]);
        let c = tid(&db, "T2", &[Value::str("TKDE"), Value::str("CUBE")]);

        let mut seq = MaintainedViews::new(&vs);
        let mut dead_seq: Vec<ViewTupleId> = Vec::new();
        for batch in [[a].as_slice(), &[b], &[c]] {
            dead_seq.extend(seq.delete(batch));
        }
        dead_seq.sort_unstable();

        let once = DeletionDelta::compute(&vs, &[a, b, c]);
        assert_eq!(dead_seq, once.eliminated);
        assert_eq!(seq.live().count(), vs.total_tuples() - dead_seq.len());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (_, vs) = fig1();
        let mut m = MaintainedViews::new(&vs);
        assert!(m.delete(&[]).is_empty());
        assert_eq!(m.live_count(), vs.total_tuples());
        let d = DeletionDelta::compute(&vs, &[]);
        assert!(d.eliminated.is_empty());
    }
}
