//! Errors raised by query construction, analysis, and evaluation.

use delprop_relation::RelationError;
use std::fmt;

/// Errors from parsing, binding, analyzing, or evaluating queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Underlying relational error (unknown relation, …).
    Relation(RelationError),
    /// Query head has no terms.
    EmptyHead(String),
    /// Query body has no atoms.
    EmptyBody(String),
    /// Head contains a constant; the paper's heads are variable tuples.
    ConstantInHead(String),
    /// A head variable does not occur in the body (unsafe query).
    UnsafeHeadVariable { query: String, variable: String },
    /// An atom's term count differs from its relation's declared arity.
    AtomArityMismatch {
        query: String,
        relation: String,
        expected: usize,
        got: usize,
    },
    /// Parse error with a human-readable reason.
    Parse { input: String, reason: String },
    /// An operation requiring a key-preserving query was invoked on a query
    /// that is not key-preserving (e.g. unique-witness provenance).
    NotKeyPreserving { query: String, reason: String },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Relation(e) => write!(f, "{e}"),
            QueryError::EmptyHead(q) => write!(f, "query {q} has an empty head"),
            QueryError::EmptyBody(q) => write!(f, "query {q} has an empty body"),
            QueryError::ConstantInHead(q) => {
                write!(f, "query {q} has a constant in its head")
            }
            QueryError::UnsafeHeadVariable { query, variable } => write!(
                f,
                "head variable {variable} of query {query} does not occur in the body"
            ),
            QueryError::AtomArityMismatch {
                query,
                relation,
                expected,
                got,
            } => write!(
                f,
                "atom {relation} in query {query}: expected arity {expected}, got {got}"
            ),
            QueryError::Parse { input, reason } => {
                write!(f, "cannot parse {input:?}: {reason}")
            }
            QueryError::NotKeyPreserving { query, reason } => {
                write!(f, "query {query} is not key-preserving: {reason}")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for QueryError {
    fn from(e: RelationError) -> Self {
        QueryError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = QueryError::UnsafeHeadVariable {
            query: "Q".into(),
            variable: "u".into(),
        };
        assert!(e.to_string().contains('u'));
        let e = QueryError::Parse {
            input: "Q(".into(),
            reason: "unbalanced".into(),
        };
        assert!(e.to_string().contains("unbalanced"));
    }

    #[test]
    fn source_chains_relation_errors() {
        use std::error::Error;
        let e = QueryError::Relation(RelationError::UnknownRelation("X".into()));
        assert!(e.source().is_some());
        assert!(QueryError::EmptyHead("Q".into()).source().is_none());
    }
}
