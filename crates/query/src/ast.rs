//! Conjunctive-query AST and schema binding.
//!
//! Queries are written datalog-style (§II.B of the paper):
//!
//! ```text
//! Q(y1, …, yq) :- T1(x1, y1, c1), …, Tq(xq, yq, cq)
//! ```
//!
//! Terms are variables or constants; the head lists head variables (possibly
//! repeated, as in the paper's `Q2(y, y1, y, y2, y, y3)`). A query is first
//! built/parsed as a raw [`ConjunctiveQuery`] and then *bound* to a
//! [`Schema`], which checks atom arities and yields a [`BoundQuery`] that
//! downstream analysis and evaluation operate on.

use crate::error::QueryError;
use delprop_relation::{RelationId, Schema, Value};
use std::collections::BTreeSet;
use std::fmt;

/// A term of an atom or head: a variable (by name) or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable, identified by name.
    Var(String),
    /// A constant value.
    Const(Value),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// Shorthand for a constant term.
    pub fn constant(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Value::Str(s)) => write!(f, "'{s}'"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// One body atom `T(t1, …, tk)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Relation name (resolved at bind time).
    pub relation: String,
    /// Terms, one per attribute position.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Variables occurring in this atom, in first-occurrence order.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if seen.insert(v.as_str()) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A raw (unbound) conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Query name (`Q3` etc.), used for display and view labels.
    pub name: String,
    /// Head terms. The paper restricts heads to variables; constants are
    /// rejected at bind time.
    pub head: Vec<Term>,
    /// Body atoms.
    pub body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Build a raw query.
    pub fn new(name: impl Into<String>, head: Vec<Term>, body: Vec<Atom>) -> Self {
        ConjunctiveQuery {
            name: name.into(),
            head,
            body,
        }
    }

    /// Bind to a schema: resolve relation names, check arities, check
    /// safety (every head variable occurs in the body) and that the head
    /// contains only variables and is non-empty.
    pub fn bind(&self, schema: &Schema) -> Result<BoundQuery, QueryError> {
        if self.head.is_empty() {
            return Err(QueryError::EmptyHead(self.name.clone()));
        }
        if self.body.is_empty() {
            return Err(QueryError::EmptyBody(self.name.clone()));
        }
        let mut head_vars = Vec::new();
        for t in &self.head {
            match t {
                Term::Var(v) => head_vars.push(v.clone()),
                Term::Const(_) => return Err(QueryError::ConstantInHead(self.name.clone())),
            }
        }
        let mut atoms = Vec::with_capacity(self.body.len());
        let mut body_vars: BTreeSet<&str> = BTreeSet::new();
        for atom in &self.body {
            let rid = schema
                .relation_id(&atom.relation)
                .map_err(QueryError::Relation)?;
            let decl = schema.relation(rid);
            if decl.arity() != atom.terms.len() {
                return Err(QueryError::AtomArityMismatch {
                    query: self.name.clone(),
                    relation: atom.relation.clone(),
                    expected: decl.arity(),
                    got: atom.terms.len(),
                });
            }
            body_vars.extend(atom.variables());
            atoms.push(BoundAtom {
                relation: rid,
                terms: atom.terms.clone(),
            });
        }
        for hv in &head_vars {
            if !body_vars.contains(hv.as_str()) {
                return Err(QueryError::UnsafeHeadVariable {
                    query: self.name.clone(),
                    variable: hv.clone(),
                });
            }
        }
        Ok(BoundQuery {
            name: self.name.clone(),
            head: head_vars,
            atoms,
        })
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ") :- ")?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// An atom whose relation name has been resolved against a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundAtom {
    /// Resolved relation.
    pub relation: RelationId,
    /// Terms, one per position; arity already validated.
    pub terms: Vec<Term>,
}

/// A schema-validated conjunctive query.
///
/// The head is a list of variable names (repetitions allowed); the width
/// `arity(Q)` of the paper is [`BoundQuery::arity`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundQuery {
    /// Query name.
    pub name: String,
    /// Head variable names in head order (may repeat).
    pub head: Vec<String>,
    /// Bound body atoms.
    pub atoms: Vec<BoundAtom>,
}

impl BoundQuery {
    /// The width `arity(Q)`: the length of the head.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// Distinct head variables.
    pub fn head_var_set(&self) -> BTreeSet<&str> {
        self.head.iter().map(String::as_str).collect()
    }

    /// All distinct variables of the body in first-occurrence order.
    pub fn body_vars(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for atom in &self.atoms {
            for t in &atom.terms {
                if let Term::Var(v) = t {
                    if seen.insert(v.as_str()) {
                        out.push(v.as_str());
                    }
                }
            }
        }
        out
    }

    /// Existential variables `Var∃(Q)`: body variables not in the head.
    pub fn existential_vars(&self) -> Vec<&str> {
        let head = self.head_var_set();
        self.body_vars()
            .into_iter()
            .filter(|v| !head.contains(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delprop_relation::RelationSchema;

    fn schema() -> Schema {
        Schema::from_relations([
            RelationSchema::new("T1", 3, vec![1]).unwrap(),
            RelationSchema::new("T2", 3, vec![1]).unwrap(),
        ])
        .unwrap()
    }

    fn q1() -> ConjunctiveQuery {
        // Q1(y1, y2, w) :- T1(x, y1, z), T2(x, y2, w)  (paper §II.B)
        ConjunctiveQuery::new(
            "Q1",
            vec![Term::var("y1"), Term::var("y2"), Term::var("w")],
            vec![
                Atom::new("T1", vec![Term::var("x"), Term::var("y1"), Term::var("z")]),
                Atom::new("T2", vec![Term::var("x"), Term::var("y2"), Term::var("w")]),
            ],
        )
    }

    #[test]
    fn bind_succeeds_and_classifies_vars() {
        let b = q1().bind(&schema()).unwrap();
        assert_eq!(b.arity(), 3);
        assert_eq!(b.existential_vars(), vec!["x", "z"]);
        assert_eq!(b.body_vars(), vec!["x", "y1", "z", "y2", "w"]);
    }

    #[test]
    fn bind_rejects_unknown_relation() {
        let q = ConjunctiveQuery::new(
            "Q",
            vec![Term::var("x")],
            vec![Atom::new("Nope", vec![Term::var("x")])],
        );
        assert!(matches!(q.bind(&schema()), Err(QueryError::Relation(_))));
    }

    #[test]
    fn bind_rejects_arity_mismatch() {
        let q = ConjunctiveQuery::new(
            "Q",
            vec![Term::var("x")],
            vec![Atom::new("T1", vec![Term::var("x")])],
        );
        assert!(matches!(
            q.bind(&schema()),
            Err(QueryError::AtomArityMismatch { .. })
        ));
    }

    #[test]
    fn bind_rejects_unsafe_head() {
        let q = ConjunctiveQuery::new(
            "Q",
            vec![Term::var("u")],
            vec![Atom::new(
                "T1",
                vec![Term::var("x"), Term::var("y"), Term::var("z")],
            )],
        );
        assert!(matches!(
            q.bind(&schema()),
            Err(QueryError::UnsafeHeadVariable { .. })
        ));
    }

    #[test]
    fn bind_rejects_constant_or_empty_head() {
        let q = ConjunctiveQuery::new(
            "Q",
            vec![Term::constant(1)],
            vec![Atom::new(
                "T1",
                vec![Term::var("x"), Term::var("y"), Term::var("z")],
            )],
        );
        assert!(matches!(
            q.bind(&schema()),
            Err(QueryError::ConstantInHead(_))
        ));
        let q = ConjunctiveQuery::new("Q", vec![], vec![]);
        assert!(matches!(q.bind(&schema()), Err(QueryError::EmptyHead(_))));
    }

    #[test]
    fn repeated_head_vars_allowed() {
        // Q(y, y) :- T1(x, y, z)
        let q = ConjunctiveQuery::new(
            "Q",
            vec![Term::var("y"), Term::var("y")],
            vec![Atom::new(
                "T1",
                vec![Term::var("x"), Term::var("y"), Term::var("z")],
            )],
        );
        let b = q.bind(&schema()).unwrap();
        assert_eq!(b.arity(), 2);
        assert_eq!(b.head_var_set().len(), 1);
    }

    #[test]
    fn display_roundtrips_shape() {
        let s = q1().to_string();
        assert_eq!(s, "Q1(y1, y2, w) :- T1(x, y1, z), T2(x, y2, w)");
    }

    #[test]
    fn constants_display_quoted() {
        let a = Atom::new("T", vec![Term::constant("c"), Term::constant(3)]);
        assert_eq!(a.to_string(), "T('c', 3)");
    }
}
