//! Materialized views with witness provenance.
//!
//! A [`View`] is a materialized query result `Q(D)`: the distinct head
//! tuples, each carrying its witness sets (one base tuple per atom, per
//! match producing that head).
//!
//! **Key-preservation ⇒ unique witnesses.** If `Q` is key-preserving, a view
//! tuple fixes the key values of every atom, the key constraint pins down at
//! most one base tuple per atom, and every occurrence of an existential
//! variable is forced by those tuples — so each view tuple has exactly one
//! witness set. [`View::materialize`] asserts this (it is a theorem, so a
//! violation indicates an engine bug), and [`ViewTuple::unique_witnesses`]
//! exposes it. The deletion-propagation solvers rely on this: *a view tuple
//! of a key-preserving query dies iff any of its witnesses is deleted.*

use crate::ast::BoundQuery;
use crate::error::QueryError;
use crate::eval::{hashjoin, CompiledQuery};
use crate::properties::is_key_preserving;
use delprop_relation::{Database, Tuple, TupleId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One materialized view tuple: head values plus witness provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewTuple {
    /// The answer tuple `μ(y)`.
    pub head: Tuple,
    /// All witness sets (one per match). Each witness set lists one base
    /// tuple per body atom, deduplicated and sorted (self-joins can make
    /// two atoms match the same base tuple).
    pub witness_sets: Vec<Box<[TupleId]>>,
}

impl ViewTuple {
    /// The unique witness set of a key-preserving view tuple.
    ///
    /// # Panics
    /// Panics if there are multiple witness sets; call this only for views
    /// of key-preserving queries (materialization guarantees uniqueness for
    /// those).
    pub fn unique_witnesses(&self) -> &[TupleId] {
        assert_eq!(
            self.witness_sets.len(),
            1,
            "unique_witnesses on a non-key-preserving view tuple"
        );
        &self.witness_sets[0]
    }

    /// Whether this view tuple survives the deletion of `deleted`:
    /// it survives iff at least one witness set is fully intact.
    pub fn survives(&self, deleted: &HashSet<TupleId>) -> bool {
        self.witness_sets
            .iter()
            .any(|ws| ws.iter().all(|t| !deleted.contains(t)))
    }
}

/// A materialized view `V = Q(D)`.
#[derive(Debug, Clone)]
pub struct View {
    /// The defining query.
    pub query: BoundQuery,
    /// Whether `query` is key-preserving w.r.t. the schema it was
    /// materialized against (cached at materialization time).
    pub key_preserving: bool,
    /// View tuples in canonical (sorted-by-head) order.
    pub tuples: Vec<ViewTuple>,
}

impl View {
    /// Materialize `query` over `db` with the hash-join engine.
    pub fn materialize(db: &Database, query: &BoundQuery) -> Result<View, QueryError> {
        let compiled = CompiledQuery::compile(query);
        let matches = hashjoin::evaluate(db, &compiled);
        let key_preserving = is_key_preserving(query, db.schema());

        let mut by_head: BTreeMap<Tuple, Vec<Box<[TupleId]>>> = BTreeMap::new();
        for m in &matches {
            let mut ws: Vec<TupleId> = m.witnesses.clone();
            ws.sort_unstable();
            ws.dedup();
            let entry = by_head.entry(m.head(&compiled)).or_default();
            let ws: Box<[TupleId]> = ws.into_boxed_slice();
            if !entry.contains(&ws) {
                entry.push(ws);
            }
        }

        if key_preserving {
            // §II.C: key-preservation forces a unique witness set per view
            // tuple. Failure here is an engine bug, not bad input.
            for (head, wss) in &by_head {
                if wss.len() != 1 {
                    return Err(QueryError::NotKeyPreserving {
                        query: query.name.clone(),
                        reason: format!(
                            "view tuple {head} has {} distinct witness sets; \
                             key constraints should make this impossible",
                            wss.len()
                        ),
                    });
                }
            }
        }

        Ok(View {
            query: query.clone(),
            key_preserving,
            tuples: by_head
                .into_iter()
                .map(|(head, witness_sets)| ViewTuple { head, witness_sets })
                .collect(),
        })
    }

    /// Number of view tuples `|V|`.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Index of the view tuple with the given head, if present.
    pub fn position_of(&self, head: &Tuple) -> Option<usize> {
        self.tuples.binary_search_by(|vt| vt.head.cmp(head)).ok()
    }

    /// The view tuples surviving the deletion of `deleted`.
    pub fn surviving<'a>(
        &'a self,
        deleted: &'a HashSet<TupleId>,
    ) -> impl Iterator<Item = &'a ViewTuple> {
        self.tuples.iter().filter(move |vt| vt.survives(deleted))
    }
}

/// Identity of a view tuple within a [`ViewSet`]: (view index, tuple index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewTupleId {
    /// Which view.
    pub view: usize,
    /// Index into that view's `tuples`.
    pub index: usize,
}

impl ViewTupleId {
    /// Construct a view-tuple id.
    pub fn new(view: usize, index: usize) -> Self {
        ViewTupleId { view, index }
    }
}

impl std::fmt::Display for ViewTupleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "V{}#{}", self.view, self.index)
    }
}

/// The full set of materialized views `V = {V1, …, Vm}` with a global
/// inverted occurrence index from base tuples to the view tuples whose
/// witness sets contain them.
#[derive(Debug, Clone)]
pub struct ViewSet {
    /// Views in query order.
    pub views: Vec<View>,
    occurrences: HashMap<TupleId, Vec<ViewTupleId>>,
}

impl ViewSet {
    /// Materialize every query in `queries` over `db`.
    pub fn materialize(db: &Database, queries: &[BoundQuery]) -> Result<ViewSet, QueryError> {
        let views = queries
            .iter()
            .map(|q| View::materialize(db, q))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ViewSet::from_views(views))
    }

    /// Build the set (and its occurrence index) from materialized views.
    pub fn from_views(views: Vec<View>) -> ViewSet {
        let mut occurrences: HashMap<TupleId, Vec<ViewTupleId>> = HashMap::new();
        for (vi, view) in views.iter().enumerate() {
            for (ti, vt) in view.tuples.iter().enumerate() {
                let id = ViewTupleId::new(vi, ti);
                let mut seen: HashSet<TupleId> = HashSet::new();
                for ws in &vt.witness_sets {
                    for &t in ws.iter() {
                        if seen.insert(t) {
                            occurrences.entry(t).or_default().push(id);
                        }
                    }
                }
            }
        }
        ViewSet { views, occurrences }
    }

    /// Total number of view tuples `‖V‖` (paper notation: sum of sizes).
    pub fn total_tuples(&self) -> usize {
        self.views.iter().map(View::len).sum()
    }

    /// Resolve a view-tuple id.
    pub fn tuple(&self, id: ViewTupleId) -> &ViewTuple {
        &self.views[id.view].tuples[id.index]
    }

    /// All view tuples whose provenance involves base tuple `t`.
    pub fn occurrences(&self, t: TupleId) -> &[ViewTupleId] {
        self.occurrences.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether every view is key-preserving (precondition of the solvers).
    pub fn all_key_preserving(&self) -> bool {
        self.views.iter().all(|v| v.key_preserving)
    }

    /// Iterate all `(id, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ViewTupleId, &ViewTuple)> {
        self.views.iter().enumerate().flat_map(|(vi, v)| {
            v.tuples
                .iter()
                .enumerate()
                .map(move |(ti, vt)| (ViewTupleId::new(vi, ti), vt))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use delprop_relation::{tup, Database, RelationSchema, Schema, Value};

    /// Fig. 1 of the paper.
    fn fig1() -> Database {
        let schema = Schema::from_relations([
            RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
            RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
        ])
        .unwrap();
        let mut d = Database::new(schema);
        for t in [
            tup!["Joe", "TKDE"],
            tup!["John", "TKDE"],
            tup!["Tom", "TKDE"],
            tup!["John", "TODS"],
        ] {
            d.insert("T1", t).unwrap();
        }
        for t in [
            tup!["TKDE", "XML", 30],
            tup!["TKDE", "CUBE", 30],
            tup!["TODS", "XML", 30],
        ] {
            d.insert("T2", t).unwrap();
        }
        d
    }

    fn bind(d: &Database, src: &str) -> BoundQuery {
        parse_query(src).unwrap().bind(d.schema()).unwrap()
    }

    #[test]
    fn q4_key_preserving_unique_witnesses() {
        let d = fig1();
        let q4 = bind(&d, "Q4(x, y, z) :- T1(x, y), T2(y, z, w)");
        let v = View::materialize(&d, &q4).unwrap();
        assert!(v.key_preserving);
        assert_eq!(v.len(), 7, "Fig. 1(d) lists 7 view tuples");
        for vt in &v.tuples {
            assert_eq!(vt.unique_witnesses().len(), 2);
        }
    }

    #[test]
    fn q3_not_key_preserving_multi_witness() {
        let d = fig1();
        let q3 = bind(&d, "Q3(x, z) :- T1(x, y), T2(y, z, w)");
        let v = View::materialize(&d, &q3).unwrap();
        assert!(!v.key_preserving);
        assert_eq!(v.len(), 6, "Fig. 1(c) lists 6 view tuples");
        // (John, XML) has two witness sets: via TKDE and via TODS.
        let idx = v.position_of(&tup!["John", "XML"]).unwrap();
        assert_eq!(v.tuples[idx].witness_sets.len(), 2);
    }

    #[test]
    fn survives_semantics_differ_by_witness_multiplicity() {
        let d = fig1();
        let q3 = bind(&d, "Q3(x, z) :- T1(x, y), T2(y, z, w)");
        let v = View::materialize(&d, &q3).unwrap();
        let idx = v.position_of(&tup!["John", "XML"]).unwrap();
        let vt = &v.tuples[idx];
        // Deleting only (John, TKDE) leaves the TODS witness intact.
        let t1 = d.schema().relation_id("T1").unwrap();
        let john_tkde = d
            .find_by_key(t1, &[Value::str("John"), Value::str("TKDE")])
            .unwrap();
        let deleted: HashSet<_> = [john_tkde].into_iter().collect();
        assert!(vt.survives(&deleted));
        // Deleting both John rows kills it.
        let john_tods = d
            .find_by_key(t1, &[Value::str("John"), Value::str("TODS")])
            .unwrap();
        let deleted: HashSet<_> = [john_tkde, john_tods].into_iter().collect();
        assert!(!vt.survives(&deleted));
    }

    #[test]
    fn viewset_occurrence_index() {
        let d = fig1();
        let q4 = bind(&d, "Q4(x, y, z) :- T1(x, y), T2(y, z, w)");
        let vs = ViewSet::materialize(&d, std::slice::from_ref(&q4)).unwrap();
        assert_eq!(vs.total_tuples(), 7);
        assert!(vs.all_key_preserving());
        // (TKDE, XML, 30) occurs in 3 view tuples: Joe/John/Tom × XML.
        let t2 = d.schema().relation_id("T2").unwrap();
        let tkde_xml = d
            .find_by_key(t2, &[Value::str("TKDE"), Value::str("XML")])
            .unwrap();
        assert_eq!(vs.occurrences(tkde_xml).len(), 3);
        // An untouched tuple id yields an empty slice.
        let bogus = TupleId::new(t2, 999);
        assert!(vs.occurrences(bogus).is_empty());
    }

    #[test]
    fn materialize_then_delete_matches_re_evaluation() {
        let mut d = fig1();
        let q4 = bind(&d, "Q4(x, y, z) :- T1(x, y), T2(y, z, w)");
        let v = View::materialize(&d, &q4).unwrap();
        let t1 = d.schema().relation_id("T1").unwrap();
        let victim = d
            .find_by_key(t1, &[Value::str("John"), Value::str("TKDE")])
            .unwrap();
        let deleted: HashSet<_> = [victim].into_iter().collect();
        let predicted: Vec<_> = v.surviving(&deleted).map(|vt| vt.head.clone()).collect();
        d.delete(victim);
        let reeval = View::materialize(&d, &q4).unwrap();
        let actual: Vec<_> = reeval.tuples.iter().map(|vt| vt.head.clone()).collect();
        assert_eq!(predicted, actual);
    }

    #[test]
    fn position_of_missing_head() {
        let d = fig1();
        let q4 = bind(&d, "Q4(x, y, z) :- T1(x, y), T2(y, z, w)");
        let v = View::materialize(&d, &q4).unwrap();
        assert!(v.position_of(&tup!["Nobody", "X", "Y"]).is_none());
    }

    #[test]
    fn self_join_witnesses_deduplicated() {
        let schema =
            Schema::from_relations([RelationSchema::new("E", 2, vec![0, 1]).unwrap()]).unwrap();
        let mut d = Database::new(schema);
        d.insert("E", tup![1, 1]).unwrap();
        let q = bind(&d, "Q(x, y) :- E(x, y), E(y, x)");
        let v = View::materialize(&d, &q).unwrap();
        assert_eq!(v.len(), 1);
        // Both atoms matched the same base tuple; the witness set has 1 id.
        assert_eq!(v.tuples[0].witness_sets[0].len(), 1);
    }
}
