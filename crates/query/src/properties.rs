//! Query-class analysis: the syntactic properties the paper's dichotomies
//! hinge on (§II.B, §III, §IV.B).
//!
//! - **project-free**: every body variable appears in the head (select-join
//!   queries). Project-free implies key-preserving.
//! - **self-join-free (sj-free)**: no relation symbol occurs twice in the
//!   body.
//! - **key-preserving**: every atom has a key (guaranteed by the schema
//!   substrate) and every *key variable* — a variable at a key position of
//!   some atom — occurs in the head.

use crate::ast::{BoundQuery, Term};
use delprop_relation::Schema;
use std::collections::BTreeSet;

/// Why a query fails to be key-preserving (empty list = key-preserving).
///
/// Each entry is `(atom index, key position, variable name)` for a key
/// variable missing from the head.
pub fn key_preserving_violations(
    query: &BoundQuery,
    schema: &Schema,
) -> Vec<(usize, usize, String)> {
    let head: BTreeSet<&str> = query.head_var_set();
    let mut out = Vec::new();
    for (ai, atom) in query.atoms.iter().enumerate() {
        let decl = schema.relation(atom.relation);
        for &kp in decl.key() {
            if let Term::Var(v) = &atom.terms[kp] {
                if !head.contains(v.as_str()) {
                    out.push((ai, kp, v.clone()));
                }
            }
            // A constant at a key position still determines the base tuple;
            // it imposes no head requirement.
        }
    }
    out
}

/// Whether the query is key-preserving w.r.t. the schema's keys.
pub fn is_key_preserving(query: &BoundQuery, schema: &Schema) -> bool {
    key_preserving_violations(query, schema).is_empty()
}

/// Whether the query is project-free: all body variables occur in the head.
pub fn is_project_free(query: &BoundQuery) -> bool {
    let head = query.head_var_set();
    query.body_vars().iter().all(|v| head.contains(v))
}

/// Whether the query is self-join-free: no relation occurs in two atoms.
pub fn is_self_join_free(query: &BoundQuery) -> bool {
    let mut seen = BTreeSet::new();
    query.atoms.iter().all(|a| seen.insert(a.relation))
}

/// Structural profile of one query; see also
/// `delprop-core`'s solver classifier, which consumes these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryProfile {
    /// Query name.
    pub name: String,
    /// `arity(Q)` — head width.
    pub arity: usize,
    /// Number of body atoms (the witness-set size of each view tuple).
    pub num_atoms: usize,
    /// All body variables occur in the head.
    pub project_free: bool,
    /// No repeated relation symbol.
    pub self_join_free: bool,
    /// All key variables occur in the head.
    pub key_preserving: bool,
}

/// Profile a bound query against a schema.
pub fn profile(query: &BoundQuery, schema: &Schema) -> QueryProfile {
    QueryProfile {
        name: query.name.clone(),
        arity: query.arity(),
        num_atoms: query.atoms.len(),
        project_free: is_project_free(query),
        self_join_free: is_self_join_free(query),
        key_preserving: is_key_preserving(query, schema),
    }
}

/// The paper's `l`: the maximum `arity(Q)` over a set of queries.
/// Returns 0 for an empty set.
pub fn max_arity<'a>(queries: impl IntoIterator<Item = &'a BoundQuery>) -> usize {
    queries
        .into_iter()
        .map(BoundQuery::arity)
        .max()
        .unwrap_or(0)
}

/// FD-aware key preservation: an atom passes if **some candidate key** of
/// its relation — derived from the declared key plus the functional
/// dependencies — has only constants or head variables at its positions.
///
/// This is the mechanism behind the "fd-…" rows of the paper's landscape
/// tables: FDs let more attribute sets act as keys, so queries that fail
/// the syntactic [`is_key_preserving`] test may still pin down unique
/// witnesses per view tuple. Reduces to the plain test when `fds` has no
/// declarations.
pub fn is_key_preserving_with_fds(
    query: &BoundQuery,
    schema: &Schema,
    fds: &delprop_relation::SchemaFds,
) -> bool {
    let head: BTreeSet<&str> = query.head_var_set();
    query.atoms.iter().all(|atom| {
        let decl = schema.relation(atom.relation);
        let declared_key = decl.key().to_vec();
        let candidate_keys: Vec<Vec<usize>> = match fds.get(atom.relation) {
            Some(rel_fds) => {
                // The declared key is a key by enforcement; make that fact
                // visible to the closure before deriving candidates.
                let mut augmented = rel_fds.clone();
                augmented
                    .add(delprop_relation::FunctionalDependency::new(
                        declared_key.clone(),
                        (0..decl.arity()).collect(),
                    ))
                    .expect("declared key positions are in range");
                augmented.candidate_keys(std::slice::from_ref(&declared_key))
            }
            None => vec![declared_key],
        };
        candidate_keys.iter().any(|key| {
            key.iter().all(|&p| match &atom.terms[p] {
                Term::Var(v) => head.contains(v.as_str()),
                Term::Const(_) => true,
            })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use delprop_relation::RelationSchema;

    fn schema() -> Schema {
        Schema::from_relations([
            // T1(AuName, Journal), key = whole tuple
            RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
            // T2(Journal, Topic, #Papers), key = (Journal, Topic)
            RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
        ])
        .unwrap()
    }

    fn bind(src: &str) -> BoundQuery {
        parse_query(src).unwrap().bind(&schema()).unwrap()
    }

    #[test]
    fn paper_q3_is_key_preserving_not_project_free() {
        // Q3(x, z) :- T1(x, y), T2(y, z, w): keys x,y (T1) and y,z (T2).
        // y is a key variable NOT in the head -> not key-preserving.
        let q3 = bind("Q3(x, z) :- T1(x, y), T2(y, z, w)");
        assert!(!is_project_free(&q3));
        assert!(!is_key_preserving(&q3, &schema()));
        let v = key_preserving_violations(&q3, &schema());
        assert!(v.iter().any(|(_, _, var)| var == "y"));
    }

    #[test]
    fn paper_q4_is_key_preserving() {
        // Q4(x, y, z) :- T1(x, y), T2(y, z, w): key vars x,y,y,z all in head.
        let q4 = bind("Q4(x, y, z) :- T1(x, y), T2(y, z, w)");
        assert!(is_key_preserving(&q4, &schema()));
        assert!(!is_project_free(&q4)); // w is existential
    }

    #[test]
    fn project_free_implies_key_preserving() {
        let q = bind("Q(x, y, z, w) :- T1(x, y), T2(y, z, w)");
        assert!(is_project_free(&q));
        assert!(is_key_preserving(&q, &schema()));
    }

    #[test]
    fn self_join_detection() {
        let q = bind("Q(x, y, z) :- T1(x, y), T1(y, z)");
        assert!(!is_self_join_free(&q));
        let q = bind("Q(x, y, z, w) :- T1(x, y), T2(y, z, w)");
        assert!(is_self_join_free(&q));
    }

    #[test]
    fn constant_at_key_position_is_no_violation() {
        let q = bind("Q(x) :- T2('TKDE', x, w)");
        // key positions of T2 are 0 ('TKDE', constant) and 1 (x, in head)
        assert!(is_key_preserving(&q, &schema()));
    }

    #[test]
    fn profile_summarizes() {
        let p = profile(&bind("Q4(x, y, z) :- T1(x, y), T2(y, z, w)"), &schema());
        assert_eq!(p.arity, 3);
        assert_eq!(p.num_atoms, 2);
        assert!(p.key_preserving && p.self_join_free && !p.project_free);
    }

    #[test]
    fn fd_extended_key_preservation() {
        use delprop_relation::{FunctionalDependency, RelationFds, SchemaFds};
        let s = schema();
        // Q3(x, z) :- T1(x, y), T2(y, z, w) is NOT key-preserving: key
        // variable y is existential.
        let q3 = bind("Q3(x, z) :- T1(x, y), T2(y, z, w)");
        assert!(!is_key_preserving(&q3, &s));
        // Without FDs the FD-aware test agrees.
        assert!(!is_key_preserving_with_fds(&q3, &s, &SchemaFds::new()));
        // Declare x → y on T1 (authors publish in one journal) and
        // z → y on T2 (topics determine the journal): now {0} is a
        // candidate key of T1 and {1} of T2, both head-covered.
        let mut fds = SchemaFds::new();
        let t1 = s.relation_id("T1").unwrap();
        let t2 = s.relation_id("T2").unwrap();
        let mut f1 = RelationFds::new(2);
        f1.add(FunctionalDependency::new(vec![0], vec![1])).unwrap();
        fds.insert(t1, f1);
        let mut f2 = RelationFds::new(3);
        f2.add(FunctionalDependency::new(vec![1], vec![0, 2]))
            .unwrap();
        fds.insert(t2, f2);
        assert!(is_key_preserving_with_fds(&q3, &s, &fds));
    }

    #[test]
    fn fd_test_reduces_to_plain_without_declarations() {
        use delprop_relation::SchemaFds;
        let s = schema();
        for src in [
            "Q4(x, y, z) :- T1(x, y), T2(y, z, w)",
            "Q(x, y, z, w) :- T1(x, y), T2(y, z, w)",
            "Q(x) :- T2('TKDE', x, w)",
        ] {
            let q = bind(src);
            assert_eq!(
                is_key_preserving(&q, &s),
                is_key_preserving_with_fds(&q, &s, &SchemaFds::new()),
                "mismatch for {src}"
            );
        }
    }

    #[test]
    fn max_arity_over_set() {
        let a = bind("Q3(x, z) :- T1(x, y), T2(y, z, w)");
        let b = bind("Q4(x, y, z) :- T1(x, y), T2(y, z, w)");
        assert_eq!(max_arity([&a, &b]), 3);
        assert_eq!(max_arity([]), 0);
    }
}
