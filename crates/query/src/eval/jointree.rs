//! Join-tree construction for α-acyclic conjunctive queries via GYO ear
//! removal.
//!
//! A *join tree* has one node per body atom and satisfies the running-
//! intersection property: for any variable, the atoms containing it form
//! a connected subtree. It exists iff the query's atom hypergraph is
//! α-acyclic, and it is the scaffold the Yannakakis evaluator
//! ([`super::yannakakis`]) runs on.

use super::compile::{CompiledQuery, Slot};
use std::collections::BTreeSet;

/// A join tree over the atoms of a compiled query.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// Root atom index.
    pub root: usize,
    /// Parent atom of each atom (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// Atoms in elimination order (leaves first, root last) — a valid
    /// bottom-up processing order.
    pub order: Vec<usize>,
}

/// Variable slots of atom `ai`.
pub fn atom_vars(query: &CompiledQuery, ai: usize) -> BTreeSet<usize> {
    query.atoms[ai]
        .slots
        .iter()
        .filter_map(|s| match s {
            Slot::Var(v) => Some(*v),
            Slot::Const(_) => None,
        })
        .collect()
}

/// Build a join tree by GYO ear removal, or `None` if the query is
/// cyclic.
///
/// An atom `A` is an *ear* w.r.t. the remaining atoms if the variables it
/// shares with the rest are all contained in some single other atom `B`
/// (its witness, which becomes its parent).
pub fn build(query: &CompiledQuery) -> Option<JoinTree> {
    let n = query.atoms.len();
    if n == 0 {
        return None;
    }
    let vars: Vec<BTreeSet<usize>> = (0..n).map(|ai| atom_vars(query, ai)).collect();
    let mut alive: Vec<bool> = vec![true; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;

    while remaining > 1 {
        let mut removed_one = false;
        'ears: for a in 0..n {
            if !alive[a] {
                continue;
            }
            // Variables of `a` occurring in some other live atom.
            let boundary: BTreeSet<usize> = vars[a]
                .iter()
                .copied()
                .filter(|v| (0..n).any(|b| b != a && alive[b] && vars[b].contains(v)))
                .collect();
            for b in 0..n {
                if b != a && alive[b] && boundary.is_subset(&vars[b]) {
                    alive[a] = false;
                    parent[a] = Some(b);
                    order.push(a);
                    remaining -= 1;
                    removed_one = true;
                    break 'ears;
                }
            }
        }
        if !removed_one {
            return None; // cyclic
        }
    }
    let root = (0..n).find(|&a| alive[a]).expect("one atom survives");
    order.push(root);
    Some(JoinTree {
        root,
        parent,
        order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::CompiledQuery;
    use crate::parse_query;
    use delprop_relation::{RelationSchema, Schema};

    fn compile(src: &str) -> CompiledQuery {
        let schema = Schema::from_relations([
            RelationSchema::new("A", 2, vec![0]).unwrap(),
            RelationSchema::new("B", 2, vec![0]).unwrap(),
            RelationSchema::new("C", 2, vec![0]).unwrap(),
            RelationSchema::new("D", 3, vec![0]).unwrap(),
        ])
        .unwrap();
        CompiledQuery::compile(&parse_query(src).unwrap().bind(&schema).unwrap())
    }

    #[test]
    fn chain_is_acyclic() {
        let q = compile("Q(x, y, z, w) :- A(x, y), B(y, z), C(z, w)");
        let t = build(&q).expect("chain joins are acyclic");
        assert_eq!(t.order.len(), 3);
        // Every non-root parent edge shares at least one variable.
        for a in 0..3 {
            if let Some(p) = t.parent[a] {
                let va = atom_vars(&q, a);
                let vp = atom_vars(&q, p);
                assert!(va.intersection(&vp).count() > 0);
            }
        }
    }

    #[test]
    fn triangle_is_cyclic() {
        let q = compile("Q(x, y, z) :- A(x, y), B(y, z), C(z, x)");
        assert!(build(&q).is_none());
    }

    #[test]
    fn star_is_acyclic() {
        let q = compile("Q(x, a, b, c) :- D(x, a, b), A(x, c), B(x, a)");
        assert!(build(&q).is_some());
    }

    #[test]
    fn single_atom_trivial_tree() {
        let q = compile("Q(x, y) :- A(x, y)");
        let t = build(&q).unwrap();
        assert_eq!(t.root, 0);
        assert_eq!(t.order, vec![0]);
        assert_eq!(t.parent, vec![None]);
    }

    #[test]
    fn disconnected_atoms_form_tree_with_empty_boundary() {
        // Cartesian products are acyclic: the empty boundary is a subset
        // of anything.
        let q = compile("Q(x, y, u, v) :- A(x, y), B(u, v)");
        assert!(build(&q).is_some());
    }

    #[test]
    fn order_is_leaves_first() {
        let q = compile("Q(x, y, z, w) :- A(x, y), B(y, z), C(z, w)");
        let t = build(&q).unwrap();
        assert_eq!(*t.order.last().unwrap(), t.root);
        // Each atom appears exactly once.
        let mut sorted = t.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }
}
