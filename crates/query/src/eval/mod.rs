//! Query evaluation: matches, answers, and two engines.
//!
//! [`naive`] is a straightforward backtracking evaluator used as the
//! correctness oracle; [`hashjoin`] is the general-purpose engine (hash
//! joins over a greedily-ordered atom sequence); [`yannakakis`] is the
//! specialist for α-acyclic queries (semijoin full reducer over a
//! [`jointree`], O(input + output) for full acyclic CQs). All engines
//! produce the same multiset of [`QueryMatch`]es; property tests in this
//! crate and the workspace integration suite pin them against each other.

mod compile;
pub mod hashjoin;
pub mod jointree;
pub mod naive;
pub mod yannakakis;

pub use compile::{CompiledAtom, CompiledQuery, Slot};
pub use jointree::JoinTree;

use delprop_relation::{Tuple, TupleId, Value};

/// One match (assignment μ) of a query in a database: the values taken by
/// each variable, and the base tuple each atom was matched to (the witness
/// list, in body-atom order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryMatch {
    /// Values per variable slot (see [`CompiledQuery::vars`]).
    pub assignment: Vec<Value>,
    /// One base tuple per atom, in body order.
    pub witnesses: Vec<TupleId>,
}

impl QueryMatch {
    /// Project the head tuple `μ(y)` of this match.
    pub fn head(&self, compiled: &CompiledQuery) -> Tuple {
        compiled
            .head_slots
            .iter()
            .map(|&s| self.assignment[s].clone())
            .collect()
    }
}

/// Canonically order matches (by assignment, then witnesses) so the two
/// engines can be compared for equality.
pub fn sort_matches(matches: &mut [QueryMatch]) {
    matches.sort_by(|a, b| {
        a.assignment
            .cmp(&b.assignment)
            .then_with(|| a.witnesses.cmp(&b.witnesses))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use delprop_relation::{tup, Database, RelationSchema, Schema};

    fn db() -> Database {
        let schema = Schema::from_relations([
            RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
            RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
        ])
        .unwrap();
        let mut d = Database::new(schema);
        for t in [
            tup!["Joe", "TKDE"],
            tup!["John", "TKDE"],
            tup!["Tom", "TKDE"],
            tup!["John", "TODS"],
        ] {
            d.insert("T1", t).unwrap();
        }
        for t in [
            tup!["TKDE", "XML", 30],
            tup!["TKDE", "CUBE", 30],
            tup!["TODS", "XML", 30],
        ] {
            d.insert("T2", t).unwrap();
        }
        d
    }

    /// The paper's Fig. 1: Q3 has 6 answers (7 matches incl. the (John,
    /// TODS, XML) path giving a duplicate head (John, XML)).
    #[test]
    fn engines_agree_on_fig1() {
        let d = db();
        let q = parse_query("Q3(x, z) :- T1(x, y), T2(y, z, w)")
            .unwrap()
            .bind(d.schema())
            .unwrap();
        let c = CompiledQuery::compile(&q);
        let mut a = naive::evaluate(&d, &c);
        let mut b = hashjoin::evaluate(&d, &c);
        sort_matches(&mut a);
        sort_matches(&mut b);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7, "7 joinable (author,journal,topic) paths");
        // distinct heads = 6 view tuples, as in Fig. 1(c)
        let mut heads: Vec<_> = a.iter().map(|m| m.head(&c)).collect();
        heads.sort();
        heads.dedup();
        assert_eq!(heads.len(), 6);
    }

    #[test]
    fn head_projection_respects_slot_order() {
        let d = db();
        let q = parse_query("Q(z, x) :- T1(x, y), T2(y, z, w)")
            .unwrap()
            .bind(d.schema())
            .unwrap();
        let c = CompiledQuery::compile(&q);
        let ms = hashjoin::evaluate(&d, &c);
        assert!(ms.iter().any(|m| m.head(&c) == tup!["XML", "John"]));
    }
}
