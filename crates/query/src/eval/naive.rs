//! Backtracking evaluator: the correctness oracle.
//!
//! Tries every live tuple for every atom in body order, unifying against
//! the partial assignment. Exponential in the worst case, but its
//! simplicity makes it the trusted baseline the hash-join engine is tested
//! against.

use super::{CompiledQuery, QueryMatch, Slot};
use delprop_relation::{Database, TupleId, Value};

/// Evaluate `query` on the live tuples of `db`, returning all matches.
pub fn evaluate(db: &Database, query: &CompiledQuery) -> Vec<QueryMatch> {
    let mut out = Vec::new();
    let mut assignment: Vec<Option<Value>> = vec![None; query.num_vars()];
    let mut witnesses: Vec<TupleId> = Vec::with_capacity(query.atoms.len());
    recurse(db, query, 0, &mut assignment, &mut witnesses, &mut out);
    out
}

fn recurse(
    db: &Database,
    query: &CompiledQuery,
    atom_idx: usize,
    assignment: &mut Vec<Option<Value>>,
    witnesses: &mut Vec<TupleId>,
    out: &mut Vec<QueryMatch>,
) {
    if atom_idx == query.atoms.len() {
        out.push(QueryMatch {
            assignment: assignment
                .iter()
                .map(|v| v.clone().expect("all vars bound at full depth"))
                .collect(),
            witnesses: witnesses.clone(),
        });
        return;
    }
    let atom = &query.atoms[atom_idx];
    for (tid, tuple) in db.live_tuples(atom.relation) {
        // Try to unify this tuple with the atom under the current partial
        // assignment, remembering which slots we newly bound for rollback.
        let mut newly_bound: Vec<usize> = Vec::new();
        let mut ok = true;
        for (pos, slot) in atom.slots.iter().enumerate() {
            let v = &tuple[pos];
            match slot {
                Slot::Const(c) => {
                    if c != v {
                        ok = false;
                        break;
                    }
                }
                Slot::Var(s) => match &assignment[*s] {
                    Some(bound) => {
                        if bound != v {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        assignment[*s] = Some(v.clone());
                        newly_bound.push(*s);
                    }
                },
            }
        }
        if ok {
            witnesses.push(tid);
            recurse(db, query, atom_idx + 1, assignment, witnesses, out);
            witnesses.pop();
        }
        for s in newly_bound {
            assignment[s] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::CompiledQuery;
    use crate::parse::parse_query;
    use delprop_relation::{tup, Database, RelationSchema, Schema};

    fn small_db() -> Database {
        let schema = Schema::from_relations([
            RelationSchema::new("R", 2, vec![0]).unwrap(),
            RelationSchema::new("S", 2, vec![0]).unwrap(),
        ])
        .unwrap();
        let mut d = Database::new(schema);
        d.insert("R", tup![1, 10]).unwrap();
        d.insert("R", tup![2, 20]).unwrap();
        d.insert("S", tup![10, 100]).unwrap();
        d.insert("S", tup![20, 100]).unwrap();
        d
    }

    fn eval(d: &Database, src: &str) -> Vec<QueryMatch> {
        let q = parse_query(src).unwrap().bind(d.schema()).unwrap();
        evaluate(d, &CompiledQuery::compile(&q))
    }

    #[test]
    fn simple_join() {
        let d = small_db();
        let ms = eval(&d, "Q(x, z) :- R(x, y), S(y, z)");
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn constants_filter() {
        let d = small_db();
        let ms = eval(&d, "Q(x) :- R(x, 10)");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].assignment, vec![delprop_relation::Value::int(1)]);
    }

    #[test]
    fn repeated_var_in_atom_forces_equality() {
        let schema =
            Schema::from_relations([RelationSchema::new("P", 2, vec![0, 1]).unwrap()]).unwrap();
        let mut d = Database::new(schema);
        d.insert("P", tup![1, 1]).unwrap();
        d.insert("P", tup![1, 2]).unwrap();
        let ms = eval(&d, "Q(x) :- P(x, x)");
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn self_join_enumerates_pairs() {
        let d = small_db();
        // R × R restricted to shared first column value? No join var: full product.
        let ms = eval(&d, "Q(x, y, u, v) :- R(x, y), R(u, v)");
        assert_eq!(ms.len(), 4);
    }

    #[test]
    fn deleted_tuples_are_invisible() {
        let mut d = small_db();
        let rid = d.schema().relation_id("R").unwrap();
        let victim = d
            .find_by_key(rid, &[delprop_relation::Value::int(1)])
            .unwrap();
        d.delete(victim);
        let ms = eval(&d, "Q(x, z) :- R(x, y), S(y, z)");
        assert_eq!(ms.len(), 1);
    }

    #[test]
    fn witnesses_point_at_matched_tuples() {
        let d = small_db();
        let ms = eval(&d, "Q(x, z) :- R(x, y), S(y, z)");
        for m in &ms {
            assert_eq!(m.witnesses.len(), 2);
            let r = d.tuple(m.witnesses[0]).unwrap();
            let s = d.tuple(m.witnesses[1]).unwrap();
            assert_eq!(r[1], s[0], "join column must agree");
        }
    }

    #[test]
    fn empty_relation_yields_no_matches() {
        let schema =
            Schema::from_relations([RelationSchema::new("E", 1, vec![0]).unwrap()]).unwrap();
        let d = Database::new(schema);
        let ms = eval(&d, "Q(x) :- E(x)");
        assert!(ms.is_empty());
    }
}
