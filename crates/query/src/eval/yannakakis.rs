//! The Yannakakis algorithm for α-acyclic conjunctive queries.
//!
//! Three passes over a join tree ([`super::jointree`]):
//!
//! 1. **bottom-up semijoin**: each parent keeps only rows that join with
//!    every child;
//! 2. **top-down semijoin**: each child keeps only rows that join with
//!    its (now reduced) parent — after this, every surviving row
//!    participates in at least one full answer (the *full reducer*);
//! 3. **bottom-up join**: assemble answers with witness lists.
//!
//! For full (project-free) acyclic queries this runs in
//! O(input + output), avoiding the intermediate blow-ups a bad join
//! order can cause — the right engine for the paper's forest-case
//! workloads, whose queries are acyclic by construction. Produces
//! exactly the same matches as the naive and hash-join engines (tested
//! against both).

use super::compile::{CompiledQuery, Slot};
use super::jointree::{self, JoinTree};
use super::QueryMatch;
use delprop_relation::{Database, TupleId, Value};
use std::collections::{HashMap, HashSet};

/// One per-atom row: the matched tuple and its variable bindings
/// (aligned to the atom's distinct variable slot list).
#[derive(Debug, Clone)]
struct AtomRow {
    tid: TupleId,
    bindings: Vec<Value>,
}

/// Evaluate via Yannakakis. Returns `None` if the query is cyclic (use
/// the hash-join engine then).
pub fn evaluate(db: &Database, query: &CompiledQuery) -> Option<Vec<QueryMatch>> {
    let tree = jointree::build(query)?;
    Some(run(db, query, &tree))
}

fn run(db: &Database, query: &CompiledQuery, tree: &JoinTree) -> Vec<QueryMatch> {
    let n = query.atoms.len();
    // Distinct variable slots per atom, in first-occurrence order.
    let atom_slots: Vec<Vec<usize>> = (0..n)
        .map(|ai| {
            let mut out = Vec::new();
            for s in &query.atoms[ai].slots {
                if let Slot::Var(v) = s {
                    if !out.contains(v) {
                        out.push(*v);
                    }
                }
            }
            out
        })
        .collect();

    // Phase 0: per-atom scan with constant and repeated-variable filters.
    let mut rows: Vec<Vec<AtomRow>> = (0..n)
        .map(|ai| {
            let atom = &query.atoms[ai];
            let mut out = Vec::new();
            'tuples: for (tid, tuple) in db.live_tuples(atom.relation) {
                let mut bindings: Vec<Option<Value>> = vec![None; atom_slots[ai].len()];
                for (pos, slot) in atom.slots.iter().enumerate() {
                    match slot {
                        Slot::Const(c) => {
                            if c != &tuple[pos] {
                                continue 'tuples;
                            }
                        }
                        Slot::Var(v) => {
                            let bi = atom_slots[ai].iter().position(|s| s == v).expect("listed");
                            match &bindings[bi] {
                                Some(prev) if prev != &tuple[pos] => continue 'tuples,
                                Some(_) => {}
                                None => bindings[bi] = Some(tuple[pos].clone()),
                            }
                        }
                    }
                }
                out.push(AtomRow {
                    tid,
                    bindings: bindings.into_iter().map(|b| b.expect("bound")).collect(),
                });
            }
            out
        })
        .collect();

    // Shared slots between an atom and its parent.
    let shared_with_parent: Vec<Vec<usize>> = (0..n)
        .map(|ai| match tree.parent[ai] {
            Some(p) => atom_slots[ai]
                .iter()
                .copied()
                .filter(|v| atom_slots[p].contains(v))
                .collect(),
            None => Vec::new(),
        })
        .collect();

    let project = |slots_of_atom: &[usize], shared: &[usize], row: &AtomRow| -> Vec<Value> {
        shared
            .iter()
            .map(|v| {
                let bi = slots_of_atom
                    .iter()
                    .position(|s| s == v)
                    .expect("shared slot");
                row.bindings[bi].clone()
            })
            .collect()
    };

    // Phase 1: bottom-up semijoin (children reduce parents).
    for &a in &tree.order {
        let Some(p) = tree.parent[a] else { continue };
        let shared = &shared_with_parent[a];
        let keys: HashSet<Vec<Value>> = rows[a]
            .iter()
            .map(|r| project(&atom_slots[a], shared, r))
            .collect();
        let parent_slots = atom_slots[p].clone();
        rows[p].retain(|r| keys.contains(&project(&parent_slots, shared, r)));
    }

    // Phase 2: top-down semijoin (parents reduce children).
    for &a in tree.order.iter().rev() {
        let Some(p) = tree.parent[a] else { continue };
        let shared = &shared_with_parent[a];
        let keys: HashSet<Vec<Value>> = rows[p]
            .iter()
            .map(|r| project(&atom_slots[p], shared, r))
            .collect();
        let child_slots = atom_slots[a].clone();
        rows[a].retain(|r| keys.contains(&project(&child_slots, shared, r)));
    }

    // Phase 3: bottom-up join. Each node carries partial matches over its
    // subtree: (assignment over all query vars, witnesses as (atom, tid)).
    type Partial = (Vec<Option<Value>>, Vec<(usize, TupleId)>);
    let mut partials: Vec<Vec<Partial>> = (0..n)
        .map(|ai| {
            rows[ai]
                .iter()
                .map(|r| {
                    let mut assignment = vec![None; query.num_vars()];
                    for (bi, v) in atom_slots[ai].iter().enumerate() {
                        assignment[*v] = Some(r.bindings[bi].clone());
                    }
                    (assignment, vec![(ai, r.tid)])
                })
                .collect()
        })
        .collect();

    for &a in &tree.order {
        let Some(p) = tree.parent[a] else { continue };
        // Join partials of subtree(a) into the parent's partials on the
        // slots assigned in both (for a proper join tree this is exactly
        // the edge's shared variables, but computing it per pair is
        // correct unconditionally).
        let child = std::mem::take(&mut partials[a]);
        let parent = std::mem::take(&mut partials[p]);
        // Index child partials by their values on shared_with_parent[a];
        // the subtree of `a` can only share those slots with the
        // parent-side subtree thanks to the running-intersection property.
        let shared = &shared_with_parent[a];
        let mut index: HashMap<Vec<Value>, Vec<&Partial>> = HashMap::new();
        for cp in &child {
            let key: Vec<Value> = shared
                .iter()
                .map(|&v| cp.0[v].clone().expect("edge slots are bound in child"))
                .collect();
            index.entry(key).or_default().push(cp);
        }
        let mut joined: Vec<Partial> = Vec::new();
        for pp in &parent {
            let key: Vec<Value> = shared
                .iter()
                .map(|&v| pp.0[v].clone().expect("edge slots are bound in parent"))
                .collect();
            let Some(matches) = index.get(&key) else {
                continue;
            };
            'cands: for cp in matches {
                let mut assignment = pp.0.clone();
                for (av, cv) in assignment.iter_mut().zip(cp.0.iter()) {
                    match (&*av, cv) {
                        (Some(x), Some(y)) if x != y => continue 'cands,
                        (None, Some(y)) => *av = Some(y.clone()),
                        _ => {}
                    }
                }
                let mut witnesses = pp.1.clone();
                witnesses.extend(cp.1.iter().copied());
                joined.push((assignment, witnesses));
            }
        }
        partials[p] = joined;
    }

    partials[tree.root]
        .drain(..)
        .map(|(assignment, mut witnesses)| {
            witnesses.sort_by_key(|&(ai, _)| ai);
            QueryMatch {
                assignment: assignment
                    .into_iter()
                    .map(|v| v.expect("all vars bound at root"))
                    .collect(),
                witnesses: witnesses.into_iter().map(|(_, t)| t).collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{naive, sort_matches, CompiledQuery};
    use crate::parse_query;
    use delprop_relation::{tup, Database, RelationSchema, Schema};

    fn db() -> Database {
        let schema = Schema::from_relations([
            RelationSchema::new("A", 2, vec![0]).unwrap(),
            RelationSchema::new("B", 2, vec![0]).unwrap(),
            RelationSchema::new("C", 2, vec![0]).unwrap(),
        ])
        .unwrap();
        let mut d = Database::new(schema);
        for i in 0..12i64 {
            d.insert("A", tup![i, i % 4]).unwrap();
            d.insert("B", tup![i, i % 3]).unwrap();
            d.insert("C", tup![i, i % 2]).unwrap();
        }
        d
    }

    fn check(src: &str) {
        let d = db();
        let q = parse_query(src).unwrap().bind(d.schema()).unwrap();
        let c = CompiledQuery::compile(&q);
        let mut expected = naive::evaluate(&d, &c);
        let mut got = evaluate(&d, &c).expect("acyclic");
        sort_matches(&mut expected);
        sort_matches(&mut got);
        assert_eq!(expected, got, "mismatch for {src}");
    }

    #[test]
    fn matches_naive_on_chain() {
        check("Q(x, y, z) :- A(x, y), B(y, z)");
        check("Q(x, y, z, w) :- A(x, y), B(y, z), C(z, w)");
    }

    #[test]
    fn matches_naive_on_star_and_constants() {
        check("Q(x, y, z) :- A(x, y), B(x, z)");
        check("Q(x) :- A(x, 2)");
        check("Q(x, y, z) :- A(x, y), B(x, z), C(x, 1)");
    }

    #[test]
    fn matches_naive_on_self_join() {
        check("Q(x, y, u) :- A(x, y), A(y, u)");
    }

    #[test]
    fn matches_naive_on_cartesian() {
        check("Q(x, y, u, v) :- A(x, y), C(u, v)");
    }

    #[test]
    fn cyclic_query_returns_none() {
        let d = db();
        let q = parse_query("Q(x, y, z) :- A(x, y), B(y, z), C(z, x)")
            .unwrap()
            .bind(d.schema())
            .unwrap();
        assert!(evaluate(&d, &CompiledQuery::compile(&q)).is_none());
    }

    #[test]
    fn semijoin_reduction_prunes_dangling_rows() {
        // A has 12 rows but only those with a B-partner on y survive the
        // reducer; the join result must still be exactly right when most
        // rows dangle.
        let schema = Schema::from_relations([
            RelationSchema::new("A", 2, vec![0]).unwrap(),
            RelationSchema::new("B", 2, vec![0]).unwrap(),
        ])
        .unwrap();
        let mut d = Database::new(schema);
        for i in 0..20i64 {
            d.insert("A", tup![i, i]).unwrap();
        }
        d.insert("B", tup![5, 50]).unwrap();
        let q = parse_query("Q(x, y, z) :- A(x, y), B(y, z)")
            .unwrap()
            .bind(d.schema())
            .unwrap();
        let got = evaluate(&d, &CompiledQuery::compile(&q)).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].assignment, vec![5.into(), 5.into(), 50.into()]);
    }
}
