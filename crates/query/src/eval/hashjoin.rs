//! Hash-join evaluator: the production engine.
//!
//! Atoms are processed in a greedy connectivity order (each step prefers an
//! atom sharing the most already-bound variables, breaking ties toward
//! smaller relations). For each step, live tuples of the atom's relation
//! are indexed by the values at its bound positions; the current partial
//! matches probe that index. This avoids the naive engine's full scans per
//! partial match and evaluates acyclic joins in time close to
//! input + output.

use super::{CompiledQuery, QueryMatch, Slot};
use delprop_relation::{Database, TupleId, Value};
use std::collections::HashMap;

/// Evaluate `query` on the live tuples of `db`, returning all matches.
pub fn evaluate(db: &Database, query: &CompiledQuery) -> Vec<QueryMatch> {
    let order = atom_order(db, query);

    // Partial matches: assignment + witnesses aligned to `order` prefix.
    let mut partials: Vec<(Vec<Option<Value>>, Vec<TupleId>)> =
        vec![(vec![None; query.num_vars()], Vec::new())];

    for &ai in &order {
        if partials.is_empty() {
            return Vec::new();
        }
        let atom = &query.atoms[ai];
        // Positions whose slot is a variable already bound in every partial
        // (all partials at this depth bind the same variable set).
        let bound_vars: Vec<bool> = {
            let (a0, _) = &partials[0];
            (0..query.num_vars()).map(|s| a0[s].is_some()).collect()
        };
        let mut probe_positions: Vec<(usize, usize)> = Vec::new(); // (pos, slot)
        for (pos, slot) in atom.slots.iter().enumerate() {
            if let Slot::Var(s) = slot {
                if bound_vars[*s] {
                    probe_positions.push((pos, *s));
                }
            }
        }

        // Build index: probe-key -> candidate (tid, tuple) list. Constant
        // positions are filtered during the build.
        let mut index: HashMap<Vec<Value>, Vec<TupleId>> = HashMap::new();
        'tuples: for (tid, tuple) in db.live_tuples(atom.relation) {
            for (pos, slot) in atom.slots.iter().enumerate() {
                match slot {
                    Slot::Const(c) if c != &tuple[pos] => continue 'tuples,
                    // Repeated variables within the atom are checked at
                    // probe time (the first occurrence may be unbound).
                    _ => {}
                }
            }
            let key: Vec<Value> = probe_positions
                .iter()
                .map(|&(pos, _)| tuple[pos].clone())
                .collect();
            index.entry(key).or_default().push(tid);
        }

        let mut next: Vec<(Vec<Option<Value>>, Vec<TupleId>)> = Vec::new();
        for (assignment, witnesses) in &partials {
            let key: Vec<Value> = probe_positions
                .iter()
                .map(|&(_, s)| assignment[s].clone().expect("probe slot is bound"))
                .collect();
            let Some(candidates) = index.get(&key) else {
                continue;
            };
            'cand: for &tid in candidates {
                let tuple = db.tuple(tid).expect("indexed tuple exists");
                let mut new_assignment = assignment.clone();
                for (pos, slot) in atom.slots.iter().enumerate() {
                    if let Slot::Var(s) = slot {
                        match &new_assignment[*s] {
                            Some(v) => {
                                if v != &tuple[pos] {
                                    continue 'cand; // repeated-var clash
                                }
                            }
                            None => new_assignment[*s] = Some(tuple[pos].clone()),
                        }
                    }
                }
                let mut new_witnesses = witnesses.clone();
                new_witnesses.push(tid);
                next.push((new_assignment, new_witnesses));
            }
        }
        partials = next;
    }

    // Restore body-atom order for witnesses: `order[i]` produced witness i.
    let mut inverse = vec![0usize; order.len()];
    for (step, &ai) in order.iter().enumerate() {
        inverse[ai] = step;
    }

    partials
        .into_iter()
        .map(|(assignment, witnesses)| QueryMatch {
            assignment: assignment
                .into_iter()
                .map(|v| v.expect("all vars bound after all atoms"))
                .collect(),
            witnesses: (0..order.len()).map(|ai| witnesses[inverse[ai]]).collect(),
        })
        .collect()
}

/// Greedy join order: start from the smallest relation, then repeatedly take
/// the atom sharing the most bound variables (ties: smaller relation).
#[allow(clippy::needless_range_loop)] // parallel arrays indexed together
fn atom_order(db: &Database, query: &CompiledQuery) -> Vec<usize> {
    let n = query.atoms.len();
    let size = |ai: usize| db.relation(query.atoms[ai].relation).len();
    let vars_of = |ai: usize| -> Vec<usize> {
        query.atoms[ai]
            .slots
            .iter()
            .filter_map(|s| match s {
                Slot::Var(v) => Some(*v),
                Slot::Const(_) => None,
            })
            .collect()
    };
    let mut chosen = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound = vec![false; query.num_vars()];
    for step in 0..n {
        let mut best: Option<(usize, usize, usize)> = None; // (ai, shared, size)
        for ai in 0..n {
            if used[ai] {
                continue;
            }
            let shared = vars_of(ai).iter().filter(|&&v| bound[v]).count();
            let sz = size(ai);
            let better = match best {
                None => true,
                Some((_, bs, bsz)) => {
                    // After the first atom prefer connectivity; always break
                    // ties toward the smaller relation.
                    (step > 0 && shared > bs) || ((step == 0 || shared == bs) && sz < bsz)
                }
            };
            if better {
                best = Some((ai, shared, sz));
            }
        }
        let (ai, _, _) = best.expect("unused atom remains");
        used[ai] = true;
        for v in vars_of(ai) {
            bound[v] = true;
        }
        chosen.push(ai);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{naive, sort_matches, CompiledQuery};
    use crate::parse::parse_query;
    use delprop_relation::{tup, Database, RelationSchema, Schema};

    fn chain_db(n: i64) -> Database {
        let schema = Schema::from_relations([
            RelationSchema::new("A", 2, vec![0]).unwrap(),
            RelationSchema::new("B", 2, vec![0]).unwrap(),
            RelationSchema::new("C", 2, vec![0]).unwrap(),
        ])
        .unwrap();
        let mut d = Database::new(schema);
        for i in 0..n {
            d.insert("A", tup![i, i + 1]).unwrap();
            d.insert("B", tup![i + 1, i + 2]).unwrap();
            d.insert("C", tup![i + 2, i + 3]).unwrap();
        }
        d
    }

    fn both(d: &Database, src: &str) -> (Vec<QueryMatch>, Vec<QueryMatch>) {
        let q = parse_query(src).unwrap().bind(d.schema()).unwrap();
        let c = CompiledQuery::compile(&q);
        let mut a = naive::evaluate(d, &c);
        let mut b = evaluate(d, &c);
        sort_matches(&mut a);
        sort_matches(&mut b);
        (a, b)
    }

    #[test]
    fn matches_naive_on_chain_join() {
        let d = chain_db(20);
        let (a, b) = both(&d, "Q(x, y, z, w) :- A(x, y), B(y, z), C(z, w)");
        assert_eq!(a, b);
        assert_eq!(a.len(), 20); // every A(i, i+1) extends through B and C
    }

    #[test]
    fn matches_naive_with_constants_and_self_joins() {
        let d = chain_db(10);
        let (a, b) = both(&d, "Q(x, y, u) :- A(x, y), A(y, u)");
        assert_eq!(a, b);
        let (a, b) = both(&d, "Q(x) :- A(x, 5)");
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn cartesian_product_when_disconnected() {
        let d = chain_db(3);
        let (a, b) = both(&d, "Q(x, y, u, v) :- A(x, y), B(u, v)");
        assert_eq!(a, b);
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn repeated_var_within_atom() {
        let schema =
            Schema::from_relations([RelationSchema::new("P", 2, vec![0, 1]).unwrap()]).unwrap();
        let mut d = Database::new(schema);
        d.insert("P", tup![1, 1]).unwrap();
        d.insert("P", tup![1, 2]).unwrap();
        d.insert("P", tup![2, 2]).unwrap();
        let (a, b) = both(&d, "Q(x) :- P(x, x)");
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn empty_result_propagates() {
        let d = chain_db(2);
        let (a, b) = both(&d, "Q(x) :- A(x, 999)");
        assert_eq!(a, b);
        assert!(b.is_empty());
    }

    #[test]
    fn witness_order_matches_body_order() {
        let d = chain_db(5);
        let q = parse_query("Q(x, y, z) :- B(y, z), A(x, y)")
            .unwrap()
            .bind(d.schema())
            .unwrap();
        let c = CompiledQuery::compile(&q);
        for m in evaluate(&d, &c) {
            // witness 0 must be a B tuple, witness 1 an A tuple
            let bid = d.schema().relation_id("B").unwrap();
            let aid = d.schema().relation_id("A").unwrap();
            assert_eq!(m.witnesses[0].relation, bid);
            assert_eq!(m.witnesses[1].relation, aid);
        }
    }
}
