//! Query compilation: map variable names to dense slots so evaluation can
//! use flat vectors instead of name maps.

use crate::ast::{BoundQuery, Term};
use delprop_relation::{RelationId, Value};

/// A term with its variable resolved to a dense slot index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Slot {
    /// Variable slot index into the assignment vector.
    Var(usize),
    /// Constant that must match exactly.
    Const(Value),
}

/// A compiled atom: relation + per-position slots.
#[derive(Debug, Clone)]
pub struct CompiledAtom {
    /// Resolved relation.
    pub relation: RelationId,
    /// One slot per attribute position.
    pub slots: Vec<Slot>,
}

/// A compiled query: dense variable numbering plus head projection.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// Variable names in slot order (first occurrence order).
    pub vars: Vec<String>,
    /// Compiled atoms in body order.
    pub atoms: Vec<CompiledAtom>,
    /// Head as slot indices (head vars are always body vars, so this is
    /// total).
    pub head_slots: Vec<usize>,
}

impl CompiledQuery {
    /// Compile a bound query.
    pub fn compile(query: &BoundQuery) -> CompiledQuery {
        let mut vars: Vec<String> = Vec::new();
        let slot_of = |name: &str, vars: &mut Vec<String>| -> usize {
            match vars.iter().position(|v| v == name) {
                Some(i) => i,
                None => {
                    vars.push(name.to_string());
                    vars.len() - 1
                }
            }
        };
        let atoms = query
            .atoms
            .iter()
            .map(|a| CompiledAtom {
                relation: a.relation,
                slots: a
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => Slot::Var(slot_of(v, &mut vars)),
                        Term::Const(c) => Slot::Const(c.clone()),
                    })
                    .collect(),
            })
            .collect();
        let head_slots = query
            .head
            .iter()
            .map(|h| {
                vars.iter()
                    .position(|v| v == h)
                    .expect("bound query head vars occur in body")
            })
            .collect();
        CompiledQuery {
            vars,
            atoms,
            head_slots,
        }
    }

    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;
    use delprop_relation::{RelationSchema, Schema};

    fn schema() -> Schema {
        Schema::from_relations([
            RelationSchema::new("T1", 2, vec![0]).unwrap(),
            RelationSchema::new("T2", 3, vec![0]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn compiles_slots_in_first_occurrence_order() {
        let q = parse_query("Q(x, z) :- T1(x, y), T2(y, z, 'c')")
            .unwrap()
            .bind(&schema())
            .unwrap();
        let c = CompiledQuery::compile(&q);
        assert_eq!(c.vars, vec!["x", "y", "z"]);
        assert_eq!(c.head_slots, vec![0, 2]);
        assert_eq!(c.atoms[0].slots, vec![Slot::Var(0), Slot::Var(1)]);
        assert_eq!(
            c.atoms[1].slots,
            vec![
                Slot::Var(1),
                Slot::Var(2),
                Slot::Const(delprop_relation::Value::str("c"))
            ]
        );
    }

    #[test]
    fn repeated_head_vars_share_slots() {
        let q = parse_query("Q(x, x) :- T1(x, y)")
            .unwrap()
            .bind(&schema())
            .unwrap();
        let c = CompiledQuery::compile(&q);
        assert_eq!(c.head_slots, vec![0, 0]);
        assert_eq!(c.num_vars(), 2);
    }
}
