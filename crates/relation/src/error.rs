//! Errors raised by the relational substrate.

use crate::tuple::Tuple;
use std::fmt;

/// Errors from schema/instance construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A tuple's arity does not match its relation schema.
    ArityMismatch {
        relation: String,
        expected: usize,
        got: usize,
    },
    /// Inserting a tuple whose key values collide with an existing live
    /// tuple. Keys are hard constraints in this library: the paper's
    /// key-preserving machinery is unsound without them.
    KeyViolation {
        relation: String,
        tuple: Tuple,
        existing: Tuple,
    },
    /// Referencing a relation name absent from the schema.
    UnknownRelation(String),
    /// Declaring two relations with the same name.
    DuplicateRelation(String),
    /// A key position outside the relation's arity.
    InvalidKeyPosition {
        relation: String,
        position: usize,
        arity: usize,
    },
    /// A relation schema with an empty key. Every atom of a key-preserving
    /// query must have a key ("there is at least one key attribute
    /// position", §II.B), so keyless relations are rejected up front.
    EmptyKey(String),
    /// A relation schema with zero arity.
    ZeroArity(String),
    /// A tuple id that does not refer to a live tuple.
    InvalidTupleId { relation: usize, index: usize },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for relation {relation}: expected {expected}, got {got}"
            ),
            RelationError::KeyViolation {
                relation,
                tuple,
                existing,
            } => write!(
                f,
                "key violation in relation {relation}: {tuple} collides with existing {existing}"
            ),
            RelationError::UnknownRelation(name) => write!(f, "unknown relation {name}"),
            RelationError::DuplicateRelation(name) => {
                write!(f, "duplicate relation {name}")
            }
            RelationError::InvalidKeyPosition {
                relation,
                position,
                arity,
            } => write!(
                f,
                "invalid key position {position} for relation {relation} of arity {arity}"
            ),
            RelationError::EmptyKey(name) => {
                write!(f, "relation {name} declares an empty key")
            }
            RelationError::ZeroArity(name) => {
                write!(f, "relation {name} declares zero arity")
            }
            RelationError::InvalidTupleId { relation, index } => {
                write!(f, "invalid tuple id (relation #{relation}, index {index})")
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    #[test]
    fn display_messages_mention_relation() {
        let e = RelationError::ArityMismatch {
            relation: "T1".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("T1"));
        let e = RelationError::KeyViolation {
            relation: "T".into(),
            tuple: tup![1],
            existing: tup![2],
        };
        assert!(e.to_string().contains("key violation"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&RelationError::UnknownRelation("X".into()));
    }
}
