//! A key-enforcing tuple store for one relation.
//!
//! Tuples get dense, stable indices; deletion tombstones a slot instead of
//! shifting, so `TupleId`s held by views, witnesses, and solvers stay valid
//! across deletions. Deletion propagation explores many candidate deletion
//! sets, so [`Relation::delete`]/[`Relation::restore`] are O(1).

use crate::error::RelationError;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// Storage for the tuples of a single relation, enforcing its key.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    tuples: Vec<Tuple>,
    live: Vec<bool>,
    live_count: usize,
    /// key values -> slot index of the live tuple carrying them
    key_index: HashMap<Vec<Value>, usize>,
}

impl Relation {
    /// Empty store.
    pub fn new() -> Self {
        Relation::default()
    }

    /// Insert a tuple, enforcing arity and the key of `schema`.
    /// Returns the slot index of the new tuple.
    pub fn insert(
        &mut self,
        schema: &RelationSchema,
        tuple: Tuple,
    ) -> Result<usize, RelationError> {
        if tuple.arity() != schema.arity() {
            return Err(RelationError::ArityMismatch {
                relation: schema.name().to_string(),
                expected: schema.arity(),
                got: tuple.arity(),
            });
        }
        let key = tuple.key_values(schema.key());
        if let Some(&slot) = self.key_index.get(&key) {
            return Err(RelationError::KeyViolation {
                relation: schema.name().to_string(),
                tuple,
                existing: self.tuples[slot].clone(),
            });
        }
        let slot = self.tuples.len();
        self.key_index.insert(key, slot);
        self.tuples.push(tuple);
        self.live.push(true);
        self.live_count += 1;
        Ok(slot)
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether there are no live tuples.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Total slots ever allocated (live + tombstoned).
    pub fn capacity(&self) -> usize {
        self.tuples.len()
    }

    /// Whether slot `idx` holds a live tuple.
    pub fn is_live(&self, idx: usize) -> bool {
        self.live.get(idx).copied().unwrap_or(false)
    }

    /// The tuple at slot `idx`, live or tombstoned.
    pub fn tuple(&self, idx: usize) -> Option<&Tuple> {
        self.tuples.get(idx)
    }

    /// The live tuple at slot `idx`.
    pub fn live_tuple(&self, idx: usize) -> Option<&Tuple> {
        if self.is_live(idx) {
            self.tuples.get(idx)
        } else {
            None
        }
    }

    /// Slot of the live tuple with the given key values.
    pub fn find_by_key(&self, key: &[Value]) -> Option<usize> {
        self.key_index.get(key).copied().filter(|&s| self.live[s])
    }

    /// Tombstone slot `idx`. Returns whether it was live.
    ///
    /// The key index entry is retained so a later [`Relation::restore`] can
    /// revive the tuple; `find_by_key` filters on liveness.
    pub fn delete(&mut self, idx: usize) -> bool {
        if self.is_live(idx) {
            self.live[idx] = false;
            self.live_count -= 1;
            true
        } else {
            false
        }
    }

    /// Revive a tombstoned slot. Returns whether it was tombstoned.
    pub fn restore(&mut self, idx: usize) -> bool {
        if idx < self.live.len() && !self.live[idx] {
            self.live[idx] = true;
            self.live_count += 1;
            true
        } else {
            false
        }
    }

    /// Iterate `(slot, tuple)` over live tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Tuple)> {
        self.tuples
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.live[i])
    }

    /// Iterate `(slot, tuple)` over all slots, live or not.
    pub fn iter_all(&self) -> impl Iterator<Item = (usize, &Tuple)> {
        self.tuples.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    fn schema() -> RelationSchema {
        RelationSchema::new("T", 2, vec![0]).unwrap()
    }

    #[test]
    fn insert_and_len() {
        let s = schema();
        let mut r = Relation::new();
        assert!(r.is_empty());
        r.insert(&s, tup![1, "a"]).unwrap();
        r.insert(&s, tup![2, "b"]).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn arity_enforced() {
        let s = schema();
        let mut r = Relation::new();
        assert!(matches!(
            r.insert(&s, tup![1]),
            Err(RelationError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn key_enforced() {
        let s = schema();
        let mut r = Relation::new();
        r.insert(&s, tup![1, "a"]).unwrap();
        // Same key, different payload: rejected.
        assert!(matches!(
            r.insert(&s, tup![1, "b"]),
            Err(RelationError::KeyViolation { .. })
        ));
        // Different key: fine.
        r.insert(&s, tup![2, "a"]).unwrap();
    }

    #[test]
    fn delete_restore_roundtrip() {
        let s = schema();
        let mut r = Relation::new();
        let slot = r.insert(&s, tup![1, "a"]).unwrap();
        assert!(r.delete(slot));
        assert!(!r.delete(slot), "double delete is a no-op");
        assert_eq!(r.len(), 0);
        assert!(r.find_by_key(&[Value::int(1)]).is_none());
        assert!(r.restore(slot));
        assert!(!r.restore(slot), "double restore is a no-op");
        assert_eq!(r.find_by_key(&[Value::int(1)]), Some(slot));
    }

    #[test]
    fn iter_skips_tombstones() {
        let s = schema();
        let mut r = Relation::new();
        let a = r.insert(&s, tup![1, "a"]).unwrap();
        let b = r.insert(&s, tup![2, "b"]).unwrap();
        r.delete(a);
        let live: Vec<usize> = r.iter().map(|(i, _)| i).collect();
        assert_eq!(live, vec![b]);
        assert_eq!(r.iter_all().count(), 2);
        assert_eq!(r.capacity(), 2);
    }

    #[test]
    fn find_by_key_uses_key_positions() {
        let s = RelationSchema::new("T", 3, vec![0, 2]).unwrap();
        let mut r = Relation::new();
        let slot = r.insert(&s, tup!["k1", "x", "k2"]).unwrap();
        assert_eq!(
            r.find_by_key(&[Value::str("k1"), Value::str("k2")]),
            Some(slot)
        );
        assert_eq!(r.find_by_key(&[Value::str("k1"), Value::str("zz")]), None);
    }
}
