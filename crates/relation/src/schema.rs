//! Schemas: relation declarations with keys.
//!
//! A schema `S` is a finite sequence of distinct relations, each with an
//! arity and a non-empty key (§II.A of the paper, plus the key requirement
//! of §II.B). Key positions are 0-based attribute indices.

use crate::error::RelationError;
use std::collections::HashMap;
use std::fmt;

/// Index of a relation within a [`Schema`] (dense, stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub usize);

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Declaration of one relation: name, arity, key positions, optional
/// attribute names (used only for pretty-printing examples).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    arity: usize,
    key: Vec<usize>,
    attr_names: Option<Vec<String>>,
}

impl RelationSchema {
    /// Declare a relation. `key` is a set of 0-based positions; it is
    /// deduplicated and sorted. Errors if empty, out of range, or arity 0.
    pub fn new(
        name: impl Into<String>,
        arity: usize,
        key: impl Into<Vec<usize>>,
    ) -> Result<Self, RelationError> {
        let name = name.into();
        if arity == 0 {
            return Err(RelationError::ZeroArity(name));
        }
        let mut key = key.into();
        key.sort_unstable();
        key.dedup();
        if key.is_empty() {
            return Err(RelationError::EmptyKey(name));
        }
        if let Some(&bad) = key.iter().find(|&&p| p >= arity) {
            return Err(RelationError::InvalidKeyPosition {
                relation: name,
                position: bad,
                arity,
            });
        }
        Ok(RelationSchema {
            name,
            arity,
            key,
            attr_names: None,
        })
    }

    /// Attach human-readable attribute names (for display only).
    ///
    /// # Panics
    /// Panics if the number of names differs from the arity.
    pub fn with_attr_names(mut self, names: &[&str]) -> Self {
        assert_eq!(
            names.len(),
            self.arity,
            "attribute name count must equal arity"
        );
        self.attr_names = Some(names.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Sorted, deduplicated key positions.
    pub fn key(&self) -> &[usize] {
        &self.key
    }

    /// Whether `pos` is a key position.
    pub fn is_key_position(&self, pos: usize) -> bool {
        self.key.binary_search(&pos).is_ok()
    }

    /// Attribute display name for position `pos`.
    pub fn attr_name(&self, pos: usize) -> String {
        match &self.attr_names {
            Some(names) => names[pos].clone(),
            None => format!("#{pos}"),
        }
    }
}

/// A database schema: an ordered list of distinct relation declarations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    relations: Vec<RelationSchema>,
    by_name: HashMap<String, RelationId>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Build a schema from declarations, erroring on duplicate names.
    pub fn from_relations(
        rels: impl IntoIterator<Item = RelationSchema>,
    ) -> Result<Self, RelationError> {
        let mut s = Schema::new();
        for r in rels {
            s.add(r)?;
        }
        Ok(s)
    }

    /// Add one relation declaration; returns its id.
    pub fn add(&mut self, rel: RelationSchema) -> Result<RelationId, RelationError> {
        if self.by_name.contains_key(rel.name()) {
            return Err(RelationError::DuplicateRelation(rel.name().to_string()));
        }
        let id = RelationId(self.relations.len());
        self.by_name.insert(rel.name().to_string(), id);
        self.relations.push(rel);
        Ok(id)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Look a relation up by name.
    pub fn relation_id(&self, name: &str) -> Result<RelationId, RelationError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| RelationError::UnknownRelation(name.to_string()))
    }

    /// The declaration for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range (ids are only minted by this schema).
    pub fn relation(&self, id: RelationId) -> &RelationSchema {
        &self.relations[id.0]
    }

    /// Iterate `(id, declaration)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (RelationId, &RelationSchema)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelationId(i), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_schema_validates() {
        assert!(RelationSchema::new("T", 0, vec![0]).is_err());
        assert!(matches!(
            RelationSchema::new("T", 2, Vec::<usize>::new()),
            Err(RelationError::EmptyKey(_))
        ));
        assert!(matches!(
            RelationSchema::new("T", 2, vec![2]),
            Err(RelationError::InvalidKeyPosition { .. })
        ));
        let r = RelationSchema::new("T", 3, vec![1, 0, 1]).unwrap();
        assert_eq!(r.key(), &[0, 1]);
        assert!(r.is_key_position(0));
        assert!(!r.is_key_position(2));
    }

    #[test]
    fn schema_rejects_duplicates() {
        let mut s = Schema::new();
        s.add(RelationSchema::new("T", 1, vec![0]).unwrap())
            .unwrap();
        assert!(matches!(
            s.add(RelationSchema::new("T", 2, vec![0]).unwrap()),
            Err(RelationError::DuplicateRelation(_))
        ));
    }

    #[test]
    fn lookup_by_name() {
        let s = Schema::from_relations([
            RelationSchema::new("A", 1, vec![0]).unwrap(),
            RelationSchema::new("B", 2, vec![0]).unwrap(),
        ])
        .unwrap();
        assert_eq!(s.relation_id("B").unwrap(), RelationId(1));
        assert!(s.relation_id("C").is_err());
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn attr_names() {
        let r = RelationSchema::new("Author", 2, vec![0, 1])
            .unwrap()
            .with_attr_names(&["AuName", "Journal"]);
        assert_eq!(r.attr_name(0), "AuName");
        let plain = RelationSchema::new("T", 1, vec![0]).unwrap();
        assert_eq!(plain.attr_name(0), "#0");
    }

    #[test]
    #[should_panic(expected = "attribute name count")]
    fn attr_names_wrong_count_panics() {
        let _ = RelationSchema::new("T", 2, vec![0])
            .unwrap()
            .with_attr_names(&["only-one"]);
    }

    #[test]
    fn iter_in_declaration_order() {
        let s = Schema::from_relations([
            RelationSchema::new("A", 1, vec![0]).unwrap(),
            RelationSchema::new("B", 1, vec![0]).unwrap(),
        ])
        .unwrap();
        let names: Vec<_> = s.iter().map(|(_, r)| r.name().to_string()).collect();
        assert_eq!(names, vec!["A", "B"]);
    }
}
