//! Database instances: one [`Relation`] store per schema relation, plus
//! stable tuple identities and bulk delete/restore used by the solvers.

use crate::error::RelationError;
use crate::relation::Relation;
use crate::schema::{RelationId, RelationSchema, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// Globally stable identity of a base tuple: (relation, slot).
///
/// Tuple ids survive deletions (slots are tombstoned, never reused), so a
/// solution `ΔD` is simply a set of `TupleId`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// Which relation the tuple lives in.
    pub relation: RelationId,
    /// Slot within that relation's store.
    pub index: usize,
}

impl TupleId {
    /// Construct a tuple id.
    pub fn new(relation: RelationId, index: usize) -> Self {
        TupleId { relation, index }
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.relation, self.index)
    }
}

/// A database instance `D` over a [`Schema`].
#[derive(Debug, Clone)]
pub struct Database {
    schema: Schema,
    relations: Vec<Relation>,
}

impl Database {
    /// Empty instance over `schema`.
    pub fn new(schema: Schema) -> Self {
        let relations = (0..schema.len()).map(|_| Relation::new()).collect();
        Database { schema, relations }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Insert a tuple into the named relation.
    pub fn insert(&mut self, relation: &str, tuple: Tuple) -> Result<TupleId, RelationError> {
        let id = self.schema.relation_id(relation)?;
        self.insert_by_id(id, tuple)
    }

    /// Insert a tuple into relation `id`.
    pub fn insert_by_id(&mut self, id: RelationId, tuple: Tuple) -> Result<TupleId, RelationError> {
        let decl = self.schema.relation(id).clone();
        let slot = self.relations[id.0].insert(&decl, tuple)?;
        Ok(TupleId::new(id, slot))
    }

    /// Insert many tuples into the named relation.
    pub fn insert_all<I>(
        &mut self,
        relation: &str,
        tuples: I,
    ) -> Result<Vec<TupleId>, RelationError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let id = self.schema.relation_id(relation)?;
        tuples
            .into_iter()
            .map(|t| self.insert_by_id(id, t))
            .collect()
    }

    /// The relation store for `id`.
    pub fn relation(&self, id: RelationId) -> &Relation {
        &self.relations[id.0]
    }

    /// The declaration for `id` (convenience passthrough).
    pub fn relation_schema(&self, id: RelationId) -> &RelationSchema {
        self.schema.relation(id)
    }

    /// The tuple behind `id`, whether live or tombstoned.
    pub fn tuple(&self, id: TupleId) -> Option<&Tuple> {
        self.relations.get(id.relation.0)?.tuple(id.index)
    }

    /// Whether `id` refers to a live tuple.
    pub fn is_live(&self, id: TupleId) -> bool {
        self.relations
            .get(id.relation.0)
            .map(|r| r.is_live(id.index))
            .unwrap_or(false)
    }

    /// Total number of live tuples across all relations (the instance size
    /// `|D|` used in the paper's complexity statements).
    pub fn len(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Whether the instance has no live tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tombstone one tuple. Returns whether it was live.
    pub fn delete(&mut self, id: TupleId) -> bool {
        self.relations
            .get_mut(id.relation.0)
            .map(|r| r.delete(id.index))
            .unwrap_or(false)
    }

    /// Revive one tombstoned tuple. Returns whether it was tombstoned.
    pub fn restore(&mut self, id: TupleId) -> bool {
        self.relations
            .get_mut(id.relation.0)
            .map(|r| r.restore(id.index))
            .unwrap_or(false)
    }

    /// Tombstone a batch `ΔD`, returning the ids that were actually live
    /// (pass the return value to [`Database::restore_all`] to undo).
    pub fn delete_all(&mut self, ids: &[TupleId]) -> Vec<TupleId> {
        ids.iter().copied().filter(|&id| self.delete(id)).collect()
    }

    /// Revive a batch.
    pub fn restore_all(&mut self, ids: &[TupleId]) {
        for &id in ids {
            self.restore(id);
        }
    }

    /// Find the live tuple of relation `id` matching the given key values.
    pub fn find_by_key(&self, id: RelationId, key: &[Value]) -> Option<TupleId> {
        self.relations[id.0]
            .find_by_key(key)
            .map(|slot| TupleId::new(id, slot))
    }

    /// Iterate all live tuple ids across the instance.
    pub fn live_ids(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.relations.iter().enumerate().flat_map(|(ri, rel)| {
            rel.iter()
                .map(move |(slot, _)| TupleId::new(RelationId(ri), slot))
        })
    }

    /// Iterate `(id, tuple)` over live tuples of one relation.
    pub fn live_tuples(&self, id: RelationId) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.relations[id.0]
            .iter()
            .map(move |(slot, t)| (TupleId::new(id, slot), t))
    }

    /// Render the instance for example programs: one block per relation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (id, decl) in self.schema.iter() {
            out.push_str(decl.name());
            out.push('\n');
            for (_, t) in self.relations[id.0].iter() {
                out.push_str(&format!("  {t}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;

    fn db() -> Database {
        let schema = Schema::from_relations([
            RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
            RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
        ])
        .unwrap();
        Database::new(schema)
    }

    #[test]
    fn insert_and_lookup() {
        let mut d = db();
        let id = d.insert("T1", tup!["John", "TKDE"]).unwrap();
        assert!(d.is_live(id));
        assert_eq!(d.tuple(id), Some(&tup!["John", "TKDE"]));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn unknown_relation_rejected() {
        let mut d = db();
        assert!(d.insert("Nope", tup![1]).is_err());
    }

    #[test]
    fn delete_and_restore_batch() {
        let mut d = db();
        let a = d.insert("T1", tup!["a", "x"]).unwrap();
        let b = d.insert("T1", tup!["b", "x"]).unwrap();
        let c = d.insert("T2", tup!["x", "y", 1]).unwrap();
        let undone = d.delete_all(&[a, c, a]); // duplicate delete ignored
        assert_eq!(undone, vec![a, c]);
        assert_eq!(d.len(), 1);
        assert!(d.is_live(b));
        d.restore_all(&undone);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn find_by_key_respects_liveness() {
        let mut d = db();
        let t2 = d.schema().relation_id("T2").unwrap();
        let id = d.insert("T2", tup!["TKDE", "XML", 30]).unwrap();
        let key = vec![Value::str("TKDE"), Value::str("XML")];
        assert_eq!(d.find_by_key(t2, &key), Some(id));
        d.delete(id);
        assert_eq!(d.find_by_key(t2, &key), None);
    }

    #[test]
    fn live_ids_spans_relations() {
        let mut d = db();
        d.insert("T1", tup!["a", "x"]).unwrap();
        d.insert("T2", tup!["x", "y", 1]).unwrap();
        assert_eq!(d.live_ids().count(), 2);
    }

    #[test]
    fn insert_all_rolls_through() {
        let mut d = db();
        let ids = d
            .insert_all("T1", vec![tup!["a", "1"], tup!["b", "2"]])
            .unwrap();
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn render_contains_names_and_tuples() {
        let mut d = db();
        d.insert("T1", tup!["John", "TKDE"]).unwrap();
        let s = d.render();
        assert!(s.contains("T1"));
        assert!(s.contains("(John, TKDE)"));
    }
}
