//! # delprop-relation — relational storage substrate
//!
//! The paper's setting (§II.A) is a vanilla relational model with one twist
//! that everything downstream relies on: **every relation has a key**, and
//! the key is enforced as a hard constraint. This crate provides:
//!
//! - [`Value`] / [`Tuple`]: constants and rows;
//! - [`RelationSchema`] / [`Schema`]: relation declarations with non-empty
//!   keys;
//! - [`Relation`]: a key-enforcing tuple store with tombstoned deletion so
//!   [`TupleId`]s stay stable while solvers explore deletion sets;
//! - [`Database`]: the instance `D`, with O(1) `delete`/`restore` and
//!   key-based lookup ([`Database::find_by_key`]) — the primitive behind
//!   unique-witness provenance for key-preserving queries.

mod database;
mod error;
mod fd;
mod relation;
mod schema;
mod tuple;
mod value;

pub use database::{Database, TupleId};
pub use error::RelationError;
pub use fd::{FunctionalDependency, RelationFds, SchemaFds};
pub use relation::Relation;
pub use schema::{RelationId, RelationSchema, Schema};
pub use tuple::Tuple;
pub use value::Value;
