//! Constant values stored in relations.
//!
//! The paper's domain `Const` is an abstract set of constants; real
//! deletion-propagation workloads mix integers (surrogate keys, counts) and
//! strings (names, topics). [`Value`] covers both. String payloads are
//! reference-counted so that cloning a tuple is cheap, which matters because
//! view materialization and witness tracking copy values freely.

use std::fmt;
use std::sync::Arc;

/// A single constant from the domain `Const`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Integer constant. Also used for invented distinct padding values in
    /// hardness gadgets (Theorem 1/2 constructions).
    Int(i64),
    /// String constant. Shared storage: cloning is a refcount bump.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Return the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Return the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::str("TKDE").to_string(), "TKDE");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::int(7).as_str(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Value::str("a"), Value::from("a"));
        assert_ne!(Value::str("1"), Value::int(1));
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![
            Value::str("b"),
            Value::int(3),
            Value::str("a"),
            Value::int(1),
        ];
        vs.sort();
        // Ints sort before Strs (enum variant order); within a variant, natural order.
        assert_eq!(
            vs,
            vec![
                Value::int(1),
                Value::int(3),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(3i32), Value::int(3));
        assert_eq!(Value::from(3usize), Value::int(3));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
    }

    #[test]
    fn clone_is_cheap_for_strings() {
        let v = Value::str("shared");
        let w = v.clone();
        match (&v, &w) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }
}
