//! Tuples: fixed-arity sequences of [`Value`]s.

use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// A database tuple (a row of a relation, or a view tuple of a query result).
///
/// Tuples are immutable once built; the deletion-propagation algorithms only
/// ever create, compare, hash, and project them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple {
            values: values.into().into_boxed_slice(),
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Field access without panicking.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// All values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Project onto the given positions (in the given order).
    ///
    /// Used to extract key values (`positions` = key positions of the
    /// relation schema) and head tuples of query answers.
    ///
    /// # Panics
    /// Panics if any position is out of bounds; positions always come from a
    /// validated schema or query.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(
            positions
                .iter()
                .map(|&p| self.values[p].clone())
                .collect::<Vec<_>>(),
        )
    }

    /// Key values at `positions` as an owned `Vec`, for use as an index key.
    pub fn key_values(&self, positions: &[usize]) -> Vec<Value> {
        positions.iter().map(|&p| self.values[p].clone()).collect()
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl<V: Into<Value>> FromIterator<V> for Tuple {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().map(Into::into).collect::<Vec<_>>())
    }
}

/// Convenience: build a [`Tuple`] from heterogeneous literals.
///
/// ```
/// use delprop_relation::tup;
/// let t = tup!["John", "TKDE"];
/// assert_eq!(t.arity(), 2);
/// ```
#[macro_export]
macro_rules! tup {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_and_arity() {
        let t = tup!["John", "TKDE", 30];
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::str("John"));
        assert_eq!(t[2], Value::int(30));
    }

    #[test]
    fn project_reorders() {
        let t = tup![1, 2, 3];
        assert_eq!(t.project(&[2, 0]), tup![3, 1]);
    }

    #[test]
    fn project_empty_positions() {
        let t = tup![1, 2];
        assert_eq!(t.project(&[]).arity(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(tup!["a", 1].to_string(), "(a, 1)");
    }

    #[test]
    fn get_is_checked() {
        let t = tup![1];
        assert!(t.get(0).is_some());
        assert!(t.get(1).is_none());
    }

    #[test]
    fn from_iterator() {
        let t: Tuple = (0..3).map(|i| i as i64).collect();
        assert_eq!(t, tup![0, 1, 2]);
    }

    #[test]
    fn key_values_match_project() {
        let t = tup!["x", "y", "z"];
        assert_eq!(t.key_values(&[1]), vec![Value::str("y")]);
    }
}
