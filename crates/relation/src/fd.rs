//! Functional dependencies and key derivation.
//!
//! The paper's related-work landscape (Tables II–V) repeatedly notes that
//! functional dependencies shift the tractability frontier
//! ("fd-head-domination", "fd-induced triads"). The mechanism is always
//! the same: FDs let more attribute sets act as keys, so more queries
//! become key-preserving *in effect*. This module supplies that
//! machinery: FD declarations per relation, attribute closure, key
//! testing, candidate-key enumeration, and instance-level FD validation —
//! consumed by `delprop-query`'s FD-aware key-preservation test and
//! `delprop-core`'s FD-aware problem constructor.

use crate::database::Database;
use crate::error::RelationError;
use crate::schema::RelationId;
use std::collections::{BTreeSet, HashMap};

/// One functional dependency `lhs → rhs` over the attribute positions of
/// a single relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalDependency {
    /// Determinant positions (sorted, deduplicated).
    pub lhs: Vec<usize>,
    /// Determined positions (sorted, deduplicated).
    pub rhs: Vec<usize>,
}

impl FunctionalDependency {
    /// Build an FD, normalizing both sides.
    pub fn new(mut lhs: Vec<usize>, mut rhs: Vec<usize>) -> Self {
        lhs.sort_unstable();
        lhs.dedup();
        rhs.sort_unstable();
        rhs.dedup();
        FunctionalDependency { lhs, rhs }
    }
}

/// The FDs of one relation (of a known arity).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationFds {
    arity: usize,
    fds: Vec<FunctionalDependency>,
}

impl RelationFds {
    /// Empty FD set for a relation of `arity`.
    pub fn new(arity: usize) -> Self {
        RelationFds {
            arity,
            fds: Vec::new(),
        }
    }

    /// Add an FD; errors if a position is out of range.
    pub fn add(&mut self, fd: FunctionalDependency) -> Result<(), RelationError> {
        if let Some(&bad) = fd.lhs.iter().chain(&fd.rhs).find(|&&p| p >= self.arity) {
            return Err(RelationError::InvalidKeyPosition {
                relation: "<fd>".to_string(),
                position: bad,
                arity: self.arity,
            });
        }
        self.fds.push(fd);
        Ok(())
    }

    /// The declared FDs.
    pub fn fds(&self) -> &[FunctionalDependency] {
        &self.fds
    }

    /// Attribute closure `attrs⁺` under the FDs.
    pub fn closure(&self, attrs: &[usize]) -> BTreeSet<usize> {
        let mut closed: BTreeSet<usize> = attrs.iter().copied().collect();
        loop {
            let mut grew = false;
            for fd in &self.fds {
                if fd.lhs.iter().all(|p| closed.contains(p)) {
                    for &p in &fd.rhs {
                        grew |= closed.insert(p);
                    }
                }
            }
            if !grew {
                return closed;
            }
        }
    }

    /// Whether `attrs` functionally determines the whole tuple.
    pub fn is_superkey(&self, attrs: &[usize]) -> bool {
        self.closure(attrs).len() == self.arity
    }

    /// All minimal keys (candidate keys) of the relation, assuming the
    /// declared key of the schema is also provided as an FD or passed via
    /// `seed_superkeys`. Exponential in arity in the worst case — fine for
    /// the small arities of this domain.
    pub fn candidate_keys(&self, seed_superkeys: &[Vec<usize>]) -> Vec<Vec<usize>> {
        // Collect superkeys: seeds plus every FD lhs that is a superkey.
        let mut supers: Vec<Vec<usize>> = seed_superkeys
            .iter()
            .cloned()
            .chain(self.fds.iter().map(|fd| fd.lhs.clone()))
            .filter(|k| self.is_superkey(k))
            .collect();
        // Minimize each superkey by dropping attributes greedily.
        for key in supers.iter_mut() {
            let mut i = 0;
            while i < key.len() {
                let mut trial = key.clone();
                trial.remove(i);
                if self.is_superkey(&trial) {
                    *key = trial;
                } else {
                    i += 1;
                }
            }
            key.sort_unstable();
        }
        supers.sort();
        supers.dedup();
        // Drop non-minimal ones (a key containing another key).
        let copy = supers.clone();
        supers.retain(|k| {
            !copy
                .iter()
                .any(|other| other != k && other.iter().all(|p| k.contains(p)))
        });
        supers
    }
}

/// FD declarations for a whole schema.
#[derive(Debug, Clone, Default)]
pub struct SchemaFds {
    per_relation: HashMap<RelationId, RelationFds>,
}

impl SchemaFds {
    /// Empty declaration set.
    pub fn new() -> Self {
        SchemaFds::default()
    }

    /// Set the FDs of one relation.
    pub fn insert(&mut self, relation: RelationId, fds: RelationFds) {
        self.per_relation.insert(relation, fds);
    }

    /// The FDs of a relation (empty set if none declared).
    pub fn get(&self, relation: RelationId) -> Option<&RelationFds> {
        self.per_relation.get(&relation)
    }

    /// Verify every declared FD against the live tuples of `db`. Returns
    /// the first violating pair as `(relation, fd index)` if any.
    pub fn check(&self, db: &Database) -> Option<(RelationId, usize)> {
        for (&rid, rel_fds) in &self.per_relation {
            for (fi, fd) in rel_fds.fds.iter().enumerate() {
                let mut seen: HashMap<Vec<crate::value::Value>, Vec<crate::value::Value>> =
                    HashMap::new();
                for (_, tuple) in db.live_tuples(rid) {
                    let lhs = tuple.key_values(&fd.lhs);
                    let rhs = tuple.key_values(&fd.rhs);
                    match seen.get(&lhs) {
                        Some(prev) if prev != &rhs => return Some((rid, fi)),
                        Some(_) => {}
                        None => {
                            seen.insert(lhs, rhs);
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RelationSchema, Schema};
    use crate::tup;

    fn fds(arity: usize, list: &[(&[usize], &[usize])]) -> RelationFds {
        let mut f = RelationFds::new(arity);
        for (l, r) in list {
            f.add(FunctionalDependency::new(l.to_vec(), r.to_vec()))
                .unwrap();
        }
        f
    }

    #[test]
    fn closure_transitive() {
        // 0 -> 1, 1 -> 2: {0}+ = {0,1,2}
        let f = fds(3, &[(&[0], &[1]), (&[1], &[2])]);
        assert_eq!(
            f.closure(&[0]).into_iter().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(f.is_superkey(&[0]));
        assert!(!f.is_superkey(&[2]));
    }

    #[test]
    fn candidate_keys_minimized() {
        // 0 -> 1,2 and 1 -> 0,2: both {0} and {1} are candidate keys.
        let f = fds(3, &[(&[0], &[1, 2]), (&[1], &[0, 2])]);
        let keys = f.candidate_keys(&[vec![0, 1, 2]]);
        assert_eq!(keys, vec![vec![0], vec![1]]);
    }

    #[test]
    fn seed_superkey_minimized_even_without_fd_keys() {
        let f = fds(2, &[]);
        let keys = f.candidate_keys(&[vec![0, 1]]);
        assert_eq!(keys, vec![vec![0, 1]]);
    }

    #[test]
    fn out_of_range_fd_rejected() {
        let mut f = RelationFds::new(2);
        assert!(f.add(FunctionalDependency::new(vec![0], vec![2])).is_err());
    }

    #[test]
    fn check_detects_violations() {
        let schema =
            Schema::from_relations([RelationSchema::new("T", 3, vec![0]).unwrap()]).unwrap();
        let rid = schema.relation_id("T").unwrap();
        let mut db = Database::new(schema);
        db.insert("T", tup![1, "a", "x"]).unwrap();
        db.insert("T", tup![2, "a", "y"]).unwrap();
        let mut sf = SchemaFds::new();
        // 1 -> 2 is violated: both rows have "a" at position 1 but differ
        // at position 2.
        sf.insert(rid, fds(3, &[(&[1], &[2])]));
        assert_eq!(sf.check(&db), Some((rid, 0)));
        // 0 -> 1 holds (position 0 is unique).
        let mut sf = SchemaFds::new();
        sf.insert(rid, fds(3, &[(&[0], &[1])]));
        assert_eq!(sf.check(&db), None);
    }

    #[test]
    fn check_ignores_tombstoned_tuples() {
        let schema =
            Schema::from_relations([RelationSchema::new("T", 2, vec![0]).unwrap()]).unwrap();
        let rid = schema.relation_id("T").unwrap();
        let mut db = Database::new(schema);
        let bad = db.insert("T", tup![1, "a"]).unwrap();
        db.insert("T", tup![2, "b"]).unwrap();
        let mut sf = SchemaFds::new();
        sf.insert(rid, fds(2, &[(&[1], &[0])]));
        assert_eq!(sf.check(&db), None);
        // Introduce a violation, then tombstone it away.
        let dup = db.insert("T", tup![3, "a"]).unwrap();
        assert!(sf.check(&db).is_some());
        db.delete(dup);
        assert_eq!(sf.check(&db), None);
        let _ = bad;
    }

    #[test]
    fn fd_normalization() {
        let fd = FunctionalDependency::new(vec![2, 0, 2], vec![1, 1]);
        assert_eq!(fd.lhs, vec![0, 2]);
        assert_eq!(fd.rhs, vec![1]);
    }
}
