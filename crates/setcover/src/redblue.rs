//! The Red-Blue Set Cover problem (Carr, Doddi, Konjevod, Marathe, SODA'02),
//! the combinatorial core of multi-query deletion propagation (§II.D, §III,
//! Claim 1 of the paper).
//!
//! Given disjoint red elements `R` and blue elements `B` and a collection
//! `𝒞 ⊆ 2^(R∪B)`, pick a subcollection covering **all** blue elements while
//! minimizing the (weighted) number of red elements covered.

use crate::kernel::{BitMatrix, BitSet};
use std::fmt;

/// One set of the collection `𝒞`: its red and blue members.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoverSet {
    /// Red element indices (`0..num_red`), sorted and deduplicated.
    pub red: Vec<usize>,
    /// Blue element indices (`0..num_blue`), sorted and deduplicated.
    pub blue: Vec<usize>,
}

impl CoverSet {
    /// Build a set, normalizing member lists.
    pub fn new(mut red: Vec<usize>, mut blue: Vec<usize>) -> Self {
        red.sort_unstable();
        red.dedup();
        blue.sort_unstable();
        blue.dedup();
        CoverSet { red, blue }
    }

    /// Build a set from member lists that are **already sorted and
    /// deduplicated** — e.g. the CSR rows of a compiled deletion-propagation
    /// instance — skipping the normalization pass. Debug builds verify the
    /// invariant.
    pub fn from_sorted(red: Vec<usize>, blue: Vec<usize>) -> Self {
        debug_assert!(
            red.windows(2).all(|w| w[0] < w[1]),
            "red not sorted/deduped"
        );
        debug_assert!(
            blue.windows(2).all(|w| w[0] < w[1]),
            "blue not sorted/deduped"
        );
        CoverSet { red, blue }
    }
}

/// A Red-Blue Set Cover instance with per-red-element weights.
///
/// Alongside the sorted member lists, construction packs every set's
/// membership into dense bit rows ([`RedBlueInstance::blue_row`] /
/// [`RedBlueInstance::red_row`]), so coverage queries and the greedy /
/// low-degree / exact solvers run word-parallel sweeps instead of
/// per-element bit tests.
#[derive(Debug, Clone, PartialEq)]
pub struct RedBlueInstance {
    num_red: usize,
    num_blue: usize,
    red_weights: Vec<f64>,
    sets: Vec<CoverSet>,
    blue_rows: BitMatrix,
    red_rows: BitMatrix,
}

/// A solution: indices into the instance's set collection.
pub type SetSelection = Vec<usize>;

impl RedBlueInstance {
    /// Instance with unit red weights.
    pub fn new(num_red: usize, num_blue: usize, sets: Vec<CoverSet>) -> Self {
        Self::with_weights(num_red, num_blue, vec![1.0; num_red], sets)
    }

    /// Instance with explicit red weights.
    ///
    /// # Panics
    /// Panics if weights length ≠ `num_red`, any weight is negative or
    /// non-finite, or any set references an out-of-range element.
    // lint:allow(budget): O(sets + nnz) constructor validation
    pub fn with_weights(
        num_red: usize,
        num_blue: usize,
        red_weights: Vec<f64>,
        sets: Vec<CoverSet>,
    ) -> Self {
        assert_eq!(red_weights.len(), num_red, "one weight per red element");
        assert!(
            red_weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "red weights must be finite and non-negative"
        );
        for (i, s) in sets.iter().enumerate() {
            assert!(
                s.red.iter().all(|&r| r < num_red),
                "set {i} references red element out of range"
            );
            assert!(
                s.blue.iter().all(|&b| b < num_blue),
                "set {i} references blue element out of range"
            );
        }
        let blue_rows = BitMatrix::from_rows(
            sets.len(),
            num_blue,
            sets.iter().map(|s| s.blue.iter().copied()),
        );
        let red_rows = BitMatrix::from_rows(
            sets.len(),
            num_red,
            sets.iter().map(|s| s.red.iter().copied()),
        );
        RedBlueInstance {
            num_red,
            num_blue,
            red_weights,
            sets,
            blue_rows,
            red_rows,
        }
    }

    /// Number of red elements `ρ`.
    pub fn num_red(&self) -> usize {
        self.num_red
    }

    /// Number of blue elements `β`.
    pub fn num_blue(&self) -> usize {
        self.num_blue
    }

    /// The collection `𝒞`.
    pub fn sets(&self) -> &[CoverSet] {
        &self.sets
    }

    /// Weight of red element `r`.
    pub fn red_weight(&self, r: usize) -> f64 {
        self.red_weights[r]
    }

    /// Blue membership of set `si` as a packed word row over `0..num_blue`.
    pub fn blue_row(&self, si: usize) -> &[u64] {
        self.blue_rows.row(si)
    }

    /// Red membership of set `si` as a packed word row over `0..num_red`.
    pub fn red_row(&self, si: usize) -> &[u64] {
        self.red_rows.row(si)
    }

    /// Whether every blue element is covered by some set (a feasible
    /// solution exists iff this holds).
    // lint:allow(budget): one O(nnz) union over blue rows
    pub fn is_coverable(&self) -> bool {
        let mut covered = BitSet::new(self.num_blue);
        for si in 0..self.sets.len() {
            covered.union_with_words(self.blue_rows.row(si));
        }
        covered.count() == self.num_blue
    }

    /// Blue elements covered by `selection`, as a bitset.
    // lint:allow(budget): O(selection * words) evaluation of a fixed selection
    pub fn covered_blue(&self, selection: &[usize]) -> BitSet {
        let mut covered = BitSet::new(self.num_blue);
        for &si in selection {
            covered.union_with_words(self.blue_rows.row(si));
        }
        covered
    }

    /// Red elements covered by `selection`, as a bitset.
    // lint:allow(budget): O(selection * words) evaluation of a fixed selection
    pub fn covered_red(&self, selection: &[usize]) -> BitSet {
        let mut covered = BitSet::new(self.num_red);
        for &si in selection {
            covered.union_with_words(self.red_rows.row(si));
        }
        covered
    }

    /// Whether `selection` covers all blue elements.
    pub fn is_feasible(&self, selection: &[usize]) -> bool {
        self.covered_blue(selection).count() == self.num_blue
    }

    /// Total weight of red elements covered by `selection` (the Red-Blue
    /// objective; reds are counted once no matter how many chosen sets
    /// contain them).
    pub fn cost(&self, selection: &[usize]) -> f64 {
        self.covered_red(selection)
            .iter()
            .map(|r| self.red_weights[r])
            .sum()
    }

    /// Max red-degree over sets: `max_S |S ∩ R|` (the τ range scanned by
    /// the low-degree algorithm).
    pub fn max_red_degree(&self) -> usize {
        self.sets.iter().map(|s| s.red.len()).max().unwrap_or(0)
    }
}

impl fmt::Display for RedBlueInstance {
    // lint:allow(budget): Display renders each set once, O(nnz)
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "RedBlue(ρ={}, β={}, |𝒞|={})",
            self.num_red,
            self.num_blue,
            self.sets.len()
        )?;
        for (i, s) in self.sets.iter().enumerate() {
            writeln!(f, "  C{i}: red {:?}, blue {:?}", s.red, s.blue)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 2 instance: C1={r1,b1}, C2={r1,b2}, C3={r1,b3}.
    pub(crate) fn fig2() -> RedBlueInstance {
        RedBlueInstance::new(
            1,
            3,
            vec![
                CoverSet::new(vec![0], vec![0]),
                CoverSet::new(vec![0], vec![1]),
                CoverSet::new(vec![0], vec![2]),
            ],
        )
    }

    #[test]
    fn fig2_costs() {
        let inst = fig2();
        assert!(inst.is_coverable());
        assert!(!inst.is_feasible(&[0, 1]));
        assert!(inst.is_feasible(&[0, 1, 2]));
        // r1 is covered once even though all three sets contain it.
        assert_eq!(inst.cost(&[0, 1, 2]), 1.0);
    }

    #[test]
    fn uncoverable_detected() {
        let inst = RedBlueInstance::new(0, 2, vec![CoverSet::new(vec![], vec![0])]);
        assert!(!inst.is_coverable());
    }

    #[test]
    fn weights_respected() {
        let inst = RedBlueInstance::with_weights(
            2,
            1,
            vec![5.0, 0.5],
            vec![
                CoverSet::new(vec![0], vec![0]),
                CoverSet::new(vec![1], vec![0]),
            ],
        );
        assert_eq!(inst.cost(&[0]), 5.0);
        assert_eq!(inst.cost(&[1]), 0.5);
    }

    #[test]
    fn max_red_degree() {
        assert_eq!(fig2().max_red_degree(), 1);
        let inst = RedBlueInstance::new(3, 1, vec![CoverSet::new(vec![0, 1, 2], vec![0])]);
        assert_eq!(inst.max_red_degree(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_set_rejected() {
        RedBlueInstance::new(1, 1, vec![CoverSet::new(vec![1], vec![0])]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_rejected() {
        RedBlueInstance::with_weights(1, 0, vec![-1.0], vec![]);
    }

    #[test]
    fn coverset_normalizes() {
        let s = CoverSet::new(vec![2, 0, 2], vec![1, 1]);
        assert_eq!(s.red, vec![0, 2]);
        assert_eq!(s.blue, vec![1]);
    }
}
