//! Cost-preserving reductions between Positive-Negative Partial Set Cover
//! and Red-Blue Set Cover (Miettinen, IPL 2008), plus the Pos-Neg solvers
//! obtained through them.
//!
//! These are exactly the reductions the paper leans on: Theorem 2 pushes
//! hardness *into* balanced deletion propagation through Pos-Neg, and
//! Lemma 1 pulls the Red-Blue approximation *out* again
//! (`2√((|𝒞|+|B|)·log|B|)`).

use crate::exact::{self, ExactConfig};
use crate::lowdeg;
use crate::posneg::PosNegInstance;
use crate::redblue::{CoverSet, RedBlueInstance};

/// A Pos-Neg instance reduced to Red-Blue, with the bookkeeping needed to
/// map solutions back.
#[derive(Debug, Clone)]
pub struct PosNegAsRedBlue {
    /// The Red-Blue image.
    pub redblue: RedBlueInstance,
    /// Number of original sets (Red-Blue sets `0..num_original` are the
    /// originals; set `num_original + p` is the escape set of positive `p`).
    pub num_original: usize,
}

/// Reduce Pos-Neg Partial Set Cover to Red-Blue Set Cover.
///
/// Construction: blues = positives; reds = negatives (same weights) plus
/// one fresh red per positive `p` with weight `w(p)`; each original set
/// maps to a Red-Blue set (pos → blue, neg → red); and each positive `p`
/// gets an *escape set* `{blue p, red ρ+p}` whose selection prices leaving
/// `p` uncovered. Costs are preserved exactly:
/// `OPT_RB = OPT_PN`, and any Red-Blue solution maps back to a Pos-Neg
/// selection of no greater cost.
// lint:allow(budget): O(pos) image construction
pub fn posneg_to_redblue(pn: &PosNegInstance) -> PosNegAsRedBlue {
    let num_neg = pn.num_neg();
    let num_pos = pn.num_pos();
    let mut red_weights: Vec<f64> = (0..num_neg).map(|n| pn.neg_weight(n)).collect();
    red_weights.extend((0..num_pos).map(|p| pn.pos_weight(p)));

    // Member lists of a `PnSet` are already sorted and deduplicated, so
    // the Red-Blue sets take the dense rows as-is — no renormalization.
    let mut sets: Vec<CoverSet> = pn
        .sets()
        .iter()
        .map(|s| CoverSet::from_sorted(s.neg.clone(), s.pos.clone()))
        .collect();
    for p in 0..num_pos {
        sets.push(CoverSet::from_sorted(vec![num_neg + p], vec![p]));
    }
    PosNegAsRedBlue {
        redblue: RedBlueInstance::with_weights(num_neg + num_pos, num_pos, red_weights, sets),
        num_original: pn.sets().len(),
    }
}

impl PosNegAsRedBlue {
    /// Map a Red-Blue selection back to a Pos-Neg selection (drop escapes).
    pub fn map_back(&self, rb_selection: &[usize]) -> Vec<usize> {
        rb_selection
            .iter()
            .copied()
            .filter(|&si| si < self.num_original)
            .collect()
    }
}

/// Reduce Red-Blue Set Cover to Pos-Neg Partial Set Cover.
///
/// Blues become positives weighted heavily enough (`w(R) + 1` each) that an
/// optimal Pos-Neg solution never leaves one uncovered when the Red-Blue
/// instance is coverable; reds become negatives with their weights. Used to
/// transfer inapproximability in the direction Theorem 2 cites.
pub fn redblue_to_posneg(rb: &RedBlueInstance) -> PosNegInstance {
    let total_red: f64 = (0..rb.num_red()).map(|r| rb.red_weight(r)).sum();
    let big = total_red + 1.0;
    PosNegInstance::with_weights(
        vec![big; rb.num_blue()],
        (0..rb.num_red()).map(|r| rb.red_weight(r)).collect(),
        rb.sets()
            .iter()
            .map(|s| crate::posneg::PnSet::from_sorted(s.blue.clone(), s.red.clone()))
            .collect(),
    )
}

/// Solve Pos-Neg exactly via the Red-Blue reduction + branch and bound.
/// Returns `(selection, cost, proven_optimal)`.
///
/// The reduced instance is always coverable (escape sets), but a very
/// tight `node_limit` can truncate the search before the first feasible
/// leaf; in that case the empty selection is returned un-proven (it is
/// always a feasible Pos-Neg selection — it covers nothing and pays every
/// positive's weight).
pub fn solve_posneg_exact(pn: &PosNegInstance, config: ExactConfig) -> (Vec<usize>, f64, bool) {
    solve_posneg_exact_with_ticker(pn, config, &mut |_| true)
}

/// [`solve_posneg_exact`] with a cooperative work-budget ticker (see
/// [`exact::solve_with_ticker`]).
pub fn solve_posneg_exact_with_ticker(
    pn: &PosNegInstance,
    config: ExactConfig,
    tick: &mut dyn FnMut(u64) -> bool,
) -> (Vec<usize>, f64, bool) {
    let img = posneg_to_redblue(pn);
    let res = exact::solve_with_ticker(&img.redblue, config, tick);
    match res.selection {
        Some(rb_sel) => {
            let sel = img.map_back(&rb_sel);
            let cost = pn.cost(&sel);
            (sel, cost, res.proven_optimal)
        }
        // Truncated before any incumbent: fall back to the empty
        // selection, which is always feasible for Pos-Neg.
        None => (Vec::new(), pn.cost(&[]), false),
    }
}

/// Solve Pos-Neg approximately via the Red-Blue reduction + the low-degree
/// algorithm (the paper's Lemma 1 route, ratio `2√((|𝒞|+|B|)·log|B|)`).
pub fn solve_posneg_lowdeg(pn: &PosNegInstance) -> (Vec<usize>, f64) {
    let img = posneg_to_redblue(pn);
    let rb_sel = lowdeg::solve(&img.redblue).expect("reduced instance is always feasible");
    let sel = img.map_back(&rb_sel);
    let cost = pn.cost(&sel);
    (sel, cost)
}

/// The Lemma 1 bound `2·sqrt((|𝒞|+|B|)·log|B|)` (log clamped as in
/// [`lowdeg::ratio_bound`]).
pub fn posneg_ratio_bound(num_sets: usize, num_pos: usize) -> f64 {
    lowdeg::ratio_bound(num_sets + num_pos, num_pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posneg::PnSet;

    fn pn(num_pos: usize, num_neg: usize, sets: Vec<(Vec<usize>, Vec<usize>)>) -> PosNegInstance {
        PosNegInstance::new(
            num_pos,
            num_neg,
            sets.into_iter().map(|(p, n)| PnSet::new(p, n)).collect(),
        )
    }

    #[test]
    fn reduction_preserves_optimum() {
        // Covering p0,p1 via set 0 touches n0 (cost 1); leaving both
        // uncovered costs 2; escape one and cover the other is ≥ 2.
        let i = pn(2, 1, vec![(vec![0, 1], vec![0])]);
        let (sel, cost, proven) = solve_posneg_exact(&i, ExactConfig::default());
        assert!(proven);
        assert_eq!(cost, 1.0);
        assert_eq!(sel, vec![0]);
    }

    #[test]
    fn exact_prefers_leaving_positives_uncovered_when_cheaper() {
        let i = PosNegInstance::with_weights(
            vec![1.0],
            vec![100.0],
            vec![PnSet::new(vec![0], vec![0])],
        );
        let (sel, cost, _) = solve_posneg_exact(&i, ExactConfig::default());
        assert!(sel.is_empty());
        assert_eq!(cost, 1.0);
    }

    #[test]
    fn brute_force_agreement_on_small_instances() {
        let mut seed = 7u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..15 {
            let np = 3 + next() % 3;
            let nn = 2 + next() % 3;
            let nsets = 4 + next() % 3;
            let sets: Vec<(Vec<usize>, Vec<usize>)> = (0..nsets)
                .map(|_| {
                    (
                        (0..np).filter(|_| next() % 2 == 0).collect(),
                        (0..nn).filter(|_| next() % 3 == 0).collect(),
                    )
                })
                .collect();
            let i = pn(np, nn, sets);
            // Brute force all subsets.
            let nsets = i.sets().len();
            let mut best = f64::INFINITY;
            for mask in 0u32..(1 << nsets) {
                let sel: Vec<usize> = (0..nsets).filter(|&s| mask & (1 << s) != 0).collect();
                best = best.min(i.cost(&sel));
            }
            let (_, cost, proven) = solve_posneg_exact(&i, ExactConfig::default());
            assert!(proven);
            assert!((cost - best).abs() < 1e-9, "exact {cost} != brute {best}");
        }
    }

    #[test]
    fn lowdeg_is_within_bound_of_exact() {
        let i = pn(
            4,
            3,
            vec![
                (vec![0, 1], vec![0]),
                (vec![2], vec![]),
                (vec![3], vec![1, 2]),
            ],
        );
        let (_, opt, _) = solve_posneg_exact(&i, ExactConfig::default());
        let (_, approx) = solve_posneg_lowdeg(&i);
        let bound = posneg_ratio_bound(i.sets().len(), i.num_pos());
        assert!(approx >= opt - 1e-9);
        if opt > 0.0 {
            assert!(approx <= bound * opt + 1e-9);
        }
    }

    #[test]
    fn redblue_to_posneg_forces_coverage() {
        use crate::redblue::{CoverSet, RedBlueInstance};
        let rb = RedBlueInstance::new(
            2,
            2,
            vec![
                CoverSet::new(vec![0], vec![0]),
                CoverSet::new(vec![1], vec![1]),
            ],
        );
        let pn = redblue_to_posneg(&rb);
        // Optimal Pos-Neg solution covers both positives: reds cost 2,
        // leaving a positive costs 3.
        let (sel, cost, _) = solve_posneg_exact(&pn, ExactConfig::default());
        assert_eq!(sel.len(), 2);
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn map_back_strips_escape_sets() {
        let i = pn(2, 0, vec![(vec![0], vec![])]);
        let img = posneg_to_redblue(&i);
        // RB sets: 0 = original, 1 = escape(p0), 2 = escape(p1)
        assert_eq!(img.map_back(&[0, 2]), vec![0]);
    }
}
