//! Exact Red-Blue Set Cover by branch and bound.
//!
//! Red-Blue Set Cover is NP-hard (indeed hard to approximate, which is the
//! engine of the paper's Theorem 1), so exactness costs exponential time.
//! This solver is the ground-truth baseline for the ratio experiments
//! (EX-T1, EX-C1, EX-T3, EX-T4, EX-DP): it branches on the sets covering
//! the lowest-indexed uncovered blue element and prunes with the
//! monotonically non-decreasing red cost.

use crate::kernel::BitSet;
use crate::redblue::{RedBlueInstance, SetSelection};

/// Configuration for the branch-and-bound search.
#[derive(Debug, Clone, Copy)]
pub struct ExactConfig {
    /// Hard cap on explored nodes; `None` searches exhaustively. When the
    /// cap is hit the best solution so far is returned with
    /// `ExactResult::proven_optimal == false`.
    pub node_limit: Option<u64>,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            node_limit: Some(50_000_000),
        }
    }
}

/// Result of the exact search.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// Best selection found (feasible), or `None` if the instance is
    /// infeasible.
    pub selection: Option<SetSelection>,
    /// Cost of `selection` (0.0 when infeasible).
    pub cost: f64,
    /// Whether the search completed without hitting the node limit.
    pub proven_optimal: bool,
    /// Number of search nodes explored.
    pub nodes: u64,
}

/// Node granularity at which the cooperative ticker is consulted. Small
/// enough that tight budgets stop the search promptly, large enough that
/// the callback is off the hot path.
const TICK_BATCH: u64 = 64;

/// Solve Red-Blue Set Cover exactly (subject to the node limit).
pub fn solve(instance: &RedBlueInstance, config: ExactConfig) -> ExactResult {
    solve_with_ticker(instance, config, &mut |_| true)
}

/// Like [`solve`], but reports every `TICK_BATCH` (64) explored nodes to
/// `tick` (a cooperative work-budget checkpoint). When `tick` returns
/// `false` the search truncates exactly as if the node limit had fired:
/// the best solution so far is returned with `proven_optimal == false`.
// lint:allow(budget): the CSR build is O(nnz); node expansion below ticks in TICK_BATCH batches
pub fn solve_with_ticker(
    instance: &RedBlueInstance,
    config: ExactConfig,
    tick: &mut dyn FnMut(u64) -> bool,
) -> ExactResult {
    if !instance.is_coverable() {
        return ExactResult {
            selection: None,
            cost: 0.0,
            proven_optimal: true,
            nodes: 0,
        };
    }

    // For each blue element, the sets covering it. Set membership itself
    // comes from the instance's packed rows — nothing to precompute.
    let mut coverers: Vec<Vec<usize>> = vec![Vec::new(); instance.num_blue()];
    for (si, s) in instance.sets().iter().enumerate() {
        for &b in &s.blue {
            coverers[b].push(si);
        }
    }

    let mut search = Search {
        instance,
        coverers: &coverers,
        best: None,
        best_cost: f64::INFINITY,
        nodes: 0,
        node_limit: config.node_limit.unwrap_or(u64::MAX),
        truncated: false,
        tick,
    };
    let blue0 = BitSet::new(instance.num_blue());
    let red0 = BitSet::new(instance.num_red());
    let mut chosen = Vec::new();
    search.recurse(&blue0, &red0, 0.0, &mut chosen);

    ExactResult {
        cost: if search.best.is_some() {
            search.best_cost
        } else {
            0.0
        },
        selection: search.best,
        proven_optimal: !search.truncated,
        nodes: search.nodes,
    }
}

struct Search<'a> {
    instance: &'a RedBlueInstance,
    coverers: &'a [Vec<usize>],
    best: Option<SetSelection>,
    best_cost: f64,
    nodes: u64,
    node_limit: u64,
    truncated: bool,
    tick: &'a mut dyn FnMut(u64) -> bool,
}

impl Search<'_> {
    // lint:allow(budget): candidate scans are O(words) per node and every node is ticked in batches via self.tick
    fn recurse(
        &mut self,
        covered_blue: &BitSet,
        covered_red: &BitSet,
        cost: f64,
        chosen: &mut Vec<usize>,
    ) {
        self.nodes += 1;
        if self.nodes > self.node_limit {
            self.truncated = true;
            return;
        }
        if self.nodes.is_multiple_of(TICK_BATCH) && !(self.tick)(TICK_BATCH) {
            self.truncated = true;
            return;
        }
        // Prune: red cost never decreases down the tree.
        if cost >= self.best_cost {
            return;
        }
        let Some(next_blue) = covered_blue.first_unset() else {
            // Feasible and strictly better than incumbent.
            self.best_cost = cost;
            self.best = Some(chosen.clone());
            return;
        };
        for &si in &self.coverers[next_blue] {
            // Skip sets already chosen (they'd have covered next_blue).
            debug_assert!(!chosen.contains(&si));
            let mut nb = covered_blue.clone();
            nb.union_with_words(self.instance.blue_row(si));
            let mut nr = covered_red.clone();
            let mut ncost = cost;
            // Newly covered reds, word-parallel: the set's row minus what
            // is already covered, weights summed in ascending red order.
            for (wi, (&row, &cov)) in self
                .instance
                .red_row(si)
                .iter()
                .zip(covered_red.words())
                .enumerate()
            {
                let mut w = row & !cov;
                while w != 0 {
                    let r = wi * 64 + w.trailing_zeros() as usize;
                    ncost += self.instance.red_weight(r);
                    w &= w - 1;
                }
            }
            nr.union_with_words(self.instance.red_row(si));
            chosen.push(si);
            self.recurse(&nb, &nr, ncost, chosen);
            chosen.pop();
            if self.truncated {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redblue::CoverSet;

    fn inst(
        num_red: usize,
        num_blue: usize,
        sets: Vec<(Vec<usize>, Vec<usize>)>,
    ) -> RedBlueInstance {
        RedBlueInstance::new(
            num_red,
            num_blue,
            sets.into_iter().map(|(r, b)| CoverSet::new(r, b)).collect(),
        )
    }

    #[test]
    fn fig2_optimum_is_one() {
        let i = inst(
            1,
            3,
            vec![(vec![0], vec![0]), (vec![0], vec![1]), (vec![0], vec![2])],
        );
        let r = solve(&i, ExactConfig::default());
        assert!(r.proven_optimal);
        assert_eq!(r.cost, 1.0);
        assert_eq!(r.selection.unwrap().len(), 3);
    }

    #[test]
    fn prefers_cheap_disjoint_cover() {
        // Covering both blues with one big set costs 3 reds; two singleton
        // sets cost 1 red total.
        let i = inst(
            4,
            2,
            vec![
                (vec![0, 1, 2], vec![0, 1]),
                (vec![3], vec![0]),
                (vec![], vec![1]),
            ],
        );
        let r = solve(&i, ExactConfig::default());
        assert_eq!(r.cost, 1.0);
        let sel = r.selection.unwrap();
        assert_eq!(sel, vec![1, 2]);
    }

    #[test]
    fn shared_red_counted_once() {
        let i = inst(1, 2, vec![(vec![0], vec![0]), (vec![0], vec![1])]);
        let r = solve(&i, ExactConfig::default());
        assert_eq!(r.cost, 1.0);
    }

    #[test]
    fn infeasible_instance() {
        let i = inst(1, 1, vec![(vec![0], vec![])]);
        let r = solve(&i, ExactConfig::default());
        assert!(r.selection.is_none());
        assert!(r.proven_optimal);
    }

    #[test]
    fn zero_cost_solution_found() {
        let i = inst(2, 2, vec![(vec![], vec![0, 1]), (vec![0, 1], vec![0, 1])]);
        let r = solve(&i, ExactConfig::default());
        assert_eq!(r.cost, 0.0);
        assert_eq!(r.selection.unwrap(), vec![0]);
    }

    #[test]
    fn weighted_instance() {
        let i = RedBlueInstance::with_weights(
            2,
            1,
            vec![10.0, 1.0],
            vec![
                CoverSet::new(vec![0], vec![0]),
                CoverSet::new(vec![1], vec![0]),
            ],
        );
        let r = solve(&i, ExactConfig::default());
        assert_eq!(r.cost, 1.0);
        assert_eq!(r.selection.unwrap(), vec![1]);
    }

    #[test]
    fn node_limit_truncates_but_stays_feasible() {
        // 12 blues, each coverable by 3 sets with random-ish reds.
        let sets: Vec<(Vec<usize>, Vec<usize>)> = (0..12)
            .flat_map(|b| (0..3).map(move |k| (vec![(b * 3 + k) % 10], vec![b])))
            .collect();
        let i = inst(10, 12, sets);
        let r = solve(
            &i,
            ExactConfig {
                node_limit: Some(50),
            },
        );
        assert!(!r.proven_optimal);
        if let Some(sel) = r.selection {
            assert!(i.is_feasible(&sel));
        }
    }

    #[test]
    fn empty_instance_is_trivially_feasible() {
        let i = inst(0, 0, vec![]);
        let r = solve(&i, ExactConfig::default());
        assert!(r.proven_optimal);
        assert_eq!(r.cost, 0.0);
        assert_eq!(r.selection.unwrap(), Vec::<usize>::new());
    }
}
