//! The Positive-Negative Partial Set Cover problem (Miettinen, IPL 2008),
//! the combinatorial core of **balanced** deletion propagation (§III,
//! Theorem 2 and Lemma 1 of the paper).
//!
//! Instead of covering all positives, a solution trades off *uncovered
//! positives* against *covered negatives*:
//! `cost(𝒞′) = w(P \ ∪𝒞′) + w(N ∩ ∪𝒞′)`.

use crate::kernel::{BitMatrix, BitSet};
use std::fmt;

/// One set of the collection: its positive and negative members.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PnSet {
    /// Positive element indices, sorted and deduplicated.
    pub pos: Vec<usize>,
    /// Negative element indices, sorted and deduplicated.
    pub neg: Vec<usize>,
}

impl PnSet {
    /// Build a set, normalizing member lists.
    pub fn new(mut pos: Vec<usize>, mut neg: Vec<usize>) -> Self {
        pos.sort_unstable();
        pos.dedup();
        neg.sort_unstable();
        neg.dedup();
        PnSet { pos, neg }
    }

    /// Build a set from member lists that are **already sorted and
    /// deduplicated** (e.g. compiled-instance CSR rows), skipping the
    /// normalization pass. Debug builds verify the invariant.
    pub fn from_sorted(pos: Vec<usize>, neg: Vec<usize>) -> Self {
        debug_assert!(
            pos.windows(2).all(|w| w[0] < w[1]),
            "pos not sorted/deduped"
        );
        debug_assert!(
            neg.windows(2).all(|w| w[0] < w[1]),
            "neg not sorted/deduped"
        );
        PnSet { pos, neg }
    }
}

/// A Positive-Negative Partial Set Cover instance with element weights.
///
/// Construction packs each set's membership into dense bit rows so the
/// cost evaluation — the inner loop of the reduction-based balanced
/// solvers — is a word-parallel union instead of per-element stores.
#[derive(Debug, Clone, PartialEq)]
pub struct PosNegInstance {
    pos_weights: Vec<f64>,
    neg_weights: Vec<f64>,
    sets: Vec<PnSet>,
    pos_rows: BitMatrix,
    neg_rows: BitMatrix,
}

impl PosNegInstance {
    /// Instance with unit weights.
    pub fn new(num_pos: usize, num_neg: usize, sets: Vec<PnSet>) -> Self {
        Self::with_weights(vec![1.0; num_pos], vec![1.0; num_neg], sets)
    }

    /// Instance with explicit weights.
    ///
    /// # Panics
    /// Panics on negative/non-finite weights or out-of-range members.
    // lint:allow(budget): O(sets + nnz) constructor validation
    pub fn with_weights(pos_weights: Vec<f64>, neg_weights: Vec<f64>, sets: Vec<PnSet>) -> Self {
        assert!(
            pos_weights
                .iter()
                .chain(&neg_weights)
                .all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        for (i, s) in sets.iter().enumerate() {
            assert!(
                s.pos.iter().all(|&p| p < pos_weights.len()),
                "set {i} references positive element out of range"
            );
            assert!(
                s.neg.iter().all(|&n| n < neg_weights.len()),
                "set {i} references negative element out of range"
            );
        }
        let pos_rows = BitMatrix::from_rows(
            sets.len(),
            pos_weights.len(),
            sets.iter().map(|s| s.pos.iter().copied()),
        );
        let neg_rows = BitMatrix::from_rows(
            sets.len(),
            neg_weights.len(),
            sets.iter().map(|s| s.neg.iter().copied()),
        );
        PosNegInstance {
            pos_weights,
            neg_weights,
            sets,
            pos_rows,
            neg_rows,
        }
    }

    /// Number of positive elements.
    pub fn num_pos(&self) -> usize {
        self.pos_weights.len()
    }

    /// Number of negative elements.
    pub fn num_neg(&self) -> usize {
        self.neg_weights.len()
    }

    /// The collection.
    pub fn sets(&self) -> &[PnSet] {
        &self.sets
    }

    /// Weight of positive element `p`.
    pub fn pos_weight(&self, p: usize) -> f64 {
        self.pos_weights[p]
    }

    /// Weight of negative element `n`.
    pub fn neg_weight(&self, n: usize) -> f64 {
        self.neg_weights[n]
    }

    /// Positive membership of set `si` as a packed word row.
    pub fn pos_row(&self, si: usize) -> &[u64] {
        self.pos_rows.row(si)
    }

    /// Negative membership of set `si` as a packed word row.
    pub fn neg_row(&self, si: usize) -> &[u64] {
        self.neg_rows.row(si)
    }

    /// Cost of a selection: uncovered-positive weight + covered-negative
    /// weight. Every selection (including the empty one) is feasible.
    // lint:allow(budget): O(selection * words) evaluation of a fixed selection
    pub fn cost(&self, selection: &[usize]) -> f64 {
        let mut pos_covered = BitSet::new(self.num_pos());
        let mut neg_covered = BitSet::new(self.num_neg());
        for &si in selection {
            pos_covered.union_with_words(self.pos_rows.row(si));
            neg_covered.union_with_words(self.neg_rows.row(si));
        }
        // Both sums walk element indices ascending, matching a plain
        // coverage-array scan bit for bit.
        let uncovered_pos: f64 = (0..self.num_pos())
            .filter(|&p| !pos_covered.contains(p))
            .map(|p| self.pos_weights[p])
            .sum();
        let covered_neg: f64 = neg_covered.iter().map(|n| self.neg_weights[n]).sum();
        uncovered_pos + covered_neg
    }
}

impl fmt::Display for PosNegInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "PosNeg(|P|={}, |N|={}, |𝒞|={})",
            self.num_pos(),
            self.num_neg(),
            self.sets.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_selection_pays_all_positives() {
        let i = PosNegInstance::new(3, 2, vec![PnSet::new(vec![0, 1], vec![0])]);
        assert_eq!(i.cost(&[]), 3.0);
    }

    #[test]
    fn selection_trades_positives_for_negatives() {
        let i = PosNegInstance::new(3, 2, vec![PnSet::new(vec![0, 1], vec![0])]);
        // Covers p0, p1 (leaves p2) and touches n0: cost = 1 + 1.
        assert_eq!(i.cost(&[0]), 2.0);
    }

    #[test]
    fn weights_flow_through() {
        let i =
            PosNegInstance::with_weights(vec![10.0], vec![3.0], vec![PnSet::new(vec![0], vec![0])]);
        assert_eq!(i.cost(&[]), 10.0);
        assert_eq!(i.cost(&[0]), 3.0);
    }

    #[test]
    fn duplicate_selection_counts_once() {
        let i = PosNegInstance::new(1, 1, vec![PnSet::new(vec![0], vec![0])]);
        assert_eq!(i.cost(&[0, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_member_rejected() {
        PosNegInstance::new(1, 0, vec![PnSet::new(vec![1], vec![])]);
    }

    #[test]
    fn pnset_normalizes() {
        let s = PnSet::new(vec![2, 2, 0], vec![1]);
        assert_eq!(s.pos, vec![0, 2]);
    }
}
