//! The low-degree algorithm for Red-Blue Set Cover.
//!
//! Carr et al. (SODA'02) and Peleg (J. Discrete Algorithms 2007) observed
//! that if every set contains at most `τ` red elements, greedy weighted
//! covering pays at most `H(β)·τ·OPT ≲ τ·ln β·OPT`, and that discarding
//! high-red-degree sets loses at most a `√|𝒞|`-ish factor when `τ` is
//! chosen well. Sweeping `τ` and keeping the best feasible cover yields the
//! `2√(|𝒞| log β)` guarantee the paper's Claim 1 transfers to deletion
//! propagation ("LowDegTwo").

use crate::greedy;
use crate::kernel::{BitSet, BucketQueue};
use crate::redblue::{RedBlueInstance, SetSelection};

/// Outcome of one `τ`-restricted attempt.
#[derive(Debug, Clone)]
pub struct LowDegAttempt {
    /// The degree threshold used.
    pub tau: usize,
    /// Chosen sets (indices into the *original* instance), if feasible.
    pub selection: Option<SetSelection>,
    /// Cost in the original instance.
    pub cost: f64,
}

/// Run the `τ`-restricted subroutine: mask out sets with more than `tau`
/// red elements, then greedily cover the blues with what remains. The
/// restriction is an activity bitset handed to
/// [`greedy::cover_restricted`] — no subinstance is materialized.
pub fn with_threshold(instance: &RedBlueInstance, tau: usize) -> LowDegAttempt {
    let active = BitSet::from_indices(
        instance.sets().len(),
        instance
            .sets()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.red.len() <= tau)
            .map(|(si, _)| si),
    );
    attempt_with_mask(instance, tau, &active)
}

fn attempt_with_mask(instance: &RedBlueInstance, tau: usize, active: &BitSet) -> LowDegAttempt {
    match greedy::cover_restricted(instance, active) {
        Some(sel) => {
            let cost = instance.cost(&sel);
            LowDegAttempt {
                tau,
                selection: Some(sel),
                cost,
            }
        }
        None => LowDegAttempt {
            tau,
            selection: None,
            cost: f64::INFINITY,
        },
    }
}

/// The full low-degree algorithm: sweep `τ = 0..=max_red_degree`, keep the
/// cheapest feasible cover. Returns `None` iff the instance is infeasible.
///
/// Sets sit in a monotone bucket queue keyed by red degree; each τ-step
/// drains exactly the bucket of sets becoming active, so the sweep's
/// activation work is O(|𝒞|) total instead of O(|𝒞|·max_degree).
// lint:allow(budget): tau-sweep bounded by max_degree; each cover call is one bounded greedy pass
pub fn solve(instance: &RedBlueInstance) -> Option<SetSelection> {
    let num_sets = instance.sets().len();
    let max_degree = instance.max_red_degree();
    let mut by_degree = BucketQueue::new(num_sets, max_degree);
    for (si, s) in instance.sets().iter().enumerate() {
        by_degree.push(si, s.red.len());
    }
    let mut active = BitSet::new(num_sets);
    let mut pending = by_degree.pop_min();
    let mut best: Option<(f64, SetSelection)> = None;
    for tau in 0..=max_degree {
        while let Some((si, degree)) = pending {
            if degree > tau {
                break;
            }
            active.insert(si);
            pending = by_degree.pop_min();
        }
        let attempt = attempt_with_mask(instance, tau, &active);
        if let Some(sel) = attempt.selection {
            let better = best.as_ref().is_none_or(|(c, _)| attempt.cost < *c);
            if better {
                best = Some((attempt.cost, sel));
            }
            // τ = max degree keeps every set; later sweeps only repeat it.
        }
    }
    best.map(|(_, sel)| sel)
}

/// The approximation bound `2·sqrt(|𝒞|·log β)` of Carr et al. / Peleg for
/// this algorithm (with `log` natural and `β ≥ 2`; degenerate sizes clamp
/// the logarithm to 1 so the bound stays ≥ 2 and comparisons stay sane).
pub fn ratio_bound(num_sets: usize, num_blue: usize) -> f64 {
    let logb = (num_blue.max(2) as f64).ln().max(1.0);
    2.0 * ((num_sets as f64) * logb).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{self, ExactConfig};
    use crate::redblue::CoverSet;

    fn inst(nr: usize, nb: usize, sets: Vec<(Vec<usize>, Vec<usize>)>) -> RedBlueInstance {
        RedBlueInstance::new(
            nr,
            nb,
            sets.into_iter().map(|(r, b)| CoverSet::new(r, b)).collect(),
        )
    }

    #[test]
    fn threshold_zero_keeps_only_red_free_sets() {
        let i = inst(
            1,
            2,
            vec![(vec![0], vec![0, 1]), (vec![], vec![0]), (vec![], vec![1])],
        );
        let a = with_threshold(&i, 0);
        let sel = a.selection.unwrap();
        assert_eq!(a.cost, 0.0);
        assert!(i.is_feasible(&sel));
        assert!(!sel.contains(&0));
    }

    #[test]
    fn threshold_restores_feasibility_when_raised() {
        let i = inst(2, 1, vec![(vec![0, 1], vec![0])]);
        assert!(with_threshold(&i, 1).selection.is_none());
        let a = with_threshold(&i, 2);
        assert!(a.selection.is_some());
        assert_eq!(a.cost, 2.0);
    }

    #[test]
    fn solve_matches_best_threshold() {
        // The low threshold finds the cheap cover that plain greedy on the
        // full instance may miss (big set looks attractive per-blue).
        let i = inst(
            5,
            4,
            vec![
                (vec![0, 1, 2, 3], vec![0, 1, 2, 3]),
                (vec![4], vec![0, 1]),
                (vec![], vec![2]),
                (vec![], vec![3]),
            ],
        );
        let sel = solve(&i).unwrap();
        assert!(i.is_feasible(&sel));
        assert_eq!(i.cost(&sel), 1.0);
    }

    #[test]
    fn infeasible_returns_none() {
        let i = inst(1, 1, vec![(vec![0], vec![])]);
        assert!(solve(&i).is_none());
    }

    #[test]
    fn within_claimed_bound_on_random_instances() {
        let mut seed = 99u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..25 {
            let nr = 6;
            let nb = 5;
            let sets: Vec<(Vec<usize>, Vec<usize>)> = (0..10)
                .map(|_| {
                    (
                        (0..nr).filter(|_| next() % 3 == 0).collect(),
                        (0..nb).filter(|_| next() % 2 == 0).collect(),
                    )
                })
                .collect();
            let i = inst(nr, nb, sets);
            let (Some(sel), e) = (solve(&i), exact::solve(&i, ExactConfig::default())) else {
                continue;
            };
            assert!(i.is_feasible(&sel));
            let opt = e.cost;
            let bound = ratio_bound(i.sets().len(), nb);
            if opt > 0.0 {
                assert!(
                    i.cost(&sel) <= bound * opt + 1e-9,
                    "cost {} exceeds bound {} * opt {}",
                    i.cost(&sel),
                    bound,
                    opt
                );
            }
        }
    }

    #[test]
    fn ratio_bound_monotone_and_clamped() {
        assert!(ratio_bound(100, 50) > ratio_bound(10, 50));
        assert!(ratio_bound(1, 0) >= 2.0);
        assert!(ratio_bound(4, 1) >= 2.0 * 2.0 * 0.99);
    }
}
