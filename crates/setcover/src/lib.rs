//! # delprop-setcover — set-cover substrate
//!
//! The combinatorial problems and algorithms the paper's complexity and
//! approximation results flow through (§II.D, §III, §IV.A):
//!
//! - [`RedBlueInstance`]: Red-Blue Set Cover (Carr et al., SODA'02) — the
//!   problem multi-query view side-effect reduces to (Claim 1) and from
//!   (Theorem 1);
//! - [`PosNegInstance`]: Positive-Negative Partial Set Cover (Miettinen,
//!   IPL 2008) — likewise for the balanced variant (Theorem 2, Lemma 1);
//! - [`exact`]: branch-and-bound ground truth;
//! - [`greedy`]: weighted greedy covering;
//! - [`lowdeg`]: the low-degree ("LowDegTwo") algorithm with the
//!   `2√(|𝒞|·log β)` guarantee;
//! - [`reduce`]: Miettinen's cost-preserving reductions between the two
//!   problems, and the Pos-Neg solvers they induce;
//! - [`kernel`]: the shared dense primitives (packed bitsets, bit
//!   matrices, bucket queues, word sweeps) every hot path above — and the
//!   compiled IR in `delprop-core` — is built on.

pub mod exact;
pub mod greedy;
pub mod kernel;
pub mod lowdeg;
mod posneg;
mod redblue;
pub mod reduce;

pub use kernel::{BitMatrix, BitSet, BucketQueue};
pub use posneg::{PnSet, PosNegInstance};
pub use redblue::{CoverSet, RedBlueInstance, SetSelection};
