//! A dense rows × columns bit matrix stored as one flat `u64` buffer.
//!
//! Each row occupies `cols.div_ceil(64)` consecutive words, so a row is a
//! contiguous `&[u64]` slice suitable for the sweeps in
//! [`crate::kernel::words`] and for intersection with a
//! [`crate::kernel::BitSet`] over the same column universe. Rows are packed
//! back to back — iterating rows walks the buffer forward, which is what
//! keeps coverage counting and pivot-selection sweeps cache-resident.

/// Flat packed bit matrix with fixed dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    words: Vec<u64>,
    words_per_row: usize,
    rows: usize,
    cols: usize,
}

impl BitMatrix {
    /// All-zero matrix with `rows` rows of `cols` bits each.
    pub fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        BitMatrix {
            words: vec![0; rows * words_per_row],
            words_per_row,
            rows,
            cols,
        }
    }

    /// Build from an iterator of rows, each an iterator of set column
    /// indices. `rows` must match the iterator length exactly.
    // lint:allow(budget): O(nnz) constructor; the cost is borne once by the caller
    pub fn from_rows<R, I>(rows: usize, cols: usize, row_iter: R) -> Self
    where
        R: IntoIterator<Item = I>,
        I: IntoIterator<Item = usize>,
    {
        let mut m = BitMatrix::new(rows, cols);
        let mut seen = 0usize;
        for (r, cols_of_row) in row_iter.into_iter().enumerate() {
            seen += 1;
            for c in cols_of_row {
                m.set(r, c);
            }
        }
        assert_eq!(seen, rows, "row iterator length must equal `rows`");
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Words per row (shared with any `BitSet` over the column universe).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Set bit `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize) {
        assert!(r < self.rows && c < self.cols, "({r}, {c}) out of range");
        self.words[r * self.words_per_row + c / 64] |= 1u64 << (c % 64);
    }

    /// Whether bit `(r, c)` is set (false when out of range).
    pub fn contains(&self, r: usize, c: usize) -> bool {
        r < self.rows
            && c < self.cols
            && self.words[r * self.words_per_row + c / 64] & (1u64 << (c % 64)) != 0
    }

    /// Row `r` as a packed word slice.
    pub fn row(&self, r: usize) -> &[u64] {
        let start = r * self.words_per_row;
        &self.words[start..start + self.words_per_row]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::words;

    #[test]
    fn set_contains_row() {
        let mut m = BitMatrix::new(3, 70);
        m.set(0, 0);
        m.set(1, 69);
        m.set(2, 64);
        assert!(m.contains(0, 0) && m.contains(1, 69) && m.contains(2, 64));
        assert!(!m.contains(0, 1) && !m.contains(3, 0) && !m.contains(0, 70));
        assert_eq!(m.words_per_row(), 2);
        assert_eq!(words::iter_ones(m.row(1)).collect::<Vec<_>>(), vec![69]);
    }

    #[test]
    fn from_rows_packs_every_row() {
        let m = BitMatrix::from_rows(2, 130, [vec![0, 129], vec![64]]);
        assert_eq!(words::count(m.row(0)), 2);
        assert_eq!(words::iter_ones(m.row(1)).collect::<Vec<_>>(), vec![64]);
        let single = BitMatrix::from_rows(1, 130, [vec![129]]);
        assert!(words::intersects(m.row(0), single.row(0)));
    }

    #[test]
    #[should_panic(expected = "row iterator length")]
    fn from_rows_checks_length() {
        BitMatrix::from_rows(3, 8, [vec![0usize]]);
    }

    #[test]
    fn zero_sized_edges() {
        let m = BitMatrix::new(0, 10);
        assert_eq!(m.rows(), 0);
        let n = BitMatrix::new(4, 0);
        assert_eq!(n.words_per_row(), 0);
        assert_eq!(n.row(3), &[] as &[u64]);
        assert!(!n.contains(0, 0));
    }
}
