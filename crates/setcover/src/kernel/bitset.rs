//! A small fixed-capacity bitset shared by every dense solver hot path.
//!
//! `std` has no bitset and the offline crate list has no `fixedbitset`, so
//! we carry a minimal one. Packed `u64` words are exposed read-only via
//! [`BitSet::words`] so callers can run the branch-free sweeps in
//! [`crate::kernel::words`] against other packed rows (e.g. the rows of a
//! [`crate::kernel::BitMatrix`]). Invariant: bits at positions `>= capacity`
//! in the last word are always zero, so word-parallel popcounts never see
//! ghost bits.

/// Fixed-capacity bitset over `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// All-zero bitset with room for `capacity` bits.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            blocks: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// All-one bitset over `0..capacity` (tail bits stay zero).
    pub fn all_set(capacity: usize) -> Self {
        let mut s = BitSet {
            blocks: vec![u64::MAX; capacity.div_ceil(64)],
            capacity,
        };
        if !capacity.is_multiple_of(64) {
            if let Some(last) = s.blocks.last_mut() {
                *last &= (1u64 << (capacity % 64)) - 1;
            }
        }
        s
    }

    /// Bitset over `0..capacity` with the given (in-range) indices set.
    // lint:allow(budget): O(words) primitive; callers charge per operation
    pub fn from_indices(capacity: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(capacity);
        for i in indices {
            s.insert(i);
        }
        s
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The packed `u64` words, little-endian within each word. Tail bits
    /// beyond `capacity` are zero.
    pub fn words(&self) -> &[u64] {
        &self.blocks
    }

    /// Clear every bit, keeping the capacity.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
    }

    /// Set bit `i`. Returns whether it was previously unset.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        let (b, m) = (i / 64, 1u64 << (i % 64));
        let was = self.blocks[b] & m != 0;
        self.blocks[b] |= m;
        !was
    }

    /// Clear bit `i`.
    pub fn remove(&mut self, i: usize) {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        self.blocks[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        i < self.capacity && self.blocks[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// OR another bitset into this one (capacities must match).
    // lint:allow(budget): O(words) primitive; callers charge per operation
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// OR a packed row over the same universe into this bitset. The row
    /// must come from a matrix/bitset with this capacity, so its tail bits
    /// are zero and the invariant holds.
    // lint:allow(budget): O(words) primitive; callers charge per operation
    pub fn union_with_words(&mut self, row: &[u64]) {
        debug_assert_eq!(row.len(), self.blocks.len(), "universe mismatch");
        for (a, b) in self.blocks.iter_mut().zip(row) {
            *a |= b;
        }
    }

    /// Whether the two bitsets share any set bit (capacities must match).
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Number of bits set in both (capacities must match).
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.capacity, other.capacity);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether every set bit of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate set bit indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.blocks.iter().enumerate().flat_map(|(bi, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let t = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(bi * 64 + t)
                }
            })
        })
    }

    /// First unset bit below capacity, if any.
    // lint:allow(budget): O(words) primitive; callers charge per operation
    pub fn first_unset(&self) -> Option<usize> {
        for (bi, &block) in self.blocks.iter().enumerate() {
            if block != u64::MAX {
                let t = (!block).trailing_zeros() as usize;
                let i = bi * 64 + t;
                if i < self.capacity {
                    return Some(i);
                }
            }
        }
        None
    }
}

impl Default for BitSet {
    /// The empty zero-capacity bitset: `contains` is `false` everywhere,
    /// so it is the natural "no restrictions" value for config fields.
    fn default() -> Self {
        BitSet::new(0)
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect indices into a bitset sized to the maximum index + 1.
    // lint:allow(budget): O(words) primitive; callers charge per operation
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "double insert reports already-set");
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        s.remove(129);
        assert!(!s.contains(129));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn union_and_subset() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        b.insert(1);
        b.insert(65);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        a.union_with(&b);
        assert!(b.is_subset_of(&a));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn iter_in_order() {
        let s: BitSet = [3usize, 64, 7, 127].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7, 64, 127]);
    }

    #[test]
    fn first_unset() {
        let mut s = BitSet::new(3);
        assert_eq!(s.first_unset(), Some(0));
        s.insert(0);
        s.insert(1);
        assert_eq!(s.first_unset(), Some(2));
        s.insert(2);
        assert_eq!(s.first_unset(), None);
    }

    #[test]
    fn empty_and_zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.first_unset(), None);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_range_insert_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn all_set_masks_the_tail() {
        let s = BitSet::all_set(70);
        assert_eq!(s.count(), 70);
        assert_eq!(s.words().len(), 2);
        assert_eq!(s.words()[1], (1u64 << 6) - 1, "tail bits stay zero");
        assert_eq!(BitSet::all_set(64).words(), &[u64::MAX]);
        assert!(BitSet::all_set(0).is_empty());
    }

    #[test]
    fn intersects_and_intersection_count() {
        let a = BitSet::from_indices(130, [0, 63, 64, 129]);
        let b = BitSet::from_indices(130, [63, 64, 100]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_count(&b), 2);
        let c = BitSet::from_indices(130, [1, 65]);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection_count(&c), 0);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = BitSet::from_indices(90, [0, 89]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 90);
        assert!(s.insert(89));
    }
}
