//! Shared dense-kernel primitives for every solver hot path.
//!
//! The compiled IR hands solvers dense `u32` ids; this module is where
//! those ids meet packed data. Three building blocks, one contract:
//!
//! * [`BitSet`] — a single packed row over a dense universe (a deletion
//!   mask over base tuples, a coverage mask over blue elements, …).
//! * [`BitMatrix`] — many rows over the same universe in one flat buffer
//!   (witness sets per demand, set membership per cover set, …).
//! * [`BucketQueue`] — O(1) push/decrease-key/remove selection over small
//!   integer keys, replacing per-iteration re-scans and re-sorts.
//!
//! The contract: a `BitSet` and the rows of a `BitMatrix` over the same
//! universe have identical word layout, so the free functions in
//! [`words`] (intersect / popcount / union sweeps) apply to either side
//! without conversion. Everything is `u64`-word-parallel and branch-free
//! in the inner loop; nothing allocates after construction.

mod bitmatrix;
mod bitset;
mod bucket;
pub mod words;

pub use bitmatrix::BitMatrix;
pub use bitset::BitSet;
pub use bucket::BucketQueue;
