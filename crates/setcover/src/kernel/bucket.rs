//! A monotone bucket queue over small integer keys (Dial's structure).
//!
//! Items are dense indices `0..num_items`; keys are bounded integers.
//! Buckets are intrusive doubly-linked lists over three flat arrays, so
//! `push`, `decrease`, and `remove` are all O(1) with no per-operation
//! allocation and no re-sorting. Two consumption patterns are supported:
//!
//! * **Ascending sweep** (`pop_min`): a cursor walks the buckets upward.
//!   The cursor is a lower bound, not a high-water mark — `decrease` pulls
//!   it back down, so interleaving decreases with pops stays correct; the
//!   classic monotone case (static keys consumed in order, as in the
//!   low-degree τ-sweep) never moves it backwards and pays O(max_key)
//!   total cursor work.
//! * **Live scan** (`for_each_live`): visit every queued item grouped by
//!   bucket, cheapest bucket first — the greedy selection loop uses this to
//!   skip retired sets (key hits zero ⇒ `remove`) without touching them.

const NONE: u32 = u32::MAX;

/// Bucket queue over items `0..num_items` with keys `0..=max_key`.
#[derive(Debug, Clone)]
pub struct BucketQueue {
    head: Vec<u32>,
    next: Vec<u32>,
    prev: Vec<u32>,
    key: Vec<u32>,
    cursor: usize,
    len: usize,
}

impl BucketQueue {
    /// Empty queue able to hold `num_items` items with keys up to `max_key`.
    pub fn new(num_items: usize, max_key: usize) -> Self {
        assert!(num_items < NONE as usize, "item universe too large");
        assert!(max_key < NONE as usize, "key universe too large");
        BucketQueue {
            head: vec![NONE; max_key + 1],
            next: vec![NONE; num_items],
            prev: vec![NONE; num_items],
            key: vec![NONE; num_items],
            cursor: 0,
            len: 0,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no item is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current key of `item`, if queued.
    pub fn key_of(&self, item: usize) -> Option<usize> {
        match self.key[item] {
            NONE => None,
            k => Some(k as usize),
        }
    }

    /// Queue `item` with `key`.
    ///
    /// # Panics
    /// Panics if `item` is already queued or `key` exceeds `max_key`.
    pub fn push(&mut self, item: usize, key: usize) {
        assert_eq!(self.key[item], NONE, "item {item} already queued");
        self.link(item, key);
        self.len += 1;
        self.cursor = self.cursor.min(key);
    }

    /// Lower the key of a queued `item` to `new_key` in O(1).
    ///
    /// # Panics
    /// Panics if `item` is not queued or `new_key` exceeds its current key.
    pub fn decrease(&mut self, item: usize, new_key: usize) {
        let cur = self.key[item];
        assert_ne!(cur, NONE, "item {item} not queued");
        assert!(new_key <= cur as usize, "decrease-key must not increase");
        if new_key == cur as usize {
            return;
        }
        self.unlink(item);
        self.link(item, new_key);
        self.cursor = self.cursor.min(new_key);
    }

    /// Remove a queued `item` in O(1).
    ///
    /// # Panics
    /// Panics if `item` is not queued.
    pub fn remove(&mut self, item: usize) {
        assert_ne!(self.key[item], NONE, "item {item} not queued");
        self.unlink(item);
        self.key[item] = NONE;
        self.len -= 1;
    }

    /// Pop an item with the minimum key (arbitrary order within a bucket).
    // lint:allow(budget): the cursor sweep is amortized O(keys) across the queue's lifetime
    pub fn pop_min(&mut self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        while self.head[self.cursor] == NONE {
            self.cursor += 1;
        }
        let item = self.head[self.cursor] as usize;
        let key = self.cursor;
        self.remove(item);
        Some((item, key))
    }

    /// Visit every queued item as `(item, key)`, cheapest bucket first.
    // lint:allow(budget): visits each live entry exactly once, O(live + keys)
    pub fn for_each_live(&self, mut f: impl FnMut(usize, usize)) {
        let mut remaining = self.len;
        for key in self.cursor..self.head.len() {
            if remaining == 0 {
                break;
            }
            let mut it = self.head[key];
            while it != NONE {
                f(it as usize, key);
                remaining -= 1;
                it = self.next[it as usize];
            }
        }
    }

    fn link(&mut self, item: usize, key: usize) {
        let old_head = self.head[key];
        self.next[item] = old_head;
        self.prev[item] = NONE;
        if old_head != NONE {
            self.prev[old_head as usize] = item as u32;
        }
        self.head[key] = item as u32;
        self.key[item] = key as u32;
    }

    fn unlink(&mut self, item: usize) {
        let (p, n) = (self.prev[item], self.next[item]);
        if p == NONE {
            self.head[self.key[item] as usize] = n;
        } else {
            self.next[p as usize] = n;
        }
        if n != NONE {
            self.prev[n as usize] = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_ascending() {
        let mut q = BucketQueue::new(5, 10);
        for (i, k) in [(0, 7), (1, 2), (2, 7), (3, 0), (4, 10)] {
            q.push(i, k);
        }
        assert_eq!(q.len(), 5);
        let mut keys = Vec::new();
        while let Some((_, k)) = q.pop_min() {
            keys.push(k);
        }
        assert_eq!(keys, vec![0, 2, 7, 7, 10]);
        assert!(q.is_empty());
    }

    #[test]
    fn decrease_key_moves_buckets() {
        let mut q = BucketQueue::new(3, 8);
        q.push(0, 8);
        q.push(1, 5);
        q.push(2, 8);
        assert_eq!(q.pop_min(), Some((1, 5)));
        q.decrease(2, 1);
        assert_eq!(q.key_of(2), Some(1));
        assert_eq!(q.pop_min(), Some((2, 1)), "cursor rewinds after decrease");
        assert_eq!(q.pop_min(), Some((0, 8)));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn remove_from_middle_of_bucket() {
        let mut q = BucketQueue::new(4, 3);
        q.push(0, 2);
        q.push(1, 2);
        q.push(2, 2);
        q.remove(1);
        assert_eq!(q.key_of(1), None);
        let mut seen = Vec::new();
        q.for_each_live(|i, k| seen.push((i, k)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 2), (2, 2)]);
        q.push(3, 0);
        let mut order = Vec::new();
        q.for_each_live(|_, k| order.push(k));
        assert_eq!(order, vec![0, 2, 2], "cheapest bucket first");
    }

    #[test]
    fn equal_key_decrease_is_noop() {
        let mut q = BucketQueue::new(2, 4);
        q.push(0, 3);
        q.decrease(0, 3);
        assert_eq!(q.key_of(0), Some(3));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already queued")]
    fn double_push_panics() {
        let mut q = BucketQueue::new(2, 2);
        q.push(1, 1);
        q.push(1, 0);
    }

    #[test]
    #[should_panic(expected = "must not increase")]
    fn increase_key_panics() {
        let mut q = BucketQueue::new(2, 5);
        q.push(0, 2);
        q.decrease(0, 4);
    }
}
