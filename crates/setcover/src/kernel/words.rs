//! Branch-free sweeps over packed `u64` word slices.
//!
//! These are the inner loops of every dense solver kernel: witness-set
//! membership tests, coverage popcounts, and row unions all reduce to a
//! zip over two word slices with no per-bit branching. All functions
//! tolerate length mismatches by treating the shorter slice as
//! zero-extended — rows produced by [`crate::kernel::BitMatrix`] and masks
//! produced by [`crate::kernel::BitSet`] over the same universe always have
//! equal length, but the zero-extension keeps degenerate empty universes
//! (no words at all) safe without a special case.

/// Whether the two packed rows share any set bit.
pub fn intersects(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

/// Number of bits set in both rows.
pub fn intersection_count(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x & y).count_ones() as usize)
        .sum()
}

/// Number of bits set in `a` but not in `b`.
pub fn difference_count(a: &[u64], b: &[u64]) -> usize {
    let shared = a.len().min(b.len());
    let head: usize = a[..shared]
        .iter()
        .zip(&b[..shared])
        .map(|(x, y)| (x & !y).count_ones() as usize)
        .sum();
    head + count(&a[shared..])
}

/// Total set bits in a row.
pub fn count(a: &[u64]) -> usize {
    a.iter().map(|x| x.count_ones() as usize).sum()
}

/// OR `src` into `dst` (`src` must not be longer than `dst`).
// lint:allow(budget): O(words) primitive; callers charge per operation
pub fn union_into(dst: &mut [u64], src: &[u64]) {
    debug_assert!(src.len() <= dst.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// Iterate the set bit indices of a packed row in increasing order.
pub fn iter_ones(a: &[u64]) -> impl Iterator<Item = usize> + '_ {
    a.iter().enumerate().flat_map(|(wi, &word)| {
        let mut w = word;
        std::iter::from_fn(move || {
            if w == 0 {
                None
            } else {
                let t = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + t)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(bits: &[usize], words: usize) -> Vec<u64> {
        let mut r = vec![0u64; words];
        for &b in bits {
            r[b / 64] |= 1 << (b % 64);
        }
        r
    }

    #[test]
    fn intersects_and_counts() {
        let a = row(&[0, 63, 64, 127], 2);
        let b = row(&[63, 100], 2);
        assert!(intersects(&a, &b));
        assert_eq!(intersection_count(&a, &b), 1);
        assert_eq!(difference_count(&a, &b), 3);
        assert_eq!(count(&a), 4);
        assert!(!intersects(&a, &row(&[1, 2], 2)));
    }

    #[test]
    fn mismatched_lengths_zero_extend() {
        let long = row(&[0, 64], 2);
        let short = row(&[0], 1);
        assert!(intersects(&long, &short));
        assert_eq!(intersection_count(&long, &short), 1);
        assert_eq!(difference_count(&long, &short), 1, "bit 64 survives");
        assert_eq!(difference_count(&short, &long), 0);
        assert!(!intersects(&long, &[]));
    }

    #[test]
    fn union_and_iteration() {
        let mut dst = row(&[1], 2);
        union_into(&mut dst, &row(&[64], 2));
        assert_eq!(iter_ones(&dst).collect::<Vec<_>>(), vec![1, 64]);
        assert_eq!(iter_ones(&[]).count(), 0);
    }
}
