//! Greedy weighted covering of the blue elements.
//!
//! The inner engine of the low-degree algorithm (see [`crate::lowdeg`]):
//! treat each set's red weight as its price and run the classical greedy
//! weighted set cover over the blue elements (pick the set minimizing
//! price / newly-covered-blues), giving an `H(β)` factor w.r.t. the
//! *disjoint-cost* relaxation in which shared reds are paid per set.
//!
//! Also usable stand-alone as the cheap baseline the experiments compare
//! against.

use crate::bitset::BitSet;
use crate::redblue::{RedBlueInstance, SetSelection};

/// Greedily cover all blue elements. Returns `None` if the instance is not
/// coverable.
///
/// The price of a set is the total weight of its red elements **not yet
/// covered** by the current selection (so reds shared with already-chosen
/// sets are free, which slightly sharpens the textbook variant without
/// affecting its guarantee).
pub fn cover(instance: &RedBlueInstance) -> Option<SetSelection> {
    if !instance.is_coverable() {
        return None;
    }
    let num_blue = instance.num_blue();
    let mut covered_blue = BitSet::new(num_blue);
    let mut covered_red = BitSet::new(instance.num_red());
    let mut selection = Vec::new();
    let mut used = vec![false; instance.sets().len()];

    while covered_blue.count() < num_blue {
        let mut best: Option<(usize, f64)> = None; // (set, price per new blue)
        for (si, s) in instance.sets().iter().enumerate() {
            if used[si] {
                continue;
            }
            let new_blue = s
                .blue
                .iter()
                .filter(|&&b| !covered_blue.contains(b))
                .count();
            if new_blue == 0 {
                continue;
            }
            let price: f64 = s
                .red
                .iter()
                .filter(|&&r| !covered_red.contains(r))
                .map(|&r| instance.red_weight(r))
                .sum();
            let ratio = price / new_blue as f64;
            if best.is_none_or(|(_, b)| ratio < b) {
                best = Some((si, ratio));
            }
        }
        let (si, _) = best.expect("coverable instance always has a set with new blues");
        used[si] = true;
        selection.push(si);
        for &b in &instance.sets()[si].blue {
            covered_blue.insert(b);
        }
        for &r in &instance.sets()[si].red {
            covered_red.insert(r);
        }
    }
    Some(selection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{self, ExactConfig};
    use crate::redblue::CoverSet;

    fn inst(nr: usize, nb: usize, sets: Vec<(Vec<usize>, Vec<usize>)>) -> RedBlueInstance {
        RedBlueInstance::new(
            nr,
            nb,
            sets.into_iter().map(|(r, b)| CoverSet::new(r, b)).collect(),
        )
    }

    #[test]
    fn covers_everything() {
        let i = inst(
            3,
            4,
            vec![
                (vec![0], vec![0, 1]),
                (vec![1], vec![2]),
                (vec![2], vec![3]),
            ],
        );
        let sel = cover(&i).unwrap();
        assert!(i.is_feasible(&sel));
    }

    #[test]
    fn infeasible_returns_none() {
        let i = inst(0, 1, vec![]);
        assert!(cover(&i).is_none());
    }

    #[test]
    fn prefers_free_sets() {
        let i = inst(
            2,
            2,
            vec![
                (vec![0, 1], vec![0, 1]),
                (vec![], vec![0]),
                (vec![], vec![1]),
            ],
        );
        let sel = cover(&i).unwrap();
        assert_eq!(i.cost(&sel), 0.0);
    }

    #[test]
    fn shared_reds_discounted() {
        // After choosing set 0 (red 0), set 1 shares red 0 and becomes free,
        // so greedy should prefer it over set 2 (fresh red 1).
        let i = inst(
            2,
            2,
            vec![(vec![0], vec![0]), (vec![0], vec![1]), (vec![1], vec![1])],
        );
        let sel = cover(&i).unwrap();
        assert_eq!(i.cost(&sel), 1.0);
    }

    #[test]
    fn greedy_is_feasible_on_random_instances_and_bounded_by_exact() {
        // Deterministic pseudo-random family; greedy cost must be >= OPT
        // and both must be feasible.
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for trial in 0..20 {
            let nr = 4 + trial % 4;
            let nb = 4 + trial % 3;
            let sets: Vec<(Vec<usize>, Vec<usize>)> = (0..8)
                .map(|_| {
                    let reds = (0..nr).filter(|_| next() % 3 == 0).collect();
                    let blues = (0..nb).filter(|_| next() % 2 == 0).collect();
                    (reds, blues)
                })
                .collect();
            let i = inst(nr, nb, sets);
            let g = cover(&i);
            let e = exact::solve(&i, ExactConfig::default());
            match (g, e.selection) {
                (Some(gs), Some(_)) => {
                    assert!(i.is_feasible(&gs));
                    assert!(i.cost(&gs) >= e.cost - 1e-9);
                }
                (None, None) => {}
                (g, e) => panic!("feasibility disagreement: greedy={g:?} exact={e:?}"),
            }
        }
    }
}
