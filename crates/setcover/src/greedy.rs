//! Greedy weighted covering of the blue elements.
//!
//! The inner engine of the low-degree algorithm (see [`crate::lowdeg`]):
//! treat each set's red weight as its price and run the classical greedy
//! weighted set cover over the blue elements (pick the set minimizing
//! price / newly-covered-blues), giving an `H(β)` factor w.r.t. the
//! *disjoint-cost* relaxation in which shared reds are paid per set.
//!
//! The selection loop is dense: per-set newly-covered-blue counts live in a
//! monotone [`BucketQueue`] (O(1) decrease-key as blues get covered, sets
//! retired the moment they cover nothing new), and prices are word-parallel
//! popcount-and-sum sweeps over the instance's packed red rows. Both the
//! pick sequence and every price are bit-identical to the classic
//! scan-everything formulation — only the work per iteration changed.
//!
//! Also usable stand-alone as the cheap baseline the experiments compare
//! against.

use crate::kernel::{words, BitSet, BucketQueue};
use crate::redblue::{RedBlueInstance, SetSelection};

/// Greedily cover all blue elements. Returns `None` if the instance is not
/// coverable.
///
/// The price of a set is the total weight of its red elements **not yet
/// covered** by the current selection (so reds shared with already-chosen
/// sets are free, which slightly sharpens the textbook variant without
/// affecting its guarantee).
pub fn cover(instance: &RedBlueInstance) -> Option<SetSelection> {
    cover_restricted(instance, &BitSet::all_set(instance.sets().len()))
}

/// [`cover`], restricted to the sets whose bit is set in `active`. Sets
/// outside the mask are invisible: the result equals running [`cover`] on
/// the subinstance keeping only active sets (in original index order), but
/// with original set indices and **no instance clone** — the τ-sweep in
/// [`crate::lowdeg`] calls this once per threshold.
// lint:allow(budget): each round covers >= 1 new blue so <= num_blue rounds of O(nnz) scans; callers charge the cover coarsely
pub fn cover_restricted(instance: &RedBlueInstance, active: &BitSet) -> Option<SetSelection> {
    let num_blue = instance.num_blue();
    let num_sets = instance.sets().len();
    assert_eq!(active.capacity(), num_sets, "one activity bit per set");

    // Coverability under the mask: union of active blue rows.
    let mut reachable = BitSet::new(num_blue);
    for si in active.iter() {
        reachable.union_with_words(instance.blue_row(si));
    }
    if reachable.count() != num_blue {
        return None;
    }

    // Inverted index blue -> containing active sets, CSR layout.
    let mut blue_offsets = vec![0u32; num_blue + 1];
    for si in active.iter() {
        for b in words::iter_ones(instance.blue_row(si)) {
            blue_offsets[b + 1] += 1;
        }
    }
    for b in 0..num_blue {
        blue_offsets[b + 1] += blue_offsets[b];
    }
    let mut blue_sets = vec![0u32; blue_offsets[num_blue] as usize];
    let mut cursor: Vec<u32> = blue_offsets[..num_blue].to_vec();
    for si in active.iter() {
        for b in words::iter_ones(instance.blue_row(si)) {
            blue_sets[cursor[b] as usize] = si as u32;
            cursor[b] += 1;
        }
    }

    // Live sets keyed by how many uncovered blues they still reach; a set
    // whose key hits zero can never be picked again and leaves the queue.
    let mut queue = BucketQueue::new(num_sets, num_blue);
    let mut new_blue = vec![0u32; num_sets];
    for si in active.iter() {
        let n = words::count(instance.blue_row(si));
        if n > 0 {
            new_blue[si] = n as u32;
            queue.push(si, n);
        }
    }

    let mut covered_blue = BitSet::new(num_blue);
    let mut covered_red = BitSet::new(instance.num_red());
    let mut covered_blue_count = 0usize;
    let mut selection = Vec::new();

    while covered_blue_count < num_blue {
        // Pick argmin price / new_blue. Ties go to the smallest set index,
        // exactly like a first-strict-min scan in index order; the queue
        // only prunes sets that cover nothing new.
        let mut best: Option<(f64, usize)> = None;
        queue.for_each_live(|si, key| {
            // Price = weight of the set's reds not yet covered, summed in
            // ascending red order (bit-identical to a sorted member scan).
            let mut price = 0.0;
            for (wi, (&row, &cov)) in instance
                .red_row(si)
                .iter()
                .zip(covered_red.words())
                .enumerate()
            {
                let mut w = row & !cov;
                while w != 0 {
                    let r = wi * 64 + w.trailing_zeros() as usize;
                    price += instance.red_weight(r);
                    w &= w - 1;
                }
            }
            let ratio = price / key as f64;
            let better = match best {
                None => true,
                Some((br, bi)) => ratio < br || (ratio == br && si < bi),
            };
            if better {
                best = Some((ratio, si));
            }
        });
        let (_, si) = best.expect("coverable instance always has a set with new blues");
        queue.remove(si);
        new_blue[si] = 0;
        selection.push(si);
        // Newly covered blues shrink the keys of every set that shares one.
        for (wi, (&row, &cov)) in instance
            .blue_row(si)
            .iter()
            .zip(covered_blue.words())
            .enumerate()
        {
            let mut w = row & !cov;
            while w != 0 {
                let b = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                covered_blue_count += 1;
                for &other in &blue_sets[blue_offsets[b] as usize..blue_offsets[b + 1] as usize] {
                    let other = other as usize;
                    if new_blue[other] > 0 {
                        new_blue[other] -= 1;
                        if new_blue[other] == 0 {
                            queue.remove(other);
                        } else {
                            queue.decrease(other, new_blue[other] as usize);
                        }
                    }
                }
            }
        }
        covered_blue.union_with_words(instance.blue_row(si));
        covered_red.union_with_words(instance.red_row(si));
    }
    Some(selection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{self, ExactConfig};
    use crate::redblue::CoverSet;

    fn inst(nr: usize, nb: usize, sets: Vec<(Vec<usize>, Vec<usize>)>) -> RedBlueInstance {
        RedBlueInstance::new(
            nr,
            nb,
            sets.into_iter().map(|(r, b)| CoverSet::new(r, b)).collect(),
        )
    }

    #[test]
    fn covers_everything() {
        let i = inst(
            3,
            4,
            vec![
                (vec![0], vec![0, 1]),
                (vec![1], vec![2]),
                (vec![2], vec![3]),
            ],
        );
        let sel = cover(&i).unwrap();
        assert!(i.is_feasible(&sel));
    }

    #[test]
    fn infeasible_returns_none() {
        let i = inst(0, 1, vec![]);
        assert!(cover(&i).is_none());
    }

    #[test]
    fn prefers_free_sets() {
        let i = inst(
            2,
            2,
            vec![
                (vec![0, 1], vec![0, 1]),
                (vec![], vec![0]),
                (vec![], vec![1]),
            ],
        );
        let sel = cover(&i).unwrap();
        assert_eq!(i.cost(&sel), 0.0);
    }

    #[test]
    fn shared_reds_discounted() {
        // After choosing set 0 (red 0), set 1 shares red 0 and becomes free,
        // so greedy should prefer it over set 2 (fresh red 1).
        let i = inst(
            2,
            2,
            vec![(vec![0], vec![0]), (vec![0], vec![1]), (vec![1], vec![1])],
        );
        let sel = cover(&i).unwrap();
        assert_eq!(i.cost(&sel), 1.0);
    }

    #[test]
    fn restricted_mask_hides_sets() {
        let i = inst(
            2,
            2,
            vec![(vec![], vec![0, 1]), (vec![0], vec![0]), (vec![1], vec![1])],
        );
        // Full cover takes the free set 0.
        assert_eq!(i.cost(&cover(&i).unwrap()), 0.0);
        // Masking it out forces the two paid sets, in index order.
        let mask = BitSet::from_indices(3, [1, 2]);
        let sel = cover_restricted(&i, &mask).unwrap();
        assert_eq!(sel, vec![1, 2]);
        assert_eq!(i.cost(&sel), 2.0);
        // A mask that cannot reach blue 1 is infeasible.
        assert!(cover_restricted(&i, &BitSet::from_indices(3, [1])).is_none());
    }

    #[test]
    fn greedy_is_feasible_on_random_instances_and_bounded_by_exact() {
        // Deterministic pseudo-random family; greedy cost must be >= OPT
        // and both must be feasible.
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for trial in 0..20 {
            let nr = 4 + trial % 4;
            let nb = 4 + trial % 3;
            let sets: Vec<(Vec<usize>, Vec<usize>)> = (0..8)
                .map(|_| {
                    let reds = (0..nr).filter(|_| next() % 3 == 0).collect();
                    let blues = (0..nb).filter(|_| next() % 2 == 0).collect();
                    (reds, blues)
                })
                .collect();
            let i = inst(nr, nb, sets);
            let g = cover(&i);
            let e = exact::solve(&i, ExactConfig::default());
            match (g, e.selection) {
                (Some(gs), Some(_)) => {
                    assert!(i.is_feasible(&gs));
                    assert!(i.cost(&gs) >= e.cost - 1e-9);
                }
                (None, None) => {}
                (g, e) => panic!("feasibility disagreement: greedy={g:?} exact={e:?}"),
            }
        }
    }

    #[test]
    fn restricted_matches_subinstance_clone() {
        // cover_restricted must equal greedy on the physically restricted
        // instance, modulo the index mapping — the exact invariant the
        // low-degree sweep relies on.
        let mut seed = 777u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..10 {
            let (nr, nb) = (5, 5);
            let sets: Vec<(Vec<usize>, Vec<usize>)> = (0..7)
                .map(|_| {
                    (
                        (0..nr).filter(|_| next() % 3 == 0).collect(),
                        (0..nb).filter(|_| next() % 2 == 0).collect(),
                    )
                })
                .collect();
            let i = inst(nr, nb, sets.clone());
            let kept: Vec<usize> = (0..7).filter(|_| next() % 4 != 0).collect();
            let mask = BitSet::from_indices(7, kept.iter().copied());
            let sub = inst(nr, nb, kept.iter().map(|&k| sets[k].clone()).collect());
            let via_mask = cover_restricted(&i, &mask);
            let via_clone =
                cover(&sub).map(|sel| sel.into_iter().map(|s| kept[s]).collect::<Vec<_>>());
            assert_eq!(via_mask, via_clone);
        }
    }
}
