//! The general-case approximation (Claim 1 and Lemma 1 of the paper).
//!
//! Standard version: reduce to Red-Blue Set Cover and run the low-degree
//! algorithm, giving ratio `O(2√(l·‖V‖·log‖ΔV‖))` — each view tuple joins
//! at most `l` base tuples, so the image has at most `l·‖V‖`-ish set
//! memberships, and the Red-Blue guarantee `2√(|𝒞|·log β)` transfers
//! through the cost-preserving reduction.
//!
//! Balanced version: reduce to Pos-Neg Partial Set Cover, then through
//! Miettinen's reduction to Red-Blue, ratio
//! `2√(l·(‖V‖+‖ΔV‖)·log‖ΔV‖)`.

use crate::error::CoreError;
use crate::ir::CompiledInstance;
use crate::reduction;
use crate::solution::Solution;
use delprop_setcover::{lowdeg, reduce};

/// Approximate the minimum view side-effect (standard version).
///
/// Returns an error only if some `ΔV` tuple cannot be eliminated, which
/// key-preservation makes impossible for well-formed problems.
pub fn solve(ir: &CompiledInstance) -> Result<Solution, CoreError> {
    crate::runtime::metrics::SOLVE_GENERAL.inc();
    let rb = reduction::to_redblue(ir);
    let sel = lowdeg::solve(&rb.instance).ok_or_else(|| CoreError::Infeasible {
        reason: "a deleted view tuple has no candidate witness".into(),
    })?;
    Ok(rb.map_back(&sel))
}

/// Approximate the balanced objective (Lemma 1 route).
pub fn solve_balanced(ir: &CompiledInstance) -> Solution {
    crate::runtime::metrics::SOLVE_GENERAL.inc();
    let pn = reduction::to_posneg(ir);
    let (sel, _) = reduce::solve_posneg_lowdeg(&pn.instance);
    pn.map_back(&sel)
}

/// The Claim 1 ratio bound `2√(l·‖V‖·log‖ΔV‖)` for this instance
/// (logarithm clamped below at 1 so tiny instances keep a sane bound).
pub fn ratio_bound(ir: &CompiledInstance) -> f64 {
    let l = ir.l().max(1) as f64;
    let v = ir.norm_v().max(1) as f64;
    let logd = (ir.norm_delta().max(2) as f64).ln().max(1.0);
    2.0 * (l * v * logd).sqrt()
}

/// The Lemma 1 ratio bound `2√(l·(‖V‖+‖ΔV‖)·log‖ΔV‖)`.
pub fn balanced_ratio_bound(ir: &CompiledInstance) -> f64 {
    let l = ir.l().max(1) as f64;
    let v = (ir.norm_v() + ir.norm_delta()).max(1) as f64;
    let logd = (ir.norm_delta().max(2) as f64).ln().max(1.0);
    2.0 * (l * v * logd).sqrt()
}

/// Cheap greedy baseline (reduce to Red-Blue, greedy weighted cover).
/// No ratio guarantee beyond greedy's; used in experiments as the
/// strawman Claim 1's algorithm is compared against.
pub fn solve_greedy(ir: &CompiledInstance) -> Result<Solution, CoreError> {
    crate::runtime::metrics::SOLVE_GENERAL.inc();
    let rb = reduction::to_redblue(ir);
    let sel =
        delprop_setcover::greedy::cover(&rb.instance).ok_or_else(|| CoreError::Infeasible {
            reason: "a deleted view tuple has no candidate witness".into(),
        })?;
    Ok(rb.map_back(&sel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Problem;
    use crate::solvers::exact;
    use crate::test_support::fig1_problem;
    use delprop_relation::tup;
    use delprop_setcover::exact::ExactConfig;

    fn problem() -> Problem {
        fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        })
    }

    #[test]
    fn feasible_and_within_bound() {
        let p = problem();
        let sol = solve(p.compiled()).unwrap();
        assert!(sol.is_feasible(&p));
        let opt = exact::solve(p.compiled(), ExactConfig::default()).cost;
        let bound = ratio_bound(p.compiled());
        assert!(sol.side_effect(&p) <= bound * opt.max(1.0) + 1e-9);
    }

    #[test]
    fn fig1_finds_the_optimum() {
        // On this tiny instance the low-degree sweep hits τ=1 and finds
        // the side-effect-1 solution.
        let p = problem();
        let sol = solve(p.compiled()).unwrap();
        assert_eq!(sol.side_effect(&p), 1.0);
    }

    #[test]
    fn balanced_feasible_and_sane() {
        let p = problem();
        let sol = solve_balanced(p.compiled());
        let cost = sol.balanced_cost(&p);
        let opt = exact::solve_balanced(p.compiled(), ExactConfig::default()).cost;
        assert!(cost >= opt - 1e-9);
        assert!(cost <= balanced_ratio_bound(p.compiled()) * opt.max(1.0) + 1e-9);
    }

    #[test]
    fn greedy_is_feasible() {
        let p = problem();
        let sol = solve_greedy(p.compiled()).unwrap();
        assert!(sol.is_feasible(&p));
    }

    #[test]
    fn bounds_grow_with_instance_measures() {
        let p = problem();
        assert!(ratio_bound(p.compiled()) >= 2.0);
        assert!(balanced_ratio_bound(p.compiled()) >= ratio_bound(p.compiled()));
    }
}
