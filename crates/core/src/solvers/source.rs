//! The **source side-effect** objective: minimize the (weighted) number of
//! base tuples deleted, rather than the view damage.
//!
//! This is the sibling measure of Tables II–III of the paper (Buneman et
//! al. 2002; Cong et al. 2012; Freire et al. 2015 "resilience"), recalled
//! in §I–II to contrast with the view side-effect studied here. For
//! key-preserving queries it is a weighted **hitting set** over the
//! demands' witness sets: every `ΔV` tuple must lose at least one witness.
//! Hitting set is NP-hard in general, so this module provides
//!
//! - [`solve`]: exact branch and bound (demands branch over their ≤ `l`
//!   witnesses, so the tree is at most `l^‖ΔV‖` — fine at experiment
//!   scale);
//! - [`solve_greedy`]: the classical greedy `H(‖ΔV‖)`-approximation;
//!
//! plus [`source_cost`] so experiments can report both measures of any
//! solution side by side (EX-SRC).
//!
//! Both solvers branch over the compiled demand rows (dense candidate
//! ids); greedy coverage updates walk `hit_row`s instead of scanning
//! witness lists.

use crate::ir::CompiledInstance;
use crate::problem::Problem;
use crate::solution::Solution;
use delprop_query::ViewTupleId;

/// The source side-effect of a solution: the number of deleted base
/// tuples (all base tuples weigh 1; per-tuple weights would slot in here
/// if a workload needed them).
pub fn source_cost(solution: &Solution) -> f64 {
    solution.len() as f64
}

/// Exact minimum-cardinality source deletion eliminating all of `ΔV`.
pub fn solve(ir: &CompiledInstance) -> Solution {
    crate::runtime::metrics::SOLVE_SOURCE.inc();
    // Demands as witness rows, deduplicated: two demands with the same
    // witness set are one constraint. Rows are sorted by candidate id,
    // which follows TupleId order, so row comparison is well defined.
    let mut demands: Vec<Vec<u32>> = (0..ir.num_demands() as u32)
        .map(|d| ir.demand_row(d).to_vec())
        .collect();
    demands.sort();
    demands.dedup();
    // Order by witness-count ascending: forced choices first shrink the
    // search tree.
    demands.sort_by_key(Vec::len);

    let mut best: Option<Vec<u32>> = None;
    let mut chosen: Vec<u32> = Vec::new();
    let mut chosen_mask = vec![false; ir.num_bases()];
    search(&demands, 0, &mut chosen, &mut chosen_mask, &mut best);
    Solution::from_tuples(best.unwrap_or_default().into_iter().map(|b| ir.base(b)))
}

// lint:allow(budget): each iteration permanently discards one demand, O(demands) total
fn search(
    demands: &[Vec<u32>],
    idx: usize,
    chosen: &mut Vec<u32>,
    chosen_mask: &mut Vec<bool>,
    best: &mut Option<Vec<u32>>,
) {
    if let Some(b) = best {
        if chosen.len() >= b.len() {
            return; // cannot improve
        }
    }
    // Skip demands already hit.
    let mut i = idx;
    while i < demands.len() && demands[i].iter().any(|&b| chosen_mask[b as usize]) {
        i += 1;
    }
    if i == demands.len() {
        *best = Some(chosen.clone());
        return;
    }
    for &b in &demands[i] {
        chosen.push(b);
        chosen_mask[b as usize] = true;
        search(demands, i + 1, chosen, chosen_mask, best);
        chosen.pop();
        chosen_mask[b as usize] = false;
    }
}

/// Greedy hitting set: repeatedly delete the base tuple hitting the most
/// not-yet-hit demands (ratio `H(‖ΔV‖)`).
// lint:allow(budget): every round covers >= 1 uncovered demand, so <= num_demands rounds
pub fn solve_greedy(ir: &CompiledInstance) -> Solution {
    crate::runtime::metrics::SOLVE_SOURCE.inc();
    let nd = ir.num_demands();
    let mut hit = vec![false; nd];
    let mut hit_count = 0usize;
    let mut deleted: Vec<u32> = Vec::new();
    while hit_count < nd {
        // Count coverage of each candidate among un-hit demands.
        let mut gain = vec![0usize; ir.num_bases()];
        for d in 0..nd as u32 {
            if hit[d as usize] {
                continue;
            }
            for &b in ir.demand_row(d) {
                gain[b as usize] += 1;
            }
        }
        // Key-preserving views (enforced by `Problem::new`) guarantee
        // every demand a witness, so some gain is positive here. If an
        // instance built by other means smuggles in a witness-less
        // demand, it is unhittable: stop with the partial cover instead
        // of looping forever — downstream verification rejects it.
        // Strict `>` keeps the smallest candidate (TupleId order) on ties.
        let (b, g) =
            gain.iter().enumerate().fold(
                (0usize, 0usize),
                |acc, (b, &g)| {
                    if g > acc.1 {
                        (b, g)
                    } else {
                        acc
                    }
                },
            );
        if g == 0 {
            break;
        }
        let b = b as u32;
        deleted.push(b);
        for &d in ir.hit_row(b) {
            if !hit[d as usize] {
                hit[d as usize] = true;
                hit_count += 1;
            }
        }
    }
    Solution::from_tuples(deleted.into_iter().map(|b| ir.base(b)))
}

/// The **resilience** of one view (Freire et al., PVLDB 2015; rows of
/// Tables II–III): the minimum number of base tuples whose deletion
/// leaves `Q_view` with no answers at all. Computed by treating every
/// view tuple of that view as a demand and minimizing |ΔD| exactly.
/// Stays `Problem`-based: it builds and compiles a modified instance.
// lint:allow(budget): O(ids) relabeling pass over one view's solution
pub fn resilience(problem: &Problem, view: usize) -> Solution {
    let mut all_marked = problem.clone();
    let ids: Vec<ViewTupleId> = all_marked
        .views()
        .iter()
        .filter(|(id, _)| id.view == view)
        .map(|(id, _)| id)
        .collect();
    for id in ids {
        // lint:allow(unwrap): ids come from `views()` on this same clone, so `mark_deleted_id` cannot fail
        all_marked
            .mark_deleted_id(id)
            .expect("enumerated ids are valid");
    }
    solve(all_marked.compiled())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{chain_problem, fig1_problem, star_problem};
    use delprop_relation::tup;

    #[test]
    fn fig1_single_deletion_needs_one_tuple() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let s = solve(p.compiled());
        assert!(s.is_feasible(&p));
        assert_eq!(s.len(), 1);
        let g = solve_greedy(p.compiled());
        assert!(g.is_feasible(&p));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn shared_witness_collapses_source_cost() {
        // Both John XML answers share T1 tuples? No — they share nothing.
        // But (John,TKDE,XML) and (John,TKDE,CUBE) share T1(John,TKDE):
        // one source deletion suffices for both demands.
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            p.mark_deleted(0, &tup!["John", "TKDE", "CUBE"]).unwrap();
        });
        let s = solve(p.compiled());
        assert!(s.is_feasible(&p));
        assert_eq!(s.len(), 1, "shared witness T1(John,TKDE) hits both");
    }

    #[test]
    fn exact_beats_or_ties_greedy_everywhere() {
        for p in [
            chain_problem(8, 3, &[0, 3, 5, 7]),
            star_problem(5, &[0, 2, 4]),
            fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
                p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
                p.mark_deleted(0, &tup!["Joe", "TKDE", "CUBE"]).unwrap();
                p.mark_deleted(0, &tup!["John", "TODS", "XML"]).unwrap();
            }),
        ] {
            let e = solve(p.compiled());
            let g = solve_greedy(p.compiled());
            assert!(e.is_feasible(&p) && g.is_feasible(&p));
            assert!(e.len() <= g.len());
        }
    }

    #[test]
    fn merging_chains_share_suffix_tuples() {
        // Chains 0 and 1 share their level-2+ suffix: both demands can be
        // hit by the single shared R2 tuple.
        let p = chain_problem(8, 3, &[0, 1]);
        let s = solve(p.compiled());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn source_and_view_objectives_genuinely_differ() {
        // On merging chains, the source-optimal deletion (one shared deep
        // tuple) wrecks many preserved views, while the view-optimal
        // solution deletes several private tuples.
        let p = chain_problem(8, 3, &[0, 1]);
        let src = solve(p.compiled());
        let view = crate::solvers::exact::solve(
            p.compiled(),
            delprop_setcover::exact::ExactConfig::default(),
        )
        .solution
        .unwrap();
        assert!(source_cost(&src) <= source_cost(&view));
        assert!(view.side_effect(&p) <= src.side_effect(&p));
    }

    #[test]
    fn resilience_of_fig1_q4_is_two() {
        // Emptying Q4(D) requires killing every author–journal path.
        // Deleting both T2 rows for TKDE plus... cheaper: T2(TKDE,XML),
        // T2(TKDE,CUBE), T2(TODS,XML) = 3; or all 4 T1 rows = 4; or mixed:
        // T1(John,TODS) + the two TKDE T2 rows = 3? The exact solver
        // decides; we assert optimality by brute force.
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |_| {});
        let r = resilience(&p, 0);
        // Verify: no Q4 answers survive.
        let mut db = p.db().clone();
        let ids: Vec<_> = r.deleted.iter().copied().collect();
        db.delete_all(&ids);
        let view = delprop_query::View::materialize(&db, &p.queries()[0]).unwrap();
        assert!(view.is_empty(), "resilience deletion must empty the view");
        assert_eq!(
            r.len(),
            3,
            "three journal-topic rows suffice and are needed"
        );
    }

    #[test]
    fn empty_deletions_delete_nothing() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |_| {});
        assert!(solve(p.compiled()).is_empty());
        assert!(solve_greedy(p.compiled()).is_empty());
    }
}
