//! The solver suite: every algorithm of the paper plus the baselines the
//! experiments compare against.
//!
//! | module | paper element | guarantee |
//! |---|---|---|
//! | [`exact`] | branch-and-bound ground truth | exact (exp. time) |
//! | [`general`] | Claim 1 / Lemma 1 | `O(2√(l·‖V‖·log‖ΔV‖))` |
//! | [`primal_dual`] | Algorithm 1, `PrimeDualVSE` | `l` on forest cases |
//! | [`lowdeg_tree`] | Algorithms 2–3, `LowDegTreeVSE(Two)` | `2√‖V‖` |
//! | [`dp_tree`] | Algorithm 4, `DPTreeVSE` | exact (poly) on pivot forests |
//! | [`lp_round`] | LP (1)–(5) + rounding | certified `l`; LP lower bounds |
//! | [`single_query`] | §III recalled tractable case | exact (poly) |
//! | [`source`] | source side-effect sibling objective (Tables II–III) | exact + greedy H(‖ΔV‖) |
//! | [`primal_dual_balanced`] | §IV.C balanced version (prize-collecting) | dual lower bound |
//! | [`local_search`] | post-optimization descent | never worse |
//!
//! # Panic policy
//!
//! Conditions reachable from user input — wrong query count, empty or
//! witness-less deletion sets, forbidden-tuple conflicts, malformed
//! weights — surface as [`crate::CoreError`] variants, never panics.
//! The `expect`/`unwrap` calls that remain in production paths encode
//! internal invariants (maps seeded a few lines earlier, ids enumerated
//! from the structure they index) and each carries a message or comment
//! saying which invariant. As defense in depth, the portfolio runtime
//! ([`crate::runtime`]) additionally wraps every member in
//! `catch_unwind`, so even a broken invariant degrades into a typed
//! [`crate::CoreError::SolverPanicked`] instead of tearing down the
//! caller.

pub mod dp_tree;
pub mod exact;
pub mod general;
pub mod local_search;
pub mod lowdeg_tree;
pub mod lp_round;
pub mod primal_dual;
pub mod primal_dual_balanced;
pub mod single_query;
pub mod source;
