//! The LP relaxation of view side-effect (formulation (1)–(5), §IV.C) and
//! a deterministic LP-rounding solver.
//!
//! Variables: `y_t` per candidate base tuple (delete?), `x_s` per
//! vulnerable preserved view tuple (damaged?). We solve the standard
//! covering relaxation
//!
//! ```text
//! min  Σ_s w_s·x_s
//! s.t. Σ_{t ∈ witnesses(r)} y_t ≥ 1      ∀ r ∈ ΔV        (cut every demand)
//!      x_s ≥ y_t                          ∀ s preserved, t ∈ witnesses(s)
//!      x, y ≥ 0
//! ```
//!
//! which is at least as tight as the paper's aggregated form
//! (`k_r·x_r − Σ_t y_t ≥ 0`), so its optimum is a valid lower bound on
//! the integral optimum. Every ratio experiment uses
//! [`lower_bound`] as its denominator when the exact solver would be too
//! slow.
//!
//! The relaxation rows are emitted straight from the compiled CSR index:
//! demand constraints from `demand_row`, damage links from
//! `vulnerable_row` — no tuple-to-column hashing.
//!
//! **Rounding** (`solve`): delete `t` iff `y_t ≥ 1/l`. Each demand's
//! witness set has at most `l` members summing to ≥ 1, so some member
//! crosses the threshold — the rounding is always feasible — and each
//! damaged preserved tuple has `x_s ≥ 1/l`, so the cost is at most
//! `l · LP ≤ l · OPT`: a *certified* `l`-approximation for the general
//! case, complementing the primal-dual algorithm's tree analysis.

use crate::error::CoreError;
use crate::ir::CompiledInstance;
use crate::runtime::trace::Phase;
use crate::runtime::{metrics, Budget};
use crate::solution::Solution;
use delprop_lp::{Cmp, LpOutcome, LpProblem, Sense};

// lint:allow(budget): LP assembly is one O(rows + nnz) pass; the simplex pivots tick via solve_budgeted
fn build(ir: &CompiledInstance) -> LpProblem {
    let ny = ir.num_bases();
    let nx = ir.num_vulnerable();
    let mut lp = LpProblem::new(ny + nx, Sense::Minimize);
    for r in 0..nx as u32 {
        lp.set_objective(ny + r as usize, ir.vulnerable_weight(r));
    }
    // Demand constraints.
    for d in 0..ir.num_demands() as u32 {
        let terms: Vec<(usize, f64)> = ir
            .demand_row(d)
            .iter()
            .map(|&yi| (yi as usize, 1.0))
            .collect();
        lp.add_constraint(terms, Cmp::Ge, 1.0);
    }
    // Damage-link constraints x_s - y_t >= 0.
    for r in 0..nx as u32 {
        for &yi in ir.vulnerable_row(r) {
            lp.add_constraint(
                vec![(ny + r as usize, 1.0), (yi as usize, -1.0)],
                Cmp::Ge,
                0.0,
            );
        }
    }
    // y_t <= 1 keeps the polytope bounded (rounding needs no more).
    for yi in 0..ny {
        lp.add_constraint(vec![(yi, 1.0)], Cmp::Le, 1.0);
    }
    lp
}

/// The LP lower bound on the optimal (weighted) view side-effect.
pub fn lower_bound(ir: &CompiledInstance) -> f64 {
    if ir.num_demands() == 0 {
        return 0.0;
    }
    let lp = build(ir);
    match delprop_lp::solve(&lp) {
        LpOutcome::Optimal { objective, .. } => objective.max(0.0),
        // Key-preservation guarantees a feasible integral point (delete
        // all candidates), so infeasible/unbounded cannot happen on valid
        // problems; the iteration cap can fire on pathologically
        // degenerate relaxations — 0 is always a valid lower bound.
        _ => 0.0,
    }
}

/// Deterministic LP rounding at threshold `1/l`: a certified
/// `l`-approximation.
pub fn solve(ir: &CompiledInstance) -> Result<Solution, CoreError> {
    solve_budgeted(ir, &Budget::unlimited())
}

/// [`solve`] under a cooperative [`Budget`]: every simplex pivot charges
/// one tick. Exhaustion mid-solve returns
/// [`CoreError::BudgetExhausted`] (the portfolio's cheaper fallbacks take
/// over); the simplex's own iteration cap still degrades to the greedy
/// cover as before.
pub fn solve_budgeted(ir: &CompiledInstance, budget: &Budget) -> Result<Solution, CoreError> {
    metrics::SOLVE_LP_ROUND.inc();
    if ir.num_demands() == 0 {
        return Ok(Solution::empty());
    }
    let span = budget.span(Phase::Simplex, "lp_round");
    let ticks_before = budget.own_used();
    let lp = build(ir);
    let outcome = delprop_lp::solve_with_ticker(&lp, &mut budget.ticker());
    metrics::SIMPLEX_PIVOT_TICKS.add(budget.own_used().saturating_sub(ticks_before));
    let LpOutcome::Optimal { x, .. } = outcome else {
        if budget.is_exhausted() || budget.is_cancelled() {
            // Exhausted or cancelled mid-simplex: bail with the typed
            // error rather than falling back to more (greedy) work.
            span.end_with("budget_stopped");
            return Err(budget.error());
        }
        // The simplex iteration cap fired (degenerate relaxation): fall
        // back to the greedy cover. Feasibility is preserved; only the
        // l-certificate is lost for this instance.
        span.end_with("iteration_cap_greedy_fallback");
        return super::general::solve_greedy(ir);
    };
    span.end_with("optimal");
    let l = ir.l().max(1) as f64;
    let threshold = 1.0 / l - 1e-9;
    let deleted = (0..ir.num_bases() as u32)
        .filter(|&b| x[b as usize] >= threshold)
        .map(|b| ir.base(b));
    let sol = Solution::from_tuples(deleted);
    debug_assert!(ir.is_feasible_of(&sol), "LP rounding must be feasible");
    Ok(sol)
}

/// LP lower bound for the **balanced** objective: coverage variables
/// `z_r ∈ [0,1]` per demand replace hard constraints, pricing missed
/// demands at their weight:
///
/// ```text
/// min Σ_s w_s·x_s + Σ_r w_r·(1 − z_r)
/// s.t. z_r ≤ Σ_{t∈witnesses(r)} y_t,  z_r ≤ 1,  x_s ≥ y_t,  all ≥ 0
/// ```
// lint:allow(budget): two O(nnz) scans over the incidence structure, no iteration
pub fn balanced_lower_bound(ir: &CompiledInstance) -> f64 {
    if ir.num_demands() == 0 {
        return 0.0;
    }
    let (ny, nx, nz) = (ir.num_bases(), ir.num_vulnerable(), ir.num_demands());
    let mut lp = LpProblem::new(ny + nx + nz, Sense::Minimize);
    let mut constant = 0.0;
    for r in 0..nx as u32 {
        lp.set_objective(ny + r as usize, ir.vulnerable_weight(r));
    }
    for d in 0..nz as u32 {
        // w_r(1 - z_r) = w_r - w_r z_r
        constant += ir.demand_weight(d);
        lp.set_objective(ny + nx + d as usize, -ir.demand_weight(d));
        let mut terms: Vec<(usize, f64)> = ir
            .demand_row(d)
            .iter()
            .map(|&yi| (yi as usize, 1.0))
            .collect();
        terms.push((ny + nx + d as usize, -1.0));
        lp.add_constraint(terms, Cmp::Ge, 0.0); // z_r <= Σ y_t
        lp.add_constraint(vec![(ny + nx + d as usize, 1.0)], Cmp::Le, 1.0);
    }
    for r in 0..nx as u32 {
        for &yi in ir.vulnerable_row(r) {
            lp.add_constraint(
                vec![(ny + r as usize, 1.0), (yi as usize, -1.0)],
                Cmp::Ge,
                0.0,
            );
        }
    }
    for yi in 0..ny {
        lp.add_constraint(vec![(yi, 1.0)], Cmp::Le, 1.0);
    }
    match delprop_lp::solve(&lp) {
        LpOutcome::Optimal { objective, .. } => (objective + constant).max(0.0),
        _ => 0.0, // cap fired or degenerate: 0 is a valid lower bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::exact;
    use crate::test_support::{chain_problem, fig1_problem, star_problem};
    use delprop_relation::tup;
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn lower_bound_below_opt_and_rounding_within_l() {
        for p in [
            fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
                p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            }),
            chain_problem(8, 3, &[1, 4, 6]),
            star_problem(5, &[0, 2]),
        ] {
            let lb = lower_bound(p.compiled());
            let opt = exact::solve(p.compiled(), ExactConfig::default()).cost;
            assert!(lb <= opt + 1e-6, "LP bound {lb} exceeds OPT {opt}");
            let sol = solve(p.compiled()).unwrap();
            assert!(sol.is_feasible(&p));
            let l = p.l() as f64;
            assert!(
                sol.side_effect(&p) <= l * lb.max(opt) + 1e-6,
                "rounding {} above l×LP {}",
                sol.side_effect(&p),
                l * lb
            );
        }
    }

    #[test]
    fn fig1_lp_is_tight() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        // OPT = 1 and the LP already sees it (deleting the T1 witness
        // fully: x for (John,TKDE,CUBE) = 1).
        assert!((lower_bound(p.compiled()) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_deletions_zero() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |_| {});
        assert_eq!(lower_bound(p.compiled()), 0.0);
        assert!(solve(p.compiled()).unwrap().is_empty());
        assert_eq!(balanced_lower_bound(p.compiled()), 0.0);
    }

    #[test]
    fn balanced_bound_below_balanced_opt() {
        for p in [
            fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
                p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            }),
            star_problem(4, &[1, 3]),
        ] {
            let lb = balanced_lower_bound(p.compiled());
            let opt = exact::solve_balanced(p.compiled(), ExactConfig::default()).cost;
            assert!(lb <= opt + 1e-6, "balanced LP bound {lb} exceeds OPT {opt}");
        }
    }

    #[test]
    fn balanced_bound_counts_missed_demands() {
        // A demand with an enormous damage price: the balanced LP should
        // prefer z_r = 0 and pay w_r = 1.
        let mut p = star_problem(2, &[0]);
        let ids: Vec<_> = p.preserved().map(|(id, _)| id).collect();
        for id in ids {
            p.set_weight(id, 1000.0).unwrap();
        }
        // Private tip deletion is free, so balanced opt is 0 here; tighten
        // by forbidding nothing — bound must still be ≤ opt.
        let lb = balanced_lower_bound(p.compiled());
        let opt = exact::solve_balanced(p.compiled(), ExactConfig::default()).cost;
        assert!(lb <= opt + 1e-6);
    }
}
