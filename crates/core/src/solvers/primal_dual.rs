//! `PrimeDualVSE` — Algorithm 1 of the paper: a primal-dual
//! `l`-approximation for the (weighted) view side-effect on forest cases,
//! in the tradition of Garg–Vazirani–Yannakakis multicut on trees.
//!
//! ## How this implements the paper's LP (1)–(5) / dual (6)–(10)
//!
//! The dual has a variable `v_r` per demand (view tuple of `ΔV`) and `v_s`
//! per preserved view tuple, with
//! `(7) k_s·v_s ≤ w_s` and `(8) Σ_{r∋t} v_r − Σ_{s∋t} v_s ≤ 0` per base
//! tuple `t`. Saturating (7) for every preserved tuple (`v_s = w_s/k_s`)
//! turns (8) into a per-tuple **capacity** `cap(t) = Σ_{s∋t} w_s/k_s` on
//! the demand duals through `t` — so the algorithm is: process demands
//! bottom-up in the data-dual forest (by decreasing LCA depth; the
//! processing order affects solution quality, never feasibility), raise
//! each uncut demand's `v_r` until some witness saturates, delete
//! saturated tuples, then reverse-delete redundant deletions (the paper's
//! pruning loop, lines 7–10).
//!
//! The returned `dual_objective = Σ v_r` is **dual-feasible**, hence a
//! certified lower bound on the optimal (counted) side-effect — the
//! experiments use it alongside the LP bound.
//!
//! The `l` guarantee comes from the `k_s ≤ l`-relaxed complementary
//! slackness (Theorem 3); experiment EX-T3 verifies it empirically against
//! exact optima and LP bounds.
//!
//! All state is dense over the compiled index: capacities and loads are
//! flat `f64` arrays over candidate ids, restriction sets are packed
//! [`BitSet`]s, the deletion set is a packed mask intersected
//! word-parallel against the IR's witness rows, the bottom-up order is the
//! precomputed [`CompiledInstance::demand_order`], and reverse-delete
//! counts cuts with packed-row popcounts instead of re-building a
//! tuple→demands map.

use crate::error::CoreError;
use crate::ir::CompiledInstance;
use crate::solution::Solution;
use delprop_setcover::kernel::words;
use delprop_setcover::BitSet;

/// Demand processing order (ablation EX-ABL measures the difference).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DemandOrder {
    /// Bottom-up by LCA depth in the data-dual forest (the paper's order
    /// for trees, GVY-style). The default.
    #[default]
    BottomUp,
    /// Deterministic but structure-blind (`ViewTupleId` order).
    Arbitrary,
}

/// Configuration: deletion restrictions, objective restrictions, and
/// ablation switches, used directly by callers and by `LowDegTreeVSE`
/// (Algorithm 2).
#[derive(Debug, Clone, Default)]
pub struct PrimalDualConfig {
    /// Packed dense base indices that must NOT be deleted (Algorithm 2
    /// forbids tuples of red-degree > τ). The default zero-capacity bitset
    /// forbids nothing; build from raw tuples with
    /// [`CompiledInstance::tuple_bits`].
    pub forbidden: BitSet,
    /// If set, only these vulnerable tuples (packed dense vulnerable
    /// indices) contribute to capacities (Algorithm 2 prunes "wide" view
    /// tuples out of the objective). `None` counts all of them.
    pub counted: Option<BitSet>,
    /// Demand processing order.
    pub order: DemandOrder,
    /// Skip the reverse-delete pruning (lines 7–10 of Algorithm 1).
    /// Feasibility is unaffected; costs can only get worse. Ablation only.
    pub skip_reverse_delete: bool,
}

/// Outcome: the solution plus the dual certificate.
#[derive(Debug, Clone)]
pub struct PrimalDualOutcome {
    /// The feasible deletion set after reverse-delete.
    pub solution: Solution,
    /// Final demand duals `v_r`, dense by demand index (pair with
    /// [`CompiledInstance::demand`] to recover view-tuple ids).
    pub duals: Vec<f64>,
    /// `Σ v_r`: a lower bound on the optimal counted side-effect.
    pub dual_objective: f64,
}

/// Run `PrimeDualVSE`.
///
/// Errors with [`CoreError::Infeasible`] iff some demand's witnesses are
/// all forbidden (possible only with a non-empty `forbidden` set).
// lint:allow(budget): raise/cleanup passes are bounded by demands x witnesses; the runtime adapter charges the pass coarsely
pub fn solve(
    ir: &CompiledInstance,
    config: &PrimalDualConfig,
) -> Result<PrimalDualOutcome, CoreError> {
    crate::runtime::metrics::SOLVE_PRIMAL_DUAL.inc();
    let counted = |r: u32| -> bool {
        config
            .counted
            .as_ref()
            .is_none_or(|c| c.contains(r as usize))
    };

    // Per-tuple capacity cap(t) = Σ_{counted preserved s ∋ t} w_s / k_s.
    // Only vulnerable tuples intersect the candidate set, so iterating
    // their candidate-restricted witness rows covers every contribution.
    let nb = ir.num_bases();
    let mut cap = vec![0.0f64; nb];
    for r in 0..ir.num_vulnerable() as u32 {
        if !counted(r) {
            continue;
        }
        let k = ir.vulnerable_k(r) as f64;
        let share = ir.vulnerable_weight(r) / k;
        for &b in ir.vulnerable_row(r) {
            cap[b as usize] += share;
        }
    }

    // `BitSet::contains` is false past capacity, so the default
    // zero-capacity `forbidden` needs no resizing.
    let forbidden = &config.forbidden;

    // Demands bottom-up by the depth of their witness path's shallowest
    // vertex (its top / LCA) in the data-dual forest; ties and the
    // non-forest fallback use the deterministic ViewTupleId order. The
    // permutation is precomputed at IR compile time.
    let identity: Vec<u32>;
    let order: &[u32] = match config.order {
        DemandOrder::BottomUp => ir.demand_order(),
        DemandOrder::Arbitrary => {
            identity = (0..ir.num_demands() as u32).collect();
            &identity
        }
    };

    // Dual-raising phase. The deletion set is a packed mask so the
    // "already cut" test is one word-parallel AND sweep per demand.
    let mut load = vec![0.0f64; nb];
    let mut deleted: Vec<u32> = Vec::new(); // in saturation order
    let mut deleted_bits = BitSet::new(nb);
    let mut duals = vec![0.0f64; ir.num_demands()];
    const EPS: f64 = 1e-9;

    for &d in order {
        if words::intersects(ir.witness_mask_row(d), deleted_bits.words()) {
            continue; // already cut
        }
        let witnesses = ir.demand_row(d);
        let mut raise = f64::INFINITY;
        let mut any_allowed = false;
        for &b in witnesses {
            if forbidden.contains(b as usize) {
                continue;
            }
            any_allowed = true;
            raise = raise.min((cap[b as usize] - load[b as usize]).max(0.0));
        }
        if !any_allowed {
            return Err(CoreError::Infeasible {
                reason: format!("every witness of demand {} is forbidden", ir.demand(d)),
            });
        }
        if raise > 0.0 {
            duals[d as usize] += raise;
            for &b in witnesses {
                if !forbidden.contains(b as usize) {
                    load[b as usize] += raise;
                }
            }
        }
        // Take every newly saturated witness (constraint (8) tight).
        for &b in witnesses {
            if !forbidden.contains(b as usize)
                && load[b as usize] >= cap[b as usize] - EPS
                && deleted_bits.insert(b as usize)
            {
                deleted.push(b);
            }
        }
        debug_assert!(
            words::intersects(ir.witness_mask_row(d), deleted_bits.words()),
            "demand must be cut after its own iteration"
        );
    }

    let dual_objective: f64 = duals.iter().sum();
    let to_solution = |bits: &BitSet| -> Solution {
        Solution::from_tuples(bits.iter().map(|b| ir.base(b as u32)))
    };

    // Reverse-delete (the paper's pruning loop): drop deletions not needed
    // for feasibility, newest first. Cut multiplicities come from packed
    // popcounts of witness row ∩ deletion mask.
    if config.skip_reverse_delete {
        return Ok(PrimalDualOutcome {
            solution: to_solution(&deleted_bits),
            duals,
            dual_objective,
        });
    }
    let mut cut_count: Vec<usize> = (0..ir.num_demands() as u32)
        .map(|d| words::intersection_count(ir.witness_mask_row(d), deleted_bits.words()))
        .collect();
    for &b in deleted.iter().rev() {
        let still_ok = ir.hit_row(b).iter().all(|&d| cut_count[d as usize] >= 2);
        if still_ok {
            deleted_bits.remove(b as usize);
            for &d in ir.hit_row(b) {
                cut_count[d as usize] -= 1;
            }
        }
    }

    Ok(PrimalDualOutcome {
        solution: to_solution(&deleted_bits),
        duals,
        dual_objective,
    })
}

/// Convenience: run with the default configuration and return the solution.
pub fn solve_default(ir: &CompiledInstance) -> Result<Solution, CoreError> {
    solve(ir, &PrimalDualConfig::default()).map(|o| o.solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::exact;
    use crate::test_support::{chain_problem, fig1_problem};
    use delprop_relation::tup;
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn fig1_is_solved_optimally() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let out = solve(p.compiled(), &PrimalDualConfig::default()).unwrap();
        assert!(out.solution.is_feasible(&p));
        assert_eq!(out.solution.side_effect(&p), 1.0);
        // Dual certificate is a valid lower bound.
        assert!(out.dual_objective <= 1.0 + 1e-9);
    }

    #[test]
    fn chain_problem_within_l_of_optimum() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let out = solve(p.compiled(), &PrimalDualConfig::default()).unwrap();
        assert!(out.solution.is_feasible(&p));
        let opt = exact::solve(p.compiled(), ExactConfig::default()).cost;
        let l = p.l() as f64;
        assert!(out.solution.side_effect(&p) <= l * opt.max(out.dual_objective) + 1e-9);
        assert!(out.dual_objective <= opt + 1e-9, "weak duality");
    }

    #[test]
    fn forbidden_tuples_are_never_deleted() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let cheap = p.candidates();
        // Forbid the T1 witness; the solver must use the T2 one.
        let t1 = p.db().schema().relation_id("T1").unwrap();
        let forbidden: Vec<_> = cheap.iter().copied().filter(|t| t.relation == t1).collect();
        let cfg = PrimalDualConfig {
            forbidden: p.compiled().tuple_bits(forbidden.iter().copied()),
            ..Default::default()
        };
        let out = solve(p.compiled(), &cfg).unwrap();
        assert!(out.solution.is_feasible(&p));
        assert!(forbidden.iter().all(|t| !out.solution.deleted.contains(t)));
        assert_eq!(out.solution.side_effect(&p), 2.0);
    }

    #[test]
    fn all_witnesses_forbidden_is_infeasible() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let cfg = PrimalDualConfig {
            forbidden: p.compiled().tuple_bits(p.candidates()),
            ..Default::default()
        };
        assert!(matches!(
            solve(p.compiled(), &cfg),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn empty_deletion_set_returns_empty_solution() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |_| {});
        let out = solve(p.compiled(), &PrimalDualConfig::default()).unwrap();
        assert!(out.solution.is_empty());
        assert_eq!(out.dual_objective, 0.0);
    }

    #[test]
    fn reverse_delete_prunes_redundant_deletions() {
        // Two demands sharing a zero-capacity tuple plus private ones:
        // the dual phase may take several tuples, the prune keeps few.
        let p = chain_problem(6, 2, &[0, 1, 2, 3]);
        let out = solve(p.compiled(), &PrimalDualConfig::default()).unwrap();
        assert!(out.solution.is_feasible(&p));
        // Every remaining deletion is necessary: removing any breaks
        // feasibility.
        for &t in &out.solution.deleted {
            let mut smaller = out.solution.clone();
            smaller.deleted.remove(&t);
            assert!(
                !smaller.is_feasible(&p),
                "reverse-delete left a redundant deletion {t}"
            );
        }
    }

    #[test]
    fn ablation_knobs_stay_feasible_and_only_hurt() {
        let p = chain_problem(12, 3, &[1, 4, 6, 9]);
        let base = solve(p.compiled(), &PrimalDualConfig::default()).unwrap();
        let no_prune = solve(
            p.compiled(),
            &PrimalDualConfig {
                skip_reverse_delete: true,
                ..Default::default()
            },
        )
        .unwrap();
        let arbitrary = solve(
            p.compiled(),
            &PrimalDualConfig {
                order: DemandOrder::Arbitrary,
                ..Default::default()
            },
        )
        .unwrap();
        for s in [&no_prune.solution, &arbitrary.solution] {
            assert!(s.is_feasible(&p));
        }
        // Skipping the prune never helps: the pruned solution is a subset.
        assert!(base.solution.side_effect(&p) <= no_prune.solution.side_effect(&p) + 1e-9);
        assert!(base.solution.deleted.is_subset(&no_prune.solution.deleted));
    }

    #[test]
    fn weighted_capacities_steer_choices() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            // Make the T1-side casualty (John,TKDE,CUBE) very expensive.
            let idx = p.views().views[0]
                .position_of(&tup!["John", "TKDE", "CUBE"])
                .unwrap();
            p.set_weight(delprop_query::ViewTupleId::new(0, idx), 100.0)
                .unwrap();
        });
        let out = solve(p.compiled(), &PrimalDualConfig::default()).unwrap();
        // Now deleting T2(TKDE,XML,30) (side-effect 2) beats T1 (100).
        assert!(out.solution.is_feasible(&p));
        assert_eq!(out.solution.side_effect(&p), 2.0);
    }
}
