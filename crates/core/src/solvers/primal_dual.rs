//! `PrimeDualVSE` — Algorithm 1 of the paper: a primal-dual
//! `l`-approximation for the (weighted) view side-effect on forest cases,
//! in the tradition of Garg–Vazirani–Yannakakis multicut on trees.
//!
//! ## How this implements the paper's LP (1)–(5) / dual (6)–(10)
//!
//! The dual has a variable `v_r` per demand (view tuple of `ΔV`) and `v_s`
//! per preserved view tuple, with
//! `(7) k_s·v_s ≤ w_s` and `(8) Σ_{r∋t} v_r − Σ_{s∋t} v_s ≤ 0` per base
//! tuple `t`. Saturating (7) for every preserved tuple (`v_s = w_s/k_s`)
//! turns (8) into a per-tuple **capacity** `cap(t) = Σ_{s∋t} w_s/k_s` on
//! the demand duals through `t` — so the algorithm is: process demands
//! bottom-up in the data-dual forest (by decreasing LCA depth; the
//! processing order affects solution quality, never feasibility), raise
//! each uncut demand's `v_r` until some witness saturates, delete
//! saturated tuples, then reverse-delete redundant deletions (the paper's
//! pruning loop, lines 7–10).
//!
//! The returned `dual_objective = Σ v_r` is **dual-feasible**, hence a
//! certified lower bound on the optimal (counted) side-effect — the
//! experiments use it alongside the LP bound.
//!
//! The `l` guarantee comes from the `k_s ≤ l`-relaxed complementary
//! slackness (Theorem 3); experiment EX-T3 verifies it empirically against
//! exact optima and LP bounds.

use crate::error::CoreError;
use crate::problem::Problem;
use crate::solution::Solution;
use delprop_hypergraph::DataDualGraph;
use delprop_query::ViewTupleId;
use delprop_relation::TupleId;
use std::collections::{HashMap, HashSet};

/// Demand processing order (ablation EX-ABL measures the difference).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DemandOrder {
    /// Bottom-up by LCA depth in the data-dual forest (the paper's order
    /// for trees, GVY-style). The default.
    #[default]
    BottomUp,
    /// Deterministic but structure-blind (`ViewTupleId` order).
    Arbitrary,
}

/// Configuration: deletion restrictions, objective restrictions, and
/// ablation switches, used directly by callers and by `LowDegTreeVSE`
/// (Algorithm 2).
#[derive(Debug, Clone, Default)]
pub struct PrimalDualConfig {
    /// Base tuples that must NOT be deleted (Algorithm 2 forbids tuples of
    /// red-degree > τ). Empty by default.
    pub forbidden: HashSet<TupleId>,
    /// If set, only these preserved view tuples contribute to capacities
    /// (Algorithm 2 prunes "wide" view tuples out of the objective).
    /// `None` counts all preserved view tuples.
    pub counted: Option<HashSet<ViewTupleId>>,
    /// Demand processing order.
    pub order: DemandOrder,
    /// Skip the reverse-delete pruning (lines 7–10 of Algorithm 1).
    /// Feasibility is unaffected; costs can only get worse. Ablation only.
    pub skip_reverse_delete: bool,
}

/// Outcome: the solution plus the dual certificate.
#[derive(Debug, Clone)]
pub struct PrimalDualOutcome {
    /// The feasible deletion set after reverse-delete.
    pub solution: Solution,
    /// Final demand duals `v_r`.
    pub duals: HashMap<ViewTupleId, f64>,
    /// `Σ v_r`: a lower bound on the optimal counted side-effect.
    pub dual_objective: f64,
}

/// Run `PrimeDualVSE`.
///
/// Errors with [`CoreError::Infeasible`] iff some demand's witnesses are
/// all forbidden (possible only with a non-empty `forbidden` set).
pub fn solve(problem: &Problem, config: &PrimalDualConfig) -> Result<PrimalDualOutcome, CoreError> {
    let counted =
        |id: ViewTupleId| -> bool { config.counted.as_ref().is_none_or(|c| c.contains(&id)) };

    // Per-tuple capacity cap(t) = Σ_{counted preserved s ∋ t} w_s / k_s.
    let mut cap: HashMap<TupleId, f64> = HashMap::new();
    for t in problem.candidates() {
        cap.insert(t, 0.0);
    }
    for (sid, vt) in problem.preserved() {
        if !counted(sid) {
            continue;
        }
        let ws = vt.unique_witnesses();
        let k = ws.len().max(1) as f64;
        let share = problem.weight(sid) / k;
        for t in ws {
            if let Some(c) = cap.get_mut(t) {
                *c += share;
            }
        }
    }

    // Order demands bottom-up by the depth of their witness path's
    // shallowest vertex (its top / LCA) in the data-dual forest; ties and
    // the non-forest fallback use the deterministic ViewTupleId order.
    let all_paths: Vec<Vec<TupleId>> = problem
        .views()
        .iter()
        .map(|(_, vt)| vt.unique_witnesses().to_vec())
        .collect();
    let graph = DataDualGraph::new(&all_paths);
    let forest = graph.rooted(None);
    let mut demands: Vec<ViewTupleId> = problem.deletions().iter().copied().collect();
    if config.order == DemandOrder::BottomUp {
        if let Some(forest) = &forest {
            let top_depth = |id: ViewTupleId| -> usize {
                problem
                    .witnesses(id)
                    .iter()
                    .filter_map(|&t| graph.vertex(t))
                    .map(|v| forest.depth[v])
                    .min()
                    .unwrap_or(0)
            };
            demands.sort_by_key(|&id| (std::cmp::Reverse(top_depth(id)), id));
        }
    }

    // Dual-raising phase.
    // `load` is seeded with every capacitated tuple; each demand's
    // witnesses are a subset of `cap`'s keys, so the `expect`s on
    // `load.get_mut` below encode that seeding invariant, not an
    // input-dependent condition.
    let mut load: HashMap<TupleId, f64> = cap.keys().map(|&t| (t, 0.0)).collect();
    let mut deleted: Vec<TupleId> = Vec::new(); // in saturation order
    let mut deleted_set: HashSet<TupleId> = HashSet::new();
    let mut duals: HashMap<ViewTupleId, f64> = HashMap::new();
    const EPS: f64 = 1e-9;

    for &r in &demands {
        let witnesses = problem.witnesses(r);
        if witnesses.iter().any(|t| deleted_set.contains(t)) {
            continue; // already cut
        }
        let allowed: Vec<TupleId> = witnesses
            .iter()
            .copied()
            .filter(|t| !config.forbidden.contains(t))
            .collect();
        if allowed.is_empty() {
            return Err(CoreError::Infeasible {
                reason: format!("every witness of demand {r} is forbidden"),
            });
        }
        let raise = allowed
            .iter()
            .map(|t| (cap[t] - load[t]).max(0.0))
            .fold(f64::INFINITY, f64::min);
        if raise > 0.0 {
            *duals.entry(r).or_insert(0.0) += raise;
            for t in &allowed {
                *load.get_mut(t).expect("candidate tuple") += raise;
            }
        }
        // Take every newly saturated witness (constraint (8) tight).
        for &t in &allowed {
            if load[&t] >= cap[&t] - EPS && deleted_set.insert(t) {
                deleted.push(t);
            }
        }
        debug_assert!(
            witnesses.iter().any(|t| deleted_set.contains(t)),
            "demand must be cut after its own iteration"
        );
    }

    // Reverse-delete (the paper's pruning loop): drop deletions not needed
    // for feasibility, newest first.
    if config.skip_reverse_delete {
        let dual_objective = duals.values().sum();
        return Ok(PrimalDualOutcome {
            solution: Solution::from_tuples(deleted_set),
            duals,
            dual_objective,
        });
    }
    let mut cut_count: HashMap<ViewTupleId, usize> = HashMap::new();
    for &r in &demands {
        let n = problem
            .witnesses(r)
            .iter()
            .filter(|t| deleted_set.contains(t))
            .count();
        cut_count.insert(r, n);
    }
    // Demands cut by each tuple.
    let mut demands_of: HashMap<TupleId, Vec<ViewTupleId>> = HashMap::new();
    for &r in &demands {
        for &t in problem.witnesses(r) {
            demands_of.entry(t).or_default().push(r);
        }
    }
    for &t in deleted.iter().rev() {
        let still_ok = demands_of
            .get(&t)
            .is_none_or(|rs| rs.iter().all(|r| cut_count[r] >= 2));
        if still_ok {
            deleted_set.remove(&t);
            if let Some(rs) = demands_of.get(&t) {
                for r in rs {
                    *cut_count.get_mut(r).expect("seeded above") -= 1;
                }
            }
        }
    }

    let dual_objective = duals.values().sum();
    Ok(PrimalDualOutcome {
        solution: Solution::from_tuples(deleted_set),
        duals,
        dual_objective,
    })
}

/// Convenience: run with the default configuration and return the solution.
pub fn solve_default(problem: &Problem) -> Result<Solution, CoreError> {
    solve(problem, &PrimalDualConfig::default()).map(|o| o.solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::exact;
    use crate::test_support::{chain_problem, fig1_problem};
    use delprop_relation::tup;
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn fig1_is_solved_optimally() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let out = solve(&p, &PrimalDualConfig::default()).unwrap();
        assert!(out.solution.is_feasible(&p));
        assert_eq!(out.solution.side_effect(&p), 1.0);
        // Dual certificate is a valid lower bound.
        assert!(out.dual_objective <= 1.0 + 1e-9);
    }

    #[test]
    fn chain_problem_within_l_of_optimum() {
        let p = chain_problem(8, 3, &[1, 4, 6]);
        let out = solve(&p, &PrimalDualConfig::default()).unwrap();
        assert!(out.solution.is_feasible(&p));
        let opt = exact::solve(&p, ExactConfig::default()).cost;
        let l = p.l() as f64;
        assert!(out.solution.side_effect(&p) <= l * opt.max(out.dual_objective) + 1e-9);
        assert!(out.dual_objective <= opt + 1e-9, "weak duality");
    }

    #[test]
    fn forbidden_tuples_are_never_deleted() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let cheap = p.candidates();
        // Forbid the T1 witness; the solver must use the T2 one.
        let t1 = p.db().schema().relation_id("T1").unwrap();
        let forbidden: HashSet<_> = cheap.iter().copied().filter(|t| t.relation == t1).collect();
        let cfg = PrimalDualConfig {
            forbidden: forbidden.clone(),
            ..Default::default()
        };
        let out = solve(&p, &cfg).unwrap();
        assert!(out.solution.is_feasible(&p));
        assert!(out
            .solution
            .deleted
            .is_disjoint(&forbidden.into_iter().collect()));
        assert_eq!(out.solution.side_effect(&p), 2.0);
    }

    #[test]
    fn all_witnesses_forbidden_is_infeasible() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let cfg = PrimalDualConfig {
            forbidden: p.candidates().into_iter().collect(),
            ..Default::default()
        };
        assert!(matches!(solve(&p, &cfg), Err(CoreError::Infeasible { .. })));
    }

    #[test]
    fn empty_deletion_set_returns_empty_solution() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |_| {});
        let out = solve(&p, &PrimalDualConfig::default()).unwrap();
        assert!(out.solution.is_empty());
        assert_eq!(out.dual_objective, 0.0);
    }

    #[test]
    fn reverse_delete_prunes_redundant_deletions() {
        // Two demands sharing a zero-capacity tuple plus private ones:
        // the dual phase may take several tuples, the prune keeps few.
        let p = chain_problem(6, 2, &[0, 1, 2, 3]);
        let out = solve(&p, &PrimalDualConfig::default()).unwrap();
        assert!(out.solution.is_feasible(&p));
        // Every remaining deletion is necessary: removing any breaks
        // feasibility.
        for &t in &out.solution.deleted {
            let mut smaller = out.solution.clone();
            smaller.deleted.remove(&t);
            assert!(
                !smaller.is_feasible(&p),
                "reverse-delete left a redundant deletion {t}"
            );
        }
    }

    #[test]
    fn ablation_knobs_stay_feasible_and_only_hurt() {
        let p = chain_problem(12, 3, &[1, 4, 6, 9]);
        let base = solve(&p, &PrimalDualConfig::default()).unwrap();
        let no_prune = solve(
            &p,
            &PrimalDualConfig {
                skip_reverse_delete: true,
                ..Default::default()
            },
        )
        .unwrap();
        let arbitrary = solve(
            &p,
            &PrimalDualConfig {
                order: DemandOrder::Arbitrary,
                ..Default::default()
            },
        )
        .unwrap();
        for s in [&no_prune.solution, &arbitrary.solution] {
            assert!(s.is_feasible(&p));
        }
        // Skipping the prune never helps: the pruned solution is a subset.
        assert!(base.solution.side_effect(&p) <= no_prune.solution.side_effect(&p) + 1e-9);
        assert!(base.solution.deleted.is_subset(&no_prune.solution.deleted));
    }

    #[test]
    fn weighted_capacities_steer_choices() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            // Make the T1-side casualty (John,TKDE,CUBE) very expensive.
            let idx = p.views().views[0]
                .position_of(&tup!["John", "TKDE", "CUBE"])
                .unwrap();
            p.set_weight(delprop_query::ViewTupleId::new(0, idx), 100.0)
                .unwrap();
        });
        let out = solve(&p, &PrimalDualConfig::default()).unwrap();
        // Now deleting T2(TKDE,XML,30) (side-effect 2) beats T1 (100).
        assert!(out.solution.is_feasible(&p));
        assert_eq!(out.solution.side_effect(&p), 2.0);
    }
}
