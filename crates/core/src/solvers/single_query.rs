//! The single-query tractable case recalled in §III of the paper: for one
//! key-preserving conjunctive query and a **single** view-tuple deletion,
//! the optimum is found in polynomial time (Cong et al., TKDE 2012).
//!
//! With a unique witness set `{t_1, …, t_k}` for the deleted view tuple,
//! a minimal feasible solution deletes exactly one `t_i`, and the
//! side-effect of each choice is the weight of the preserved view tuples
//! whose witness sets contain `t_i` — directly readable off the
//! occurrence index ("finding the occurrences of key values of the
//! deleted relation tuples in the view", §II.C). Minimizing over the `k ≤
//! l` choices is exact.
//!
//! For multiple deletions on a single query the problem is already
//! covered by the general machinery; [`solve_single_deletion`] rejects
//! such inputs instead of silently being heuristic.

use crate::error::CoreError;
use crate::problem::Problem;
use crate::solution::Solution;
use delprop_relation::TupleId;

/// Exact polynomial solver for |Q| = 1 and |ΔV| = 1.
pub fn solve_single_deletion(problem: &Problem) -> Result<Solution, CoreError> {
    if problem.queries().len() != 1 {
        return Err(CoreError::StructureMismatch {
            solver: "single_query",
            reason: format!(
                "expected exactly one query, got {}",
                problem.queries().len()
            ),
        });
    }
    if problem.norm_delta() != 1 {
        return Err(CoreError::StructureMismatch {
            solver: "single_query",
            reason: format!(
                "expected exactly one deleted view tuple, got {}",
                problem.norm_delta()
            ),
        });
    }
    // `norm_delta() == 1` was checked above, but stay panic-free on the
    // off chance a future refactor reorders the guards.
    let Some(&rid) = problem.deletions().iter().next() else {
        return Err(CoreError::StructureMismatch {
            solver: "single_query",
            reason: "deletion set is empty".into(),
        });
    };
    let mut best: Option<(f64, TupleId)> = None;
    for &t in problem.witnesses(rid) {
        let damage: f64 = problem
            .views()
            .occurrences(t)
            .iter()
            .filter(|&&vid| vid != rid && !problem.is_deleted(vid))
            .map(|&vid| problem.weight(vid))
            .sum();
        if best.is_none_or(|(b, _)| damage < b) {
            best = Some((damage, t));
        }
    }
    // Key-preserving views (enforced by `Problem::new`) give every view
    // tuple a non-empty witness set; an empty one means the instance was
    // built by other means and the demand can never be eliminated.
    let (_, t) = best.ok_or_else(|| CoreError::Infeasible {
        reason: format!("deleted view tuple {rid:?} has no witnesses"),
    })?;
    Ok(Solution::from_tuples([t]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::exact;
    use crate::test_support::fig1_problem;
    use delprop_relation::tup;
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn fig1_single_deletion_matches_paper() {
        // §II.C: for ΔV = (John, TKDE, XML) on Q4, deleting T1(John,TKDE)
        // gives side-effect 1 (the (John,TKDE,CUBE) tuple), while deleting
        // T2(TKDE,XML,30) gives 2. The solver must pick the former.
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let sol = solve_single_deletion(&p).unwrap();
        assert!(sol.is_feasible(&p));
        assert_eq!(sol.side_effect(&p), 1.0);
        assert_eq!(sol.len(), 1);
        let opt = exact::solve(&p, ExactConfig::default());
        assert_eq!(sol.side_effect(&p), opt.cost);
    }

    #[test]
    fn weights_change_the_choice() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            let idx = p.views().views[0]
                .position_of(&tup!["John", "TKDE", "CUBE"])
                .unwrap();
            p.set_weight(delprop_query::ViewTupleId::new(0, idx), 5.0)
                .unwrap();
        });
        let sol = solve_single_deletion(&p).unwrap();
        // T1 choice now costs 5, T2 choice costs 2.
        assert_eq!(sol.side_effect(&p), 2.0);
    }

    #[test]
    fn rejects_multi_query_or_multi_deletion() {
        let p = fig1_problem(
            &[
                ("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)"),
                ("Q5", "Q5(y, z) :- T2(y, z, w)"),
            ],
            |p| {
                p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            },
        );
        assert!(solve_single_deletion(&p).is_err());

        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            p.mark_deleted(0, &tup!["John", "TODS", "XML"]).unwrap();
        });
        assert!(solve_single_deletion(&p).is_err());
    }

    #[test]
    fn matches_exact_on_every_possible_single_deletion() {
        let base = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |_| {});
        let heads: Vec<_> = base.views().views[0]
            .tuples
            .iter()
            .map(|vt| vt.head.clone())
            .collect();
        for head in heads {
            let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
                p.mark_deleted(0, &head).unwrap();
            });
            let sol = solve_single_deletion(&p).unwrap();
            let opt = exact::solve(&p, ExactConfig::default());
            assert_eq!(
                sol.side_effect(&p),
                opt.cost,
                "single-query solver suboptimal for deletion {head:?}"
            );
        }
    }
}
