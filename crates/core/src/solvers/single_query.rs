//! The single-query tractable case recalled in §III of the paper: for one
//! key-preserving conjunctive query and a **single** view-tuple deletion,
//! the optimum is found in polynomial time (Cong et al., TKDE 2012).
//!
//! With a unique witness set `{t_1, …, t_k}` for the deleted view tuple,
//! a minimal feasible solution deletes exactly one `t_i`, and the
//! side-effect of each choice is the weight of the preserved view tuples
//! whose witness sets contain `t_i` — directly readable off the compiled
//! incidence rows ("finding the occurrences of key values of the
//! deleted relation tuples in the view", §II.C). Minimizing over the `k ≤
//! l` choices is exact.
//!
//! For multiple deletions on a single query the problem is already
//! covered by the general machinery; [`solve_single_deletion`] rejects
//! such inputs instead of silently being heuristic.

use crate::error::CoreError;
use crate::ir::CompiledInstance;
use crate::solution::Solution;

/// Exact polynomial solver for |Q| = 1 and |ΔV| = 1.
// lint:allow(budget): one scan of a single demand row, O(row length)
pub fn solve_single_deletion(ir: &CompiledInstance) -> Result<Solution, CoreError> {
    crate::runtime::metrics::SOLVE_SINGLE_QUERY.inc();
    if ir.num_queries() != 1 {
        return Err(CoreError::StructureMismatch {
            solver: "single_query",
            reason: format!("expected exactly one query, got {}", ir.num_queries()),
        });
    }
    if ir.norm_delta() != 1 {
        return Err(CoreError::StructureMismatch {
            solver: "single_query",
            reason: format!(
                "expected exactly one deleted view tuple, got {}",
                ir.norm_delta()
            ),
        });
    }
    let mut best: Option<(f64, u32)> = None;
    // The demand's witness row lists candidates in ascending TupleId
    // order, matching the witness-set order of the uncompiled path; the
    // incidence row of each candidate is exactly the preserved view
    // tuples its deletion would damage.
    for &b in ir.demand_row(0) {
        let damage: f64 = ir
            .incidence_row(b)
            .iter()
            .map(|&r| ir.vulnerable_weight(r))
            .sum();
        if best.is_none_or(|(d, _)| damage < d) {
            best = Some((damage, b));
        }
    }
    // Key-preserving views (enforced by `Problem::new`) give every view
    // tuple a non-empty witness set; an empty one means the instance was
    // built by other means and the demand can never be eliminated.
    let (_, b) = best.ok_or_else(|| CoreError::Infeasible {
        reason: format!("deleted view tuple {:?} has no witnesses", ir.demand(0)),
    })?;
    Ok(Solution::from_tuples([ir.base(b)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::exact;
    use crate::test_support::fig1_problem;
    use delprop_relation::tup;
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn fig1_single_deletion_matches_paper() {
        // §II.C: for ΔV = (John, TKDE, XML) on Q4, deleting T1(John,TKDE)
        // gives side-effect 1 (the (John,TKDE,CUBE) tuple), while deleting
        // T2(TKDE,XML,30) gives 2. The solver must pick the former.
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let sol = solve_single_deletion(p.compiled()).unwrap();
        assert!(sol.is_feasible(&p));
        assert_eq!(sol.side_effect(&p), 1.0);
        assert_eq!(sol.len(), 1);
        let opt = exact::solve(p.compiled(), ExactConfig::default());
        assert_eq!(sol.side_effect(&p), opt.cost);
    }

    #[test]
    fn weights_change_the_choice() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            let idx = p.views().views[0]
                .position_of(&tup!["John", "TKDE", "CUBE"])
                .unwrap();
            p.set_weight(delprop_query::ViewTupleId::new(0, idx), 5.0)
                .unwrap();
        });
        let sol = solve_single_deletion(p.compiled()).unwrap();
        // T1 choice now costs 5, T2 choice costs 2.
        assert_eq!(sol.side_effect(&p), 2.0);
    }

    #[test]
    fn rejects_multi_query_or_multi_deletion() {
        let p = fig1_problem(
            &[
                ("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)"),
                ("Q5", "Q5(y, z) :- T2(y, z, w)"),
            ],
            |p| {
                p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            },
        );
        assert!(solve_single_deletion(p.compiled()).is_err());

        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            p.mark_deleted(0, &tup!["John", "TODS", "XML"]).unwrap();
        });
        assert!(solve_single_deletion(p.compiled()).is_err());
    }

    #[test]
    fn matches_exact_on_every_possible_single_deletion() {
        let base = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |_| {});
        let heads: Vec<_> = base.views().views[0]
            .tuples
            .iter()
            .map(|vt| vt.head.clone())
            .collect();
        for head in heads {
            let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
                p.mark_deleted(0, &head).unwrap();
            });
            let sol = solve_single_deletion(p.compiled()).unwrap();
            let opt = exact::solve(p.compiled(), ExactConfig::default());
            assert_eq!(
                sol.side_effect(&p),
                opt.cost,
                "single-query solver suboptimal for deletion {head:?}"
            );
        }
    }
}
