//! `LowDegTreeVSE` / `LowDegTreeVSETwo` — Algorithms 2 and 3 of the paper:
//! the `2√‖V‖`-approximation for forest cases, refining the low-degree
//! Red-Blue technique with `PrimeDualVSE` as the inner solver.
//!
//! For a threshold `τ` (Algorithm 2):
//! 1. **forbid** deleting any base tuple joined in more than `τ` preserved
//!    view tuples (line 1: "remove the tuples of D joined in more than τ
//!    view tuples to be preserved");
//! 2. if some demand now has no deletable witness, the attempt is
//!    infeasible (the paper returns the whole of `D`; we report the
//!    attempt as infeasible and let the sweep skip it);
//! 3. **prune** wide preserved view tuples (witness sets larger than
//!    `√‖V‖`) out of the inner objective (lines 6–7) — Claim 2 bounds how
//!    many can be damaged: fewer than `√‖V‖·τ`;
//! 4. run `PrimeDualVSE` on the restricted instance.
//!
//! `LowDegTreeVSETwo` (Algorithm 3) sweeps `τ = 1..=|R|` and keeps the
//! attempt with the best *full* weighted side-effect, achieving ratio
//! `2√‖V‖` (Theorem 4) — sometimes better than the factor-`l` of plain
//! `PrimeDualVSE`, sometimes worse; experiment EX-T4 maps the crossover.
//!
//! Red-degrees and widths are read straight off the compiled incidence
//! index: `red_degree(t)` is the length of `t`'s incidence row, and a
//! vulnerable tuple's width is its full witness count `k_s`.

use crate::error::CoreError;
use crate::ir::CompiledInstance;
use crate::solution::Solution;
use crate::solvers::primal_dual::{self, PrimalDualConfig};
use delprop_query::ViewTupleId;
use delprop_relation::TupleId;
use std::collections::HashSet;

/// One τ-restricted attempt.
#[derive(Debug, Clone)]
pub struct TreeAttempt {
    /// The threshold used.
    pub tau: usize,
    /// The solution, if the restricted instance was feasible.
    pub solution: Option<Solution>,
    /// Full weighted side-effect of `solution` (∞ when infeasible).
    pub side_effect: f64,
}

/// Algorithm 2: one attempt at threshold `tau`.
pub fn with_threshold(ir: &CompiledInstance, tau: usize) -> TreeAttempt {
    // Red-degree of each candidate tuple: number of preserved view tuples
    // whose witness set contains it (= its incidence-row length).
    let forbidden: HashSet<TupleId> = (0..ir.num_bases() as u32)
        .filter(|&b| ir.red_degree(b) > tau)
        .map(|b| ir.base(b))
        .collect();

    // Prune wide preserved view tuples from the inner objective. Only
    // vulnerable tuples can ever be damaged, so restricting `counted` to
    // them loses nothing.
    let width_cutoff = (ir.norm_v() as f64).sqrt();
    let counted: HashSet<ViewTupleId> = (0..ir.num_vulnerable() as u32)
        .filter(|&r| (ir.vulnerable_k(r) as f64) <= width_cutoff)
        .map(|r| ir.vulnerable_id(r))
        .collect();

    let cfg = PrimalDualConfig {
        forbidden,
        counted: Some(counted),
        ..Default::default()
    };
    match primal_dual::solve(ir, &cfg) {
        Ok(out) => {
            let side_effect = ir.side_effect_of(&out.solution);
            TreeAttempt {
                tau,
                solution: Some(out.solution),
                side_effect,
            }
        }
        Err(_) => TreeAttempt {
            tau,
            solution: None,
            side_effect: f64::INFINITY,
        },
    }
}

/// Algorithm 3: sweep τ and keep the best attempt.
///
/// Sweeps `τ = 0..=max red-degree` (τ beyond the max degree forbids
/// nothing more, so going to `|R|` as the paper writes would only repeat
/// the last attempt). Errors only if *every* attempt is infeasible, which
/// cannot happen: at τ = max degree nothing is forbidden.
pub fn solve(ir: &CompiledInstance) -> Result<Solution, CoreError> {
    crate::runtime::metrics::SOLVE_LOWDEG_TREE.inc();
    let max_degree = (0..ir.num_bases() as u32)
        .map(|b| ir.red_degree(b))
        .max()
        .unwrap_or(0);
    let mut best: Option<(f64, Solution)> = None;
    for tau in 0..=max_degree {
        let attempt = with_threshold(ir, tau);
        if let Some(sol) = attempt.solution {
            if best.as_ref().is_none_or(|(c, _)| attempt.side_effect < *c) {
                best = Some((attempt.side_effect, sol));
            }
        }
    }
    best.map(|(_, s)| s).ok_or_else(|| CoreError::Infeasible {
        reason: "no threshold produced a feasible restricted instance".into(),
    })
}

/// The Theorem 4 ratio bound `2√‖V‖`.
pub fn ratio_bound(ir: &CompiledInstance) -> f64 {
    2.0 * (ir.norm_v().max(1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::exact;
    use crate::test_support::{chain_problem, fig1_problem};
    use delprop_relation::tup;
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn fig1_solved_optimally() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let sol = solve(p.compiled()).unwrap();
        assert!(sol.is_feasible(&p));
        assert_eq!(sol.side_effect(&p), 1.0);
    }

    #[test]
    fn low_tau_attempts_can_be_infeasible() {
        // Every candidate has red-degree >= 1, so τ = 0 forbids them all.
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let a = with_threshold(p.compiled(), 0);
        assert!(a.solution.is_none());
        assert!(a.side_effect.is_infinite());
    }

    #[test]
    fn within_2_sqrt_v_of_optimum_on_chains() {
        for blue in [&[0usize][..], &[1, 5], &[0, 3, 7]] {
            let p = chain_problem(8, 3, blue);
            let sol = solve(p.compiled()).unwrap();
            assert!(sol.is_feasible(&p));
            let opt = exact::solve(p.compiled(), ExactConfig::default()).cost;
            let bound = ratio_bound(p.compiled());
            assert!(
                sol.side_effect(&p) <= bound * opt.max(1.0) + 1e-9,
                "side effect {} exceeds 2√‖V‖ bound {} × opt {}",
                sol.side_effect(&p),
                bound,
                opt
            );
        }
    }

    #[test]
    fn tau_sweep_never_worse_than_unrestricted_primal_dual() {
        let p = chain_problem(12, 3, &[2, 6, 9]);
        let sweep = solve(p.compiled()).unwrap();
        let pd = primal_dual::solve_default(p.compiled()).unwrap();
        // The τ = max-degree attempt differs from plain primal-dual only
        // in the wide-tuple pruning, and the sweep takes the min over τ;
        // it should never lose badly.
        assert!(sweep.side_effect(&p) <= pd.side_effect(&p) + 1e-9 + p.l() as f64);
    }

    #[test]
    fn ratio_bound_shape() {
        let p = chain_problem(9, 2, &[0]);
        assert!((ratio_bound(p.compiled()) - 2.0 * (p.norm_v() as f64).sqrt()).abs() < 1e-12);
    }
}
