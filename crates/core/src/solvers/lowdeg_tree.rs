//! `LowDegTreeVSE` / `LowDegTreeVSETwo` — Algorithms 2 and 3 of the paper:
//! the `2√‖V‖`-approximation for forest cases, refining the low-degree
//! Red-Blue technique with `PrimeDualVSE` as the inner solver.
//!
//! For a threshold `τ` (Algorithm 2):
//! 1. **forbid** deleting any base tuple joined in more than `τ` preserved
//!    view tuples (line 1: "remove the tuples of D joined in more than τ
//!    view tuples to be preserved");
//! 2. if some demand now has no deletable witness, the attempt is
//!    infeasible (the paper returns the whole of `D`; we report the
//!    attempt as infeasible and let the sweep skip it);
//! 3. **prune** wide preserved view tuples (witness sets larger than
//!    `√‖V‖`) out of the inner objective (lines 6–7) — Claim 2 bounds how
//!    many can be damaged: fewer than `√‖V‖·τ`;
//! 4. run `PrimeDualVSE` on the restricted instance.
//!
//! `LowDegTreeVSETwo` (Algorithm 3) sweeps `τ = 1..=|R|` and keeps the
//! attempt with the best *full* weighted side-effect, achieving ratio
//! `2√‖V‖` (Theorem 4) — sometimes better than the factor-`l` of plain
//! `PrimeDualVSE`, sometimes worse; experiment EX-T4 maps the crossover.
//!
//! Red-degrees and widths are read straight off the compiled incidence
//! index: `red_degree(t)` is the length of `t`'s incidence row, and a
//! vulnerable tuple's width is its full witness count `k_s`. Restriction
//! sets are packed [`BitSet`]s over the dense indices, and the τ-sweep is
//! monotone: candidates sit in a degree-keyed [`BucketQueue`] and are
//! un-forbidden exactly once as τ passes their red-degree, while the
//! (τ-independent) `counted` pruning is computed once and shared.

use crate::error::CoreError;
use crate::ir::CompiledInstance;
use crate::solution::Solution;
use crate::solvers::primal_dual::{self, PrimalDualConfig};
use delprop_setcover::{BitSet, BucketQueue};

/// One τ-restricted attempt.
#[derive(Debug, Clone)]
pub struct TreeAttempt {
    /// The threshold used.
    pub tau: usize,
    /// The solution, if the restricted instance was feasible.
    pub solution: Option<Solution>,
    /// Full weighted side-effect of `solution` (∞ when infeasible).
    pub side_effect: f64,
}

/// The (τ-independent) `counted` pruning: wide preserved view tuples
/// (width > √‖V‖) drop out of the inner objective. Only vulnerable tuples
/// can ever be damaged, so restricting `counted` to them loses nothing.
fn counted_bits(ir: &CompiledInstance) -> BitSet {
    let width_cutoff = (ir.norm_v() as f64).sqrt();
    BitSet::from_indices(
        ir.num_vulnerable(),
        (0..ir.num_vulnerable() as u32)
            .filter(|&r| (ir.vulnerable_k(r) as f64) <= width_cutoff)
            .map(|r| r as usize),
    )
}

/// One attempt with an explicit forbidden mask (the sweep reuses its
/// incrementally maintained mask; `with_threshold` builds one from τ).
fn attempt_with(
    ir: &CompiledInstance,
    tau: usize,
    forbidden: BitSet,
    counted: BitSet,
) -> TreeAttempt {
    let cfg = PrimalDualConfig {
        forbidden,
        counted: Some(counted),
        ..Default::default()
    };
    match primal_dual::solve(ir, &cfg) {
        Ok(out) => {
            let side_effect = ir.side_effect_of(&out.solution);
            TreeAttempt {
                tau,
                solution: Some(out.solution),
                side_effect,
            }
        }
        Err(_) => TreeAttempt {
            tau,
            solution: None,
            side_effect: f64::INFINITY,
        },
    }
}

/// Algorithm 2: one attempt at threshold `tau`.
pub fn with_threshold(ir: &CompiledInstance, tau: usize) -> TreeAttempt {
    // Red-degree of each candidate tuple: number of preserved view tuples
    // whose witness set contains it (= its incidence-row length).
    let forbidden = BitSet::from_indices(
        ir.num_bases(),
        (0..ir.num_bases() as u32)
            .filter(|&b| ir.red_degree(b) > tau)
            .map(|b| b as usize),
    );
    attempt_with(ir, tau, forbidden, counted_bits(ir))
}

/// Algorithm 3: sweep τ and keep the best attempt.
///
/// Sweeps `τ = 0..=max red-degree` (τ beyond the max degree forbids
/// nothing more, so going to `|R|` as the paper writes would only repeat
/// the last attempt). Errors only if *every* attempt is infeasible, which
/// cannot happen: at τ = max degree nothing is forbidden.
///
/// The forbidden mask is maintained monotonically: every candidate is
/// pushed into a [`BucketQueue`] keyed by red-degree once, and popped
/// (un-forbidden) exactly when τ reaches its degree — O(‖candidates‖)
/// total restriction work across the whole sweep.
// lint:allow(budget): tau-sweep is bounded by max_degree <= n and each pass is O(n)
pub fn solve(ir: &CompiledInstance) -> Result<Solution, CoreError> {
    crate::runtime::metrics::SOLVE_LOWDEG_TREE.inc();
    let nb = ir.num_bases();
    let max_degree = (0..nb as u32).map(|b| ir.red_degree(b)).max().unwrap_or(0);
    let mut by_degree = BucketQueue::new(nb, max_degree);
    for b in 0..nb {
        by_degree.push(b, ir.red_degree(b as u32));
    }
    let counted = counted_bits(ir);

    let mut forbidden = BitSet::all_set(nb);
    let mut pending = by_degree.pop_min();
    let mut best: Option<(f64, Solution)> = None;
    for tau in 0..=max_degree {
        while let Some((b, degree)) = pending {
            if degree > tau {
                break;
            }
            forbidden.remove(b);
            pending = by_degree.pop_min();
        }
        let attempt = attempt_with(ir, tau, forbidden.clone(), counted.clone());
        if let Some(sol) = attempt.solution {
            if best.as_ref().is_none_or(|(c, _)| attempt.side_effect < *c) {
                best = Some((attempt.side_effect, sol));
            }
        }
    }
    best.map(|(_, s)| s).ok_or_else(|| CoreError::Infeasible {
        reason: "no threshold produced a feasible restricted instance".into(),
    })
}

/// The Theorem 4 ratio bound `2√‖V‖`.
pub fn ratio_bound(ir: &CompiledInstance) -> f64 {
    2.0 * (ir.norm_v().max(1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::exact;
    use crate::test_support::{chain_problem, fig1_problem};
    use delprop_relation::tup;
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn fig1_solved_optimally() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let sol = solve(p.compiled()).unwrap();
        assert!(sol.is_feasible(&p));
        assert_eq!(sol.side_effect(&p), 1.0);
    }

    #[test]
    fn low_tau_attempts_can_be_infeasible() {
        // Every candidate has red-degree >= 1, so τ = 0 forbids them all.
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let a = with_threshold(p.compiled(), 0);
        assert!(a.solution.is_none());
        assert!(a.side_effect.is_infinite());
    }

    #[test]
    fn within_2_sqrt_v_of_optimum_on_chains() {
        for blue in [&[0usize][..], &[1, 5], &[0, 3, 7]] {
            let p = chain_problem(8, 3, blue);
            let sol = solve(p.compiled()).unwrap();
            assert!(sol.is_feasible(&p));
            let opt = exact::solve(p.compiled(), ExactConfig::default()).cost;
            let bound = ratio_bound(p.compiled());
            assert!(
                sol.side_effect(&p) <= bound * opt.max(1.0) + 1e-9,
                "side effect {} exceeds 2√‖V‖ bound {} × opt {}",
                sol.side_effect(&p),
                bound,
                opt
            );
        }
    }

    #[test]
    fn tau_sweep_never_worse_than_unrestricted_primal_dual() {
        let p = chain_problem(12, 3, &[2, 6, 9]);
        let sweep = solve(p.compiled()).unwrap();
        let pd = primal_dual::solve_default(p.compiled()).unwrap();
        // The τ = max-degree attempt differs from plain primal-dual only
        // in the wide-tuple pruning, and the sweep takes the min over τ;
        // it should never lose badly.
        assert!(sweep.side_effect(&p) <= pd.side_effect(&p) + 1e-9 + p.l() as f64);
    }

    #[test]
    fn ratio_bound_shape() {
        let p = chain_problem(9, 2, &[0]);
        assert!((ratio_bound(p.compiled()) - 2.0 * (p.norm_v() as f64).sqrt()).abs() < 1e-12);
    }
}
