//! Local-search post-optimization: polish any feasible solution by
//! removing, swapping, and (for the balanced objective) adding candidate
//! deletions until a local optimum.
//!
//! Not from the paper — an engineering extension useful in practice: the
//! approximation algorithms' guarantees are loose (`l`, `2√‖V‖`,
//! `2√(l·‖V‖·log‖ΔV‖)`), and a cheap descent often recovers most of the
//! remaining gap. The ablation experiment EX-LS quantifies that on every
//! workload family.
//!
//! The descent runs entirely on a dense deletion mask over the compiled
//! candidate index: every trial move flips mask bits and re-prices via
//! the CSR evaluation helpers instead of re-materializing views.

use crate::ir::CompiledInstance;
use crate::runtime::trace::Phase;
use crate::runtime::{metrics, Budget};
use crate::solution::Solution;

/// Which objective to descend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Standard view side-effect (feasibility is preserved at every step).
    Standard,
    /// Balanced cost (every solution is feasible; moves just lower cost).
    Balanced,
}

/// Configuration for the descent.
#[derive(Debug, Clone, Copy)]
pub struct LocalSearchConfig {
    /// Maximum full improvement rounds (each round tries every move).
    pub max_rounds: usize,
    /// The objective to descend on.
    pub objective: Objective,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            max_rounds: 20,
            objective: Objective::Standard,
        }
    }
}

fn cost(ir: &CompiledInstance, mask: &[bool], objective: Objective) -> f64 {
    match objective {
        Objective::Standard => ir.side_effect_mask(mask),
        Objective::Balanced => ir.balanced_cost_mask(mask),
    }
}

fn acceptable(ir: &CompiledInstance, mask: &[bool], objective: Objective) -> bool {
    match objective {
        Objective::Standard => ir.is_feasible_mask(mask),
        Objective::Balanced => true,
    }
}

fn to_solution(ir: &CompiledInstance, mask: &[bool]) -> Solution {
    Solution::from_tuples(
        mask.iter()
            .enumerate()
            .filter(|&(_, &del)| del)
            .map(|(b, _)| ir.base(b as u32)),
    )
}

/// Descend from `start` until no single remove / swap / add improves the
/// objective (or `max_rounds` is exhausted). The result is never worse
/// than `start` and, for [`Objective::Standard`], stays feasible.
pub fn improve(ir: &CompiledInstance, start: &Solution, config: LocalSearchConfig) -> Solution {
    improve_budgeted(ir, start, config, &Budget::unlimited())
}

/// [`improve`] under a cooperative [`Budget`]: every trial move charges
/// one tick. Exhaustion stops the descent and returns the best solution
/// reached so far — local search degrades gracefully by construction
/// (the current solution is never worse than `start`).
pub fn improve_budgeted(
    ir: &CompiledInstance,
    start: &Solution,
    config: LocalSearchConfig,
    budget: &Budget,
) -> Solution {
    metrics::SOLVE_LOCAL_SEARCH.inc();
    let span = budget.span(Phase::LocalSearch, "local_search");
    let ticks_before = budget.own_used();
    let out = descend(ir, start, config, budget);
    metrics::LOCAL_SEARCH_MOVE_TICKS.add(budget.own_used().saturating_sub(ticks_before));
    span.end_with("done");
    out
}

fn descend(
    ir: &CompiledInstance,
    start: &Solution,
    config: LocalSearchConfig,
    budget: &Budget,
) -> Solution {
    let nb = ir.num_bases();
    // Restrict to candidates: non-candidate deletions never eliminate a
    // demand and only add damage, so dropping them helps both objectives.
    let mut current = ir.base_mask(start);
    let mut current_cost = cost(ir, &current, config.objective);

    for _ in 0..config.max_rounds {
        let mut improved = false;

        // Move 1: remove a deletion.
        let snapshot: Vec<usize> = (0..nb).filter(|&b| current[b]).collect();
        for &b in &snapshot {
            if budget.checkpoint().is_err() {
                return to_solution(ir, &current);
            }
            let mut trial = current.clone();
            trial[b] = false;
            if acceptable(ir, &trial, config.objective) {
                let c = cost(ir, &trial, config.objective);
                if c < current_cost - 1e-12 {
                    current = trial;
                    current_cost = c;
                    improved = true;
                }
            }
        }

        // Move 2: swap a deletion for a candidate not in the solution.
        let snapshot: Vec<usize> = (0..nb).filter(|&b| current[b]).collect();
        for &b in &snapshot {
            for u in 0..nb {
                if current[u] {
                    continue;
                }
                if budget.checkpoint().is_err() {
                    return to_solution(ir, &current);
                }
                let mut trial = current.clone();
                trial[b] = false;
                trial[u] = true;
                if acceptable(ir, &trial, config.objective) {
                    let c = cost(ir, &trial, config.objective);
                    if c < current_cost - 1e-12 {
                        current = trial;
                        current_cost = c;
                        improved = true;
                        break;
                    }
                }
            }
        }

        // Move 3 (balanced only): add a deletion that pays for itself.
        if config.objective == Objective::Balanced {
            for u in 0..nb {
                if current[u] {
                    continue;
                }
                if budget.checkpoint().is_err() {
                    return to_solution(ir, &current);
                }
                let mut trial = current.clone();
                trial[u] = true;
                let c = cost(ir, &trial, config.objective);
                if c < current_cost - 1e-12 {
                    current = trial;
                    current_cost = c;
                    improved = true;
                }
            }
        }

        if !improved {
            break;
        }
    }
    to_solution(ir, &current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{exact, general};
    use crate::test_support::{chain_problem, fig1_problem, star_problem};
    use delprop_relation::tup;
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn never_worse_and_stays_feasible() {
        for p in [
            chain_problem(8, 3, &[1, 4, 6]),
            star_problem(5, &[0, 2]),
            fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
                p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            }),
        ] {
            let start = general::solve(p.compiled()).unwrap();
            let polished = improve(p.compiled(), &start, LocalSearchConfig::default());
            assert!(polished.is_feasible(&p));
            assert!(polished.side_effect(&p) <= start.side_effect(&p) + 1e-12);
        }
    }

    #[test]
    fn recovers_the_optimum_from_a_bad_start() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        // Start from "delete every candidate" (cost 3).
        let start = Solution::from_tuples(p.candidates());
        let polished = improve(p.compiled(), &start, LocalSearchConfig::default());
        let opt = exact::solve(p.compiled(), ExactConfig::default()).cost;
        assert_eq!(polished.side_effect(&p), opt);
    }

    #[test]
    fn swap_moves_escape_single_remove_minima() {
        // On Fig. 1, starting from the T2-side solution (cost 2) a remove
        // alone is infeasible; the swap to T1(John, TKDE) reaches cost 1.
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let t2 = p.db().schema().relation_id("T2").unwrap();
        let t2_side: Vec<_> = p
            .candidates()
            .into_iter()
            .filter(|t| t.relation == t2)
            .collect();
        let start = Solution::from_tuples(t2_side);
        assert_eq!(start.side_effect(&p), 2.0);
        let polished = improve(p.compiled(), &start, LocalSearchConfig::default());
        assert_eq!(polished.side_effect(&p), 1.0);
    }

    #[test]
    fn balanced_descent_can_add_and_drop() {
        let mut p = star_problem(4, &[0]);
        let blue = *p.deletions().iter().next().unwrap();
        p.set_weight(blue, 0.1).unwrap();
        // Start from the feasible standard solution (cost 1 balanced);
        // descent should drop the deletion and pay 0.1 instead.
        let start = crate::solvers::dp_tree::solve(p.compiled()).unwrap();
        let polished = improve(
            p.compiled(),
            &start,
            LocalSearchConfig {
                objective: Objective::Balanced,
                ..Default::default()
            },
        );
        assert!((polished.balanced_cost(&p) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_solution_is_a_fixed_point_when_nothing_to_do() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |_| {});
        let polished = improve(
            p.compiled(),
            &Solution::empty(),
            LocalSearchConfig::default(),
        );
        assert!(polished.is_empty());
    }
}
