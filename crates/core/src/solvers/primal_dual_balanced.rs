//! The balanced counterpart of `PrimeDualVSE` (§IV.C: "Similar results
//! will be shown for the balanced version"): a prize-collecting
//! primal-dual in the style of Goemans–Williamson.
//!
//! In the balanced problem a demand `r ∈ ΔV` need not be cut — leaving it
//! costs its weight `w_r`. The dual therefore gains the constraint
//! `v_r ≤ w_r` on top of the per-tuple capacities
//! `cap(t) = Σ_{s∋t} w_s/k_s` of the standard algorithm: a demand's dual
//! rises until either **a witness saturates** (cut it, as before) or
//! **its own prize is exhausted** (leave it and pay `w_r`). The reverse
//! pass prunes deletions whose removal does not worsen the balanced
//! objective.
//!
//! `Σ v_r` remains dual-feasible for the balanced LP, hence a certified
//! lower bound on the balanced optimum; experiment EX-L1's sibling tests
//! verify it against the exact solver.

use crate::error::CoreError;
use crate::problem::Problem;
use crate::solution::Solution;
use crate::solvers::primal_dual::PrimalDualConfig;
use delprop_query::ViewTupleId;
use delprop_relation::TupleId;
use std::collections::{HashMap, HashSet};

/// Outcome of the balanced primal-dual run.
#[derive(Debug, Clone)]
pub struct BalancedOutcome {
    /// The polished solution.
    pub solution: Solution,
    /// Demands intentionally left uncut (their weight is paid instead).
    pub skipped: Vec<ViewTupleId>,
    /// `Σ v_r`: a lower bound on the balanced optimum.
    pub dual_objective: f64,
}

/// Run the prize-collecting primal-dual for the balanced objective.
pub fn solve_balanced(
    problem: &Problem,
    config: &PrimalDualConfig,
) -> Result<BalancedOutcome, CoreError> {
    let counted =
        |id: ViewTupleId| -> bool { config.counted.as_ref().is_none_or(|c| c.contains(&id)) };

    // Capacities as in the standard algorithm.
    let mut cap: HashMap<TupleId, f64> = HashMap::new();
    for t in problem.candidates() {
        cap.insert(t, 0.0);
    }
    for (sid, vt) in problem.preserved() {
        if !counted(sid) {
            continue;
        }
        let ws = vt.unique_witnesses();
        let k = ws.len().max(1) as f64;
        let share = problem.weight(sid) / k;
        for t in ws {
            if let Some(c) = cap.get_mut(t) {
                *c += share;
            }
        }
    }

    let demands: Vec<ViewTupleId> = problem.deletions().iter().copied().collect();
    // `load` is seeded with every capacitated tuple; each demand's
    // witnesses are a subset of `cap`'s keys, so the `expect`s on
    // `load.get_mut` below encode that seeding invariant, not an
    // input-dependent condition.
    let mut load: HashMap<TupleId, f64> = cap.keys().map(|&t| (t, 0.0)).collect();
    let mut deleted: Vec<TupleId> = Vec::new();
    let mut deleted_set: HashSet<TupleId> = HashSet::new();
    let mut dual_objective = 0.0;
    const EPS: f64 = 1e-9;

    for &r in &demands {
        let witnesses = problem.witnesses(r);
        if witnesses.iter().any(|t| deleted_set.contains(t)) {
            continue; // already cut for free
        }
        let allowed: Vec<TupleId> = witnesses
            .iter()
            .copied()
            .filter(|t| !config.forbidden.contains(t))
            .collect();
        let prize = problem.weight(r);
        let slack = allowed
            .iter()
            .map(|t| (cap[t] - load[t]).max(0.0))
            .fold(f64::INFINITY, f64::min); // ∞ iff `allowed` is empty
                                            // The dual rises until the cheaper of the two events.
        let raise = slack.min(prize);
        dual_objective += raise;
        if slack <= prize {
            // Witness saturation wins: cut the demand.
            for t in &allowed {
                *load.get_mut(t).expect("candidate tuple") += raise;
            }
            for &t in &allowed {
                if load[&t] >= cap[&t] - EPS && deleted_set.insert(t) {
                    deleted.push(t);
                }
            }
            debug_assert!(witnesses.iter().any(|t| deleted_set.contains(t)));
        } else {
            // Prize exhausted first (or no deletable witness): pay w_r.
            for t in &allowed {
                *load.get_mut(t).expect("candidate tuple") += raise;
            }
        }
    }

    // Reverse pass: drop any deletion whose removal does not increase the
    // balanced cost (covers both redundancy and bad trades).
    let mut solution = Solution::from_tuples(deleted_set.iter().copied());
    let mut current = solution.balanced_cost(problem);
    for &t in deleted.iter().rev() {
        if !solution.deleted.contains(&t) {
            continue;
        }
        let mut trial = solution.clone();
        trial.deleted.remove(&t);
        let c = trial.balanced_cost(problem);
        if c <= current + EPS {
            solution = trial;
            current = c;
        }
    }
    // The demands actually left uncut (after pruning).
    let skipped = problem
        .deletions()
        .iter()
        .copied()
        .filter(|&r| !solution.eliminates(problem, r))
        .collect();

    Ok(BalancedOutcome {
        solution,
        skipped,
        dual_objective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::exact;
    use crate::test_support::{chain_problem, fig1_problem, star_problem};
    use delprop_relation::tup;
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn fig1_balanced_matches_exact() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let out = solve_balanced(&p, &Default::default()).unwrap();
        let opt = exact::solve_balanced(&p, ExactConfig::default()).cost;
        assert!(out.dual_objective <= opt + 1e-9, "weak duality");
        assert_eq!(out.solution.balanced_cost(&p), opt);
    }

    #[test]
    fn cheap_prizes_are_paid_not_cut() {
        let mut p = star_problem(4, &[0]);
        let blue = *p.deletions().iter().next().unwrap();
        p.set_weight(blue, 0.1).unwrap(); // cutting costs 1 (the twin)
        let out = solve_balanced(&p, &Default::default()).unwrap();
        assert_eq!(out.skipped, vec![blue]);
        assert!((out.solution.balanced_cost(&p) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn expensive_prizes_are_cut() {
        let mut p = star_problem(4, &[0]);
        let blue = *p.deletions().iter().next().unwrap();
        p.set_weight(blue, 50.0).unwrap();
        let out = solve_balanced(&p, &Default::default()).unwrap();
        assert!(out.skipped.is_empty());
        assert!((out.solution.balanced_cost(&p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dual_objective_lower_bounds_balanced_opt_on_chains() {
        for blue in [&[0usize, 1][..], &[2, 5, 7], &[0, 3, 4, 6]] {
            let p = chain_problem(8, 3, blue);
            let out = solve_balanced(&p, &Default::default()).unwrap();
            let opt = exact::solve_balanced(&p, ExactConfig::default()).cost;
            assert!(
                out.dual_objective <= opt + 1e-9,
                "dual {} above balanced OPT {}",
                out.dual_objective,
                opt
            );
            assert!(out.solution.balanced_cost(&p) + 1e-9 >= opt);
        }
    }

    #[test]
    fn forbidden_witnesses_force_payment() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let cfg = PrimalDualConfig {
            forbidden: p.candidates().into_iter().collect(),
            ..Default::default()
        };
        // Unlike the standard version, the balanced one cannot fail: it
        // pays the prize instead.
        let out = solve_balanced(&p, &cfg).unwrap();
        assert!(out.solution.is_empty());
        assert_eq!(out.skipped.len(), 1);
        assert_eq!(out.solution.balanced_cost(&p), 1.0);
    }

    #[test]
    fn empty_demand_set_is_trivial() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |_| {});
        let out = solve_balanced(&p, &Default::default()).unwrap();
        assert!(out.solution.is_empty());
        assert_eq!(out.dual_objective, 0.0);
    }
}
