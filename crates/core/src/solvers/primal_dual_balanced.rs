//! The balanced counterpart of `PrimeDualVSE` (§IV.C: "Similar results
//! will be shown for the balanced version"): a prize-collecting
//! primal-dual in the style of Goemans–Williamson.
//!
//! In the balanced problem a demand `r ∈ ΔV` need not be cut — leaving it
//! costs its weight `w_r`. The dual therefore gains the constraint
//! `v_r ≤ w_r` on top of the per-tuple capacities
//! `cap(t) = Σ_{s∋t} w_s/k_s` of the standard algorithm: a demand's dual
//! rises until either **a witness saturates** (cut it, as before) or
//! **its own prize is exhausted** (leave it and pay `w_r`). The reverse
//! pass prunes deletions whose removal does not worsen the balanced
//! objective.
//!
//! `Σ v_r` remains dual-feasible for the balanced LP, hence a certified
//! lower bound on the balanced optimum; experiment EX-L1's sibling tests
//! verify it against the exact solver.
//!
//! Capacities, loads, and the reverse pass all run over the compiled
//! dense index; the reverse pass maintains integer cut/damage counters
//! per demand and per vulnerable tuple, so re-pricing a trial removal is
//! two CSR-row walks plus one flat counter scan (in the exact summation
//! order of [`CompiledInstance::balanced_cost_mask`], so trial costs are
//! bit-identical to a from-scratch evaluation) instead of re-walking
//! every witness row of the instance.

use crate::error::CoreError;
use crate::ir::CompiledInstance;
use crate::solution::Solution;
use crate::solvers::primal_dual::PrimalDualConfig;
use delprop_query::ViewTupleId;
use delprop_setcover::kernel::words;
use delprop_setcover::BitSet;

/// Outcome of the balanced primal-dual run.
#[derive(Debug, Clone)]
pub struct BalancedOutcome {
    /// The polished solution.
    pub solution: Solution,
    /// Demands intentionally left uncut (their weight is paid instead).
    pub skipped: Vec<ViewTupleId>,
    /// `Σ v_r`: a lower bound on the balanced optimum.
    pub dual_objective: f64,
}

/// Run the prize-collecting primal-dual for the balanced objective.
// lint:allow(budget): raise/cleanup passes are bounded by demands x witnesses; the runtime adapter charges the pass coarsely
pub fn solve_balanced(
    ir: &CompiledInstance,
    config: &PrimalDualConfig,
) -> Result<BalancedOutcome, CoreError> {
    crate::runtime::metrics::SOLVE_PRIMAL_DUAL_BALANCED.inc();
    let counted = |r: u32| -> bool {
        config
            .counted
            .as_ref()
            .is_none_or(|c| c.contains(r as usize))
    };

    // Capacities as in the standard algorithm.
    let nb = ir.num_bases();
    let mut cap = vec![0.0f64; nb];
    for r in 0..ir.num_vulnerable() as u32 {
        if !counted(r) {
            continue;
        }
        let k = ir.vulnerable_k(r) as f64;
        let share = ir.vulnerable_weight(r) / k;
        for &b in ir.vulnerable_row(r) {
            cap[b as usize] += share;
        }
    }

    // `BitSet::contains` is false past capacity, so the default
    // zero-capacity `forbidden` needs no resizing.
    let forbidden = &config.forbidden;

    let mut load = vec![0.0f64; nb];
    let mut deleted: Vec<u32> = Vec::new();
    let mut deleted_bits = BitSet::new(nb);
    let mut dual_objective = 0.0;
    const EPS: f64 = 1e-9;

    for d in 0..ir.num_demands() as u32 {
        if words::intersects(ir.witness_mask_row(d), deleted_bits.words()) {
            continue; // already cut for free
        }
        let witnesses = ir.demand_row(d);
        let prize = ir.demand_weight(d);
        let slack = witnesses
            .iter()
            .filter(|&&b| !forbidden.contains(b as usize))
            .map(|&b| (cap[b as usize] - load[b as usize]).max(0.0))
            .fold(f64::INFINITY, f64::min); // ∞ iff nothing is deletable
                                            // The dual rises until the cheaper of the two events.
        let raise = slack.min(prize);
        dual_objective += raise;
        for &b in witnesses {
            if !forbidden.contains(b as usize) {
                load[b as usize] += raise;
            }
        }
        if slack <= prize {
            // Witness saturation wins: cut the demand.
            for &b in witnesses {
                if !forbidden.contains(b as usize)
                    && load[b as usize] >= cap[b as usize] - EPS
                    && deleted_bits.insert(b as usize)
                {
                    deleted.push(b);
                }
            }
            debug_assert!(words::intersects(
                ir.witness_mask_row(d),
                deleted_bits.words()
            ));
        }
        // Otherwise the prize is exhausted first (or there is no
        // deletable witness): pay w_r and leave the demand uncut.
    }

    // Reverse pass: drop any deletion whose removal does not increase the
    // balanced cost (covers both redundancy and bad trades). Cut/damage
    // multiplicities are maintained incrementally; the trial cost is
    // re-summed from the flat counters in the same ascending order as
    // `balanced_cost_mask`, so accept/reject decisions are bit-identical
    // to from-scratch re-pricing.
    let nd = ir.num_demands();
    let nr = ir.num_vulnerable();
    let mut cut_count: Vec<u32> = (0..nd as u32)
        .map(|d| words::intersection_count(ir.witness_mask_row(d), deleted_bits.words()) as u32)
        .collect();
    let mut damage_count: Vec<u32> = (0..nr as u32)
        .map(|r| words::intersection_count(ir.vulnerable_mask_row(r), deleted_bits.words()) as u32)
        .collect();
    let cost_of = |cut_count: &[u32], damage_count: &[u32]| -> f64 {
        let missed: f64 = cut_count
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == 0)
            .map(|(d, _)| ir.demand_weight(d as u32))
            .sum();
        let damage: f64 = damage_count
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(r, _)| ir.vulnerable_weight(r as u32))
            .sum();
        missed + damage
    };
    let mut current = cost_of(&cut_count, &damage_count);
    for &b in deleted.iter().rev() {
        for &d in ir.hit_row(b) {
            cut_count[d as usize] -= 1;
        }
        for &r in ir.incidence_row(b) {
            damage_count[r as usize] -= 1;
        }
        let c = cost_of(&cut_count, &damage_count);
        if c <= current + EPS {
            current = c;
            deleted_bits.remove(b as usize);
        } else {
            for &d in ir.hit_row(b) {
                cut_count[d as usize] += 1;
            }
            for &r in ir.incidence_row(b) {
                damage_count[r as usize] += 1;
            }
        }
    }
    // The demands actually left uncut (after pruning).
    let skipped = cut_count
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == 0)
        .map(|(d, _)| ir.demand(d as u32))
        .collect();

    let solution = Solution::from_tuples(deleted_bits.iter().map(|b| ir.base(b as u32)));
    Ok(BalancedOutcome {
        solution,
        skipped,
        dual_objective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::exact;
    use crate::test_support::{chain_problem, fig1_problem, star_problem};
    use delprop_relation::tup;
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn fig1_balanced_matches_exact() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let out = solve_balanced(p.compiled(), &Default::default()).unwrap();
        let opt = exact::solve_balanced(p.compiled(), ExactConfig::default()).cost;
        assert!(out.dual_objective <= opt + 1e-9, "weak duality");
        assert_eq!(out.solution.balanced_cost(&p), opt);
    }

    #[test]
    fn cheap_prizes_are_paid_not_cut() {
        let mut p = star_problem(4, &[0]);
        let blue = *p.deletions().iter().next().unwrap();
        p.set_weight(blue, 0.1).unwrap(); // cutting costs 1 (the twin)
        let out = solve_balanced(p.compiled(), &Default::default()).unwrap();
        assert_eq!(out.skipped, vec![blue]);
        assert!((out.solution.balanced_cost(&p) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn expensive_prizes_are_cut() {
        let mut p = star_problem(4, &[0]);
        let blue = *p.deletions().iter().next().unwrap();
        p.set_weight(blue, 50.0).unwrap();
        let out = solve_balanced(p.compiled(), &Default::default()).unwrap();
        assert!(out.skipped.is_empty());
        assert!((out.solution.balanced_cost(&p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dual_objective_lower_bounds_balanced_opt_on_chains() {
        for blue in [&[0usize, 1][..], &[2, 5, 7], &[0, 3, 4, 6]] {
            let p = chain_problem(8, 3, blue);
            let out = solve_balanced(p.compiled(), &Default::default()).unwrap();
            let opt = exact::solve_balanced(p.compiled(), ExactConfig::default()).cost;
            assert!(
                out.dual_objective <= opt + 1e-9,
                "dual {} above balanced OPT {}",
                out.dual_objective,
                opt
            );
            assert!(out.solution.balanced_cost(&p) + 1e-9 >= opt);
        }
    }

    #[test]
    fn forbidden_witnesses_force_payment() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let cfg = PrimalDualConfig {
            forbidden: p.compiled().tuple_bits(p.candidates()),
            ..Default::default()
        };
        // Unlike the standard version, the balanced one cannot fail: it
        // pays the prize instead.
        let out = solve_balanced(p.compiled(), &cfg).unwrap();
        assert!(out.solution.is_empty());
        assert_eq!(out.skipped.len(), 1);
        assert_eq!(out.solution.balanced_cost(&p), 1.0);
    }

    #[test]
    fn empty_demand_set_is_trivial() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |_| {});
        let out = solve_balanced(p.compiled(), &Default::default()).unwrap();
        assert!(out.solution.is_empty());
        assert_eq!(out.dual_objective, 0.0);
    }
}
