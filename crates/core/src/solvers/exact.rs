//! Exact solvers (exponential time): ground truth for every ratio
//! experiment. Standard version via the Red-Blue reduction + branch and
//! bound; balanced version via the Pos-Neg reduction.

use crate::ir::CompiledInstance;
use crate::reduction;
use crate::runtime::trace::Phase;
use crate::runtime::{metrics, Budget};
use crate::solution::Solution;
use delprop_setcover::exact::{self, ExactConfig};
use delprop_setcover::reduce;

/// Result of an exact solve.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// The optimal solution (always exists for the balanced version;
    /// `None` for the standard version only if some `ΔV` tuple had an
    /// empty witness set, which key-preservation rules out).
    pub solution: Option<Solution>,
    /// Its objective value.
    pub cost: f64,
    /// Whether optimality was proven (node limit not hit).
    pub proven_optimal: bool,
}

/// Minimize the view side-effect exactly.
pub fn solve(ir: &CompiledInstance, config: ExactConfig) -> ExactOutcome {
    solve_budgeted(ir, config, &Budget::unlimited())
}

/// [`solve`] under a cooperative [`Budget`]: every branch-and-bound node
/// expansion charges the budget (batched), and exhaustion — or a racing
/// cancellation on the handle — truncates the search exactly like the
/// node limit: the best incumbent so far comes back with
/// `proven_optimal == false`.
pub fn solve_budgeted(ir: &CompiledInstance, config: ExactConfig, budget: &Budget) -> ExactOutcome {
    metrics::SOLVE_EXACT.inc();
    let span = budget.span(Phase::BranchBound, "exact");
    let ticks_before = budget.own_used();
    let rb = reduction::to_redblue(ir);
    let res = exact::solve_with_ticker(&rb.instance, config, &mut budget.ticker());
    metrics::BNB_NODE_TICKS.add(budget.own_used().saturating_sub(ticks_before));
    span.end_with(if res.proven_optimal {
        "proven_optimal"
    } else {
        "truncated"
    });
    match res.selection {
        Some(sel) => {
            let solution = rb.map_back(&sel);
            let cost = ir.side_effect_of(&solution);
            ExactOutcome {
                solution: Some(solution),
                cost,
                proven_optimal: res.proven_optimal,
            }
        }
        None => ExactOutcome {
            solution: None,
            cost: 0.0,
            proven_optimal: res.proven_optimal,
        },
    }
}

/// Minimize the balanced objective exactly.
pub fn solve_balanced(ir: &CompiledInstance, config: ExactConfig) -> ExactOutcome {
    solve_balanced_budgeted(ir, config, &Budget::unlimited())
}

/// [`solve_balanced`] under a cooperative [`Budget`] (see
/// [`solve_budgeted`]). Truncation before any incumbent degrades to the
/// empty selection, which is always feasible for the balanced objective.
pub fn solve_balanced_budgeted(
    ir: &CompiledInstance,
    config: ExactConfig,
    budget: &Budget,
) -> ExactOutcome {
    metrics::SOLVE_EXACT.inc();
    let span = budget.span(Phase::BranchBound, "exact_balanced");
    let ticks_before = budget.own_used();
    let pn = reduction::to_posneg(ir);
    let (sel, _, proven) =
        reduce::solve_posneg_exact_with_ticker(&pn.instance, config, &mut budget.ticker());
    metrics::BNB_NODE_TICKS.add(budget.own_used().saturating_sub(ticks_before));
    span.end_with(if proven {
        "proven_optimal"
    } else {
        "truncated"
    });
    let solution = pn.map_back(&sel);
    let cost = ir.balanced_cost_of(&solution);
    ExactOutcome {
        solution: Some(solution),
        cost,
        proven_optimal: proven,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::fig1_problem;
    use delprop_relation::tup;

    #[test]
    fn fig1_q4_optimum_is_one() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let out = solve(p.compiled(), ExactConfig::default());
        assert!(out.proven_optimal);
        assert_eq!(out.cost, 1.0);
        let sol = out.solution.unwrap();
        assert!(sol.is_feasible(&p));
        assert_eq!(sol.len(), 1);
        assert_eq!(sol.verify_by_reevaluation(&p), 1.0);
    }

    #[test]
    fn fig1_balanced_optimum_is_one() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        // Deleting T1(John,TKDE): side-effect 1, bad removed -> cost 1.
        // Not deleting: cost 1 (bad stays). Both optimal at 1.
        let out = solve_balanced(p.compiled(), ExactConfig::default());
        assert!(out.proven_optimal);
        assert_eq!(out.cost, 1.0);
    }

    #[test]
    fn no_deletions_costs_zero() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |_| {});
        let out = solve(p.compiled(), ExactConfig::default());
        assert_eq!(out.cost, 0.0);
        assert!(out.solution.unwrap().is_empty());
        let out = solve_balanced(p.compiled(), ExactConfig::default());
        assert_eq!(out.cost, 0.0);
    }

    #[test]
    fn multi_query_fig1_shrinks_choices() {
        // §V "data annotation": with both Q4 and Q5 (projection onto
        // T2-keys), merging deletions narrows the optimal solutions.
        let p = fig1_problem(
            &[
                ("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)"),
                ("Q5", "Q5(y, z) :- T2(y, z, w)"),
            ],
            |p| {
                p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            },
        );
        let out = solve(p.compiled(), ExactConfig::default());
        // Deleting T2(TKDE,XML,30) would now also kill view tuple
        // Q5(TKDE, XML): side-effect 3. Deleting T1(John,TKDE) still 1.
        assert_eq!(out.cost, 1.0);
        let sol = out.solution.unwrap();
        let t1 = p.db().schema().relation_id("T1").unwrap();
        assert!(sol.deleted.iter().all(|t| t.relation == t1));
    }
}
