//! `DPTreeVSE` — Algorithm 4 of the paper: an **exact** polynomial dynamic
//! program for the restricted forest case with pivot tuples (§IV.E).
//!
//! Precondition (certified by `delprop-hypergraph::find_pivot_structure`):
//! the data dual graph is a forest and each component has a pivot tuple
//! from which every view tuple's witness set is a root-prefix path. Under
//! that structure, deleting a tuple `t` eliminates exactly the view tuples
//! whose path endpoint lies in `t`'s subtree, deletions below a deleted
//! tuple are redundant, and a two-option post-order recursion is exact:
//!
//! - **standard**: `DP(v) = redsub(v)` if a demand ends at `v`, else
//!   `min(redsub(v), Σ_children DP(c))`, where `redsub(v)` is the
//!   preserved weight ending in `v`'s subtree;
//! - **balanced**: `DP(v) = min(redsub(v), blue(v) + Σ_children DP(c))`,
//!   pricing missed demands instead of forbidding them.
//!
//! Both run in `O(|V(graph)| + ‖V‖)` after the pivot certification — the
//! paper's "poly size status transition array" sharpened to linear.

use crate::error::CoreError;
use crate::problem::Problem;
use crate::solution::Solution;
use delprop_hypergraph::{find_pivot_structure, DataDualGraph, PivotStructure};
use delprop_query::ViewTupleId;
use delprop_relation::TupleId;

/// Whether the pivot-forest precondition holds for `problem`.
pub fn applies(problem: &Problem) -> bool {
    structure(problem).is_ok()
}

/// Solve the standard view side-effect exactly.
pub fn solve(problem: &Problem) -> Result<Solution, CoreError> {
    run(problem, Mode::Standard)
}

/// Solve the balanced objective exactly.
pub fn solve_balanced(problem: &Problem) -> Result<Solution, CoreError> {
    run(problem, Mode::Balanced)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Standard,
    Balanced,
}

/// Build the graph + pivot structure + per-path view ids.
fn structure(
    problem: &Problem,
) -> Result<(DataDualGraph, PivotStructure, Vec<ViewTupleId>), CoreError> {
    let mut path_ids: Vec<ViewTupleId> = Vec::new();
    let mut paths: Vec<Vec<TupleId>> = Vec::new();
    for (id, vt) in problem.views().iter() {
        path_ids.push(id);
        paths.push(vt.unique_witnesses().to_vec());
    }
    let graph = DataDualGraph::new(&paths);
    let pivot = find_pivot_structure(&graph).ok_or_else(|| CoreError::StructureMismatch {
        solver: "DPTreeVSE",
        reason: "data dual graph is not a pivot forest (no pivot tuple \
                 makes every witness set a root-prefix path)"
            .into(),
    })?;
    Ok((graph, pivot, path_ids))
}

fn run(problem: &Problem, mode: Mode) -> Result<Solution, CoreError> {
    let (graph, pivot, path_ids) = structure(problem)?;
    let n = graph.num_vertices();
    let forest = &pivot.forest;

    // Per-vertex endpoint weights.
    let mut red_at = vec![0.0f64; n]; // preserved weight ending here
    let mut blue_at = vec![0.0f64; n]; // demand weight ending here
    let mut blue_count_at = vec![0usize; n];
    for (pi, &endpoint) in pivot.endpoints.iter().enumerate() {
        let id = path_ids[pi];
        if problem.is_deleted(id) {
            blue_at[endpoint] += problem.weight(id);
            blue_count_at[endpoint] += 1;
        } else {
            red_at[endpoint] += problem.weight(id);
        }
    }

    // Post-order: reverse BFS order visits children before parents.
    let children = forest.children();
    let mut redsub = red_at.clone();
    for &v in forest.bfs_order.iter().rev() {
        for &c in &children[v] {
            redsub[v] += redsub[c];
        }
    }

    // DP values + whether the optimal choice at v (in the "no ancestor
    // deleted" context) is to delete v.
    let mut dp = vec![0.0f64; n];
    let mut delete_here = vec![false; n];
    for &v in forest.bfs_order.iter().rev() {
        let keep_children: f64 = children[v].iter().map(|&c| dp[c]).sum();
        let (keep_allowed, keep_cost) = match mode {
            Mode::Standard => (blue_count_at[v] == 0, keep_children),
            Mode::Balanced => (true, blue_at[v] + keep_children),
        };
        let delete_cost = redsub[v];
        if !keep_allowed || delete_cost < keep_cost {
            dp[v] = delete_cost;
            delete_here[v] = true;
        } else {
            dp[v] = keep_cost;
            delete_here[v] = false;
        }
    }

    // Reconstruct: walk down from each root, stopping at deletions.
    let mut deleted: Vec<TupleId> = Vec::new();
    let mut stack: Vec<usize> = forest.roots.clone();
    while let Some(v) = stack.pop() {
        if delete_here[v] {
            deleted.push(graph.tuple(v));
        } else {
            stack.extend(children[v].iter().copied());
        }
    }
    Ok(Solution::from_tuples(deleted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::exact;
    use crate::test_support::{fig1_problem, star_problem};
    use delprop_relation::tup;
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn star_problem_has_pivot_structure() {
        let p = star_problem(6, &[1, 3]);
        assert!(applies(&p));
    }

    #[test]
    fn matches_exact_on_star_instances() {
        for blue in [&[0usize][..], &[1, 4], &[0, 2, 5], &[0, 1, 2, 3, 4, 5]] {
            let p = star_problem(6, blue);
            let dp = solve(&p).unwrap();
            assert!(dp.is_feasible(&p));
            let opt = exact::solve(&p, ExactConfig::default());
            assert!(
                (dp.side_effect(&p) - opt.cost).abs() < 1e-9,
                "DP {} != OPT {} for blues {:?}",
                dp.side_effect(&p),
                opt.cost,
                blue
            );
        }
    }

    #[test]
    fn matches_exact_balanced_on_star_instances() {
        for blue in [&[0usize][..], &[1, 4], &[0, 2, 5]] {
            let p = star_problem(6, blue);
            let dp = solve_balanced(&p).unwrap();
            let opt = exact::solve_balanced(&p, ExactConfig::default());
            assert!(
                (dp.balanced_cost(&p) - opt.cost).abs() < 1e-9,
                "DP balanced {} != OPT {} for blues {:?}",
                dp.balanced_cost(&p),
                opt.cost,
                blue
            );
        }
    }

    #[test]
    fn weighted_star_steers_the_dp() {
        let mut p = star_problem(4, &[0]);
        // Every preserved view tuple weighs 100. The cheapest cut deletes
        // the branch tip, losing only the Q3b twin: cost exactly 100 —
        // and the DP must still match the exact optimum.
        let ids: Vec<ViewTupleId> = p.preserved().map(|(id, _)| id).collect();
        for id in ids {
            p.set_weight(id, 100.0).unwrap();
        }
        let dp = solve(&p).unwrap();
        assert!(dp.is_feasible(&p));
        assert_eq!(dp.side_effect(&p), 100.0);
        let opt = exact::solve(&p, ExactConfig::default());
        assert_eq!(dp.side_effect(&p), opt.cost);
    }

    #[test]
    fn non_pivot_structure_is_rejected() {
        // Fig. 1 Q4: witness paths share the T2 tuple across different T1
        // tuples and vice versa — no pivot.
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        assert!(!applies(&p));
        assert!(matches!(
            solve(&p),
            Err(CoreError::StructureMismatch { .. })
        ));
    }

    #[test]
    fn balanced_may_leave_demands_uncut() {
        let mut p = star_problem(4, &[0]);
        // The cheapest cut costs 1 (the Q3b twin on the branch tip), but
        // the demand itself weighs only 0.1: the balanced optimum leaves
        // it uncut and pays 0.1. The standard version must still cut.
        let blue_id = *p.deletions().iter().next().unwrap();
        p.set_weight(blue_id, 0.1).unwrap();
        let bal = solve_balanced(&p).unwrap();
        assert!((bal.balanced_cost(&p) - 0.1).abs() < 1e-9);
        assert!(bal.is_empty(), "balanced optimum deletes nothing here");
        let std = solve(&p).unwrap();
        assert!(std.is_feasible(&p));
        assert_eq!(std.side_effect(&p), 1.0);
    }

    #[test]
    fn empty_demand_set_deletes_nothing() {
        let p = star_problem(3, &[]);
        let sol = solve(&p).unwrap();
        assert!(sol.is_empty());
        let sol = solve_balanced(&p).unwrap();
        assert_eq!(sol.balanced_cost(&p), 0.0);
    }
}
