//! `DPTreeVSE` — Algorithm 4 of the paper: an **exact** polynomial dynamic
//! program for the restricted forest case with pivot tuples (§IV.E).
//!
//! Precondition (certified once at IR compile time via
//! `delprop-hypergraph::find_pivot_structure` and cached as
//! [`CompiledInstance::pivot`]): the data dual graph is a forest and each
//! component has a pivot tuple from which every view tuple's witness set
//! is a root-prefix path. Under that structure, deleting a tuple `t`
//! eliminates exactly the view tuples whose path endpoint lies in `t`'s
//! subtree, deletions below a deleted tuple are redundant, and a
//! two-option post-order recursion is exact:
//!
//! - **standard**: `DP(v) = redsub(v)` if a demand ends at `v`, else
//!   `min(redsub(v), Σ_children DP(c))`, where `redsub(v)` is the
//!   preserved weight ending in `v`'s subtree;
//! - **balanced**: `DP(v) = min(redsub(v), blue(v) + Σ_children DP(c))`,
//!   pricing missed demands instead of forbidding them.
//!
//! Both run in `O(|V(graph)| + ‖V‖)` after the pivot certification — the
//! paper's "poly size status transition array" sharpened to linear.

use crate::error::CoreError;
use crate::ir::{CompiledInstance, PivotData};
use crate::solution::Solution;
use delprop_relation::TupleId;

/// Whether the pivot-forest precondition holds for the instance.
pub fn applies(ir: &CompiledInstance) -> bool {
    ir.pivot().is_some()
}

/// Solve the standard view side-effect exactly.
pub fn solve(ir: &CompiledInstance) -> Result<Solution, CoreError> {
    crate::runtime::metrics::SOLVE_DP_TREE.inc();
    run(ir, Mode::Standard)
}

/// Solve the balanced objective exactly.
pub fn solve_balanced(ir: &CompiledInstance) -> Result<Solution, CoreError> {
    crate::runtime::metrics::SOLVE_DP_TREE.inc();
    run(ir, Mode::Balanced)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Standard,
    Balanced,
}

fn pivot(ir: &CompiledInstance) -> Result<&PivotData, CoreError> {
    ir.pivot().ok_or_else(|| CoreError::StructureMismatch {
        solver: "DPTreeVSE",
        reason: "data dual graph is not a pivot forest (no pivot tuple \
                 makes every witness set a root-prefix path)"
            .into(),
    })
}

// lint:allow(budget): tree DP is two O(n) passes over bfs_order; the runtime adapter charges it coarsely
fn run(ir: &CompiledInstance, mode: Mode) -> Result<Solution, CoreError> {
    let pivot = pivot(ir)?;
    let n = pivot.num_vertices();

    // Per-vertex endpoint weights.
    let mut red_at = vec![0.0f64; n]; // preserved weight ending here
    let mut blue_at = vec![0.0f64; n]; // demand weight ending here
    let mut blue_count_at = vec![0usize; n];
    for (i, &endpoint) in pivot.endpoints.iter().enumerate() {
        let endpoint = endpoint as usize;
        if ir.view_deleted(i) {
            blue_at[endpoint] += ir.view_weight(i);
            blue_count_at[endpoint] += 1;
        } else {
            red_at[endpoint] += ir.view_weight(i);
        }
    }

    // Post-order: reverse BFS order visits children before parents.
    let mut redsub = red_at.clone();
    for &v in pivot.bfs_order.iter().rev() {
        let v = v as usize;
        for &c in pivot.children_of(v) {
            redsub[v] += redsub[c as usize];
        }
    }

    // DP values + whether the optimal choice at v (in the "no ancestor
    // deleted" context) is to delete v.
    let mut dp = vec![0.0f64; n];
    let mut delete_here = vec![false; n];
    for &v in pivot.bfs_order.iter().rev() {
        let v = v as usize;
        let keep_children: f64 = pivot.children_of(v).iter().map(|&c| dp[c as usize]).sum();
        let (keep_allowed, keep_cost) = match mode {
            Mode::Standard => (blue_count_at[v] == 0, keep_children),
            Mode::Balanced => (true, blue_at[v] + keep_children),
        };
        let delete_cost = redsub[v];
        if !keep_allowed || delete_cost < keep_cost {
            dp[v] = delete_cost;
            delete_here[v] = true;
        } else {
            dp[v] = keep_cost;
            delete_here[v] = false;
        }
    }

    // Reconstruct: walk down from each root, stopping at deletions.
    let mut deleted: Vec<TupleId> = Vec::new();
    let mut stack: Vec<usize> = pivot.roots.iter().map(|&r| r as usize).collect();
    while let Some(v) = stack.pop() {
        if delete_here[v] {
            deleted.push(pivot.vertex_tuple[v]);
        } else {
            stack.extend(pivot.children_of(v).iter().map(|&c| c as usize));
        }
    }
    Ok(Solution::from_tuples(deleted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::exact;
    use crate::test_support::{fig1_problem, star_problem};
    use delprop_query::ViewTupleId;
    use delprop_relation::tup;
    use delprop_setcover::exact::ExactConfig;

    #[test]
    fn star_problem_has_pivot_structure() {
        let p = star_problem(6, &[1, 3]);
        assert!(applies(p.compiled()));
    }

    #[test]
    fn matches_exact_on_star_instances() {
        for blue in [&[0usize][..], &[1, 4], &[0, 2, 5], &[0, 1, 2, 3, 4, 5]] {
            let p = star_problem(6, blue);
            let dp = solve(p.compiled()).unwrap();
            assert!(dp.is_feasible(&p));
            let opt = exact::solve(p.compiled(), ExactConfig::default());
            assert!(
                (dp.side_effect(&p) - opt.cost).abs() < 1e-9,
                "DP {} != OPT {} for blues {:?}",
                dp.side_effect(&p),
                opt.cost,
                blue
            );
        }
    }

    #[test]
    fn matches_exact_balanced_on_star_instances() {
        for blue in [&[0usize][..], &[1, 4], &[0, 2, 5]] {
            let p = star_problem(6, blue);
            let dp = solve_balanced(p.compiled()).unwrap();
            let opt = exact::solve_balanced(p.compiled(), ExactConfig::default());
            assert!(
                (dp.balanced_cost(&p) - opt.cost).abs() < 1e-9,
                "DP balanced {} != OPT {} for blues {:?}",
                dp.balanced_cost(&p),
                opt.cost,
                blue
            );
        }
    }

    #[test]
    fn weighted_star_steers_the_dp() {
        let mut p = star_problem(4, &[0]);
        // Every preserved view tuple weighs 100. The cheapest cut deletes
        // the branch tip, losing only the Q3b twin: cost exactly 100 —
        // and the DP must still match the exact optimum.
        let ids: Vec<ViewTupleId> = p.preserved().map(|(id, _)| id).collect();
        for id in ids {
            p.set_weight(id, 100.0).unwrap();
        }
        let dp = solve(p.compiled()).unwrap();
        assert!(dp.is_feasible(&p));
        assert_eq!(dp.side_effect(&p), 100.0);
        let opt = exact::solve(p.compiled(), ExactConfig::default());
        assert_eq!(dp.side_effect(&p), opt.cost);
    }

    #[test]
    fn non_pivot_structure_is_rejected() {
        // Fig. 1 Q4: witness paths share the T2 tuple across different T1
        // tuples and vice versa — no pivot.
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        assert!(!applies(p.compiled()));
        assert!(matches!(
            solve(p.compiled()),
            Err(CoreError::StructureMismatch { .. })
        ));
    }

    #[test]
    fn balanced_may_leave_demands_uncut() {
        let mut p = star_problem(4, &[0]);
        // The cheapest cut costs 1 (the Q3b twin on the branch tip), but
        // the demand itself weighs only 0.1: the balanced optimum leaves
        // it uncut and pays 0.1. The standard version must still cut.
        let blue_id = *p.deletions().iter().next().unwrap();
        p.set_weight(blue_id, 0.1).unwrap();
        let bal = solve_balanced(p.compiled()).unwrap();
        assert!((bal.balanced_cost(&p) - 0.1).abs() < 1e-9);
        assert!(bal.is_empty(), "balanced optimum deletes nothing here");
        let std = solve(p.compiled()).unwrap();
        assert!(std.is_feasible(&p));
        assert_eq!(std.side_effect(&p), 1.0);
    }

    #[test]
    fn empty_demand_set_deletes_nothing() {
        let p = star_problem(3, &[]);
        let sol = solve(p.compiled()).unwrap();
        assert!(sol.is_empty());
        let sol = solve_balanced(p.compiled()).unwrap();
        assert_eq!(sol.balanced_cost(&p), 0.0);
    }
}
