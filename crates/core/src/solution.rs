//! Solutions (`ΔD`) and the two objectives (§II.C, §III).
//!
//! Everything here evaluates through the unique-witness property: a
//! key-preserving view tuple is eliminated by `ΔD` iff its witness set
//! intersects `ΔD`. [`Solution::verify_by_reevaluation`] cross-checks that
//! shortcut against full re-materialization and is used heavily in tests.

use crate::problem::Problem;
use delprop_query::{ViewSet, ViewTupleId};
use delprop_relation::TupleId;
use std::collections::BTreeSet;

/// A source-deletion solution `ΔD ⊆ D`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Solution {
    /// The deleted base tuples.
    pub deleted: BTreeSet<TupleId>,
}

impl Solution {
    /// Empty solution (deletes nothing).
    pub fn empty() -> Self {
        Solution::default()
    }

    /// Solution from tuple ids.
    pub fn from_tuples(ids: impl IntoIterator<Item = TupleId>) -> Self {
        Solution {
            deleted: ids.into_iter().collect(),
        }
    }

    /// Number of deleted base tuples (the *source side-effect* measure of
    /// the sibling problem line; reported for context, never optimized
    /// here).
    pub fn len(&self) -> usize {
        self.deleted.len()
    }

    /// Whether nothing is deleted.
    pub fn is_empty(&self) -> bool {
        self.deleted.is_empty()
    }

    /// Whether view tuple `id` is eliminated by this solution.
    pub fn eliminates(&self, problem: &Problem, id: ViewTupleId) -> bool {
        problem
            .witnesses(id)
            .iter()
            .any(|t| self.deleted.contains(t))
    }

    /// Feasibility for the **standard** problem: every view tuple of `ΔV`
    /// is eliminated (condition (a) of §II.C; condition `Qi(D\ΔD) ⊆ Vi\ΔVi`
    /// follows because deletions only shrink key-preserving views).
    pub fn is_feasible(&self, problem: &Problem) -> bool {
        problem
            .deletions()
            .iter()
            .all(|&id| self.eliminates(problem, id))
    }

    /// The **view side-effect** `s_view`: total weight of preserved view
    /// tuples accidentally eliminated (§II.C (b), weighted per §IV).
    pub fn side_effect(&self, problem: &Problem) -> f64 {
        problem
            .preserved()
            .filter(|(id, _)| self.eliminates(problem, *id))
            .map(|(id, _)| problem.weight(id))
            .sum::<f64>()
            + 0.0 // normalize the empty sum's -0.0
    }

    /// The **balanced** objective (§III): weight of bad view tuples still
    /// present plus weight of good view tuples eliminated. Always finite;
    /// every `ΔD` is feasible for the balanced problem.
    pub fn balanced_cost(&self, problem: &Problem) -> f64 {
        let missed: f64 = problem
            .deleted()
            .filter(|(id, _)| !self.eliminates(problem, *id))
            .map(|(id, _)| problem.weight(id))
            .sum::<f64>();
        missed + self.side_effect(problem) + 0.0
    }

    /// Ground-truth check: tombstone `ΔD` on a copy of the database,
    /// re-materialize every view, and verify that the surviving view
    /// tuples are exactly those the witness shortcut predicts. Returns the
    /// re-evaluated side-effect.
    ///
    /// # Panics
    /// Panics if prediction and re-evaluation disagree (that would be a
    /// provenance bug, not bad input).
    pub fn verify_by_reevaluation(&self, problem: &Problem) -> f64 {
        let mut db = problem.db().clone();
        let ids: Vec<TupleId> = self.deleted.iter().copied().collect();
        db.delete_all(&ids);
        let reeval = ViewSet::materialize(&db, problem.queries())
            .expect("re-materialization of a valid problem cannot fail");
        let mut side_effect = 0.0;
        for (vi, view) in problem.views().views.iter().enumerate() {
            let new_view = &reeval.views[vi];
            for (ti, vt) in view.tuples.iter().enumerate() {
                let id = ViewTupleId::new(vi, ti);
                let survived = new_view.position_of(&vt.head).is_some();
                let predicted = !self.eliminates(problem, id);
                assert_eq!(
                    survived, predicted,
                    "witness shortcut disagrees with re-evaluation on {id}"
                );
                if !survived && !problem.is_deleted(id) {
                    side_effect += problem.weight(id);
                }
            }
            // Key-preserving views cannot gain tuples under deletion.
            assert!(new_view.len() <= view.len());
        }
        side_effect
    }

    /// Restrict to the candidate tuples of `problem` (dropping deletions
    /// that cannot cut anything never increases either objective).
    ///
    /// Membership comes from the cached IR's sorted base table — no
    /// per-call candidate set is materialized.
    pub fn restricted_to_candidates(&self, problem: &Problem) -> Solution {
        let ir = problem.compiled();
        Solution {
            deleted: self
                .deleted
                .iter()
                .copied()
                .filter(|&t| ir.base_index(t).is_some())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delprop_query::parse_query;
    use delprop_relation::{tup, Database, RelationSchema, Schema, Value};

    fn fig1() -> (Problem, Database) {
        let schema = Schema::from_relations([
            RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
            RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
        ])
        .unwrap();
        let mut d = Database::new(schema);
        for t in [
            tup!["Joe", "TKDE"],
            tup!["John", "TKDE"],
            tup!["Tom", "TKDE"],
            tup!["John", "TODS"],
        ] {
            d.insert("T1", t).unwrap();
        }
        for t in [
            tup!["TKDE", "XML", 30],
            tup!["TKDE", "CUBE", 30],
            tup!["TODS", "XML", 30],
        ] {
            d.insert("T2", t).unwrap();
        }
        let q4 = parse_query("Q4(x, y, z) :- T1(x, y), T2(y, z, w)")
            .unwrap()
            .bind(d.schema())
            .unwrap();
        let mut p = Problem::new(d.clone(), vec![q4]).unwrap();
        p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        (p, d)
    }

    fn tid(db: &Database, rel: &str, key: &[Value]) -> TupleId {
        let r = db.schema().relation_id(rel).unwrap();
        db.find_by_key(r, key).unwrap()
    }

    #[test]
    fn fig1_q4_deleting_t1_side_effect_one() {
        let (p, d) = fig1();
        // Delete T1(John, TKDE): kills (John,TKDE,XML) and (John,TKDE,CUBE).
        let s = Solution::from_tuples([tid(&d, "T1", &[Value::str("John"), Value::str("TKDE")])]);
        assert!(s.is_feasible(&p));
        assert_eq!(s.side_effect(&p), 1.0);
        assert_eq!(s.verify_by_reevaluation(&p), 1.0);
    }

    #[test]
    fn fig1_q4_deleting_t2_side_effect_two() {
        let (p, d) = fig1();
        // Delete T2(TKDE, XML, 30): kills Joe/John/Tom × TKDE × XML.
        let s = Solution::from_tuples([tid(&d, "T2", &[Value::str("TKDE"), Value::str("XML")])]);
        assert!(s.is_feasible(&p));
        assert_eq!(s.side_effect(&p), 2.0);
        assert_eq!(s.verify_by_reevaluation(&p), 2.0);
    }

    #[test]
    fn empty_solution_infeasible_but_balanced() {
        let (p, _) = fig1();
        let s = Solution::empty();
        assert!(!s.is_feasible(&p));
        assert_eq!(s.side_effect(&p), 0.0);
        assert_eq!(s.balanced_cost(&p), 1.0); // the missed bad tuple
    }

    #[test]
    fn balanced_cost_combines_terms() {
        let (p, d) = fig1();
        let s = Solution::from_tuples([tid(&d, "T2", &[Value::str("TKDE"), Value::str("XML")])]);
        // bad tuple eliminated (0) + 2 good ones lost = 2.
        assert_eq!(s.balanced_cost(&p), 2.0);
    }

    #[test]
    fn weights_scale_objectives() {
        let (mut p, d) = fig1();
        // Make (Joe, TKDE, XML) precious.
        let joe = p.views().views[0]
            .position_of(&tup!["Joe", "TKDE", "XML"])
            .unwrap();
        p.set_weight(ViewTupleId::new(0, joe), 10.0).unwrap();
        let s = Solution::from_tuples([tid(&d, "T2", &[Value::str("TKDE"), Value::str("XML")])]);
        assert_eq!(s.side_effect(&p), 11.0);
    }

    #[test]
    fn restricted_to_candidates_drops_noise() {
        let (p, d) = fig1();
        let useful = tid(&d, "T1", &[Value::str("John"), Value::str("TKDE")]);
        let noise = tid(&d, "T1", &[Value::str("Tom"), Value::str("TKDE")]);
        let s = Solution::from_tuples([useful, noise]);
        let r = s.restricted_to_candidates(&p);
        assert_eq!(r.deleted.len(), 1);
        assert!(r.deleted.contains(&useful));
        assert!(r.side_effect(&p) <= s.side_effect(&p));
    }

    #[test]
    fn deleting_everything_is_feasible_and_expensive() {
        let (p, _) = fig1();
        let s = Solution::from_tuples(p.db().live_ids());
        assert!(s.is_feasible(&p));
        assert_eq!(s.side_effect(&p), 6.0); // all preserved tuples lost
        assert_eq!(s.verify_by_reevaluation(&p), 6.0);
    }
}
