//! # delprop-core — deletion propagation for multiple key-preserving
//! conjunctive queries
//!
//! The primary contribution of Cai, Miao & Li (ICDE 2019): given a
//! database `D`, key-preserving conjunctive queries `Q`, materialized
//! views `V = Q(D)` and view deletions `ΔV`, find source deletions `ΔD`
//! eliminating all of `ΔV` with minimum (weighted) **view side-effect** —
//! or, in the **balanced** variant, trade missed deletions against
//! side-effects.
//!
//! - [`Problem`] / [`Solution`]: the instance and `ΔD` with both
//!   objectives;
//! - [`ir`] / [`CompiledInstance`]: the flat CSR incidence index every
//!   solver consumes, compiled once per problem and cached;
//! - [`reduction`]: the cost-preserving reductions to Red-Blue Set Cover
//!   and Pos-Neg Partial Set Cover (Claim 1 / Lemma 1);
//! - [`solvers`]: every algorithm of the paper (see its table);
//! - [`classify`] / [`solve_auto`]: the paper's case analysis as code;
//! - [`landscape`]: Tables II–V as queryable data.
//!
//! ```
//! use delprop_core::{Problem, solve_auto};
//! use delprop_query::parse_query;
//! use delprop_relation::{tup, Database, RelationSchema, Schema};
//!
//! let schema = Schema::from_relations([
//!     RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
//!     RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
//! ]).unwrap();
//! let mut db = Database::new(schema);
//! db.insert("T1", tup!["John", "TKDE"]).unwrap();
//! db.insert("T2", tup!["TKDE", "XML", 30]).unwrap();
//! let q = parse_query("Q(x, y, z) :- T1(x, y), T2(y, z, w)")
//!     .unwrap().bind(db.schema()).unwrap();
//! let mut problem = Problem::new(db, vec![q]).unwrap();
//! problem.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
//! let solution = solve_auto(&problem).unwrap();
//! assert!(solution.is_feasible(&problem));
//! ```

// Every unsafe operation must sit in its own `unsafe { .. }` block with
// a `// SAFETY:` comment (enforced by `cargo run -p xtask -- lint`).
#![deny(unsafe_op_in_unsafe_fn)]

mod classify;
pub mod engine;
mod error;
pub mod ir;
pub mod landscape;
mod problem;
pub mod reduction;
pub mod runtime;
pub mod shard;
mod solution;
pub mod solvers;
#[cfg(test)]
pub(crate) mod test_support;

pub use classify::{classify, solve_auto, solve_auto_balanced, SolverKind, StructureReport};
pub use engine::{CompactionPolicy, DeltaBatch, DeltaReport, Engine, EngineStats};
pub use error::CoreError;
pub use ir::CompiledInstance;
pub use problem::Problem;
pub use runtime::{
    solve_portfolio, solve_portfolio_balanced, solve_portfolio_racing, Budget, Guarantee, NoopSink,
    Portfolio, PortfolioOutcome, RingBufferSink, Solver, TraceEvent, TraceSink,
};
pub use shard::{solve_sharded_ir, ShardSolve, ShardedOutcome};
pub use solution::Solution;
