//! Errors raised by problem construction and the solvers.

use delprop_query::QueryError;
use std::fmt;

/// Errors from the deletion-propagation core.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying query/relation error.
    Query(QueryError),
    /// A query in the input set is not key-preserving. Every solver in
    /// this crate relies on the unique-witness property (§II.C), so this
    /// is rejected at problem construction.
    NotKeyPreserving { query: String },
    /// A requested deletion names a view tuple that does not exist.
    UnknownViewTuple { view: usize, description: String },
    /// A solver's structural precondition does not hold (e.g. running the
    /// pivot-forest dynamic program on an input without pivot structure).
    StructureMismatch {
        solver: &'static str,
        reason: String,
    },
    /// A weight was invalid (negative or non-finite).
    InvalidWeight { value: f64 },
    /// A declared functional dependency does not hold on the instance
    /// (FD-extended key preservation is only sound when the FDs hold).
    FdViolation { relation: String, fd_index: usize },
    /// The problem instance is infeasible for the requested solver
    /// configuration (e.g. every witness of some deleted view tuple is
    /// forbidden by a degree threshold).
    Infeasible { reason: String },
    /// A cooperative budget ran out before the solver finished and no
    /// usable best-so-far solution existed at that point. `ticks` is the
    /// deterministic work counter at exhaustion (0 when only the
    /// wall-clock deadline fired).
    BudgetExhausted { ticks: u64 },
    /// A racing portfolio member was cancelled cooperatively because
    /// another member with a stronger-or-equal guarantee already
    /// verified. `ticks` is the shared pool counter when the member
    /// observed the cancellation at a checkpoint.
    Cancelled { ticks: u64 },
    /// A portfolio member panicked; the panic was contained by the
    /// runtime's isolation boundary and converted into this error.
    SolverPanicked { solver: String, message: String },
    /// A [`crate::ir::CompiledInstance`] was checked against a problem
    /// whose mutation generation has moved on since the IR was built:
    /// the holder (a racing portfolio member, an epoch reader) kept the
    /// old `Arc` across a mutation and must recompile before trusting
    /// any verification result.
    StaleCompiled { compiled: u64, current: u64 },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Query(e) => write!(f, "{e}"),
            CoreError::NotKeyPreserving { query } => write!(
                f,
                "query {query} is not key-preserving; deletion propagation \
                 in this library requires key-preserving conjunctive queries"
            ),
            CoreError::UnknownViewTuple { view, description } => {
                write!(f, "view {view} has no tuple {description}")
            }
            CoreError::StructureMismatch { solver, reason } => {
                write!(f, "{solver}: structural precondition failed: {reason}")
            }
            CoreError::InvalidWeight { value } => {
                write!(f, "invalid weight {value}: must be finite and non-negative")
            }
            CoreError::FdViolation { relation, fd_index } => write!(
                f,
                "functional dependency #{fd_index} of relation {relation} \
                 is violated by the instance"
            ),
            CoreError::Infeasible { reason } => write!(f, "infeasible: {reason}"),
            CoreError::BudgetExhausted { ticks } => {
                write!(f, "budget exhausted after {ticks} work ticks")
            }
            CoreError::Cancelled { ticks } => {
                write!(
                    f,
                    "cancelled at {ticks} pool ticks: a stronger-or-equal \
                     portfolio member already verified"
                )
            }
            CoreError::SolverPanicked { solver, message } => {
                write!(f, "solver {solver} panicked (contained): {message}")
            }
            CoreError::StaleCompiled { compiled, current } => write!(
                f,
                "stale compiled instance: IR generation {compiled} but the \
                 problem is at generation {current}; recompile before \
                 verifying"
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        CoreError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_preserving() {
        let e = CoreError::NotKeyPreserving { query: "Q3".into() };
        assert!(e.to_string().contains("Q3"));
        assert!(e.to_string().contains("key-preserving"));
    }

    #[test]
    fn query_errors_convert() {
        let qe = QueryError::EmptyHead("Q".into());
        let ce: CoreError = qe.clone().into();
        assert_eq!(ce, CoreError::Query(qe));
    }
}
