//! Structural classification of an instance and solver recommendation —
//! the operational form of the paper's case analysis (§III–§IV).

use crate::problem::Problem;
use crate::solvers::dp_tree;
use delprop_query::properties;
use std::fmt;

/// Which solver the paper's case analysis selects for an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// |Q| = 1, |ΔV| = 1: exact polynomial choice of cheapest witness
    /// (Cong et al., recalled in §III).
    SingleQuerySingleDeletion,
    /// Pivot-forest data dual graph: exact polynomial dynamic program
    /// (`DPTreeVSE`, §IV.E).
    PivotForestDp,
    /// Forest case (dual hypergraph components are hypertrees): run both
    /// `PrimeDualVSE` (ratio `l`) and `LowDegTreeVSETwo` (ratio `2√‖V‖`)
    /// and keep the better — the paper offers both precisely because
    /// either factor can win (§IV.C–D).
    ForestApproximation,
    /// General case: Red-Blue reduction + low-degree algorithm, ratio
    /// `O(2√(l·‖V‖·log‖ΔV‖))` (Claim 1). Theorem 1 says no constant
    /// factor is possible, so this is the end of the line.
    GeneralApproximation,
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SolverKind::SingleQuerySingleDeletion => "single-query single-deletion (exact, poly)",
            SolverKind::PivotForestDp => "DPTreeVSE (exact, poly)",
            SolverKind::ForestApproximation => {
                "PrimeDualVSE / LowDegTreeVSETwo (ratio min(l, 2√‖V‖))"
            }
            SolverKind::GeneralApproximation => {
                "Red-Blue reduction + LowDeg (ratio O(2√(l·‖V‖·log‖ΔV‖)))"
            }
        };
        f.write_str(s)
    }
}

/// Structural facts about an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureReport {
    /// All queries project-free (select-join)?
    pub all_project_free: bool,
    /// All queries self-join-free?
    pub all_self_join_free: bool,
    /// `l = max arity(Q)`.
    pub l: usize,
    /// Number of queries.
    pub num_queries: usize,
    /// `‖V‖`, `‖ΔV‖`.
    pub norm_v: usize,
    /// Total deletions.
    pub norm_delta: usize,
    /// Dual hypergraph components are all hypertrees (§IV.B forest case)?
    pub forest_case: bool,
    /// Data dual graph certified as pivot forest (§IV.E)?
    pub pivot_case: bool,
    /// The recommended solver.
    pub recommendation: SolverKind,
}

/// Analyze an instance and recommend a solver per the paper's hierarchy:
/// exact cases first, then the forest approximations, then the general
/// approximation.
pub fn classify(problem: &Problem) -> StructureReport {
    let schema = problem.db().schema();
    let all_project_free = problem.queries().iter().all(properties::is_project_free);
    let all_self_join_free = problem.queries().iter().all(properties::is_self_join_free);
    // Both structural certificates are computed once at IR compile time.
    let ir = problem.compiled();
    let forest_case = ir.forest_case();
    let pivot_case = dp_tree::applies(ir);
    let recommendation = if problem.queries().len() == 1 && problem.norm_delta() == 1 {
        SolverKind::SingleQuerySingleDeletion
    } else if pivot_case {
        SolverKind::PivotForestDp
    } else if forest_case {
        SolverKind::ForestApproximation
    } else {
        SolverKind::GeneralApproximation
    };
    let _ = schema; // schema participates via properties above
    StructureReport {
        all_project_free,
        all_self_join_free,
        l: problem.l(),
        num_queries: problem.queries().len(),
        norm_v: problem.norm_v(),
        norm_delta: problem.norm_delta(),
        forest_case,
        pivot_case,
        recommendation,
    }
}

/// Run the recommended solver and return its solution (standard
/// objective). The workhorse entry point for users who just want an
/// answer.
pub fn solve_auto(problem: &Problem) -> Result<crate::solution::Solution, crate::error::CoreError> {
    use crate::solvers::{general, lowdeg_tree, primal_dual, single_query};
    let ir = problem.compiled();
    match classify(problem).recommendation {
        SolverKind::SingleQuerySingleDeletion => single_query::solve_single_deletion(ir),
        SolverKind::PivotForestDp => dp_tree::solve(ir),
        SolverKind::ForestApproximation => {
            let pd = primal_dual::solve_default(ir)?;
            let ld = lowdeg_tree::solve(ir)?;
            Ok(if ir.side_effect_of(&pd) <= ir.side_effect_of(&ld) {
                pd
            } else {
                ld
            })
        }
        SolverKind::GeneralApproximation => general::solve(ir),
    }
}

/// Run the recommended solver for the **balanced** objective: the exact
/// DP on pivot forests, the prize-collecting primal-dual on other forest
/// cases, the single-deletion comparison on the single-query case, and
/// the Lemma 1 reduction in general.
pub fn solve_auto_balanced(
    problem: &Problem,
) -> Result<crate::solution::Solution, crate::error::CoreError> {
    use crate::solution::Solution;
    use crate::solvers::{dp_tree, general, primal_dual_balanced, single_query};
    let ir = problem.compiled();
    match classify(problem).recommendation {
        SolverKind::SingleQuerySingleDeletion => {
            // Either cut optimally or leave the single demand in place —
            // whichever is cheaper.
            let cut = single_query::solve_single_deletion(ir)?;
            let leave = Solution::empty();
            Ok(
                if ir.balanced_cost_of(&cut) <= ir.balanced_cost_of(&leave) {
                    cut
                } else {
                    leave
                },
            )
        }
        SolverKind::PivotForestDp => dp_tree::solve_balanced(ir),
        SolverKind::ForestApproximation => {
            primal_dual_balanced::solve_balanced(ir, &Default::default()).map(|o| o.solution)
        }
        SolverKind::GeneralApproximation => Ok(general::solve_balanced(ir)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{chain_problem, fig1_problem, star_problem};
    use delprop_relation::tup;

    #[test]
    fn fig1_single_deletion_classified() {
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let r = classify(&p);
        assert_eq!(r.recommendation, SolverKind::SingleQuerySingleDeletion);
        assert!(!r.all_project_free);
        assert!(r.all_self_join_free);
        assert_eq!(r.l, 3);
    }

    #[test]
    fn star_is_pivot_case() {
        let p = star_problem(4, &[0, 2]);
        let r = classify(&p);
        assert_eq!(r.recommendation, SolverKind::PivotForestDp);
        assert!(r.pivot_case);
        assert!(r.forest_case, "pivot cases are forest cases");
    }

    #[test]
    fn merging_chains_are_pivot_cases() {
        // Binary-merging chains group into components that all share
        // their top tuple, which is a pivot — the DP applies.
        let p = chain_problem(8, 3, &[1, 4]);
        let r = classify(&p);
        assert!(r.forest_case);
        assert!(r.pivot_case);
        assert_eq!(r.recommendation, SolverKind::PivotForestDp);
    }

    #[test]
    fn staggered_windows_are_forest_but_not_pivot() {
        use crate::test_support::staggered_problem;
        let p = staggered_problem(4, 3, &[(1, 0), (2, 2)]);
        let r = classify(&p);
        assert!(r.forest_case, "window queries over a chain are hypertrees");
        assert!(
            !r.pivot_case,
            "staggered windows share no common tuple: no pivot"
        );
        assert_eq!(r.recommendation, SolverKind::ForestApproximation);
    }

    #[test]
    fn solve_auto_is_feasible_everywhere() {
        for p in [
            fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
                p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            }),
            chain_problem(8, 3, &[1, 4]),
            star_problem(4, &[0, 2]),
        ] {
            let sol = solve_auto(&p).unwrap();
            assert!(sol.is_feasible(&p));
        }
    }

    #[test]
    fn solve_auto_balanced_routes_every_family() {
        use crate::solvers::exact;
        use delprop_setcover::exact::ExactConfig;
        for p in [
            fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
                p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
            }),
            chain_problem(8, 3, &[1, 4]),
            star_problem(4, &[0, 2]),
        ] {
            let sol = solve_auto_balanced(&p).unwrap();
            let opt = exact::solve_balanced(p.compiled(), ExactConfig::default()).cost;
            assert!(
                sol.balanced_cost(&p) >= opt - 1e-9,
                "cannot beat the optimum"
            );
            // On these families the routed solver is exact or near-exact.
            assert!(sol.balanced_cost(&p) <= opt + p.l() as f64 + 1e-9);
        }
    }

    #[test]
    fn balanced_single_deletion_pays_cheap_prizes() {
        let mut p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let blue = *p.deletions().iter().next().unwrap();
        p.set_weight(blue, 0.1).unwrap();
        let sol = solve_auto_balanced(&p).unwrap();
        assert!(sol.is_empty(), "paying 0.1 beats any cut (min cut costs 1)");
    }

    #[test]
    fn display_names_are_informative() {
        assert!(SolverKind::PivotForestDp.to_string().contains("DPTreeVSE"));
        assert!(SolverKind::GeneralApproximation
            .to_string()
            .contains("Red-Blue"));
    }
}
