//! The deletion-propagation problem instance (§II.C of the paper).
//!
//! An instance bundles a database `D`, key-preserving conjunctive queries
//! `Q = {Q1..Qm}`, their materialized views `V`, the requested view
//! deletions `ΔV`, and per-view-tuple preservation weights (§IV: "each
//! view tuple to be preserved has a weight representing user preference").

use crate::error::CoreError;
use crate::ir::CompiledInstance;
use delprop_query::properties::max_arity;
use delprop_query::{BoundQuery, ViewSet, ViewTuple, ViewTupleId};
use delprop_relation::{Database, Tuple, TupleId};
use std::collections::{BTreeSet, HashSet};
use std::sync::{Arc, OnceLock};

/// A deletion-propagation instance over key-preserving conjunctive queries.
///
/// The immutable parts (database, queries, materialized views) live
/// behind `Arc`s, so cloning a problem to apply a per-request ΔV delta
/// (see [`crate::engine::Engine::with_delta`]) costs only the deletion
/// set and weight table — no view rematerialization, no database copy.
#[derive(Debug, Clone)]
pub struct Problem {
    db: Arc<Database>,
    queries: Arc<Vec<BoundQuery>>,
    views: Arc<ViewSet>,
    deletions: BTreeSet<ViewTupleId>,
    /// weights[view][index], defaulting to 1.0.
    weights: Vec<Vec<f64>>,
    /// Mutation generation: bumped by every IR-invalidating mutation
    /// (`mark_deleted*`, `unmark_deleted_id`, `set_weight`). A
    /// [`CompiledInstance`] is stamped with the generation it was built
    /// against; [`Problem::verify_compiled`] rejects stale pairings.
    generation: u64,
    /// Lazily compiled IR (see [`crate::ir`]), invalidated by every
    /// mutation. `Arc` so clones of an already-compiled problem share the
    /// compile.
    compiled: OnceLock<Arc<CompiledInstance>>,
}

impl Problem {
    /// Build an instance: materialize all views and validate that every
    /// query is key-preserving (the class this paper — and therefore this
    /// library — studies; non-key-preserving inputs are rejected because
    /// the unique-witness machinery is unsound for them).
    pub fn new(db: Database, queries: Vec<BoundQuery>) -> Result<Problem, CoreError> {
        for q in &queries {
            if !delprop_query::properties::is_key_preserving(q, db.schema()) {
                return Err(CoreError::NotKeyPreserving {
                    query: q.name.clone(),
                });
            }
        }
        let views = ViewSet::materialize(&db, &queries)?;
        let weights = views.views.iter().map(|v| vec![1.0; v.len()]).collect();
        Ok(Problem {
            db: Arc::new(db),
            queries: Arc::new(queries),
            views: Arc::new(views),
            deletions: BTreeSet::new(),
            weights,
            generation: 0,
            compiled: OnceLock::new(),
        })
    }

    /// Build an instance whose queries are key-preserving only **under
    /// declared functional dependencies** (the "fd-extended" regime of
    /// the landscape tables): FDs widen the set of candidate keys, so
    /// queries rejected by [`Problem::new`] may still have unique
    /// witnesses per view tuple.
    ///
    /// Soundness is defended twice: the FDs are verified against the
    /// instance (else [`CoreError::FdViolation`]) and every materialized
    /// view tuple is checked to have exactly one witness set (else
    /// [`CoreError::StructureMismatch`], which would indicate an FD set
    /// too weak to pin witnesses down).
    pub fn new_with_fds(
        db: Database,
        queries: Vec<BoundQuery>,
        fds: &delprop_relation::SchemaFds,
    ) -> Result<Problem, CoreError> {
        if let Some((rid, fd_index)) = fds.check(&db) {
            return Err(CoreError::FdViolation {
                relation: db.schema().relation(rid).name().to_string(),
                fd_index,
            });
        }
        for q in &queries {
            if !delprop_query::properties::is_key_preserving_with_fds(q, db.schema(), fds) {
                return Err(CoreError::NotKeyPreserving {
                    query: q.name.clone(),
                });
            }
        }
        let views = ViewSet::materialize(&db, &queries)?;
        for (vi, view) in views.views.iter().enumerate() {
            for vt in &view.tuples {
                if vt.witness_sets.len() != 1 {
                    return Err(CoreError::StructureMismatch {
                        solver: "Problem::new_with_fds",
                        reason: format!(
                            "view {vi} tuple {} has {} witness sets despite the \
                             declared FDs; the FD set does not pin witnesses down",
                            vt.head,
                            vt.witness_sets.len()
                        ),
                    });
                }
            }
        }
        let weights = views.views.iter().map(|v| vec![1.0; v.len()]).collect();
        Ok(Problem {
            db: Arc::new(db),
            queries: Arc::new(queries),
            views: Arc::new(views),
            deletions: BTreeSet::new(),
            weights,
            generation: 0,
            compiled: OnceLock::new(),
        })
    }

    /// The source database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The query set.
    pub fn queries(&self) -> &[BoundQuery] {
        &self.queries
    }

    /// The materialized views.
    pub fn views(&self) -> &ViewSet {
        &self.views
    }

    /// The paper's `l = max arity(Q)` over the query set.
    pub fn l(&self) -> usize {
        max_arity(self.queries.iter())
    }

    /// `‖V‖`: total number of view tuples.
    pub fn norm_v(&self) -> usize {
        self.views.total_tuples()
    }

    /// `‖ΔV‖`: total number of view tuples marked for deletion.
    pub fn norm_delta(&self) -> usize {
        self.deletions.len()
    }

    /// The compiled IR of this instance (see [`crate::ir`]), built on
    /// first use and cached until the next mutation. Every solver entry
    /// point consumes this; the portfolio's whole fallback chain shares
    /// one compile.
    pub fn compiled(&self) -> &CompiledInstance {
        self.compiled
            .get_or_init(|| Arc::new(CompiledInstance::compile(self)))
    }

    /// The compiled IR as a shareable `Arc` — what epoch publishers and
    /// the engine hand across threads. Same cache as
    /// [`Problem::compiled`].
    pub fn compiled_arc(&self) -> Arc<CompiledInstance> {
        self.compiled
            .get_or_init(|| Arc::new(CompiledInstance::compile(self)))
            .clone()
    }

    /// The mutation generation (see the field docs). Clones inherit the
    /// generation of their source, so generations order mutations within
    /// one lineage, not across independently mutated clones.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Check that a compiled instance still describes this problem.
    ///
    /// Racing portfolio members and epoch readers hold `Arc`s to the IR
    /// across arbitrary code; if the problem was mutated since the IR
    /// was built, verifying a solution against that IR would silently
    /// answer for the *old* instance. This is the guard: call it before
    /// trusting any IR-based verification or before publishing an IR.
    pub fn verify_compiled(&self, ir: &CompiledInstance) -> Result<(), CoreError> {
        if ir.generation() != self.generation {
            return Err(CoreError::StaleCompiled {
                compiled: ir.generation(),
                current: self.generation,
            });
        }
        Ok(())
    }

    /// Install an externally assembled IR (the engine's incremental
    /// projection) into the cache, so `compiled()` serves it without a
    /// cold compile. The IR's generation must match the problem's —
    /// enforced, because installing a stale projection would defeat the
    /// very staleness guard [`Problem::verify_compiled`] provides.
    pub(crate) fn install_compiled(&mut self, ir: Arc<CompiledInstance>) {
        assert_eq!(
            ir.generation(),
            self.generation,
            "install_compiled: IR generation must match the problem's"
        );
        let lock = OnceLock::new();
        let _ = lock.set(ir);
        self.compiled = lock;
    }

    /// Drop the cached IR after a mutation and advance the generation.
    fn invalidate_compiled(&mut self) {
        self.generation += 1;
        self.compiled.take();
    }

    /// Mark a view tuple (by id) for deletion.
    pub fn mark_deleted_id(&mut self, id: ViewTupleId) -> Result<(), CoreError> {
        if id.view >= self.views.views.len() || id.index >= self.views.views[id.view].len() {
            return Err(CoreError::UnknownViewTuple {
                view: id.view,
                description: format!("index {}", id.index),
            });
        }
        if self.deletions.insert(id) {
            self.invalidate_compiled();
        }
        Ok(())
    }

    /// Mark the view tuple of view `view` with head `head` for deletion.
    pub fn mark_deleted(&mut self, view: usize, head: &Tuple) -> Result<ViewTupleId, CoreError> {
        let v = self
            .views
            .views
            .get(view)
            .ok_or_else(|| CoreError::UnknownViewTuple {
                view,
                description: head.to_string(),
            })?;
        let index = v
            .position_of(head)
            .ok_or_else(|| CoreError::UnknownViewTuple {
                view,
                description: head.to_string(),
            })?;
        let id = ViewTupleId::new(view, index);
        if self.deletions.insert(id) {
            self.invalidate_compiled();
        }
        Ok(id)
    }

    /// Remove a view tuple from the deletion set (the rederivation half
    /// of the engine's DRed step: a previously requested deletion is
    /// withdrawn and the tuple re-joins the preserved side). Returns
    /// whether it was actually marked; unmarking an unmarked tuple is a
    /// no-op that leaves the generation untouched.
    pub fn unmark_deleted_id(&mut self, id: ViewTupleId) -> Result<bool, CoreError> {
        if id.view >= self.views.views.len() || id.index >= self.views.views[id.view].len() {
            return Err(CoreError::UnknownViewTuple {
                view: id.view,
                description: format!("index {}", id.index),
            });
        }
        let removed = self.deletions.remove(&id);
        if removed {
            self.invalidate_compiled();
        }
        Ok(removed)
    }

    /// Set the preservation weight of a view tuple (default 1.0). Weights
    /// on deleted view tuples matter only for the balanced objective.
    pub fn set_weight(&mut self, id: ViewTupleId, w: f64) -> Result<(), CoreError> {
        if !(w.is_finite() && w >= 0.0) {
            return Err(CoreError::InvalidWeight { value: w });
        }
        self.weights
            .get_mut(id.view)
            .and_then(|ws| ws.get_mut(id.index))
            .map(|slot| *slot = w)
            .ok_or(CoreError::UnknownViewTuple {
                view: id.view,
                description: format!("index {}", id.index),
            })?;
        self.invalidate_compiled();
        Ok(())
    }

    /// The weight of a view tuple.
    pub fn weight(&self, id: ViewTupleId) -> f64 {
        self.weights[id.view][id.index]
    }

    /// The deletion set `ΔV`.
    pub fn deletions(&self) -> &BTreeSet<ViewTupleId> {
        &self.deletions
    }

    /// Whether `id` is marked for deletion.
    pub fn is_deleted(&self, id: ViewTupleId) -> bool {
        self.deletions.contains(&id)
    }

    /// Iterate the view tuples to be **preserved** (`R = V \ ΔV`).
    pub fn preserved(&self) -> impl Iterator<Item = (ViewTupleId, &ViewTuple)> {
        self.views
            .iter()
            .filter(move |(id, _)| !self.is_deleted(*id))
    }

    /// Iterate the view tuples to be **deleted** (`ΔV`).
    pub fn deleted(&self) -> impl Iterator<Item = (ViewTupleId, &ViewTuple)> {
        self.deletions
            .iter()
            .map(move |&id| (id, self.views.tuple(id)))
    }

    /// The unique witness set of a view tuple (key-preservation guarantees
    /// uniqueness; problem construction enforced key-preservation).
    pub fn witnesses(&self, id: ViewTupleId) -> &[TupleId] {
        self.views.tuple(id).unique_witnesses()
    }

    /// Candidate deletion tuples: base tuples occurring in the witness set
    /// of some view tuple in `ΔV`. Deleting any other tuple can only cause
    /// damage without cutting anything, so every solver restricts itself
    /// to this set.
    pub fn candidates(&self) -> Vec<TupleId> {
        let mut out: BTreeSet<TupleId> = BTreeSet::new();
        for &id in &self.deletions {
            out.extend(self.witnesses(id).iter().copied());
        }
        out.into_iter().collect()
    }

    /// The preserved view tuples that contain at least one candidate tuple
    /// (the only ones any reasonable solution can damage).
    pub fn vulnerable_preserved(&self) -> Vec<ViewTupleId> {
        let candidates: HashSet<TupleId> = self.candidates().into_iter().collect();
        self.preserved()
            .filter(|(_, vt)| vt.unique_witnesses().iter().any(|t| candidates.contains(t)))
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delprop_query::parse_query;
    use delprop_relation::{tup, RelationSchema, Schema};

    /// The paper's Fig. 1 database.
    pub(crate) fn fig1_db() -> Database {
        let schema = Schema::from_relations([
            RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
            RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
        ])
        .unwrap();
        let mut d = Database::new(schema);
        for t in [
            tup!["Joe", "TKDE"],
            tup!["John", "TKDE"],
            tup!["Tom", "TKDE"],
            tup!["John", "TODS"],
        ] {
            d.insert("T1", t).unwrap();
        }
        for t in [
            tup!["TKDE", "XML", 30],
            tup!["TKDE", "CUBE", 30],
            tup!["TODS", "XML", 30],
        ] {
            d.insert("T2", t).unwrap();
        }
        d
    }

    fn fig1_q4_problem() -> Problem {
        let db = fig1_db();
        let q4 = parse_query("Q4(x, y, z) :- T1(x, y), T2(y, z, w)")
            .unwrap()
            .bind(db.schema())
            .unwrap();
        Problem::new(db, vec![q4]).unwrap()
    }

    #[test]
    fn rejects_non_key_preserving() {
        let db = fig1_db();
        let q3 = parse_query("Q3(x, z) :- T1(x, y), T2(y, z, w)")
            .unwrap()
            .bind(db.schema())
            .unwrap();
        assert!(matches!(
            Problem::new(db, vec![q3]),
            Err(CoreError::NotKeyPreserving { .. })
        ));
    }

    #[test]
    fn fig1_q4_sizes() {
        let p = fig1_q4_problem();
        assert_eq!(p.norm_v(), 7);
        assert_eq!(p.l(), 3);
        assert_eq!(p.norm_delta(), 0);
    }

    #[test]
    fn mark_deleted_by_head() {
        let mut p = fig1_q4_problem();
        let id = p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        assert!(p.is_deleted(id));
        assert_eq!(p.norm_delta(), 1);
        assert_eq!(p.preserved().count(), 6);
        assert_eq!(p.deleted().count(), 1);
    }

    #[test]
    fn mark_deleted_unknown_head_errors() {
        let mut p = fig1_q4_problem();
        assert!(p.mark_deleted(0, &tup!["Nobody", "X", "Y"]).is_err());
        assert!(p.mark_deleted(9, &tup!["x"]).is_err());
        assert!(p.mark_deleted_id(ViewTupleId::new(0, 999)).is_err());
    }

    #[test]
    fn candidates_are_blue_witnesses() {
        let mut p = fig1_q4_problem();
        p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        let cands = p.candidates();
        // Witnesses of (John,TKDE,XML): T1(John,TKDE) and T2(TKDE,XML,30).
        assert_eq!(cands.len(), 2);
        // Vulnerable preserved: view tuples sharing either witness:
        // Joe/TKDE/XML, Tom/TKDE/XML (share T2 tuple),
        // John/TKDE/CUBE (shares T1 tuple) -> 3.
        assert_eq!(p.vulnerable_preserved().len(), 3);
    }

    #[test]
    fn weights_default_and_set() {
        let mut p = fig1_q4_problem();
        let id = ViewTupleId::new(0, 0);
        assert_eq!(p.weight(id), 1.0);
        p.set_weight(id, 2.5).unwrap();
        assert_eq!(p.weight(id), 2.5);
        assert!(p.set_weight(id, -1.0).is_err());
        assert!(p.set_weight(id, f64::INFINITY).is_err());
        assert!(p.set_weight(ViewTupleId::new(5, 0), 1.0).is_err());
    }

    #[test]
    fn fd_extended_problem_accepts_q3_style_queries() {
        use delprop_relation::{FunctionalDependency, RelationFds, SchemaFds};
        // Data satisfying: each author has one journal (x → y on T1) and
        // each topic belongs to one journal (z → y, w on T2).
        let schema = Schema::from_relations([
            RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
            RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
        ])
        .unwrap();
        let mut d = Database::new(schema);
        d.insert("T1", tup!["Joe", "TKDE"]).unwrap();
        d.insert("T1", tup!["John", "TODS"]).unwrap();
        d.insert("T2", tup!["TKDE", "XML", 30]).unwrap();
        d.insert("T2", tup!["TODS", "CUBE", 20]).unwrap();
        let t1 = d.schema().relation_id("T1").unwrap();
        let t2 = d.schema().relation_id("T2").unwrap();
        let mut fds = SchemaFds::new();
        let mut f1 = RelationFds::new(2);
        f1.add(FunctionalDependency::new(vec![0], vec![1])).unwrap();
        fds.insert(t1, f1);
        let mut f2 = RelationFds::new(3);
        f2.add(FunctionalDependency::new(vec![1], vec![0, 2]))
            .unwrap();
        fds.insert(t2, f2);

        let q3 = parse_query("Q3(x, z) :- T1(x, y), T2(y, z, w)")
            .unwrap()
            .bind(d.schema())
            .unwrap();
        // Plain constructor rejects; FD-aware constructor accepts.
        assert!(Problem::new(d.clone(), vec![q3.clone()]).is_err());
        let mut p = Problem::new_with_fds(d, vec![q3], &fds).unwrap();
        assert_eq!(p.norm_v(), 2);
        let id = p.mark_deleted(0, &tup!["Joe", "XML"]).unwrap();
        assert_eq!(p.witnesses(id).len(), 2, "unique witness set, 2 atoms");
    }

    #[test]
    fn fd_extended_problem_rejects_violated_fds() {
        use delprop_relation::{FunctionalDependency, RelationFds, SchemaFds};
        let db = fig1_db(); // John has two journals: x → y fails on T1
        let t1 = db.schema().relation_id("T1").unwrap();
        let mut fds = SchemaFds::new();
        let mut f1 = RelationFds::new(2);
        f1.add(FunctionalDependency::new(vec![0], vec![1])).unwrap();
        fds.insert(t1, f1);
        let q3 = parse_query("Q3(x, z) :- T1(x, y), T2(y, z, w)")
            .unwrap()
            .bind(db.schema())
            .unwrap();
        assert!(matches!(
            Problem::new_with_fds(db, vec![q3], &fds),
            Err(CoreError::FdViolation { .. })
        ));
    }

    #[test]
    fn fd_extended_problem_still_requires_coverage() {
        use delprop_relation::SchemaFds;
        let db = fig1_db();
        let q3 = parse_query("Q3(x, z) :- T1(x, y), T2(y, z, w)")
            .unwrap()
            .bind(db.schema())
            .unwrap();
        // No FDs declared: still not key-preserving.
        assert!(matches!(
            Problem::new_with_fds(db, vec![q3], &SchemaFds::new()),
            Err(CoreError::NotKeyPreserving { .. })
        ));
    }

    #[test]
    fn compiled_cache_invalidated_on_mutation() {
        let mut p = fig1_q4_problem();
        assert_eq!(p.compiled().norm_delta(), 0);
        let id = p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        assert_eq!(p.compiled().norm_delta(), 1, "mark_deleted rebuilds");
        let vul = *p.compiled().vulnerable().first().unwrap();
        p.set_weight(vul, 2.5).unwrap();
        assert_eq!(
            p.compiled().vulnerable_weight(0),
            2.5,
            "set_weight rebuilds"
        );
        p.mark_deleted_id(id).unwrap();
        assert_eq!(p.compiled().norm_delta(), 1);
        // Clones of a compiled problem share the cached IR (same Arc).
        let q = p.clone();
        assert_eq!(q.compiled().norm_delta(), 1);
    }

    #[test]
    fn witnesses_unique_for_key_preserving() {
        let mut p = fig1_q4_problem();
        let id = p.mark_deleted(0, &tup!["John", "TODS", "XML"]).unwrap();
        assert_eq!(p.witnesses(id).len(), 2);
    }
}
