//! The incremental deletion-propagation engine: overdelete → rederive
//! on a delta-patchable IR.
//!
//! A cold [`Problem::compiled`] pays `O(‖V‖)` plus a data-dual-graph
//! construction on **every** mutation, even though the paper's
//! key-preserving structure makes maintenance local: a view deletion
//! only touches the base tuples on its witness path and, through the
//! provenance incidence, the view tuples sharing those bases. [`Engine`]
//! exploits that. It materializes the views, the witness provenance
//! (`ProvenanceIndex`) and the ΔV-independent IR layer
//! ([`crate::ir::StaticLayer`]) **once**, then services a stream of ΔV
//! batches ([`DeltaBatch`]) DRed-style:
//!
//! 1. **Overdeletion closure** — deleting view tuple `v` reference-counts
//!    every base tuple on `path(v)` into the candidate set; each base
//!    tuple newly becoming a candidate walks its provenance row and
//!    marks the preserved view tuples sharing it as vulnerable
//!    (over-deleted: they *may* lose a witness).
//! 2. **Rederivation** — restoring `v` (withdrawing its deletion)
//!    decrements the same counters; candidates and vulnerable marks
//!    whose support drops to zero retract, and `v` itself rejoins the
//!    vulnerable set exactly when an alternative deletion still pins one
//!    of its witnesses (its support was *re-derived* from the remaining
//!    ΔV rather than restored wholesale).
//!
//! The counters are exact — a tuple is a candidate iff its refcount is
//! positive — so after any batch the active sets equal what a cold
//! compile would derive, and the engine projects them through the *same*
//! `CompiledInstance::assemble` path a cold compile uses,
//! onto the shared static layer. Warm projections are therefore
//! byte-identical to cold compiles by construction (the differential
//! suite `tests/incremental_equivalence.rs` checks
//! [`crate::ir::CompiledInstance::shape_digest`] equality per step).
//!
//! Membership is stored as generation-stamped tombstone overlays
//! (`overlay::DynSortedSet`): batch updates touch `O(batch)` overlay
//! state, enumeration merges in `O(active)`, and once fragmentation
//! crosses [`CompactionPolicy::max_fragmentation`] the overlay folds
//! back into clean sorted arrays. The projected IR is installed into the
//! shadow problem's cache stamped with its mutation generation, so every
//! existing solver / portfolio / verification entry point works
//! unchanged — and [`Problem::verify_compiled`] rejects any stale IR a
//! racing reader may still hold.
//!
//! ```
//! use delprop_core::{DeltaBatch, Engine, Problem};
//! use delprop_query::parse_query;
//! use delprop_relation::{tup, Database, RelationSchema, Schema};
//!
//! let schema = Schema::from_relations([
//!     RelationSchema::new("T1", 2, vec![0, 1]).unwrap(),
//!     RelationSchema::new("T2", 3, vec![0, 1]).unwrap(),
//! ]).unwrap();
//! let mut db = Database::new(schema);
//! db.insert("T1", tup!["John", "TKDE"]).unwrap();
//! db.insert("T2", tup!["TKDE", "XML", 30]).unwrap();
//! let q = parse_query("Q(x, y, z) :- T1(x, y), T2(y, z, w)")
//!     .unwrap().bind(db.schema()).unwrap();
//! let problem = Problem::new(db, vec![q]).unwrap();
//!
//! let mut engine = Engine::new(problem).unwrap();
//! let id = engine.problem().views().iter().next().unwrap().0;
//! engine.apply(&DeltaBatch::deletes([id])).unwrap();
//! let sol = delprop_core::solve_auto(engine.problem()).unwrap();
//! assert!(sol.is_feasible(engine.problem()));
//! engine.apply(&DeltaBatch::restores([id])).unwrap();
//! assert_eq!(engine.problem().norm_delta(), 0);
//! ```

mod overlay;
mod provenance;

use crate::error::CoreError;
use crate::ir::{ActiveParts, CompiledInstance, StaticLayer};
use crate::problem::Problem;
use crate::runtime::metrics;
use delprop_query::ViewTupleId;
use delprop_setcover::BitSet;
use overlay::DynSortedSet;
use provenance::ProvenanceIndex;
use std::collections::HashMap;
use std::sync::Arc;

/// One ΔV maintenance step: view tuples to delete and deletions to
/// withdraw (restore). Within a batch, deletes apply before restores;
/// entries already in (respectively absent from) ΔV are no-ops.
#[derive(Debug, Clone, Default)]
pub struct DeltaBatch {
    /// View tuples entering ΔV.
    pub delete: Vec<ViewTupleId>,
    /// View tuples leaving ΔV.
    pub restore: Vec<ViewTupleId>,
}

impl DeltaBatch {
    /// A pure-deletion batch.
    pub fn deletes(ids: impl IntoIterator<Item = ViewTupleId>) -> DeltaBatch {
        DeltaBatch {
            delete: ids.into_iter().collect(),
            restore: Vec::new(),
        }
    }

    /// A pure-restore batch.
    pub fn restores(ids: impl IntoIterator<Item = ViewTupleId>) -> DeltaBatch {
        DeltaBatch {
            delete: Vec::new(),
            restore: ids.into_iter().collect(),
        }
    }

    /// Whether the batch carries no operations.
    pub fn is_empty(&self) -> bool {
        self.delete.is_empty() && self.restore.is_empty()
    }
}

/// When the engine folds its tombstone overlays back into clean arrays.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// Compact when any overlay's (tombstones + pending) / active ratio
    /// exceeds this. `0.0` compacts after every batch; `f64::INFINITY`
    /// never compacts automatically ([`Engine::compact`] still works).
    pub max_fragmentation: f64,
}

impl Default for CompactionPolicy {
    fn default() -> CompactionPolicy {
        CompactionPolicy {
            max_fragmentation: 0.25,
        }
    }
}

/// What one [`Engine::apply`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Problem mutation generation after the batch.
    pub generation: u64,
    /// Deletions actually applied (requested minus no-ops).
    pub deleted: usize,
    /// Restores actually applied (requested minus no-ops).
    pub restored: usize,
    /// Preserved view tuples that entered the vulnerable set through the
    /// overdeletion closure of this batch.
    pub overdeleted: usize,
    /// View tuples whose vulnerable status was rederived (restored
    /// tuples re-entering the vulnerable set, or survivors kept by an
    /// alternative witness after retractions).
    pub rederived: usize,
    /// Whether the overlays were compacted after this batch.
    pub compacted: bool,
}

/// Cumulative engine counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// ΔV batches applied.
    pub batches: u64,
    /// Overlay compactions performed.
    pub compactions: u64,
    /// Incremental projections installed (one per non-empty batch).
    pub projections: u64,
    /// Sharded solves answered from the digest cache (component
    /// untouched since its last certified solve).
    pub shard_hits: u64,
    /// Component shards actually solved (cache misses).
    pub shard_misses: u64,
}

/// A long-lived incremental deletion-propagation service over one
/// instance. See the module docs for the maintenance model.
#[derive(Debug, Clone)]
pub struct Engine {
    /// The shadow problem: deletion set kept in lock-step with the
    /// overlay, compiled-IR cache holding the latest projection. Exposed
    /// read-only — all mutation goes through [`Engine::apply`].
    problem: Problem,
    statics: Arc<StaticLayer>,
    prov: Arc<ProvenanceIndex>,
    /// ΔV membership over the dense view layout.
    deleted: BitSet,
    /// Per-uid: number of ΔV members whose witness path contains it.
    /// Positive ⇔ candidate.
    cand_refs: Vec<u32>,
    /// Per view tuple: number of active candidate uids on its witness
    /// path. Positive ∧ preserved ⇔ vulnerable.
    vuln_refs: Vec<u32>,
    /// Active candidate uids.
    cands: DynSortedSet,
    /// Dense view indices in ΔV.
    demands: DynSortedSet,
    /// Active vulnerable dense view indices.
    vuln: DynSortedSet,
    policy: CompactionPolicy,
    stats: EngineStats,
    /// Certified per-shard outcomes keyed by `(component digest,
    /// objective)`. A `DeltaBatch` that leaves a component untouched
    /// leaves its digest unchanged, so the next [`Engine::solve_sharded`]
    /// reuses the cached solve for it and only recomputes dirty
    /// components. Degraded (budget-starved) outcomes are never cached.
    /// Sound because the engine's static layer and weights are fixed for
    /// its lifetime — the digest's id sets fully determine the shard
    /// subproblem.
    shard_cache: HashMap<(u64, u8), crate::shard::ShardSolve>,
}

impl Engine {
    /// Build an engine over `problem` with the default compaction
    /// policy. Any deletions already marked on the problem become the
    /// initial ΔV (applied through the same incremental machinery), and
    /// the initial projection is installed, so `problem().compiled()` is
    /// warm from the start.
    pub fn new(problem: Problem) -> Result<Engine, CoreError> {
        Engine::with_policy(problem, CompactionPolicy::default())
    }

    /// Build an engine with an explicit compaction policy.
    pub fn with_policy(problem: Problem, policy: CompactionPolicy) -> Result<Engine, CoreError> {
        let statics = Arc::new(StaticLayer::build(&problem));
        let prov = Arc::new(ProvenanceIndex::build(&statics));
        let norm_v = statics.norm_v();
        let universe = prov.universe_len();
        let mut engine = Engine {
            problem,
            deleted: BitSet::new(norm_v),
            cand_refs: vec![0; universe],
            vuln_refs: vec![0; norm_v],
            cands: DynSortedSet::new(universe),
            demands: DynSortedSet::new(norm_v),
            vuln: DynSortedSet::new(norm_v),
            statics,
            prov,
            policy,
            stats: EngineStats::default(),
            shard_cache: HashMap::new(),
        };
        let initial: Vec<ViewTupleId> = engine.problem.deletions().iter().copied().collect();
        let mut report = DeltaReport::default();
        for id in initial {
            engine.raw_delete(engine.statics.dense(id), &mut report);
        }
        engine.compact();
        engine.project();
        Ok(engine)
    }

    /// The shadow problem: current ΔV, weights, and a warm compiled IR.
    /// Hand `problem()` to any solver or portfolio exactly as before.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The latest projection as a shareable `Arc` (generation-stamped).
    pub fn compiled(&self) -> Arc<CompiledInstance> {
        self.problem.compiled_arc()
    }

    /// Current problem mutation generation.
    pub fn generation(&self) -> u64 {
        self.problem.generation()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Apply one ΔV batch: validate, overdelete, rederive, maybe
    /// compact, and install the refreshed projection. All ids are
    /// validated **before** any state changes, so an `Err` leaves the
    /// engine exactly as it was.
    pub fn apply(&mut self, batch: &DeltaBatch) -> Result<DeltaReport, CoreError> {
        for &id in batch.delete.iter().chain(&batch.restore) {
            self.validate(id)?;
        }
        let mut report = DeltaReport::default();
        for &id in &batch.delete {
            if !self.problem.is_deleted(id) {
                self.problem
                    .mark_deleted_id(id)
                    .expect("validated before mutation");
                self.raw_delete(self.statics.dense(id), &mut report);
                report.deleted += 1;
            }
        }
        for &id in &batch.restore {
            if self
                .problem
                .unmark_deleted_id(id)
                .expect("validated before mutation")
            {
                self.raw_restore(self.statics.dense(id), &mut report);
                report.restored += 1;
            }
        }
        report.compacted = self.maybe_compact();
        self.project();
        self.stats.batches += 1;
        report.generation = self.problem.generation();
        Ok(report)
    }

    /// Fork a per-request problem: the engine's instance plus `extra`
    /// deletions, without mutating the engine. The clone shares the
    /// database, views, static layer and — when `extra` adds nothing new
    /// — the installed IR; otherwise an incremental projection for the
    /// combined ΔV is assembled in `O(active)` and installed on the
    /// clone. This is the serving daemon's delta path: one engine per
    /// epoch, one `with_delta` per request.
    pub fn with_delta(&self, extra: &[ViewTupleId]) -> Result<Problem, CoreError> {
        for &id in extra {
            self.validate(id)?;
        }
        let mut p = self.problem.clone();
        // Dense indices of the genuinely new deletions, sorted.
        let mut fresh: Vec<u32> = extra
            .iter()
            .filter(|&&id| !self.problem.is_deleted(id))
            .map(|&id| self.statics.dense(id) as u32)
            .collect();
        fresh.sort_unstable();
        fresh.dedup();
        if fresh.is_empty() {
            return Ok(p);
        }
        for &id in extra {
            p.mark_deleted_id(id).expect("validated above");
        }

        // Candidate uids the fresh deletions add beyond the engine's.
        let mut new_uids: Vec<u32> = fresh
            .iter()
            .flat_map(|&i| self.prov.path_uids(i as usize).iter().copied())
            .filter(|&uid| self.cand_refs[uid as usize] == 0)
            .collect();
        new_uids.sort_unstable();
        new_uids.dedup();

        // Vulnerable additions: preserved view tuples with no existing
        // candidate on their path that gain one through a new uid.
        let mut vuln_add: Vec<u32> = new_uids
            .iter()
            .flat_map(|&uid| self.prov.occ_row(uid).iter().copied())
            .filter(|&j| {
                self.vuln_refs[j as usize] == 0
                    && !self.deleted.contains(j as usize)
                    && fresh.binary_search(&j).is_err()
            })
            .collect();
        vuln_add.sort_unstable();
        vuln_add.dedup();

        let bases: Vec<_> = merge_sorted(&self.cands.merged(), &new_uids)
            .into_iter()
            .map(|uid| self.prov.tuple(uid))
            .collect();
        let demands: Vec<ViewTupleId> = merge_sorted(&self.demands.merged(), &fresh)
            .into_iter()
            .map(|i| self.statics.view_tuples[i as usize])
            .collect();
        // Existing vulnerable minus the freshly deleted, plus additions.
        let kept: Vec<u32> = self
            .vuln
            .merged()
            .into_iter()
            .filter(|j| fresh.binary_search(j).is_err())
            .collect();
        let vulnerable: Vec<ViewTupleId> = merge_sorted(&kept, &vuln_add)
            .into_iter()
            .map(|i| self.statics.view_tuples[i as usize])
            .collect();
        let mut deleted_vec = self.deleted_vec();
        for &i in &fresh {
            deleted_vec[i as usize] = true;
        }

        let ir = CompiledInstance::assemble(
            self.statics.clone(),
            ActiveParts {
                bases,
                demands,
                vulnerable,
                deleted: deleted_vec,
            },
            p.generation(),
        );
        metrics::IR_PATCHES.inc();
        p.install_compiled(Arc::new(ir));
        Ok(p)
    }

    /// Solve the current instance by component decomposition, reusing
    /// certified outcomes for components untouched since their last
    /// solve (`DeltaBatch`es touch only dirty shards).
    ///
    /// Each component's digest is stable across batches that do not
    /// modify it, so the cache turns a batch touching one component of
    /// `k` into one shard solve plus `k − 1` lookups; only the cache
    /// misses run, on the work-stealing scheduler. Degraded outcomes
    /// (budget drained mid-shard) are returned but never cached, so a
    /// later call with a healthier budget re-solves them.
    pub fn solve_sharded(
        &mut self,
        objective: crate::solvers::local_search::Objective,
        budget: &crate::runtime::Budget,
    ) -> Result<crate::shard::ShardedOutcome, CoreError> {
        use crate::shard::{self, ShardSolve};
        use crate::solvers::local_search::Objective;
        use std::sync::Mutex;

        let ir = self.compiled();
        let part = shard::partition(&ir);
        let k = part.shards.len();
        let obj_tag = match objective {
            Objective::Standard => 0u8,
            Objective::Balanced => 1u8,
        };

        let mut per_shard: Vec<Option<ShardSolve>> = vec![None; k];
        let mut missing: Vec<usize> = Vec::new();
        for (i, s) in part.shards.iter().enumerate() {
            match self.shard_cache.get(&(s.digest, obj_tag)) {
                Some(hit) => {
                    metrics::SHARD_CACHE_HITS.inc();
                    self.stats.shard_hits += 1;
                    per_shard[i] = Some(hit.clone());
                }
                None => missing.push(i),
            }
        }
        self.stats.shard_misses += missing.len() as u64;

        if !missing.is_empty() {
            let slots: Vec<Mutex<Option<Result<ShardSolve, CoreError>>>> =
                (0..missing.len()).map(|_| Mutex::new(None)).collect();
            let workers = crate::runtime::sync::available_parallelism().min(missing.len());
            shard::run_tasks(missing.len(), workers, |t| {
                let handle = budget.share_labeled("shard");
                let result =
                    shard::solve_component(&part.shards[missing[t]].ir, objective, &handle);
                *slots[t].lock().unwrap() = Some(result);
            });
            for (slot, &i) in slots.into_iter().zip(&missing) {
                let s = slot
                    .into_inner()
                    .unwrap()
                    .expect("the scheduler runs every shard task exactly once")?;
                if !s.degraded {
                    self.shard_cache
                        .insert((part.shards[i].digest, obj_tag), s.clone());
                }
                per_shard[i] = Some(s);
            }
        }

        // Bound the cache: once it far outgrows the live partition (many
        // churned components), keep only digests still present.
        if self.shard_cache.len() > 4 * k.max(64) {
            let live: std::collections::HashSet<u64> =
                part.shards.iter().map(|s| s.digest).collect();
            self.shard_cache.retain(|(d, _), _| live.contains(d));
        }

        let per_shard: Vec<ShardSolve> = per_shard
            .into_iter()
            .map(|s| s.expect("every shard is either cached or freshly solved"))
            .collect();
        shard::merge_shards(&ir, per_shard, objective)
    }

    /// Force-fold all overlays into clean arrays. The installed IR is
    /// untouched: compaction changes the overlay representation, never
    /// the active sets.
    pub fn compact(&mut self) {
        self.cands.compact();
        self.demands.compact();
        self.vuln.compact();
        self.stats.compactions += 1;
        metrics::ENGINE_COMPACTIONS.inc();
    }

    // ---- internals ----

    fn validate(&self, id: ViewTupleId) -> Result<(), CoreError> {
        if self.statics.view_tuples.binary_search(&id).is_err() {
            return Err(CoreError::UnknownViewTuple {
                view: id.view,
                description: format!("index {}", id.index),
            });
        }
        Ok(())
    }

    /// Overdeletion closure for one new ΔV member (dense index `i`).
    fn raw_delete(&mut self, i: usize, report: &mut DeltaReport) {
        debug_assert!(!self.deleted.contains(i));
        self.deleted.insert(i);
        self.demands.activate(i as u32);
        // A vulnerable tuple entering ΔV leaves the preserved side.
        if self.vuln_refs[i] > 0 {
            self.vuln.deactivate(i as u32);
        }
        let prov = Arc::clone(&self.prov);
        for &uid in prov.path_uids(i) {
            self.cand_refs[uid as usize] += 1;
            if self.cand_refs[uid as usize] == 1 {
                self.cands.activate(uid);
                for &j in prov.occ_row(uid) {
                    let j = j as usize;
                    self.vuln_refs[j] += 1;
                    if self.vuln_refs[j] == 1 && !self.deleted.contains(j) {
                        self.vuln.activate(j as u32);
                        report.overdeleted += 1;
                    }
                }
            }
        }
    }

    /// Rederivation for one withdrawn ΔV member (dense index `i`).
    fn raw_restore(&mut self, i: usize, report: &mut DeltaReport) {
        debug_assert!(self.deleted.contains(i));
        // Retract the refcounts first, while `i` still counts as
        // deleted, so its own vulnerable status is not touched by the
        // inner loop.
        let prov = Arc::clone(&self.prov);
        for &uid in prov.path_uids(i) {
            self.cand_refs[uid as usize] -= 1;
            if self.cand_refs[uid as usize] == 0 {
                self.cands.deactivate(uid);
                for &j in prov.occ_row(uid) {
                    let j = j as usize;
                    self.vuln_refs[j] -= 1;
                    if self.vuln_refs[j] == 0 && !self.deleted.contains(j) {
                        self.vuln.deactivate(j as u32);
                    }
                }
            }
        }
        self.deleted.remove(i);
        self.demands.deactivate(i as u32);
        // The restored tuple rejoins the vulnerable set exactly when an
        // alternative deletion still pins one of its witnesses.
        if self.vuln_refs[i] > 0 {
            self.vuln.activate(i as u32);
            report.rederived += 1;
        }
    }

    fn maybe_compact(&mut self) -> bool {
        let frag = self
            .cands
            .fragmentation()
            .max(self.demands.fragmentation())
            .max(self.vuln.fragmentation());
        if frag > self.policy.max_fragmentation {
            self.compact();
            true
        } else {
            false
        }
    }

    fn deleted_vec(&self) -> Vec<bool> {
        let mut v = vec![false; self.statics.norm_v()];
        for i in self.deleted.iter() {
            v[i] = true;
        }
        v
    }

    /// Assemble the canonical projection of the current active sets and
    /// install it into the shadow problem's IR cache.
    fn project(&mut self) {
        let parts = ActiveParts {
            bases: self
                .cands
                .merged()
                .into_iter()
                .map(|uid| self.prov.tuple(uid))
                .collect(),
            demands: self
                .demands
                .merged()
                .into_iter()
                .map(|i| self.statics.view_tuples[i as usize])
                .collect(),
            vulnerable: self
                .vuln
                .merged()
                .into_iter()
                .map(|i| self.statics.view_tuples[i as usize])
                .collect(),
            deleted: self.deleted_vec(),
        };
        let ir = CompiledInstance::assemble(self.statics.clone(), parts, self.problem.generation());
        metrics::IR_PATCHES.inc();
        self.stats.projections += 1;
        self.problem.install_compiled(Arc::new(ir));
    }
}

/// Merge two sorted, mutually disjoint `u32` lists.
fn merge_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut x, mut y) = (0, 0);
    while x < a.len() && y < b.len() {
        if a[x] < b[y] {
            out.push(a[x]);
            x += 1;
        } else {
            out.push(b[y]);
            y += 1;
        }
    }
    out.extend_from_slice(&a[x..]);
    out.extend_from_slice(&b[y..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{chain_problem, fig1_problem};
    use delprop_relation::tup;

    fn fig1() -> Problem {
        fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |_| {})
    }

    #[test]
    fn engine_matches_cold_compile_per_step() {
        let base = fig1();
        let mut engine = Engine::new(base.clone()).unwrap();
        let ids: Vec<ViewTupleId> = base.views().iter().map(|(id, _)| id).collect();
        // Delete three tuples one by one, then restore the middle one.
        for &id in &ids[..3] {
            engine.apply(&DeltaBatch::deletes([id])).unwrap();
            let mut cold = base.clone();
            let dels: Vec<ViewTupleId> = engine.problem().deletions().iter().copied().collect();
            for d in dels {
                cold.mark_deleted_id(d).unwrap();
            }
            assert_eq!(
                engine.compiled().shape_digest(),
                CompiledInstance::compile(&cold).shape_digest(),
                "after deleting {id}"
            );
        }
        engine.apply(&DeltaBatch::restores([ids[1]])).unwrap();
        let mut cold = base.clone();
        cold.mark_deleted_id(ids[0]).unwrap();
        cold.mark_deleted_id(ids[2]).unwrap();
        assert_eq!(
            engine.compiled().shape_digest(),
            CompiledInstance::compile(&cold).shape_digest(),
            "after rederive"
        );
    }

    #[test]
    fn restore_everything_returns_to_empty_delta() {
        let mut engine = Engine::new(fig1()).unwrap();
        let ids: Vec<ViewTupleId> = engine.problem().views().iter().map(|(id, _)| id).collect();
        engine
            .apply(&DeltaBatch::deletes(ids.iter().copied()))
            .unwrap();
        assert_eq!(engine.problem().norm_delta(), ids.len());
        engine
            .apply(&DeltaBatch::restores(ids.iter().copied()))
            .unwrap();
        assert_eq!(engine.problem().norm_delta(), 0);
        let ir = engine.compiled();
        assert_eq!(ir.num_demands(), 0);
        assert_eq!(ir.num_bases(), 0);
        assert_eq!(ir.num_vulnerable(), 0);
        // And it matches a cold compile of the pristine instance.
        assert_eq!(
            ir.shape_digest(),
            CompiledInstance::compile(&fig1()).shape_digest()
        );
    }

    #[test]
    fn with_delta_matches_cold_and_leaves_engine_untouched() {
        let p = chain_problem(10, 3, &[1, 5]);
        // Engine seeded with the problem's own deletions.
        let engine = Engine::new(p.clone()).unwrap();
        let gen_before = engine.generation();
        let digest_before = engine.compiled().shape_digest();

        let extra: Vec<ViewTupleId> = engine
            .problem()
            .preserved()
            .map(|(id, _)| id)
            .take(2)
            .collect();
        let forked = engine.with_delta(&extra).unwrap();
        let mut cold = p.clone();
        for &id in &extra {
            cold.mark_deleted_id(id).unwrap();
        }
        assert_eq!(
            forked.compiled().shape_digest(),
            CompiledInstance::compile(&cold).shape_digest()
        );
        assert!(forked.verify_compiled(forked.compiled()).is_ok());
        // Engine state is untouched.
        assert_eq!(engine.generation(), gen_before);
        assert_eq!(engine.compiled().shape_digest(), digest_before);

        // No-op delta shares the installed IR.
        let same = engine.with_delta(&[]).unwrap();
        assert_eq!(same.compiled().shape_digest(), digest_before);
    }

    #[test]
    fn unknown_ids_are_rejected_before_any_mutation() {
        let mut engine = Engine::new(fig1()).unwrap();
        let ok = engine.problem().views().iter().next().unwrap().0;
        let bogus = ViewTupleId::new(7, 7);
        let digest = engine.compiled().shape_digest();
        let err = engine.apply(&DeltaBatch {
            delete: vec![ok, bogus],
            restore: vec![],
        });
        assert!(matches!(err, Err(CoreError::UnknownViewTuple { .. })));
        assert_eq!(engine.problem().norm_delta(), 0, "no partial application");
        assert_eq!(engine.compiled().shape_digest(), digest);
        assert!(matches!(
            engine.with_delta(&[bogus]),
            Err(CoreError::UnknownViewTuple { .. })
        ));
    }

    #[test]
    fn delete_then_restore_rederives_vulnerable_status() {
        // Fig 1: deleting (John,TKDE,XML) makes (Joe,TKDE,XML) vulnerable
        // (shared T2 witness). Deleting (Joe,TKDE,XML) too moves it from
        // vulnerable to demand; restoring it must *rederive* it as
        // vulnerable, because (John,TKDE,XML) is still deleted.
        let p = fig1_problem(&[("Q4", "Q4(x, y, z) :- T1(x, y), T2(y, z, w)")], |p| {
            p.mark_deleted(0, &tup!["John", "TKDE", "XML"]).unwrap();
        });
        let joe = p.views().views[0]
            .position_of(&tup!["Joe", "TKDE", "XML"])
            .map(|i| ViewTupleId::new(0, i))
            .unwrap();
        let mut engine = Engine::new(p).unwrap();
        assert!(engine.compiled().vulnerable().contains(&joe));

        engine.apply(&DeltaBatch::deletes([joe])).unwrap();
        assert!(engine.compiled().demands().contains(&joe));
        assert!(!engine.compiled().vulnerable().contains(&joe));

        let report = engine.apply(&DeltaBatch::restores([joe])).unwrap();
        assert_eq!(report.rederived, 1, "Joe re-enters the vulnerable set");
        assert!(engine.compiled().vulnerable().contains(&joe));
    }

    #[test]
    fn compaction_never_changes_the_projection() {
        let p = chain_problem(12, 3, &[]);
        let ids: Vec<ViewTupleId> = p.views().iter().map(|(id, _)| id).collect();
        let mut engine = Engine::with_policy(
            p,
            CompactionPolicy {
                max_fragmentation: f64::INFINITY,
            },
        )
        .unwrap();
        for chunk in ids.chunks(3) {
            engine
                .apply(&DeltaBatch::deletes(chunk.iter().copied()))
                .unwrap();
        }
        engine
            .apply(&DeltaBatch::restores(ids.iter().step_by(2).copied()))
            .unwrap();
        let digest = engine.compiled().shape_digest();
        engine.compact();
        engine.apply(&DeltaBatch::default()).unwrap();
        assert_eq!(engine.compiled().shape_digest(), digest);
    }

    #[test]
    fn sharded_solve_caches_clean_components_across_batches() {
        use crate::runtime::Budget;
        use crate::solvers::local_search::Objective;

        // Two components: demand 1 ({R1(1,0),R2(0,0),R3(0,0)}) and
        // demand 4 ({R1(4,2),R2(2,1),R3(1,0)}).
        let p = chain_problem(8, 3, &[1, 4]);
        let mut engine = Engine::new(p).unwrap();
        let budget = Budget::unlimited();

        let first = engine.solve_sharded(Objective::Standard, &budget).unwrap();
        assert_eq!(first.shards, 2);
        assert_eq!(engine.stats().shard_hits, 0);
        assert_eq!(engine.stats().shard_misses, 2);

        // Identical instance: both shards answered from the cache.
        let second = engine.solve_sharded(Objective::Standard, &budget).unwrap();
        assert_eq!(engine.stats().shard_hits, 2);
        assert_eq!(engine.stats().shard_misses, 2);
        assert_eq!(first.solution, second.solution);
        assert_eq!(first.cost.to_bits(), second.cost.to_bits());

        // Delete chain 2's view tuple: it shares R3(0,0) with demand 1,
        // so only that component's digest changes; demand 4's shard is
        // still served from the cache.
        let chain2 = engine.problem().views().views[0]
            .position_of(&tup![2i64, 1, 0, 0])
            .map(|i| ViewTupleId::new(0, i))
            .unwrap();
        engine.apply(&DeltaBatch::deletes([chain2])).unwrap();
        let third = engine.solve_sharded(Objective::Standard, &budget).unwrap();
        assert_eq!(engine.stats().shard_hits, 3, "clean component reused");
        assert_eq!(engine.stats().shard_misses, 3, "dirty component re-solved");
        assert!(third.solution.is_feasible(engine.problem()));

        // The cached merge equals a from-scratch sharded solve.
        let fresh = crate::shard::solve_sharded_ir(
            &engine.compiled(),
            Objective::Standard,
            &Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(third.solution, fresh.solution);
        assert_eq!(third.cost.to_bits(), fresh.cost.to_bits());
    }

    #[test]
    fn projection_counts_as_patch_not_compile() {
        let mut engine = Engine::new(fig1()).unwrap();
        let id = engine.problem().views().iter().next().unwrap().0;
        let compiles = crate::ir::compile_count();
        let patches = crate::ir::patch_count();
        engine.apply(&DeltaBatch::deletes([id])).unwrap();
        let _ = engine.problem().compiled();
        assert_eq!(crate::ir::compile_count(), compiles, "no cold compile");
        assert!(crate::ir::patch_count() > patches);
    }
}
