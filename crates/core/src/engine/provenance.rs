//! The full-universe witness-provenance index the engine maintains its
//! overdeletion closure over.
//!
//! Where [`crate::ir::CompiledInstance`] interns only the *candidate*
//! bases of the current ΔV, this index interns **every** base tuple
//! appearing in any witness path — the provenance universe — once per
//! engine lifetime, in sorted `TupleId` order (so dense uid order equals
//! tuple order, and any uid subset maps back to a canonically sorted
//! candidate array for the projection). Both incidence directions are
//! CSR:
//!
//! - `path_uids(i)`: the witness path of the `i`-th view tuple as uids
//!   (rows sorted, because witness paths are sorted at materialization);
//! - `occ_row(uid)`: the view tuples whose path contains `uid` (rows
//!   ascending by construction) — the DRed overdeletion frontier: when a
//!   base tuple enters the candidate set, exactly these view tuples can
//!   become vulnerable.

use crate::ir::StaticLayer;
use delprop_relation::TupleId;

/// Bidirectional base-tuple ⇄ view-tuple provenance over the whole view
/// layout, built once per [`crate::engine::Engine`].
#[derive(Debug)]
pub(crate) struct ProvenanceIndex {
    /// Every base tuple in any witness path, sorted ascending.
    universe: Vec<TupleId>,
    /// CSR: view layout index → uids of its witness path.
    uid_offsets: Vec<u32>,
    uid_paths: Vec<u32>,
    /// CSR: uid → view layout indices whose path contains it.
    occ_offsets: Vec<u32>,
    occ: Vec<u32>,
}

impl ProvenanceIndex {
    /// Build both CSR directions from a static layer's witness paths.
    pub(crate) fn build(statics: &StaticLayer) -> ProvenanceIndex {
        let norm_v = statics.norm_v();
        let mut universe: Vec<TupleId> = Vec::new();
        for i in 0..norm_v {
            universe.extend_from_slice(statics.path_of(i));
        }
        universe.sort_unstable();
        universe.dedup();

        let mut uid_offsets = Vec::with_capacity(norm_v + 1);
        uid_offsets.push(0u32);
        let mut uid_paths: Vec<u32> = Vec::new();
        let mut occ_rows: Vec<Vec<u32>> = vec![Vec::new(); universe.len()];
        for i in 0..norm_v {
            for &t in statics.path_of(i) {
                let uid = universe
                    .binary_search(&t)
                    .expect("path tuples define the universe") as u32;
                uid_paths.push(uid);
                occ_rows[uid as usize].push(i as u32);
            }
            uid_offsets.push(uid_paths.len() as u32);
        }

        let mut occ_offsets = Vec::with_capacity(universe.len() + 1);
        occ_offsets.push(0u32);
        let mut occ: Vec<u32> = Vec::with_capacity(uid_paths.len());
        for row in occ_rows {
            occ.extend(row);
            occ_offsets.push(occ.len() as u32);
        }

        ProvenanceIndex {
            universe,
            uid_offsets,
            uid_paths,
            occ_offsets,
            occ,
        }
    }

    /// Size of the provenance universe.
    pub(crate) fn universe_len(&self) -> usize {
        self.universe.len()
    }

    /// The base tuple behind a uid.
    pub(crate) fn tuple(&self, uid: u32) -> TupleId {
        self.universe[uid as usize]
    }

    /// Witness path of the `i`-th view tuple, as sorted uids.
    pub(crate) fn path_uids(&self, i: usize) -> &[u32] {
        &self.uid_paths[self.uid_offsets[i] as usize..self.uid_offsets[i + 1] as usize]
    }

    /// View layout indices whose witness path contains `uid`, ascending.
    pub(crate) fn occ_row(&self, uid: u32) -> &[u32] {
        &self.occ
            [self.occ_offsets[uid as usize] as usize..self.occ_offsets[uid as usize + 1] as usize]
    }
}
