//! Delta-patchable sorted sets: the engine's tombstone overlay.
//!
//! Each active set of the IR (candidate bases, demands, vulnerable view
//! tuples) is kept as a **clean** sorted array plus a small overlay — a
//! sorted `pending` insertion list and a `dead` tombstone bitset over the
//! clean array's members. ΔV batches touch only the overlay (`O(batch)`
//! amortized), enumeration merges the three in one sorted pass
//! (`O(active)`), and periodic [`DynSortedSet::compact`] folds the
//! overlay back into a clean array so fragmentation — and with it the
//! merge constant — stays bounded.
//!
//! The domain is a dense `u32` index space fixed at construction (base
//! universe uids or view layout indices); membership transitions are
//! driven externally by the engine's reference counters, so `activate` /
//! `deactivate` are only called on genuine 0↔1 transitions.

use delprop_setcover::BitSet;

/// A sorted dynamic set over a fixed dense domain, optimized for
/// batch-mutate / full-enumerate cycles with periodic compaction.
#[derive(Debug, Clone)]
pub(crate) struct DynSortedSet {
    /// Sorted members as of the last compaction.
    clean: Vec<u32>,
    /// Sorted members added since the last compaction (disjoint from the
    /// live part of `clean`).
    pending: Vec<u32>,
    /// Tombstones over `clean` members (by value, not position).
    dead: BitSet,
    dead_count: usize,
}

impl DynSortedSet {
    /// Empty set over `0..domain`.
    pub(crate) fn new(domain: usize) -> DynSortedSet {
        DynSortedSet {
            clean: Vec::new(),
            pending: Vec::new(),
            dead: BitSet::new(domain),
            dead_count: 0,
        }
    }

    /// Number of active members.
    pub(crate) fn len(&self) -> usize {
        self.clean.len() - self.dead_count + self.pending.len()
    }

    /// Add `x` to the set (must not currently be a member).
    pub(crate) fn activate(&mut self, x: u32) {
        if self.dead.contains(x as usize) {
            // Re-animate a tombstoned clean member in place.
            self.dead.remove(x as usize);
            self.dead_count -= 1;
            return;
        }
        debug_assert!(
            self.clean.binary_search(&x).is_err(),
            "activate on a live clean member"
        );
        match self.pending.binary_search(&x) {
            Ok(_) => debug_assert!(false, "activate on a live pending member"),
            Err(pos) => self.pending.insert(pos, x),
        }
    }

    /// Remove `x` from the set (must currently be a member).
    pub(crate) fn deactivate(&mut self, x: u32) {
        if let Ok(pos) = self.pending.binary_search(&x) {
            self.pending.remove(pos);
            return;
        }
        debug_assert!(
            self.clean.binary_search(&x).is_ok() && !self.dead.contains(x as usize),
            "deactivate on a non-member"
        );
        if self.dead.insert(x as usize) {
            self.dead_count += 1;
        }
    }

    /// The active members, sorted ascending: one merge of the clean array
    /// (skipping tombstones) with the pending list.
    pub(crate) fn merged(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        let mut p = self.pending.iter().copied().peekable();
        for &x in &self.clean {
            if self.dead.contains(x as usize) {
                continue;
            }
            while let Some(&y) = p.peek() {
                if y < x {
                    out.push(y);
                    p.next();
                } else {
                    break;
                }
            }
            out.push(x);
        }
        out.extend(p);
        out
    }

    /// Overlay size relative to the active set — the compaction trigger.
    pub(crate) fn fragmentation(&self) -> f64 {
        (self.dead_count + self.pending.len()) as f64 / self.len().max(1) as f64
    }

    /// Fold the overlay back into a clean sorted array.
    pub(crate) fn compact(&mut self) {
        if self.dead_count == 0 && self.pending.is_empty() {
            return;
        }
        self.clean = self.merged();
        self.pending.clear();
        self.dead.clear();
        self.dead_count = 0;
    }

    /// Whether any overlay state exists (used by tests).
    #[cfg(test)]
    pub(crate) fn is_fragmented(&self) -> bool {
        self.dead_count > 0 || !self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(ops: &[(bool, u32)], domain: usize) -> Vec<u32> {
        let mut set = std::collections::BTreeSet::new();
        let _ = domain;
        for &(add, x) in ops {
            if add {
                set.insert(x);
            } else {
                set.remove(&x);
            }
        }
        set.into_iter().collect()
    }

    #[test]
    fn activate_deactivate_matches_btreeset() {
        // Deterministic pseudo-random op stream over a small domain,
        // with interleaved compactions.
        let mut s = DynSortedSet::new(64);
        let mut member = [false; 64];
        let mut ops: Vec<(bool, u32)> = Vec::new();
        let mut seed = 0x1234_5678_9abc_def0u64;
        for step in 0..500 {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (seed >> 33) as u32 % 64;
            let add = !member[x as usize];
            if add {
                s.activate(x);
            } else {
                s.deactivate(x);
            }
            member[x as usize] = add;
            ops.push((add, x));
            if step % 97 == 0 {
                s.compact();
                assert!(!s.is_fragmented());
            }
            assert_eq!(s.merged(), naive(&ops, 64), "after step {step}");
            assert_eq!(s.len(), s.merged().len());
        }
    }

    #[test]
    fn compact_preserves_members_and_resets_fragmentation() {
        let mut s = DynSortedSet::new(16);
        for x in [3u32, 7, 11] {
            s.activate(x);
        }
        s.compact();
        s.deactivate(7);
        s.activate(5);
        assert!(s.fragmentation() > 0.0);
        let before = s.merged();
        s.compact();
        assert_eq!(s.merged(), before);
        assert_eq!(s.fragmentation(), 0.0);
        // Tombstoned member can be re-activated after compaction too.
        s.activate(7);
        assert_eq!(s.merged(), vec![3, 5, 7, 11]);
    }

    #[test]
    fn reanimation_of_tombstoned_member_is_in_place() {
        let mut s = DynSortedSet::new(8);
        s.activate(2);
        s.compact();
        s.deactivate(2);
        assert_eq!(s.len(), 0);
        s.activate(2);
        assert_eq!(s.merged(), vec![2]);
        assert!(!s.is_fragmented(), "re-animation leaves no overlay");
    }
}
