//! Tables II–V of the paper as structured data: the known complexity
//! landscape of the source- and view-side-effect problems, plus this
//! paper's additions. `delprop-bench`'s harness prints them (experiment
//! EX-TAB25); keeping them queryable also lets examples explain *why* a
//! solver was selected.

use std::fmt;

/// Which side-effect measure a result is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemKind {
    /// Minimize tuples deleted from the source (the sibling problem line).
    SourceSideEffect,
    /// Minimize view tuples lost (this paper's problem).
    ViewSideEffect,
    /// The balanced variant introduced in §III.
    BalancedViewSideEffect,
}

/// A complexity classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Complexity {
    /// Polynomial time.
    PTime,
    /// Fixed-parameter tractable.
    Fpt,
    /// NP-complete.
    NpComplete,
    /// NP(k)-complete for every k (beyond NP; bounded source deletions).
    NpKComplete,
    /// Σ₂ᵖ-complete.
    SigmaP2Complete,
    /// Inapproximable within `O(2^(log^(1-δ) n))` unless P = NP.
    QuasiPolyInapprox,
    /// Approximable with the stated ratio.
    Approximable,
}

/// One row of the landscape tables.
#[derive(Debug, Clone)]
pub struct LandscapeEntry {
    /// Which problem.
    pub problem: ProblemKind,
    /// The query class / setting.
    pub query_class: &'static str,
    /// The classification.
    pub complexity: Complexity,
    /// Approximation ratio or extra detail, if any.
    pub detail: &'static str,
    /// Source of the result.
    pub citation: &'static str,
    /// Whether this workspace implements an algorithm realizing the row.
    pub implemented_here: bool,
}

impl fmt::Display for LandscapeEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} | {} | {:?} {} | {}{}",
            self.problem,
            self.query_class,
            self.complexity,
            self.detail,
            self.citation,
            if self.implemented_here {
                " [implemented]"
            } else {
                ""
            }
        )
    }
}

/// Tables II + III: the source side-effect problem.
pub fn source_side_effect() -> Vec<LandscapeEntry> {
    use Complexity::*;
    use ProblemKind::SourceSideEffect as S;
    vec![
        LandscapeEntry {
            problem: S,
            query_class: "project-free & sj-free CQs",
            complexity: PTime,
            detail: "",
            citation: "Buneman et al. 2002",
            implemented_here: false,
        },
        LandscapeEntry {
            problem: S,
            query_class: "key-preserving CQs",
            complexity: PTime,
            detail: "",
            citation: "Cong et al. 2012",
            implemented_here: false,
        },
        LandscapeEntry {
            problem: S,
            query_class: "triad-free & sj-free CQs",
            complexity: PTime,
            detail: "(resilience dichotomy)",
            citation: "Freire et al. 2015",
            implemented_here: false,
        },
        LandscapeEntry {
            problem: S,
            query_class: "select-free CQs",
            complexity: NpComplete,
            detail: "",
            citation: "Buneman et al. 2002",
            implemented_here: false,
        },
        LandscapeEntry {
            problem: S,
            query_class: "non-key-preserving CQs",
            complexity: NpComplete,
            detail: "",
            citation: "Cong et al. 2012",
            implemented_here: false,
        },
        LandscapeEntry {
            problem: S,
            query_class: "CQs with (fd-induced) triad",
            complexity: NpComplete,
            detail: "",
            citation: "Freire et al. 2015",
            implemented_here: false,
        },
    ]
}

/// Tables IV + V plus this paper's new rows: the view side-effect problem.
pub fn view_side_effect() -> Vec<LandscapeEntry> {
    use Complexity::*;
    use ProblemKind::{BalancedViewSideEffect as B, ViewSideEffect as V};
    vec![
        // Prior work (Table IV/V).
        LandscapeEntry {
            problem: V,
            query_class: "project-free & sj-free CQs (single view)",
            complexity: PTime,
            detail: "",
            citation: "Buneman et al. 2002",
            implemented_here: false,
        },
        LandscapeEntry {
            problem: V,
            query_class: "key-preserving CQs (single view, single deletion)",
            complexity: PTime,
            detail: "",
            citation: "Cong et al. 2012",
            implemented_here: true,
        },
        LandscapeEntry {
            problem: V,
            query_class: "sj-free CQs with head-domination (single view)",
            complexity: PTime,
            detail: "",
            citation: "Kimelfeld et al. 2012",
            implemented_here: false,
        },
        LandscapeEntry {
            problem: V,
            query_class: "sj-free CQs with level-k head-domination (multi-tuple)",
            complexity: Fpt,
            detail: "",
            citation: "Kimelfeld et al. 2013",
            implemented_here: false,
        },
        LandscapeEntry {
            problem: V,
            query_class: "select-free / non-key-preserving / non-head-domination CQs",
            complexity: NpComplete,
            detail: "",
            citation: "Buneman 2002; Cong 2012; Kimelfeld 2012/13",
            implemented_here: false,
        },
        LandscapeEntry {
            problem: V,
            query_class: "CQs with bounded source deletions",
            complexity: NpKComplete,
            detail: "",
            citation: "Miao et al. 2018",
            implemented_here: false,
        },
        LandscapeEntry {
            problem: V,
            query_class: "CQs, general settings (combined)",
            complexity: SigmaP2Complete,
            detail: "",
            citation: "Miao et al. 2016",
            implemented_here: false,
        },
        // This paper (multiple key-preserving views).
        LandscapeEntry {
            problem: V,
            query_class: "≥2 project-free CQ views (multiple queries)",
            complexity: QuasiPolyInapprox,
            detail: "within O(2^(log^(1-δ)‖V‖)), δ = 1/log log^c ‖V‖, c < 0.5",
            citation: "this paper, Thm 1",
            implemented_here: true,
        },
        LandscapeEntry {
            problem: B,
            query_class: "≥2 project-free CQ views (multiple queries)",
            complexity: QuasiPolyInapprox,
            detail: "same bound; also within O(2^(log^(1-δ)‖ΔV‖))",
            citation: "this paper, Thm 2",
            implemented_here: true,
        },
        LandscapeEntry {
            problem: V,
            query_class: "key-preserving CQs, general case",
            complexity: Approximable,
            detail: "ratio O(2√(l·‖V‖·log‖ΔV‖))",
            citation: "this paper, Claim 1",
            implemented_here: true,
        },
        LandscapeEntry {
            problem: B,
            query_class: "key-preserving CQs, general case",
            complexity: Approximable,
            detail: "ratio 2√(l·(‖V‖+‖ΔV‖)·log‖ΔV‖)",
            citation: "this paper, Lemma 1",
            implemented_here: true,
        },
        LandscapeEntry {
            problem: V,
            query_class: "forest case (hypertree components)",
            complexity: Approximable,
            detail: "ratio l (PrimeDualVSE, Thm 3) and 2√‖V‖ (LowDegTreeVSETwo, Thm 4)",
            citation: "this paper, §IV.C–D",
            implemented_here: true,
        },
        LandscapeEntry {
            problem: V,
            query_class: "pivot forest case",
            complexity: PTime,
            detail: "exact dynamic program (DPTreeVSE)",
            citation: "this paper, §IV.E",
            implemented_here: true,
        },
        LandscapeEntry {
            problem: B,
            query_class: "pivot forest case",
            complexity: PTime,
            detail: "exact dynamic program",
            citation: "this paper, §IV.E",
            implemented_here: true,
        },
    ]
}

/// Render a table for the harness.
pub fn render(entries: &[LandscapeEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_implemented_row_cites_this_paper_or_cong() {
        for e in view_side_effect().iter().filter(|e| e.implemented_here) {
            assert!(
                e.citation.contains("this paper") || e.citation.contains("Cong"),
                "unexpected implemented row: {e}"
            );
        }
    }

    #[test]
    fn tables_are_nonempty_and_render() {
        assert!(source_side_effect().len() >= 6);
        assert!(view_side_effect().len() >= 12);
        let s = render(&view_side_effect());
        assert!(s.contains("Thm 1"));
        assert!(s.contains("DPTreeVSE"));
    }

    #[test]
    fn paper_rows_cover_all_four_contributions() {
        let rows = view_side_effect();
        let papers: Vec<_> = rows
            .iter()
            .filter(|e| e.citation.contains("this paper"))
            .collect();
        assert!(
            papers.len() >= 6,
            "Thm 1, Thm 2, Claim 1, Lemma 1, §IV.C–D, §IV.E"
        );
    }
}
